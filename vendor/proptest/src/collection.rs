//! Collection strategies: `vec` and `hash_set` with size ranges.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u128) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector whose length lies in `size`, elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `HashSet<S::Value>` with cardinality drawn from `size`.
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = HashSet::with_capacity(target);
        // Duplicates are redrawn; the attempt cap keeps tiny domains (e.g.
        // `hash_set(0usize..4, 0..=3)`) from spinning forever.
        let mut attempts = 0usize;
        while set.len() < target && attempts < 64 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// A hash set whose cardinality lies in `size`. If the element domain is too
/// small to reach the drawn cardinality, the set saturates below it (still
/// within the requested upper bound).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}
