//! String generation from the regex subset used as `&str` strategies.
//!
//! Supported syntax: literal characters, character classes `[a-z0-9_]`
//! (ranges and singletons, no negation), and the quantifiers `{n}`,
//! `{m,n}`, `?`, `*`, `+` (the unbounded ones cap at 8 repetitions, like
//! real proptest's default repeat bound). Anything else panics with a
//! clear message — extend this module if a test needs more.

use crate::test_runner::TestRng;

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut output = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated [class in pattern {pattern:?}"));
                let class = &chars[i + 1..i + close];
                i += close + 1;
                expand_class(class, pattern)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                vec![c]
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!(
                    "unsupported regex feature {:?} in pattern {pattern:?}",
                    chars[i]
                )
            }
            c => {
                i += 1;
                vec![c]
            }
        };

        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated {{quantifier in pattern {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (parse_bound(lo, pattern), parse_bound(hi, pattern)),
                    None => {
                        let n = parse_bound(&body, pattern);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };

        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        let count = min + rng.below((max - min + 1) as u128) as usize;
        for _ in 0..count {
            let pick = rng.below(alphabet.len() as u128) as usize;
            output.push(alphabet[pick]);
        }
    }
    output
}

fn parse_bound(text: &str, pattern: &str) -> usize {
    text.trim()
        .parse()
        .unwrap_or_else(|_| panic!("bad quantifier bound {text:?} in pattern {pattern:?}"))
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(
        !class.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    assert!(
        class[0] != '^',
        "negated classes unsupported in pattern {pattern:?}"
    );
    let mut alphabet = Vec::new();
    let mut j = 0;
    while j < class.len() {
        if j + 2 < class.len() && class[j + 1] == '-' {
            let (lo, hi) = (class[j], class[j + 2]);
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            j += 3;
        } else {
            alphabet.push(class[j]);
            j += 1;
        }
    }
    alphabet
}
