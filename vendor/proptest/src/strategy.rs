//! The [`Strategy`] trait and the combinators this repo's suites use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there is
/// no value tree / shrinking: `generate` directly produces a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Box a strategy for storage in a [`Union`] (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Uniform choice among boxed strategies with a common value type.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// `options` must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u128) as usize;
        self.options[index].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
