//! Offline stand-in for the [`proptest`](https://docs.rs/proptest)
//! property-testing framework.
//!
//! This workspace must build with **no network access**, so instead of the
//! crates.io `proptest` we vendor a small, API-compatible subset covering
//! exactly what the four property suites in this repo use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` bindings;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`prop_oneof!`] over [`strategy::Just`] alternatives;
//! * `any::<T>()` for the primitive integer types;
//! * integer and `f64` range strategies (`0usize..255`, `1u8..=255`,
//!   `0.0f64..1.0`);
//! * [`collection::vec`] / [`collection::hash_set`] with exact, half-open
//!   and inclusive size ranges;
//! * `&str` regex strategies for the character-class/repetition subset
//!   (e.g. `"[a-z]{1,12}"`).
//!
//! Generation is purely random (seeded deterministically per test from the
//! test name, overridable via `PROPTEST_SEED`); there is **no shrinking** —
//! a failing case panics with the generated seed so it can be replayed.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Assert a condition inside a `proptest!` body (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a `proptest!` body (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality inside a `proptest!` body (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Uniform choice between strategies producing the same value type.
/// (Weighted alternatives from real proptest are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `arg in strategy` binding is regenerated for
/// every case and the body must hold for all of them.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::test_runner::resolve_seed(stringify!($name));
            let mut rng = $crate::test_runner::TestRng::deterministic(seed);
            for case in 0..config.cases {
                let case_seed = rng.next_u64();
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        let mut rng = $crate::test_runner::TestRng::deterministic(case_seed);
                        $(let $arg =
                            $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                        $body
                    }),
                );
                if let Err(payload) = result {
                    eprintln!(
                        "proptest {}: case {}/{} failed (replay with PROPTEST_SEED={seed})",
                        stringify!($name),
                        case + 1,
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}
