//! Test configuration and the deterministic random-number generator.

/// Per-suite configuration; only `cases` is honoured by this stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Resolve the master seed for one property: `PROPTEST_SEED` if set,
/// otherwise a stable FNV-1a hash of the property name so failures
/// reproduce run over run.
pub fn resolve_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            return seed;
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 — small, fast, and plenty for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose whole sequence is determined by `seed`.
    pub fn deterministic(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = u128::from(self.next_u64()) << 64 | u128::from(self.next_u64());
        wide % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
