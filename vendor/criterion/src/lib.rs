//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) benchmark
//! harness.
//!
//! This workspace must build with **no network access**, so instead of the
//! crates.io `criterion` we vendor a small, API-compatible subset that covers
//! exactly what the benches in `crates/bench/benches/` use: configurable
//! groups, throughput annotations, `bench_function`/`bench_with_input`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Semantics follow real criterion where it matters for CI:
//!
//! * under `cargo bench` the binary receives `--bench` and runs timed
//!   measurements (warm-up, then `sample_size` timed iterations, reporting
//!   mean wall-clock time and throughput);
//! * under `cargo test` no `--bench` flag is passed and every benchmark body
//!   runs **once** as a smoke test, so `cargo test -q` stays fast while still
//!   exercising each bench target end to end.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group, as in real criterion.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form (the function name is the group's).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement configuration plus the entry point handed to bench targets.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// True when running without `--bench` (i.e. under `cargo test`):
    /// each benchmark body executes a single untimed iteration.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Upper bound on the timed phase of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Upper bound on the warm-up phase of one benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Inspect the process arguments the way real criterion does: `cargo
    /// bench` appends `--bench`, `cargo test` does not. Called by
    /// [`criterion_group!`]; not part of the public criterion API surface
    /// the benches use directly.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = !std::env::args().any(|a| a == "--bench");
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmark a closure outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let cfg = self.clone();
        run_benchmark(&label, &cfg, None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the per-benchmark sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Annotate how much data one iteration processes.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the measurement-time cap for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Override the warm-up cap for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let cfg = self.effective_config();
        run_benchmark(&label, &cfg, self.throughput, f);
        self
    }

    /// Benchmark a closure that borrows a prepared input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let cfg = self.effective_config();
        run_benchmark(&label, &cfg, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}

    fn effective_config(&self) -> Criterion {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        cfg
    }
}

/// The timing loop handle passed to every benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    ran: bool,
}

impl Bencher {
    /// Time `iters` calls of `f`, recording total elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.ran = true;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    cfg: &Criterion,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if cfg.test_mode {
        // `cargo test` smoke mode: one untimed iteration, no report.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            ran: false,
        };
        f(&mut b);
        assert!(b.ran, "benchmark {label} never called Bencher::iter");
        return;
    }

    // Warm-up: run single iterations until the warm-up budget is spent, so
    // the first timed sample doesn't pay cold-cache costs.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < cfg.warm_up_time && warm_iters < cfg.sample_size as u64 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            ran: false,
        };
        f(&mut b);
        warm_iters += 1;
    }

    // Timed phase: one batch of `sample_size` iterations, capped by the
    // measurement-time budget via the warm-up estimate.
    let per_iter = if warm_iters > 0 {
        warm_start.elapsed() / warm_iters as u32
    } else {
        Duration::ZERO
    };
    let mut iters = cfg.sample_size as u64;
    if per_iter > Duration::ZERO {
        let affordable = (cfg.measurement_time.as_secs_f64() / per_iter.as_secs_f64()).ceil();
        iters = iters.min(affordable.max(1.0) as u64);
    }
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
        ran: false,
    };
    f(&mut b);
    assert!(b.ran, "benchmark {label} never called Bencher::iter");

    let mean = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!(
                "  {:>10.3} MiB/s",
                n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>10.3} elem/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label:<60} time: {mean:>12.3?}  ({} iters){rate}", b.iters);
}

/// Define a named benchmark-group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`, invoking each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
