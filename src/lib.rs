//! Umbrella crate re-exporting the whole Micr'Olonys / ULE workspace.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! paper-to-module map. Most users want [`micr_olonys`] (the archival
//! pipeline) and [`ule_media`] (analog media simulation).
pub use micr_olonys as olonys;
pub use ule_compress as compress;
pub use ule_dynarisc as dynarisc;
pub use ule_emblem as emblem;
pub use ule_fault as fault;
pub use ule_gf256 as gf256;
pub use ule_media as media;
pub use ule_obs as obs;
pub use ule_par as par;
pub use ule_raster as raster;
pub use ule_tpch as tpch;
pub use ule_vault as vault;
pub use ule_verisc as verisc;
