//! The paper's §4 "Paper archive" experiment (E1): archive a TPC-H dump
//! to A4 pages at 600 dpi and restore it from simulated scans.
//!
//! ```sh
//! cargo run --release --example paper_archive            # quick (SF 0.0002)
//! cargo run --release --example paper_archive -- --full  # SF 0.001, ~1.2 MB
//! ```

use std::time::Instant;
use ule::media::Medium;
use ule::olonys::MicrOlonys;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 0.00115 } else { 0.0002 };

    println!("generating TPC-H at SF {scale} and dumping (pg_dump style)...");
    let dump = ule::tpch::dump_for_scale(scale, 42);
    println!("dump: {} bytes (paper used ~1.2 MB)", dump.len());

    let system = MicrOlonys::paper_default();
    let medium = Medium::paper_a4_600dpi();

    let t0 = Instant::now();
    let out = system.archive(&dump);
    let encode_time = t0.elapsed();
    println!(
        "encoded into {} data emblems (+{} parity/system frames) in {:.1?}",
        out.stats.data_emblems,
        out.data_frames.len() - out.stats.data_emblems + out.system_frames.len(),
        encode_time
    );
    println!(
        "density: {:.1} KB of source per A4 page (paper: ~50 KB/page with 26 pages)",
        out.stats.density_per_frame / 1000.0
    );
    println!(
        "note: with DBCoder's {} compression the page count drops below the\n\
         paper's 26 — they reported raw-payload pages; see EXPERIMENTS.md E1.",
        system.scheme
    );

    println!("scanning pages with the laser print+scan degradation model...");
    let t1 = Instant::now();
    let scans = medium.scan_all(&out.data_frames, 600);
    let (restored, stats) = system.restore_native(&scans).expect("restore");
    let decode_time = t1.elapsed();
    assert_eq!(restored, dump, "round trip must be bit-exact");
    println!(
        "restored {} bytes bit-exact in {:.1?} ({} bytes RS-corrected)",
        restored.len(),
        decode_time,
        stats.rs_corrected
    );

    // And the database itself survives semantically:
    let db = ule::tpch::parse_dump(&restored).expect("parse restored dump");
    let orders = db.table("orders").expect("orders table");
    println!(
        "restored database: {} tables, {} orders rows, SUM(o_totalprice) = {} cents",
        db.tables.len(),
        orders.rows.len(),
        orders.sum_cents("o_totalprice").unwrap()
    );
}
