//! Selective restore from a multi-reel vault (S16, `DESIGN.md` §11):
//! archive a TPC-H dump as a catalogued, parity-sharded shelf of reels,
//! read one table back without scanning the rest — then lose a whole
//! reel and rebuild it from cross-reel parity.
//!
//! ```sh
//! cargo run --release --example selective_restore
//! ```

use ule::olonys::MicrOlonys;
use ule::vault::{ShardPlan, Vault};

fn main() {
    // 1. A small TPC-H dump (the paper's §4 workload, miniaturised).
    let dump = ule::tpch::dump_for_scale(0.0001, 7);
    println!("dump: {} bytes", dump.len());

    // 2. A sharded vault on the tiny test medium: 12 frames per reel,
    //    one RS parity reel per 2 content reels (use
    //    `ShardPlan::with_parity` for deeper RS(k+m, k) redundancy). On
    //    real carriers use `medium.reel_capacity(66.0)` (a 66 m
    //    microfilm reel) instead.
    let vault = Vault::sharded(MicrOlonys::test_tiny(), ShardPlan::single_parity(12, 2));
    let archive = vault.archive(&dump);
    println!(
        "shelf: {} segments -> {} data frames on {} content reels (+{} parity reels)",
        archive.stats.segments,
        archive.stats.data_frames,
        archive.stats.content_reels,
        archive.stats.parity_reels,
    );
    println!(
        "catalog: {:?} (index stream: {} frames)",
        archive.index.tables(),
        archive.stats.index_frames,
    );

    // 3. Scan every reel through the medium's degradation channel.
    let scans = vault.scan_reels(&archive, 2026);

    // 4. Selective restore: only the frames the catalog maps `orders` to.
    let (orders, stats) = vault
        .restore_table(&archive.bootstrap, &scans, "orders")
        .expect("selective restore");
    println!(
        "selective restore of `orders`: {} bytes from {} of {} data frames ({:?})",
        orders.len(),
        stats.frames_decoded,
        stats.data_frames_total,
        stats.path,
    );
    let entry = archive.index.find("orders").unwrap();
    let expected = &dump[entry.dump_start as usize..(entry.dump_start + entry.dump_len) as usize];
    assert_eq!(orders, expected, "identical to the full-restore slice");

    // 5. Catastrophe drill: reel 0 is gone. The group's parity reel
    //    rebuilds it bit for bit, and the full dump comes back identical.
    let mut damaged = scans;
    damaged[0] = None;
    let (restored, stats) = vault
        .restore_all(&archive.bootstrap, &damaged)
        .expect("lost-reel restore");
    assert_eq!(restored, dump);
    println!(
        "reel 0 lost: rebuilt {} frames from cross-reel parity, full dump bit-exact",
        stats.frames_reconstructed,
    );
}
