//! The ULE centerpiece: restore an archive with **no native decoders** —
//! only a four-instruction VeRisc interpreter, exactly what a user fifty
//! years from now would write from the Bootstrap document (Figure 2b).
//!
//! ```sh
//! cargo run --release --example nested_emulation
//! ```

use std::time::Instant;
use ule::media::Medium;
use ule::olonys::{EmulationTier, MicrOlonys};
use ule::verisc::vm::EngineKind;

fn main() {
    let system = MicrOlonys {
        medium: Medium::test_micro(),
        scheme: ule::compress::Scheme::Lzss,
        with_parity: false,
        threads: ule::par::ThreadConfig::Serial,
    };
    let dump = b"CREATE TABLE r (k integer, v text);\n\
COPY r (k, v) FROM stdin;\n\
1\talpha\n2\tbeta\n3\tgamma\n\\.\n"
        .to_vec();

    println!("archiving {} bytes...", dump.len());
    let out = system.archive(&dump);
    let bootstrap_text = out.bootstrap.to_text();
    let (prose_pages, letter_pages) = out.bootstrap.page_count();
    println!(
        "bootstrap document: {} pages of prose, {} pages of letters (paper: 4 + 3)",
        prose_pages, letter_pages
    );
    println!(
        "archived decoders: MODecode+emulator = {} VeRisc words as letters; DBDecode = {} system frame(s)",
        out.bootstrap.image_prefix.len(),
        out.system_frames.len()
    );

    // Gather everything a future restorer would have: text + scans.
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());

    // Restore three times — once per independent VeRisc implementation
    // (the paper had students implement it in JS/Python/C++/C#; agreement
    // across independent implementations is the portability claim).
    for engine in EngineKind::ALL {
        let t = Instant::now();
        let (restored, stats) = MicrOlonys::restore_emulated(
            &bootstrap_text,
            &scans,
            EmulationTier::Nested(engine),
            ule::par::ThreadConfig::Serial,
        )
        .expect("restore");
        assert_eq!(restored, dump);
        println!(
            "{:<12} engine: bit-exact restore, {:>12} VeRisc instructions, {:.2?}",
            engine.name(),
            stats.verisc_steps,
            t.elapsed()
        );
    }
    println!("all three independent interpreters agree — ULE works.");
}
