//! The paper's §4 "Microfilm archive" experiment (E2): a 102 KB image
//! written to 16 mm microfilm frames, scanned back, and restored without
//! errors — plus the 1.3 GB / 66 m reel capacity model.
//!
//! ```sh
//! cargo run --release --example microfilm_restore
//! ```

use ule::emblem::{decode_stream, encode_stream, EmblemKind};
use ule::media::Medium;
use ule::raster::GrayImage;

/// A synthetic stand-in for the paper's 102 KB Olonys-logo TIFF: a small
/// raster rendered as uncompressed bitmap bytes.
fn logo_payload() -> Vec<u8> {
    let mut img = GrayImage::new(320, 320, 255);
    for y in 0..320usize {
        for x in 0..320usize {
            let dx = x as f64 - 160.0;
            let dy = y as f64 - 160.0;
            let r = (dx * dx + dy * dy).sqrt();
            if (60.0..90.0).contains(&r) || (110.0..130.0).contains(&r) {
                img.set(x, y, 0);
            }
        }
    }
    let bytes = img.into_raw();
    assert_eq!(bytes.len(), 102_400, "like the paper's 102KB image");
    bytes
}

fn main() {
    let medium = Medium::microfilm_16mm();
    let payload = logo_payload();
    println!(
        "payload: {} bytes (the paper's 102 KB image)",
        payload.len()
    );

    // Encode to emblems (no outer parity: the paper's film test used 3
    // emblems exactly).
    let emblems = encode_stream(&medium.geometry, EmblemKind::Data, &payload, false);
    println!(
        "emblems: {} (paper: 3) on {}x{} bitonal frames",
        emblems.len(),
        medium.frame_width,
        medium.frame_height
    );

    // Film → archive writer → decades → microfilm reader (1.28x scan,
    // dust/fading/jitter per the medium profile).
    let frames = medium.print_all(&emblems);
    let scans = medium.scan_all(&frames, 1964);
    println!(
        "scans: {}x{} grayscale (the paper's reader produced ~5000x7000)",
        scans[0].width(),
        scans[0].height()
    );

    let (restored, stats) = decode_stream(&medium.geometry, &scans).expect("decode");
    assert_eq!(restored, payload, "bit-exact restore");
    println!(
        "restored {} bytes without loss ({} bytes RS-corrected along the way)",
        restored.len(),
        stats.rs_corrected
    );

    // Capacity model (§4: "capable of storing 1.3GB in a single 66 meter reel").
    let cap = medium.capacity_bytes(66.0);
    println!(
        "reel model: {:.2} GB per 66 m reel (paper: 1.3 GB)",
        cap as f64 / 1e9
    );
    println!(
        "            => a 1 TB data lake needs ~{} reels (paper: ~800)",
        (1.0e12 / cap as f64).ceil()
    );
}
