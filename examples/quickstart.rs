//! Quickstart: archive a small SQL dump to emblems and restore it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ule::media::Medium;
use ule::olonys::MicrOlonys;

fn main() {
    // 1. The thing to preserve: a textual database dump (what pg_dump
    //    emits; here a miniature one).
    let mut dump = String::from("CREATE TABLE nation (n_nationkey integer, n_name text);\n");
    dump.push_str("COPY nation (n_nationkey, n_name) FROM stdin;\n");
    for (i, n) in ["ALGERIA", "BRAZIL", "CANADA", "EGYPT", "FRANCE"]
        .iter()
        .enumerate()
    {
        dump.push_str(&format!("{i}\t{n}\n"));
    }
    dump.push_str("\\.\n");
    let dump = dump.into_bytes();

    // 2. Configure Micr'Olonys for a medium. `test_tiny` keeps this example
    //    fast; swap in `Medium::paper_a4_600dpi()` / `Medium::microfilm_16mm()`
    //    / `Medium::cinema_35mm()` for the paper's real profiles.
    let system = MicrOlonys {
        medium: Medium::test_tiny(),
        ..MicrOlonys::test_tiny()
    };

    // 3. Archive: DBCoder compression, MOCoder emblems, media frames, and
    //    the Bootstrap document.
    let out = system.archive(&dump);
    println!("dump:            {} bytes", out.stats.dump_bytes);
    println!(
        "compressed:      {} bytes ({})",
        out.stats.archive_bytes, system.scheme
    );
    println!(
        "data emblems:    {} (+ outer parity -> {} frames)",
        out.stats.data_emblems,
        out.data_frames.len()
    );
    println!(
        "system emblems:  {} frames (the DBDecode instruction stream)",
        out.system_frames.len()
    );
    let (prose, letters) = out.bootstrap.page_count();
    println!("bootstrap:       {prose} pages of pseudocode+manifest, {letters} pages of letters");

    // 4. Simulate the decades: print → (storage) → scan with the medium's
    //    degradation model.
    let scans = system.medium.scan_all(&out.data_frames, 2077);

    // 5. Restore natively (full Reed–Solomon error correction).
    let (restored, stats) = system.restore_native(&scans).expect("restore");
    assert_eq!(restored, dump);
    println!(
        "restored:        {} bytes, bit-identical ({} RS-corrected bytes across {} scans)",
        restored.len(),
        stats.rs_corrected,
        stats.scans
    );
}
