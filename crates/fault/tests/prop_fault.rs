//! Property tests over arbitrary fault plans: severity 0 is the identity
//! on scanned frames, and fault application is a pure function of
//! `(plan, severity, seed)` — the thread count (including the CI
//! `ULE_TEST_THREADS` matrix) never changes a byte.

use proptest::prelude::*;
use ule_fault::{
    Blotch, BurstScratch, ContrastFade, EdgeTear, FaultPlan, FrameLossFault, FrameReorderFault,
    Orientation, SaltPepper, ThreadConfig,
};
use ule_raster::{DegradeParams, GrayImage, Scanner};

/// Build a plan from a selector list (the proptest-arbitrary encoding of
/// "any sequence of models").
fn plan_from(selectors: &[u8]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &s in selectors {
        plan = match s % 8 {
            0 => plan.with(BurstScratch {
                orientation: Orientation::Vertical,
            }),
            1 => plan.with(BurstScratch {
                orientation: Orientation::Horizontal,
            }),
            2 => plan.with(Blotch),
            3 => plan.with(ContrastFade),
            4 => plan.with(EdgeTear),
            5 => plan.with(SaltPepper),
            6 => plan.with(FrameLossFault),
            _ => plan.with(FrameReorderFault),
        };
    }
    plan
}

/// Genuine scanned frames: small seeded masters pushed through the
/// degradation model, so the identity property is checked on the same
/// kind of pixel data the restore pipeline consumes.
fn scanned_frames(n: usize, seed: u64) -> Vec<GrayImage> {
    let params = DegradeParams {
        noise_sigma: 9.0,
        dust_per_mpx: 40.0,
        dust_max_radius: 1.5,
        row_jitter: 0.3,
        ..Default::default()
    };
    (0..n)
        .map(|i| {
            let mut master = GrayImage::new(72, 54, 255);
            for y in 0..54 {
                for x in 0..72 {
                    if (x / 3 + y / 3 + i) % 2 == 0 {
                        master.set(x, y, 0);
                    }
                }
            }
            Scanner::new(params.clone(), seed ^ (i as u64 + 1)).scan(&master)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_plan_at_severity_zero_is_identity(
        selectors in proptest::collection::vec(any::<u8>(), 0..6),
        nframes in 1usize..6,
        seed in any::<u64>(),
        plan_seed in any::<u64>(),
    ) {
        let plan = plan_from(&selectors);
        let frames = scanned_frames(nframes, seed);
        let out = plan.apply(&frames, 0.0, plan_seed);
        prop_assert_eq!(out, frames);
    }

    #[test]
    fn same_seed_application_is_thread_identical(
        selectors in proptest::collection::vec(any::<u8>(), 1..6),
        nframes in 1usize..6,
        severity in 0.0f64..1.0,
        seed in any::<u64>(),
        plan_seed in any::<u64>(),
    ) {
        let plan = plan_from(&selectors);
        let frames = scanned_frames(nframes, seed);
        // The CI matrix runs this test under ULE_TEST_THREADS ∈ {1, 4};
        // the env-selected pool, an explicit 4-thread pool, and the serial
        // path must all produce identical bytes.
        let serial = plan.apply(&frames, severity, plan_seed);
        let env = plan.apply_with(
            &frames, severity, plan_seed, ThreadConfig::from_env_or(ThreadConfig::Serial));
        let four = plan.apply_with(&frames, severity, plan_seed, ThreadConfig::Fixed(4));
        prop_assert_eq!(&env, &serial);
        prop_assert_eq!(&four, &serial);
    }

    #[test]
    fn same_seed_same_bytes_at_any_severity(
        selectors in proptest::collection::vec(any::<u8>(), 1..6),
        severity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let plan = plan_from(&selectors);
        let frames = scanned_frames(3, 77);
        prop_assert_eq!(
            plan.apply(&frames, severity, seed),
            plan.apply(&frames, severity, seed)
        );
    }
}
