//! Physical fault injection for archival media (system **S15** in
//! `DESIGN.md` §10).
//!
//! The paper's robustness story (§3.1) promises survival of *decades of
//! physical decay*: scratched film, stained and torn pages, faded ink,
//! lost reel segments, pages re-filed out of order. The damage harness the
//! earlier experiments used (isolated codeword byte flips, uniform scanner
//! noise) exercises the Reed–Solomon math but nothing like those failure
//! shapes. This crate supplies them:
//!
//! * [`FaultModel`] — one seeded, deterministic damage mechanism. Pixel
//!   models damage individual scanned frames ([`FaultModel::apply_frame`]);
//!   frame-set models restructure the scan list itself
//!   ([`FaultModel::apply_set`]) — losing or reordering whole frames the
//!   way a spliced reel or a dropped folder would.
//! * [`models`] — the calibrated model zoo: burst scratches, blotches,
//!   contrast fade, edge tears, salt-and-pepper spotting, whole-frame loss
//!   and reordering. Each documents its severity semantics; severity `0.0`
//!   is always the identity.
//! * [`FaultPlan`] — a composable sequence of models applied at one
//!   severity knob, fanned out per frame across a [`ule_par::ThreadConfig`]
//!   pool with byte-identical output at any thread count.
//! * [`RecoveryEnvelope`] — the campaign runner: binary-searches the
//!   maximum survivable severity of an arbitrary recovery predicate, the
//!   engine behind experiment E9 (`DESIGN.md` §7).
//!
//! The crate deliberately depends only on `ule_raster` (images, RNG) and
//! `ule_par` (worker pool): media wiring lives in `ule_media`
//! (`Medium::scan_with_faults`, `Medium::canonical_fault_plan`) and the
//! archive/restore predicates live in `ule_bench`'s E9 section, so fault
//! injection stays reusable against any pipeline stage.

pub mod envelope;
pub mod models;
pub mod plan;

pub use envelope::{EnvelopeCase, EnvelopeResult, RecoveryEnvelope};
pub use models::{
    Blotch, BurstScratch, ContrastFade, EdgeTear, FaultModel, FrameBlankFault, FrameLossFault,
    FrameReorderFault, Orientation, SaltPepper,
};
pub use plan::FaultPlan;
pub use ule_par::ThreadConfig;
