//! [`RecoveryEnvelope`] — the campaign runner behind experiment E9.
//!
//! A *recovery envelope* is, per damage axis, the highest severity at
//! which full bit-exact restoration still succeeds. The runner treats the
//! system under test as a black-box predicate `survives(severity)` (E9
//! wires in archive → fault-inject → restore per `Medium` × model) and
//! brackets the survival boundary with a bounded number of trials:
//!
//! 1. probe the case's **target** severity — the paper-claim gate (e.g.
//!    "damage consistent with the §3.1 7.2% boundary must survive");
//! 2. probe severity 1.0 (some axes, like frame reordering, never kill a
//!    correct restorer);
//! 3. bisect the bracket `[highest ok, lowest fail]` a fixed number of
//!    steps.
//!
//! Survival is monotone only statistically (a lucky scratch position can
//! survive past an unlucky one), so results report the *observed*
//! `max_ok`/`min_fail` bracket rather than pretending to an exact
//! threshold; with seeded models the whole campaign is replayable.

use ule_par::ThreadConfig;

/// One campaign case: a labelled survival predicate plus the severity the
/// paper-claim gate demands it survive.
pub struct EnvelopeCase {
    /// Report label, conventionally `medium/model`.
    pub label: String,
    /// Severity that must survive for the case to pass its gate.
    pub target: f64,
    /// Black-box trial: does full recovery succeed at this severity?
    pub survives: Box<dyn Fn(f64) -> bool + Sync>,
}

impl EnvelopeCase {
    pub fn new(
        label: impl Into<String>,
        target: f64,
        survives: impl Fn(f64) -> bool + Sync + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            target,
            survives: Box::new(survives),
        }
    }
}

/// Outcome of one [`EnvelopeCase`].
#[derive(Clone, Debug)]
pub struct EnvelopeResult {
    pub label: String,
    pub target: f64,
    /// Did the target severity survive? This is the E9 gate bit.
    pub target_ok: bool,
    /// Highest severity observed to survive (negative if none did —
    /// which would mean even severity 0 fails).
    pub max_ok: f64,
    /// Lowest severity observed to fail (2.0 when nothing failed, i.e.
    /// the envelope spans the whole axis).
    pub min_fail: f64,
    /// Trials spent on this case.
    pub trials: usize,
}

impl EnvelopeResult {
    /// True when no probed severity failed (full-axis envelope).
    pub fn full_axis(&self) -> bool {
        self.min_fail > 1.0
    }
}

/// Campaign configuration: bisection depth and the worker pool the cases
/// fan out across (each case's probes stay sequential — binary search is
/// inherently so — but independent `medium × model` cases parallelise).
///
/// `bisect_steps == 0` is **gate-only** mode: exactly one trial per case
/// (the target severity), no exploration. The quick report leg uses it so
/// the paper-claim gate stays cheap; `--full` buys the real brackets.
pub struct RecoveryEnvelope {
    pub bisect_steps: usize,
    pub threads: ThreadConfig,
}

impl RecoveryEnvelope {
    pub fn new(bisect_steps: usize) -> Self {
        Self {
            bisect_steps,
            threads: ThreadConfig::Serial,
        }
    }

    pub fn with_threads(mut self, threads: ThreadConfig) -> Self {
        self.threads = threads;
        self
    }

    /// Run every case, fanned out across the pool.
    pub fn run(&self, cases: &[EnvelopeCase]) -> Vec<EnvelopeResult> {
        ule_par::map(self.threads, cases, |case| self.run_case(case))
    }

    /// Bracket one case's survival boundary.
    pub fn run_case(&self, case: &EnvelopeCase) -> EnvelopeResult {
        let mut trials = 0usize;
        let mut max_ok = -1.0f64;
        let mut min_fail = 2.0f64;
        let probe = |s: f64, trials: &mut usize, max_ok: &mut f64, min_fail: &mut f64| {
            *trials += 1;
            let ok = (case.survives)(s);
            if ok {
                *max_ok = max_ok.max(s);
            } else {
                *min_fail = min_fail.min(s);
            }
            ok
        };

        let target_ok = probe(
            case.target.clamp(0.0, 1.0),
            &mut trials,
            &mut max_ok,
            &mut min_fail,
        );
        if self.bisect_steps > 0 && target_ok && case.target < 1.0 {
            // Only search above a passing target; a full-axis envelope
            // needs no bisection at all.
            probe(1.0, &mut trials, &mut max_ok, &mut min_fail);
        }
        for _ in 0..self.bisect_steps {
            let (lo, hi) = (max_ok.max(0.0), min_fail.min(1.0));
            if hi <= lo {
                break;
            }
            let mid = (lo + hi) / 2.0;
            probe(mid, &mut trials, &mut max_ok, &mut min_fail);
        }

        EnvelopeResult {
            label: case.label.clone(),
            target: case.target,
            target_ok,
            max_ok,
            min_fail,
            trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn step_case(boundary: f64, target: f64) -> EnvelopeCase {
        EnvelopeCase::new(format!("step@{boundary}"), target, move |s: f64| {
            s <= boundary
        })
    }

    #[test]
    fn brackets_a_sharp_boundary() {
        let env = RecoveryEnvelope::new(6);
        let r = env.run_case(&step_case(0.37, 0.05));
        assert!(r.target_ok);
        assert!(r.max_ok <= 0.37 && r.max_ok > 0.30, "max_ok={}", r.max_ok);
        assert!(
            r.min_fail > 0.37 && r.min_fail < 0.45,
            "min_fail={}",
            r.min_fail
        );
    }

    #[test]
    fn failing_target_is_reported() {
        let env = RecoveryEnvelope::new(4);
        let r = env.run_case(&step_case(0.02, 0.10));
        assert!(!r.target_ok);
        assert!(r.max_ok <= 0.02);
    }

    #[test]
    fn gate_only_mode_spends_one_trial() {
        let env = RecoveryEnvelope::new(0);
        let r = env.run_case(&step_case(0.5, 0.3));
        assert!(r.target_ok);
        assert_eq!(r.trials, 1);
    }

    #[test]
    fn full_axis_envelope_detected_cheaply() {
        let env = RecoveryEnvelope::new(5);
        let r = env.run_case(&step_case(1.0, 0.5));
        assert!(r.target_ok);
        assert!(r.full_axis());
        assert_eq!(r.trials, 2, "target + 1.0 probe suffice");
    }

    #[test]
    fn campaign_runs_all_cases_in_order() {
        let env = RecoveryEnvelope::new(3).with_threads(ThreadConfig::Fixed(4));
        let cases: Vec<EnvelopeCase> = (1..=4).map(|i| step_case(i as f64 / 10.0, 0.01)).collect();
        let results = env.run(&cases);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.label, format!("step@{}", (i + 1) as f64 / 10.0));
            assert!(r.target_ok);
        }
    }

    #[test]
    fn trial_budget_is_bounded() {
        let counter = AtomicUsize::new(0);
        let case = EnvelopeCase::new("count", 0.05, move |s: f64| {
            counter.fetch_add(1, Ordering::Relaxed);
            s < 0.5
        });
        let env = RecoveryEnvelope::new(4);
        let r = env.run_case(&case);
        // target + 1.0 + 4 bisections
        assert!(r.trials <= 6, "trials={}", r.trials);
    }
}
