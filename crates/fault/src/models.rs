//! The fault-model zoo: realistic damage mechanisms for scanned media.
//!
//! Severity semantics are normalised so every model reads the same knob:
//! `severity` ∈ [0, 1], where `0.0` is **exactly** the identity and `1.0`
//! is total destruction of whatever the model attacks. Pixel models define
//! severity as the *damaged area fraction* of the frame wherever that is
//! meaningful (scratches, blotches, tears, spotting), so the §3.1
//! inner-code boundary ("up to 7.2% damaged data") maps directly onto the
//! severity axis; [`ContrastFade`] instead uses severity as the fraction
//! of the dynamic range already lost; frame-set models use the fraction of
//! frames lost or displaced.
//!
//! Every model draws all randomness from the [`SplitMix64`] handed in, so
//! a `(model, severity, seed)` triple always produces the same bytes —
//! campaigns are replayable and the golden suite can pin fault-injected
//! scans.

use ule_raster::rng::SplitMix64;
use ule_raster::GrayImage;

/// One damage mechanism. Implementations override whichever of the two
/// hooks matches their scope; the other defaults to a no-op, so pixel
/// models compose with frame-set models in a single [`crate::FaultPlan`].
pub trait FaultModel: Send + Sync {
    /// Stable name used in campaign reports and golden fixtures.
    fn name(&self) -> &'static str;

    /// Damage one scanned frame in place. Severity `0.0` must leave the
    /// frame untouched.
    fn apply_frame(&self, _frame: &mut GrayImage, _severity: f64, _rng: &mut SplitMix64) {}

    /// Restructure the scan list (drop/reorder whole frames). Severity
    /// `0.0` must leave the list untouched.
    fn apply_set(&self, _frames: &mut Vec<GrayImage>, _severity: f64, _rng: &mut SplitMix64) {}
}

/// `min(k, n)` distinct seeded indices in `0..n`, in draw order (the
/// rejection-sampling loop every frame-set model shares; the draw
/// sequence is part of the frozen fault-injection surface — the golden
/// suite pins bytes produced through it).
fn pick_distinct(n: usize, k: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let k = k.min(n);
    let mut seen = vec![false; n];
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let i = rng.next_below(n);
        if !seen[i] {
            seen[i] = true;
            out.push(i);
        }
    }
    out
}

/// Direction of a [`BurstScratch`] dropout band.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Bands run top-to-bottom (film transport scratches).
    Vertical,
    /// Bands run left-to-right (platen scratches, fold lines).
    Horizontal,
}

/// Burst scratches: full-length saturated line dropouts, the classic
/// film-transport failure. Severity is the fraction of the perpendicular
/// dimension covered by dropout bands; the bands split into
/// `1 + floor(severity * 6)` bursts at seeded positions, each saturating
/// to black or white (a coin flip per burst — emulsion scraped off reads
/// dark on prints, clear on negatives).
#[derive(Clone, Copy, Debug)]
pub struct BurstScratch {
    pub orientation: Orientation,
}

impl FaultModel for BurstScratch {
    fn name(&self) -> &'static str {
        match self.orientation {
            Orientation::Vertical => "scratch-v",
            Orientation::Horizontal => "scratch-h",
        }
    }

    fn apply_frame(&self, frame: &mut GrayImage, severity: f64, rng: &mut SplitMix64) {
        let dim = match self.orientation {
            Orientation::Vertical => frame.width(),
            Orientation::Horizontal => frame.height(),
        };
        let total = (severity.clamp(0.0, 1.0) * dim as f64) as usize;
        if total == 0 {
            return;
        }
        let bursts = 1 + (severity * 6.0) as usize;
        let per_burst = (total / bursts).max(1);
        for _ in 0..bursts {
            let start = rng.next_below(dim.saturating_sub(per_burst).max(1));
            let fill = if rng.next_f64() < 0.5 { 0u8 } else { 255 };
            match self.orientation {
                Orientation::Vertical => {
                    for x in start..(start + per_burst).min(frame.width()) {
                        for y in 0..frame.height() {
                            frame.set(x, y, fill);
                        }
                    }
                }
                Orientation::Horizontal => {
                    for y in start..(start + per_burst).min(frame.height()) {
                        for x in 0..frame.width() {
                            frame.set(x, y, fill);
                        }
                    }
                }
            }
        }
    }
}

/// Circular blotches: stains, mould spots, water damage. Severity is the
/// total blotch area as a fraction of the frame area, split across
/// `1 + floor(severity * 9)` discs with ±50% seeded size jitter; each disc
/// fills with a seeded stain tone (dark tea-stain or bright bleach spot).
#[derive(Clone, Copy, Debug, Default)]
pub struct Blotch;

impl FaultModel for Blotch {
    fn name(&self) -> &'static str {
        "blotch"
    }

    fn apply_frame(&self, frame: &mut GrayImage, severity: f64, rng: &mut SplitMix64) {
        let severity = severity.clamp(0.0, 1.0);
        let (w, h) = (frame.width(), frame.height());
        let total_area = severity * (w * h) as f64;
        if total_area < 1.0 {
            return;
        }
        let count = 1 + (severity * 9.0) as usize;
        for _ in 0..count {
            let jitter = 0.5 + rng.next_f64(); // 0.5 .. 1.5
            let area = total_area / count as f64 * jitter;
            let r = (area / std::f64::consts::PI).sqrt();
            let cx = rng.next_f64() * w as f64;
            let cy = rng.next_f64() * h as f64;
            let tone = if rng.next_f64() < 0.7 {
                (rng.next_f64() * 70.0) as u8 // dark stain
            } else {
                200 + (rng.next_f64() * 55.0) as u8 // bleach spot
            };
            let ri = r.ceil() as isize;
            let (cxi, cyi) = (cx.round() as isize, cy.round() as isize);
            for y in (cyi - ri).max(0)..(cyi + ri + 1).min(h as isize) {
                for x in (cxi - ri).max(0)..(cxi + ri + 1).min(w as isize) {
                    let d2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
                    if d2 <= r * r {
                        frame.set(x as usize, y as usize, tone);
                    }
                }
            }
        }
    }
}

/// Contrast fade: ink fading / film density loss pulls every pixel toward
/// paper white. Severity is the fraction of the dynamic range already
/// gone (`v' = v + (255 - v) * local_severity`), with a seeded
/// low-frequency spatial modulation (±30%) because real fading is uneven.
/// Decoders that threshold adaptively (Otsu) survive deep fade; the
/// envelope measures exactly how deep.
#[derive(Clone, Copy, Debug, Default)]
pub struct ContrastFade;

impl FaultModel for ContrastFade {
    fn name(&self) -> &'static str {
        "fade"
    }

    fn apply_frame(&self, frame: &mut GrayImage, severity: f64, rng: &mut SplitMix64) {
        let severity = severity.clamp(0.0, 1.0);
        if severity == 0.0 {
            return;
        }
        let (w, h) = (frame.width(), frame.height());
        let px = rng.next_f64() * std::f64::consts::TAU;
        let py = rng.next_f64() * std::f64::consts::TAU;
        // The column modulation depends only on x; a page-sized frame has
        // tens of millions of pixels, so hoist the w sin() calls out of
        // the pixel loop.
        let fxs: Vec<f64> = (0..w)
            .map(|x| (x as f64 / w as f64 * std::f64::consts::TAU + px).sin())
            .collect();
        for y in 0..h {
            let fy = (y as f64 / h as f64 * std::f64::consts::TAU + py).sin();
            for (x, fx) in fxs.iter().enumerate() {
                let local = (severity * (1.0 + 0.3 * 0.5 * (fx + fy))).clamp(0.0, 1.0);
                let v = frame.get(x, y) as f64;
                frame.set(
                    x,
                    y,
                    (v + (255.0 - v) * local).round().clamp(0.0, 255.0) as u8,
                );
            }
        }
    }
}

/// Edge tears: a seeded subset of frames each loses a triangular corner —
/// the torn page / cracked film edge. Severity is the fraction of frames
/// torn (`floor(severity * n)` seeded victims); each tear rips off a
/// seeded 8–16% corner area of its frame (the scanner sees backing white
/// where the medium is gone, aspect ratio seeded in [0.5, 2]).
///
/// A tear of that size destroys the emblem's locator border on the §4
/// production media (their margins are a few dozen pixels), so a torn
/// frame is a dead frame and tear tolerance is the *outer* code's
/// business — the §3.1 "any three missing" budget sets the envelope on
/// this axis, exactly like [`FrameLossFault`]. That is why this is a
/// frame-set model: a uniform per-frame tear would kill every frame at
/// once and measure nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct EdgeTear;

impl FaultModel for EdgeTear {
    fn name(&self) -> &'static str {
        "edge-tear"
    }

    fn apply_set(&self, frames: &mut Vec<GrayImage>, severity: f64, rng: &mut SplitMix64) {
        let n = frames.len();
        let k = (severity.clamp(0.0, 1.0) * n as f64) as usize;
        if k == 0 {
            return;
        }
        let mut torn = vec![false; n];
        for i in pick_distinct(n, k, rng) {
            torn[i] = true;
        }
        for (i, torn) in torn.into_iter().enumerate() {
            if torn {
                tear_corner(&mut frames[i], rng);
            }
        }
    }
}

/// Rip a seeded triangular corner (8–16% of the frame area) off `frame`.
fn tear_corner(frame: &mut GrayImage, rng: &mut SplitMix64) {
    let (w, h) = (frame.width(), frame.height());
    let area = (0.08 + rng.next_f64() * 0.08) * (w * h) as f64;
    // Legs a (along x) and b (along y) with a*b/2 = area.
    let aspect = 0.5 + rng.next_f64() * 1.5;
    let a = ((2.0 * area * aspect).sqrt()).min(w as f64);
    let b = (2.0 * area / a).min(h as f64);
    let corner = rng.next_below(4); // 0 TL, 1 TR, 2 BL, 3 BR
    let bi = b.ceil() as usize;
    for dy in 0..bi.min(h) {
        // Hypotenuse: span shrinks linearly away from the corner row.
        let span = (a * (1.0 - dy as f64 / b)).max(0.0).ceil() as usize;
        let y = match corner {
            0 | 1 => dy,
            _ => h - 1 - dy,
        };
        for dx in 0..span.min(w) {
            let x = match corner {
                0 | 2 => dx,
                _ => w - 1 - dx,
            };
            frame.set(x, y, 255);
        }
    }
}

/// Salt-and-pepper spotting: isolated saturated specks (foxing, silver
/// mirroring, dirt). Severity is the fraction of pixels flipped; each
/// speck lands at a seeded position and saturates to black or white with
/// equal probability.
#[derive(Clone, Copy, Debug, Default)]
pub struct SaltPepper;

impl FaultModel for SaltPepper {
    fn name(&self) -> &'static str {
        "salt-pepper"
    }

    fn apply_frame(&self, frame: &mut GrayImage, severity: f64, rng: &mut SplitMix64) {
        let severity = severity.clamp(0.0, 1.0);
        let (w, h) = (frame.width(), frame.height());
        let n = (severity * (w * h) as f64) as usize;
        for _ in 0..n {
            let x = rng.next_below(w);
            let y = rng.next_below(h);
            let fill = if rng.next_f64() < 0.5 { 0u8 } else { 255 };
            frame.set(x, y, fill);
        }
    }
}

/// Whole-frame blanking: a frame left in place but unreadable end to end
/// — overexposure, a glued-shut page, emulsion stripped by mould. Unlike
/// [`FrameLossFault`] the scan *list keeps its shape* (the frame is
/// physically still on the reel), which is exactly the failure the
/// vault's positional reel maps (S16) must survive: a blanked frame must
/// cost an outer-code recovery or a documented fallback, never a
/// misaligned shelf. Severity is the probability that each frame is
/// blanked (seeded per frame), saturating every pixel to white.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrameBlankFault;

impl FaultModel for FrameBlankFault {
    fn name(&self) -> &'static str {
        "frame-blank"
    }

    fn apply_frame(&self, frame: &mut GrayImage, severity: f64, rng: &mut SplitMix64) {
        if severity <= 0.0 || rng.next_f64() >= severity.clamp(0.0, 1.0) {
            return;
        }
        for y in 0..frame.height() {
            for x in 0..frame.width() {
                frame.set(x, y, 255);
            }
        }
    }
}

/// Whole-frame loss: pages dropped from a folder, a reel segment torn out.
/// Severity is the fraction of frames removed (`floor(severity * n)`
/// seeded distinct victims), so the outer code's any-3-of-20 budget puts
/// the §3.1 envelope at 3/group-size on this axis.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrameLossFault;

impl FaultModel for FrameLossFault {
    fn name(&self) -> &'static str {
        "frame-loss"
    }

    fn apply_set(&self, frames: &mut Vec<GrayImage>, severity: f64, rng: &mut SplitMix64) {
        let n = frames.len();
        let k = (severity.clamp(0.0, 1.0) * n as f64) as usize;
        if k == 0 {
            return;
        }
        let mut doomed = vec![false; n];
        for i in pick_distinct(n, k, rng) {
            doomed[i] = true;
        }
        let mut keep = doomed.iter().map(|d| !d);
        frames.retain(|_| keep.next().unwrap());
    }
}

/// Whole-frame reordering: a spliced reel, re-filed pages. Severity is the
/// fraction of frames displaced — `floor(severity * n)` seeded distinct
/// positions are rotated one step among themselves, so every chosen frame
/// ends up somewhere else. Headers carry global indices, so a correct
/// restorer should have a full envelope (severity 1.0) on this axis.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrameReorderFault;

impl FaultModel for FrameReorderFault {
    fn name(&self) -> &'static str {
        "frame-reorder"
    }

    fn apply_set(&self, frames: &mut Vec<GrayImage>, severity: f64, rng: &mut SplitMix64) {
        let n = frames.len();
        let m = (severity.clamp(0.0, 1.0) * n as f64) as usize;
        if m < 2 {
            return;
        }
        // m distinct seeded positions, in draw order.
        let chosen = pick_distinct(n, m, rng);
        let m = chosen.len();
        // Rotate the chosen slots by one: frame at chosen[j] moves to
        // chosen[j+1], guaranteeing every chosen frame is displaced.
        // Adjacent swaps realise the cycle without cloning frames (a
        // production scan is tens of MB and E9 re-applies this per trial).
        for j in (1..m).rev() {
            frames.swap(chosen[j], chosen[j - 1]);
        }
    }
}

/// The standard model zoo: every model at its default configuration, as
/// swept by the E9 recovery-envelope campaign.
pub fn standard_models() -> Vec<Box<dyn FaultModel>> {
    vec![
        Box::new(BurstScratch {
            orientation: Orientation::Vertical,
        }),
        Box::new(BurstScratch {
            orientation: Orientation::Horizontal,
        }),
        Box::new(Blotch),
        Box::new(ContrastFade),
        Box::new(EdgeTear),
        Box::new(SaltPepper),
        Box::new(FrameBlankFault),
        Box::new(FrameLossFault),
        Box::new(FrameReorderFault),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(v: u8) -> GrayImage {
        GrayImage::new(64, 48, v)
    }

    fn checker() -> GrayImage {
        let mut f = frame(255);
        for y in 0..48 {
            for x in 0..64 {
                if (x / 4 + y / 4) % 2 == 0 {
                    f.set(x, y, 0);
                }
            }
        }
        f
    }

    #[test]
    fn frame_blank_whitens_whole_frames_but_keeps_the_list_shape() {
        let m = FrameBlankFault;
        // Severity 1.0 blanks every frame.
        let mut f = checker();
        m.apply_frame(&mut f, 1.0, &mut SplitMix64::new(3));
        assert_eq!(f, frame(255));
        // At intermediate severity each frame is either untouched or
        // fully white — never half-damaged — and determinism holds.
        for seed in [1u64, 9, 77] {
            let mut a = checker();
            let mut b = checker();
            m.apply_frame(&mut a, 0.5, &mut SplitMix64::new(seed));
            m.apply_frame(&mut b, 0.5, &mut SplitMix64::new(seed));
            assert_eq!(a, b);
            assert!(a == checker() || a == frame(255));
        }
    }

    #[test]
    fn severity_zero_is_identity_for_every_model() {
        let set: Vec<GrayImage> = (0..6).map(|i| frame(i * 40)).collect();
        for model in standard_models() {
            let mut f = checker();
            model.apply_frame(&mut f, 0.0, &mut SplitMix64::new(7));
            assert_eq!(f, checker(), "{} frame identity", model.name());
            let mut s = set.clone();
            model.apply_set(&mut s, 0.0, &mut SplitMix64::new(7));
            assert_eq!(s, set, "{} set identity", model.name());
        }
    }

    #[test]
    fn same_seed_same_damage() {
        for model in standard_models() {
            let mut a = checker();
            let mut b = checker();
            model.apply_frame(&mut a, 0.3, &mut SplitMix64::new(99));
            model.apply_frame(&mut b, 0.3, &mut SplitMix64::new(99));
            assert_eq!(a, b, "{}", model.name());
        }
    }

    #[test]
    fn scratch_damages_expected_fraction() {
        let m = BurstScratch {
            orientation: Orientation::Vertical,
        };
        let mut f = GrayImage::new(200, 100, 128);
        m.apply_frame(&mut f, 0.2, &mut SplitMix64::new(3));
        let damaged = f.as_bytes().iter().filter(|&&v| v != 128).count();
        let frac = damaged as f64 / (200.0 * 100.0);
        // Bursts can overlap, so the observed fraction is at most the
        // severity and should be a decent share of it.
        assert!(frac > 0.05 && frac <= 0.21, "frac={frac}");
    }

    #[test]
    fn blotch_area_tracks_severity() {
        let m = Blotch;
        let mut f = GrayImage::new(300, 300, 128);
        m.apply_frame(&mut f, 0.1, &mut SplitMix64::new(5));
        let damaged = f.as_bytes().iter().filter(|&&v| v != 128).count();
        let frac = damaged as f64 / (300.0 * 300.0);
        // Discs may clip the frame edge or overlap, so observed ≤ nominal.
        assert!(frac > 0.02 && frac <= 0.12, "frac={frac}");
    }

    #[test]
    fn fade_brightens_monotonically() {
        let m = ContrastFade;
        let mut f = checker();
        m.apply_frame(&mut f, 0.5, &mut SplitMix64::new(11));
        let orig = checker();
        for (a, b) in f.as_bytes().iter().zip(orig.as_bytes()) {
            assert!(a >= b, "fade must never darken ({a} < {b})");
        }
        // Black cells are substantially lifted.
        let min = *f.as_bytes().iter().min().unwrap();
        assert!(min > 60, "min={min}");
    }

    #[test]
    fn tear_rips_corners_off_the_chosen_fraction_of_frames() {
        let m = EdgeTear;
        let set: Vec<GrayImage> = (0..10).map(|_| GrayImage::new(100, 100, 0)).collect();
        let mut s = set.clone();
        m.apply_set(&mut s, 0.4, &mut SplitMix64::new(2));
        assert_eq!(s.len(), 10, "tears never drop frames");
        let torn: Vec<f64> = s
            .iter()
            .map(|f| f.as_bytes().iter().filter(|&&v| v == 255).count() as f64 / 10_000.0)
            .collect();
        assert_eq!(torn.iter().filter(|&&t| t > 0.0).count(), 4);
        for &t in torn.iter().filter(|&&t| t > 0.0) {
            // 8–16% nominal corner area; the triangle clips at frame edges.
            assert!((0.04..=0.20).contains(&t), "torn fraction {t}");
        }
        // Frame centres survive every tear at this size.
        assert!(s.iter().all(|f| f.get(50, 50) == 0));
    }

    #[test]
    fn salt_pepper_flips_expected_fraction() {
        let m = SaltPepper;
        let mut f = GrayImage::new(200, 200, 128);
        m.apply_frame(&mut f, 0.05, &mut SplitMix64::new(8));
        let flipped = f.as_bytes().iter().filter(|&&v| v != 128).count();
        let frac = flipped as f64 / 40_000.0;
        // Specks can collide, so observed ≤ nominal.
        assert!(frac > 0.03 && frac <= 0.05, "frac={frac}");
    }

    #[test]
    fn frame_loss_drops_exact_count() {
        let m = FrameLossFault;
        let set: Vec<GrayImage> = (0..10).map(|i| frame(i)).collect();
        let mut s = set.clone();
        m.apply_set(&mut s, 0.3, &mut SplitMix64::new(4));
        assert_eq!(s.len(), 7);
        // Survivors keep their relative order.
        let survivors: Vec<u8> = s.iter().map(|f| f.get(0, 0)).collect();
        let mut sorted = survivors.clone();
        sorted.sort_unstable();
        assert_eq!(survivors, sorted);
    }

    #[test]
    fn frame_reorder_permutes_without_losing_any() {
        let m = FrameReorderFault;
        let set: Vec<GrayImage> = (0..10).map(|i| frame(i)).collect();
        let mut s = set.clone();
        m.apply_set(&mut s, 0.5, &mut SplitMix64::new(6));
        assert_eq!(s.len(), 10);
        assert_ne!(s, set, "severity 0.5 must displace frames");
        let mut ids: Vec<u8> = s.iter().map(|f| f.get(0, 0)).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<u8>>());
    }
}
