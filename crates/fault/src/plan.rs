//! [`FaultPlan`] — a composable damage scenario.

use crate::models::FaultModel;
use ule_par::ThreadConfig;
use ule_raster::rng::SplitMix64;
use ule_raster::GrayImage;

/// A sequence of [`FaultModel`]s applied to a set of scanned frames at a
/// single severity knob. The plan runs in two stages:
///
/// 1. **per-frame damage** — every model's [`FaultModel::apply_frame`]
///    runs on every frame, one independent job per frame fanned out across
///    the worker pool. Each `(step, frame)` pair derives its own RNG from
///    the plan seed, so the output is byte-identical at any thread count
///    (the same determinism contract as the rest of the pipeline,
///    `DESIGN.md` §9);
/// 2. **frame-set restructuring** — every model's
///    [`FaultModel::apply_set`] runs once over the joined list, in step
///    order, sequentially (losing or reordering frames is inherently a
///    list-level operation).
///
/// Severity `0.0` is the identity by construction *and* by contract: each
/// model must be a no-op at zero, and `crates/fault/tests/prop_fault.rs`
/// holds a property test over arbitrary plans.
pub struct FaultPlan {
    steps: Vec<Box<dyn FaultModel>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultPlan {
    /// An empty plan (the identity at every severity).
    pub fn new() -> Self {
        Self { steps: Vec::new() }
    }

    /// A plan with a single model — the shape the E9 envelope campaign
    /// sweeps, one axis at a time.
    pub fn single(model: impl FaultModel + 'static) -> Self {
        Self::new().with(model)
    }

    /// Append a model (builder style).
    pub fn with(mut self, model: impl FaultModel + 'static) -> Self {
        self.steps.push(Box::new(model));
        self
    }

    /// Append an already-boxed model.
    pub fn push(&mut self, model: Box<dyn FaultModel>) {
        self.steps.push(model);
    }

    /// The models in application order.
    pub fn steps(&self) -> &[Box<dyn FaultModel>] {
        &self.steps
    }

    /// Human-readable scenario label: the model names joined with `+`.
    pub fn label(&self) -> String {
        if self.steps.is_empty() {
            return "identity".into();
        }
        self.steps
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Apply the plan serially. See [`FaultPlan::apply_with`].
    pub fn apply(&self, frames: &[GrayImage], severity: f64, seed: u64) -> Vec<GrayImage> {
        self.apply_with(frames, severity, seed, ThreadConfig::Serial)
    }

    /// Apply every step at `severity` to `frames`, deterministically in
    /// `(severity, seed)` and independent of `threads`.
    pub fn apply_with(
        &self,
        frames: &[GrayImage],
        severity: f64,
        seed: u64,
        threads: ThreadConfig,
    ) -> Vec<GrayImage> {
        let severity = severity.clamp(0.0, 1.0);
        // Stage 1: pixel damage, one job per frame. The RNG stream of a
        // step/frame pair depends only on (seed, step, frame index), never
        // on scheduling.
        let mut out: Vec<GrayImage> = ule_par::map_indexed(threads, frames.len(), |i| {
            let mut f = frames[i].clone();
            for (si, step) in self.steps.iter().enumerate() {
                let mut rng = SplitMix64::new(mix(seed, si as u64, i as u64));
                step.apply_frame(&mut f, severity, &mut rng);
            }
            f
        });
        // Stage 2: frame-set restructuring, sequential in step order.
        for (si, step) in self.steps.iter().enumerate() {
            let mut rng = SplitMix64::new(mix(seed, si as u64, u64::MAX));
            step.apply_set(&mut out, severity, &mut rng);
        }
        out
    }
}

/// Decorrelate the per-(seed, step, frame) RNG streams.
fn mix(seed: u64, step: u64, frame: u64) -> u64 {
    // One splitmix scramble over the packed coordinates: adjacent
    // (step, frame) pairs must not produce adjacent RNG states.
    let mut z =
        seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ frame.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{
        Blotch, BurstScratch, ContrastFade, FrameLossFault, FrameReorderFault, Orientation,
        SaltPepper,
    };

    fn frames(n: u8) -> Vec<GrayImage> {
        (0..n)
            .map(|i| {
                let mut f = GrayImage::new(80, 60, 255);
                for y in 0..60 {
                    for x in 0..80 {
                        if (x + y + i as usize) % 3 == 0 {
                            f.set(x, y, 0);
                        }
                    }
                }
                f
            })
            .collect()
    }

    fn sample_plan() -> FaultPlan {
        FaultPlan::new()
            .with(BurstScratch {
                orientation: Orientation::Vertical,
            })
            .with(Blotch)
            .with(ContrastFade)
            .with(SaltPepper)
            .with(FrameLossFault)
            .with(FrameReorderFault)
    }

    #[test]
    fn empty_plan_is_identity() {
        let fs = frames(4);
        assert_eq!(FaultPlan::new().apply(&fs, 0.8, 3), fs);
    }

    #[test]
    fn severity_zero_is_identity() {
        let fs = frames(5);
        assert_eq!(sample_plan().apply(&fs, 0.0, 123), fs);
    }

    #[test]
    fn deterministic_in_seed_and_severity() {
        let fs = frames(5);
        let p = sample_plan();
        assert_eq!(p.apply(&fs, 0.4, 9), p.apply(&fs, 0.4, 9));
        // A different seed moves the damage.
        assert_ne!(p.apply(&fs, 0.4, 9), p.apply(&fs, 0.4, 10));
    }

    #[test]
    fn thread_count_never_changes_output() {
        let fs = frames(7);
        let p = sample_plan();
        let serial = p.apply(&fs, 0.5, 42);
        for threads in [2usize, 4, 8] {
            let par = p.apply_with(&fs, 0.5, 42, ThreadConfig::Fixed(threads));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn label_joins_model_names() {
        assert_eq!(FaultPlan::new().label(), "identity");
        assert_eq!(
            FaultPlan::single(Blotch).with(ContrastFade).label(),
            "blotch+fade"
        );
    }

    #[test]
    fn steps_apply_in_order() {
        // Fade after scratch fades the scratch; scratch after fade leaves
        // the scratch saturated — the two orders must differ.
        let fs = frames(1);
        let a = FaultPlan::new()
            .with(BurstScratch {
                orientation: Orientation::Vertical,
            })
            .with(ContrastFade)
            .apply(&fs, 0.5, 5);
        let b = FaultPlan::new()
            .with(ContrastFade)
            .with(BurstScratch {
                orientation: Orientation::Vertical,
            })
            .apply(&fs, 0.5, 5);
        assert_ne!(a, b);
    }
}
