//! Sub-pixel sampling and resizing.

use crate::image::GrayImage;

/// Bilinear sample at fractional coordinates (edge-clamped).
#[inline]
pub fn bilinear(img: &GrayImage, x: f64, y: f64) -> f64 {
    let x0 = x.floor();
    let y0 = y.floor();
    let fx = x - x0;
    let fy = y - y0;
    let x0i = x0 as isize;
    let y0i = y0 as isize;
    let p00 = img.get_clamped(x0i, y0i) as f64;
    let p10 = img.get_clamped(x0i + 1, y0i) as f64;
    let p01 = img.get_clamped(x0i, y0i + 1) as f64;
    let p11 = img.get_clamped(x0i + 1, y0i + 1) as f64;
    p00 * (1.0 - fx) * (1.0 - fy) + p10 * fx * (1.0 - fy) + p01 * (1.0 - fx) * fy + p11 * fx * fy
}

/// Resize with bilinear interpolation (used when a 2K film frame is
/// scanned at 4K, and for emblem pyramid levels during detection).
pub fn resize(img: &GrayImage, new_w: usize, new_h: usize) -> GrayImage {
    assert!(new_w > 0 && new_h > 0);
    let mut out = GrayImage::new(new_w, new_h, 0);
    let sx = img.width() as f64 / new_w as f64;
    let sy = img.height() as f64 / new_h as f64;
    for y in 0..new_h {
        for x in 0..new_w {
            // Map pixel centres, not corners.
            let src_x = (x as f64 + 0.5) * sx - 0.5;
            let src_y = (y as f64 + 0.5) * sy - 0.5;
            out.set(
                x,
                y,
                bilinear(img, src_x, src_y).round().clamp(0.0, 255.0) as u8,
            );
        }
    }
    out
}

/// Average the `block × block` cell with top-left `(x, y)` (clipped).
pub fn block_mean(img: &GrayImage, x: usize, y: usize, block: usize) -> f64 {
    let x1 = (x + block).min(img.width());
    let y1 = (y + block).min(img.height());
    if x >= x1 || y >= y1 {
        return 0.0;
    }
    let mut sum = 0u64;
    for yy in y..y1 {
        for xx in x..x1 {
            sum += img.get(xx, yy) as u64;
        }
    }
    sum as f64 / ((x1 - x) * (y1 - y)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bilinear_at_integer_coords_is_exact() {
        let img = GrayImage::from_raw(2, 2, vec![0, 100, 200, 50]);
        assert_eq!(bilinear(&img, 0.0, 0.0), 0.0);
        assert_eq!(bilinear(&img, 1.0, 0.0), 100.0);
        assert_eq!(bilinear(&img, 0.0, 1.0), 200.0);
    }

    #[test]
    fn bilinear_midpoint_averages() {
        let img = GrayImage::from_raw(2, 1, vec![0, 100]);
        assert!((bilinear(&img, 0.5, 0.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn resize_identity() {
        let img = GrayImage::from_raw(3, 2, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(resize(&img, 3, 2), img);
    }

    #[test]
    fn upscale_preserves_flat_regions() {
        let img = GrayImage::new(10, 10, 77);
        let up = resize(&img, 20, 20);
        assert!(up.as_bytes().iter().all(|&p| p == 77));
    }

    #[test]
    fn downscale_averages() {
        let mut img = GrayImage::new(4, 4, 0);
        for y in 0..4 {
            for x in 2..4 {
                img.set(x, y, 200);
            }
        }
        let down = resize(&img, 2, 2);
        // Left column black, right column bright.
        assert!(down.get(0, 0) < 60);
        assert!(down.get(1, 0) > 140);
    }

    #[test]
    fn block_mean_of_uniform_block() {
        let img = GrayImage::new(8, 8, 42);
        assert!((block_mean(&img, 2, 2, 4) - 42.0).abs() < 1e-9);
    }
}
