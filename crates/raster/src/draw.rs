//! Drawing primitives for emblem rendering.

use crate::image::GrayImage;

/// Fill the axis-aligned rectangle `[x, x+w) × [y, y+h)` (clipped).
pub fn fill_rect(img: &mut GrayImage, x: usize, y: usize, w: usize, h: usize, v: u8) {
    let x1 = (x + w).min(img.width());
    let y1 = (y + h).min(img.height());
    for yy in y.min(img.height())..y1 {
        for xx in x.min(img.width())..x1 {
            img.set(xx, yy, v);
        }
    }
}

/// Draw a square ring (frame) of the given thickness, outer edge at
/// `(x, y)` with outer size `size`.
pub fn draw_ring(img: &mut GrayImage, x: usize, y: usize, size: usize, thickness: usize, v: u8) {
    let t = thickness.min(size / 2 + 1);
    fill_rect(img, x, y, size, t, v); // top
    fill_rect(img, x, y + size - t, size, t, v); // bottom
    fill_rect(img, x, y, t, size, v); // left
    fill_rect(img, x + size - t, y, t, size, v); // right
}

/// Copy `src` into `dst` with its top-left corner at `(x, y)` (clipped).
pub fn blit(dst: &mut GrayImage, src: &GrayImage, x: usize, y: usize) {
    let w = src.width().min(dst.width().saturating_sub(x));
    let h = src.height().min(dst.height().saturating_sub(y));
    for yy in 0..h {
        for xx in 0..w {
            dst.set(x + xx, y + yy, src.get(xx, yy));
        }
    }
}

/// Extract the rectangle `[x, x+w) × [y, y+h)` as a new image (clipped;
/// out-of-range area is filled with `fill`).
pub fn crop(src: &GrayImage, x: usize, y: usize, w: usize, h: usize, fill: u8) -> GrayImage {
    let mut out = GrayImage::new(w, h, fill);
    for yy in 0..h {
        for xx in 0..w {
            let sx = x + xx;
            let sy = y + yy;
            if sx < src.width() && sy < src.height() {
                out.set(xx, yy, src.get(sx, sy));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_rect_clips() {
        let mut img = GrayImage::new(4, 4, 255);
        fill_rect(&mut img, 2, 2, 10, 10, 0);
        assert_eq!(img.get(1, 1), 255);
        assert_eq!(img.get(2, 2), 0);
        assert_eq!(img.get(3, 3), 0);
    }

    #[test]
    fn ring_leaves_interior() {
        let mut img = GrayImage::new(10, 10, 255);
        draw_ring(&mut img, 0, 0, 10, 2, 0);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(1, 5), 0);
        assert_eq!(img.get(9, 9), 0);
        assert_eq!(img.get(5, 5), 255);
    }

    #[test]
    fn blit_places_and_clips() {
        let mut dst = GrayImage::new(4, 4, 255);
        let src = GrayImage::new(3, 3, 7);
        blit(&mut dst, &src, 2, 2);
        assert_eq!(dst.get(2, 2), 7);
        assert_eq!(dst.get(3, 3), 7);
        assert_eq!(dst.get(1, 1), 255);
    }

    #[test]
    fn crop_roundtrips_with_blit() {
        let mut img = GrayImage::new(6, 6, 9);
        fill_rect(&mut img, 2, 2, 2, 2, 100);
        let c = crop(&img, 2, 2, 2, 2, 0);
        assert!(c.as_bytes().iter().all(|&p| p == 100));
    }

    #[test]
    fn crop_fills_out_of_range() {
        let img = GrayImage::new(2, 2, 50);
        let c = crop(&img, 1, 1, 3, 3, 7);
        assert_eq!(c.get(0, 0), 50);
        assert_eq!(c.get(2, 2), 7);
    }
}
