//! Raster imaging and scanner simulation (system **S3** in `DESIGN.md`).
//!
//! Micr'Olonys stores data as printed/filmed pictures and reads it back via
//! scanners. This crate supplies the imaging substrate:
//!
//! * [`image::GrayImage`] — 8-bit grayscale raster (bitonal images are the
//!   0/255 special case, as with the paper's bitonal TIFF microfilm frames);
//! * [`pnm`] — PGM (P5) / PBM (P4) serialization so every artifact in the
//!   pipeline can be dumped and inspected;
//! * [`draw`] — the rectangle/grid primitives the emblem renderer uses;
//! * [`sample`] — bilinear sampling and resizing (2K film frames are
//!   scanned at 4K in the paper's cinema experiment);
//! * [`scan`] — the physical degradation model of §3.1: fading, hot spots,
//!   scratches, dust, lens curvature and transport jitter, all seeded and
//!   deterministic;
//! * [`rng`] — a small splitmix64 generator so degradations are
//!   reproducible without external dependencies.

pub mod draw;
pub mod image;
pub mod pnm;
pub mod rng;
pub mod sample;
pub mod scan;

pub use image::GrayImage;
pub use scan::{DegradeParams, Scanner};
