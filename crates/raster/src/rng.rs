//! Minimal deterministic RNG (splitmix64) for reproducible degradations.
//!
//! The scanner simulation must be exactly reproducible from a seed so that
//! robustness experiments (E4) are rerunnable; this avoids pulling a full
//! RNG crate into the library's dependency closure.

/// splitmix64 — tiny, fast, and statistically solid for simulation noise.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [0, n). `n` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Approximately normal sample (mean 0, sigma 1) via the sum of twelve
    /// uniforms — plenty for optical-noise modelling.
    #[inline]
    pub fn next_gaussian(&mut self) -> f64 {
        let mut s = 0.0;
        for _ in 0..12 {
            s += self.next_f64();
        }
        s - 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_mean_near_zero() {
        let mut r = SplitMix64::new(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_gaussian()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }
}
