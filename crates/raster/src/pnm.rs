//! PGM (P5) and PBM (P4) encode/decode.
//!
//! Every intermediate artifact of the archival pipeline (print masters,
//! simulated scans, Figure-1 emblems) can be dumped as portable anymaps for
//! inspection with standard tools.

use crate::image::GrayImage;

/// Errors from the PNM readers.
#[derive(Debug, PartialEq, Eq)]
pub enum PnmError {
    BadMagic,
    BadHeader(String),
    Truncated,
}

impl std::fmt::Display for PnmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PnmError::BadMagic => write!(f, "not a P4/P5 pnm file"),
            PnmError::BadHeader(m) => write!(f, "bad pnm header: {m}"),
            PnmError::Truncated => write!(f, "pnm pixel data truncated"),
        }
    }
}

impl std::error::Error for PnmError {}

/// Serialize as binary PGM (P5), 255 maxval.
pub fn encode_pgm(img: &GrayImage) -> Vec<u8> {
    let mut out = format!("P5\n{} {}\n255\n", img.width(), img.height()).into_bytes();
    out.extend_from_slice(img.as_bytes());
    out
}

/// Serialize as binary PBM (P4). Pixels < 128 are written as black (1).
pub fn encode_pbm(img: &GrayImage) -> Vec<u8> {
    let mut out = format!("P4\n{} {}\n", img.width(), img.height()).into_bytes();
    let row_bytes = img.width().div_ceil(8);
    for y in 0..img.height() {
        let mut row = vec![0u8; row_bytes];
        for x in 0..img.width() {
            if img.get(x, y) < 128 {
                row[x / 8] |= 0x80 >> (x % 8);
            }
        }
        out.extend_from_slice(&row);
    }
    out
}

/// Parse whitespace-separated header tokens, skipping `#` comments.
fn parse_header(data: &[u8], want: usize) -> Result<(Vec<usize>, usize), PnmError> {
    let mut vals = Vec::new();
    let mut i = 2usize; // past magic
    while vals.len() < want {
        // skip whitespace and comments
        while i < data.len() {
            match data[i] {
                b' ' | b'\t' | b'\r' | b'\n' => i += 1,
                b'#' => {
                    while i < data.len() && data[i] != b'\n' {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        let start = i;
        while i < data.len() && data[i].is_ascii_digit() {
            i += 1;
        }
        if start == i {
            return Err(PnmError::BadHeader("expected integer".into()));
        }
        let tok = std::str::from_utf8(&data[start..i]).unwrap();
        vals.push(
            tok.parse()
                .map_err(|_| PnmError::BadHeader("integer overflow".into()))?,
        );
    }
    // exactly one whitespace byte separates header from pixels
    if i >= data.len() {
        return Err(PnmError::Truncated);
    }
    Ok((vals, i + 1))
}

/// Decode a binary PGM (P5).
pub fn decode_pgm(data: &[u8]) -> Result<GrayImage, PnmError> {
    if data.len() < 2 || &data[..2] != b"P5" {
        return Err(PnmError::BadMagic);
    }
    let (vals, pix_start) = parse_header(data, 3)?;
    let (w, h, maxval) = (vals[0], vals[1], vals[2]);
    if maxval != 255 {
        return Err(PnmError::BadHeader(format!("unsupported maxval {maxval}")));
    }
    let need = w * h;
    if data.len() < pix_start + need {
        return Err(PnmError::Truncated);
    }
    Ok(GrayImage::from_raw(
        w,
        h,
        data[pix_start..pix_start + need].to_vec(),
    ))
}

/// Decode a binary PBM (P4) into a 0/255 bitonal image.
pub fn decode_pbm(data: &[u8]) -> Result<GrayImage, PnmError> {
    if data.len() < 2 || &data[..2] != b"P4" {
        return Err(PnmError::BadMagic);
    }
    let (vals, pix_start) = parse_header(data, 2)?;
    let (w, h) = (vals[0], vals[1]);
    let row_bytes = w.div_ceil(8);
    if data.len() < pix_start + row_bytes * h {
        return Err(PnmError::Truncated);
    }
    let mut img = GrayImage::new(w, h, 255);
    for y in 0..h {
        let row = &data[pix_start + y * row_bytes..pix_start + (y + 1) * row_bytes];
        for x in 0..w {
            if row[x / 8] & (0x80 >> (x % 8)) != 0 {
                img.set(x, y, 0);
            }
        }
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(w: usize, h: usize) -> GrayImage {
        let mut img = GrayImage::new(w, h, 255);
        for y in 0..h {
            for x in 0..w {
                if (x + y) % 2 == 0 {
                    img.set(x, y, 0);
                }
            }
        }
        img
    }

    #[test]
    fn pgm_roundtrip() {
        let mut img = GrayImage::new(13, 7, 0);
        for (i, p) in img.as_bytes_mut().iter_mut().enumerate() {
            *p = (i * 3 % 256) as u8;
        }
        let enc = encode_pgm(&img);
        assert_eq!(decode_pgm(&enc).unwrap(), img);
    }

    #[test]
    fn pbm_roundtrip_odd_width() {
        // Width 13 is not a multiple of 8: exercises row padding.
        let img = checker(13, 5);
        let enc = encode_pbm(&img);
        assert_eq!(decode_pbm(&enc).unwrap(), img);
    }

    #[test]
    fn pbm_grayscale_thresholds_at_128() {
        let img = GrayImage::from_raw(2, 1, vec![100, 200]);
        let enc = encode_pbm(&img);
        let back = decode_pbm(&enc).unwrap();
        assert_eq!(back.as_bytes(), &[0, 255]);
    }

    #[test]
    fn header_comments_are_skipped() {
        let data = b"P5\n# produced by a scanner\n2 1\n255\n\x10\x20";
        let img = decode_pgm(data).unwrap();
        assert_eq!(img.as_bytes(), &[0x10, 0x20]);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            decode_pgm(b"P6\n1 1\n255\nxxx").unwrap_err(),
            PnmError::BadMagic
        );
        assert_eq!(
            decode_pbm(b"P5\n1 1\n255\nx").unwrap_err(),
            PnmError::BadMagic
        );
    }

    #[test]
    fn truncation_rejected() {
        let img = checker(8, 8);
        let enc = encode_pgm(&img);
        assert_eq!(
            decode_pgm(&enc[..enc.len() - 1]).unwrap_err(),
            PnmError::Truncated
        );
    }
}
