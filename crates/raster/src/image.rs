//! 8-bit grayscale raster.

/// An 8-bit grayscale image. Pixel (0,0) is the top-left corner; rows are
/// stored contiguously. Bitonal artifacts (print masters, microfilm frames)
/// use only the values 0 (black) and 255 (white).
#[derive(Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl std::fmt::Debug for GrayImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GrayImage({}x{})", self.width, self.height)
    }
}

impl GrayImage {
    /// A `width` × `height` image filled with `fill`.
    pub fn new(width: usize, height: usize, fill: u8) -> Self {
        Self {
            width,
            height,
            data: vec![fill; width * height],
        }
    }

    /// Wrap an existing buffer (len must equal `width * height`).
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height, "buffer size mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw row-major pixel buffer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Pixel value with out-of-bounds reads clamped to the nearest edge.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.data[y * self.width + x]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// One image row.
    pub fn row(&self, y: usize) -> &[u8] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// True when every pixel is 0 or 255.
    pub fn is_bitonal(&self) -> bool {
        self.data.iter().all(|&p| p == 0 || p == 255)
    }

    /// Global threshold: pixels `< t` become 0, others 255.
    pub fn threshold(&self, t: u8) -> GrayImage {
        let data = self
            .data
            .iter()
            .map(|&p| if p < t { 0 } else { 255 })
            .collect();
        GrayImage {
            width: self.width,
            height: self.height,
            data,
        }
    }

    /// Otsu's method: the threshold that minimises intra-class variance.
    /// Robust against the global brightness shifts film fading causes.
    pub fn otsu_threshold(&self) -> u8 {
        let mut hist = [0u64; 256];
        for &p in &self.data {
            hist[p as usize] += 1;
        }
        let total = self.data.len() as u64;
        if total == 0 {
            return 128;
        }
        let sum_all: u64 = hist.iter().enumerate().map(|(i, &c)| i as u64 * c).sum();
        let mut sum_b = 0u64;
        let mut w_b = 0u64;
        let mut best_t = 128u8;
        let mut best_var = -1.0f64;
        for t in 0..256usize {
            w_b += hist[t];
            if w_b == 0 {
                continue;
            }
            let w_f = total - w_b;
            if w_f == 0 {
                break;
            }
            sum_b += t as u64 * hist[t];
            let m_b = sum_b as f64 / w_b as f64;
            let m_f = (sum_all - sum_b) as f64 / w_f as f64;
            let var = w_b as f64 * w_f as f64 * (m_b - m_f) * (m_b - m_f);
            if var > best_var {
                best_var = var;
                best_t = t as u8;
            }
        }
        best_t.saturating_add(1)
    }

    /// Mean pixel value (0 for an empty image).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&p| p as u64).sum::<u64>() as f64 / self.data.len() as f64
    }

    /// Fraction of pixels differing from `other` (images must match in size).
    pub fn diff_fraction(&self, other: &GrayImage) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        if self.data.is_empty() {
            return 0.0;
        }
        let differing = self
            .data
            .iter()
            .zip(&other.data)
            .filter(|(a, b)| a != b)
            .count();
        differing as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = GrayImage::new(4, 3, 200);
        assert_eq!(img.get(3, 2), 200);
        img.set(1, 1, 9);
        assert_eq!(img.get(1, 1), 9);
        assert_eq!(img.row(1), &[200, 9, 200, 200]);
    }

    #[test]
    fn clamped_reads() {
        let img = GrayImage::from_raw(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(img.get_clamped(-5, -5), 1);
        assert_eq!(img.get_clamped(10, 10), 4);
        assert_eq!(img.get_clamped(10, -1), 2);
    }

    #[test]
    fn threshold_splits_values() {
        let img = GrayImage::from_raw(3, 1, vec![10, 128, 250]);
        let t = img.threshold(128);
        assert_eq!(t.as_bytes(), &[0, 255, 255]);
        assert!(t.is_bitonal());
        assert!(!img.is_bitonal());
    }

    #[test]
    fn otsu_separates_two_clusters() {
        let mut data = vec![30u8; 500];
        data.extend(vec![220u8; 500]);
        let img = GrayImage::from_raw(100, 10, data);
        let t = img.otsu_threshold();
        assert!(t > 30 && t <= 220, "t={t}");
        let b = img.threshold(t);
        assert_eq!(b.as_bytes().iter().filter(|&&p| p == 0).count(), 500);
    }

    #[test]
    fn diff_fraction_counts() {
        let a = GrayImage::from_raw(2, 2, vec![0, 0, 0, 0]);
        let b = GrayImage::from_raw(2, 2, vec![0, 255, 0, 255]);
        assert!((a.diff_fraction(&b) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_raw_validates_len() {
        GrayImage::from_raw(3, 3, vec![0; 8]);
    }
}
