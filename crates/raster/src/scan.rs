//! Scanner / media degradation simulation.
//!
//! §3.1 of the paper enumerates the error sources emblems must survive:
//! film distortion and damage ("fading, hot spots, scratches"), scanner
//! lenses that "change straight lines into curves", "small perturbations or
//! unsteady movements" of linear-array transports, and dust. [`Scanner`]
//! models each effect with seeded, reproducible noise so robustness
//! experiments can sweep severity deterministically.

use crate::image::GrayImage;
use crate::rng::SplitMix64;
use crate::sample::bilinear;

/// Degradation severities. All default to zero (an ideal scanner); media
/// profiles in `ule-media` supply calibrated presets.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradeParams {
    /// Additive Gaussian intensity noise, sigma in gray levels.
    pub noise_sigma: f64,
    /// Dust specks per megapixel (drawn as dark or light blobs).
    pub dust_per_mpx: f64,
    /// Maximum dust radius in pixels.
    pub dust_max_radius: f64,
    /// Number of straight scratches across the frame.
    pub scratches: usize,
    /// Scratch width in pixels.
    pub scratch_width: f64,
    /// Peak amplitude of low-frequency fading (gray levels, brightens).
    pub fade_amplitude: f64,
    /// Number of circular hot spots (localised over-exposure).
    pub hotspots: usize,
    /// Peak hot-spot brightening in gray levels.
    pub hotspot_amplitude: f64,
    /// Per-row horizontal jitter from transport wobble, in pixels (peak).
    pub row_jitter: f64,
    /// Radial lens distortion coefficient (positive = barrel). The
    /// displacement at the image corner is roughly `k * (diag/2)` pixels
    /// per unit of normalised radius cubed; keep |k| ≤ 0.02.
    pub lens_k: f64,
    /// Output resolution scale (1.0 = same as input; 2.0 models the 4K
    /// scan of a 2K film frame).
    pub scan_scale: f64,
}

impl Default for DegradeParams {
    fn default() -> Self {
        Self {
            noise_sigma: 0.0,
            dust_per_mpx: 0.0,
            dust_max_radius: 0.0,
            scratches: 0,
            scratch_width: 0.0,
            fade_amplitude: 0.0,
            hotspots: 0,
            hotspot_amplitude: 0.0,
            row_jitter: 0.0,
            lens_k: 0.0,
            scan_scale: 1.0,
        }
    }
}

impl DegradeParams {
    /// An ideal, noise-free scan.
    pub fn pristine() -> Self {
        Self::default()
    }

    /// Multiply every severity by `f` (used for robustness sweeps).
    pub fn scaled(&self, f: f64) -> Self {
        Self {
            noise_sigma: self.noise_sigma * f,
            dust_per_mpx: self.dust_per_mpx * f,
            dust_max_radius: self.dust_max_radius,
            scratches: (self.scratches as f64 * f).round() as usize,
            scratch_width: self.scratch_width,
            fade_amplitude: self.fade_amplitude * f,
            hotspots: (self.hotspots as f64 * f).round() as usize,
            hotspot_amplitude: self.hotspot_amplitude,
            row_jitter: self.row_jitter * f,
            lens_k: self.lens_k * f,
            scan_scale: self.scan_scale,
        }
    }
}

/// A deterministic scanner: `scan()` maps a print master to the grayscale
/// image a physical scanner would deliver.
pub struct Scanner {
    params: DegradeParams,
    seed: u64,
}

struct Blob {
    x: f64,
    y: f64,
    r: f64,
    delta: f64,
}

struct Scratch {
    // Line through (x0, y0) with direction (dx, dy), normalised.
    x0: f64,
    y0: f64,
    dx: f64,
    dy: f64,
    width: f64,
    delta: f64,
}

impl Scanner {
    pub fn new(params: DegradeParams, seed: u64) -> Self {
        Self { params, seed }
    }

    pub fn params(&self) -> &DegradeParams {
        &self.params
    }

    /// Produce the scanned image of `master`.
    pub fn scan(&self, master: &GrayImage) -> GrayImage {
        let p = &self.params;
        let out_w = ((master.width() as f64) * p.scan_scale).round().max(1.0) as usize;
        let out_h = ((master.height() as f64) * p.scan_scale).round().max(1.0) as usize;
        let mut rng = SplitMix64::new(self.seed);

        // Pre-draw the defect geometry in *output* coordinates.
        let mpx = (out_w * out_h) as f64 / 1.0e6;
        let n_dust = (p.dust_per_mpx * mpx).round() as usize;
        let mut dust = Vec::with_capacity(n_dust);
        for _ in 0..n_dust {
            dust.push(Blob {
                x: rng.next_f64() * out_w as f64,
                y: rng.next_f64() * out_h as f64,
                r: 0.5 + rng.next_f64() * p.dust_max_radius.max(0.5),
                // Dust is dark on a light background and light on film negatives;
                // flip a coin.
                delta: if rng.next_f64() < 0.5 { -255.0 } else { 255.0 },
            });
        }
        let mut hotspots = Vec::with_capacity(p.hotspots);
        for _ in 0..p.hotspots {
            hotspots.push(Blob {
                x: rng.next_f64() * out_w as f64,
                y: rng.next_f64() * out_h as f64,
                r: (out_w.min(out_h) as f64) * (0.05 + rng.next_f64() * 0.1),
                delta: p.hotspot_amplitude,
            });
        }
        let mut scratches = Vec::with_capacity(p.scratches);
        for _ in 0..p.scratches {
            let angle = rng.next_f64() * std::f64::consts::PI;
            scratches.push(Scratch {
                x0: rng.next_f64() * out_w as f64,
                y0: rng.next_f64() * out_h as f64,
                dx: angle.cos(),
                dy: angle.sin(),
                width: 0.5 + rng.next_f64() * p.scratch_width.max(0.5),
                delta: if rng.next_f64() < 0.5 { -200.0 } else { 200.0 },
            });
        }
        // Row jitter offsets (smooth random walk, clamped).
        let mut jitter = vec![0.0f64; out_h];
        let mut j = 0.0f64;
        for slot in jitter.iter_mut() {
            j += (rng.next_f64() - 0.5) * 0.4 * p.row_jitter.max(0.0);
            j = j.clamp(-p.row_jitter, p.row_jitter);
            *slot = j;
        }
        // Fading: low-frequency sinusoidal brightness field with random phase.
        let fade_px = rng.next_f64() * std::f64::consts::TAU;
        let fade_py = rng.next_f64() * std::f64::consts::TAU;

        let cx = out_w as f64 / 2.0;
        let cy = out_h as f64 / 2.0;
        let half_diag = (cx * cx + cy * cy).sqrt();
        let inv_scale = 1.0 / p.scan_scale;

        // Pass 1: geometry + fading + sensor noise, one pass, no inner
        // loops (defects are painted sparsely afterwards — a page-sized
        // frame has tens of millions of pixels).
        let mut out = GrayImage::new(out_w, out_h, 0);
        let identity_geometry = p.lens_k == 0.0 && p.row_jitter == 0.0 && p.scan_scale == 1.0;
        for y in 0..out_h {
            let jit = jitter[y];
            for x in 0..out_w {
                let mut v = if identity_geometry {
                    master.get(x, y) as f64
                } else {
                    let mut sx = x as f64;
                    let sy = y as f64;
                    let rx = (sx - cx) / half_diag;
                    let ry = (sy - cy) / half_diag;
                    let r2 = rx * rx + ry * ry;
                    let factor = 1.0 + p.lens_k * r2;
                    sx = cx + (sx - cx) * factor;
                    let sy2 = cy + (sy - cy) * factor;
                    sx += jit;
                    bilinear(master, sx * inv_scale, sy2 * inv_scale)
                };
                if p.fade_amplitude > 0.0 {
                    let fx = (x as f64 / out_w as f64 * 2.3 + fade_px).sin();
                    let fy = (y as f64 / out_h as f64 * 1.7 + fade_py).sin();
                    v += p.fade_amplitude * 0.5 * (fx + fy);
                }
                if p.noise_sigma > 0.0 {
                    v += rng.next_gaussian() * p.noise_sigma;
                }
                out.set(x, y, v.round().clamp(0.0, 255.0) as u8);
            }
        }

        // Pass 2: sparse defects, each painted only over its footprint.
        let add_clamped = |out: &mut GrayImage, x: usize, y: usize, delta: f64| {
            let v = (out.get(x, y) as f64 + delta).round().clamp(0.0, 255.0) as u8;
            out.set(x, y, v);
        };
        for h in &hotspots {
            let r = h.r.ceil() as isize;
            let hx = h.x.round() as isize;
            let hy = h.y.round() as isize;
            for y in (hy - r).max(0)..(hy + r + 1).min(out_h as isize) {
                for x in (hx - r).max(0)..(hx + r + 1).min(out_w as isize) {
                    let d2 = (x as f64 - h.x).powi(2) + (y as f64 - h.y).powi(2);
                    if d2 < h.r * h.r {
                        add_clamped(
                            &mut out,
                            x as usize,
                            y as usize,
                            h.delta * (1.0 - d2 / (h.r * h.r)),
                        );
                    }
                }
            }
        }
        for scr in &scratches {
            // Walk the line across the frame, painting a disc per step.
            let diag = ((out_w * out_w + out_h * out_h) as f64).sqrt();
            let mut t = -diag;
            while t <= diag {
                let x = scr.x0 + t * scr.dx;
                let y = scr.y0 + t * scr.dy;
                t += 0.5;
                if x < -scr.width
                    || y < -scr.width
                    || x >= out_w as f64 + scr.width
                    || y >= out_h as f64 + scr.width
                {
                    continue;
                }
                let r = scr.width.ceil() as isize;
                let sx = x.round() as isize;
                let sy = y.round() as isize;
                for yy in (sy - r).max(0)..(sy + r + 1).min(out_h as isize) {
                    for xx in (sx - r).max(0)..(sx + r + 1).min(out_w as isize) {
                        let px = xx as f64 - scr.x0;
                        let py = yy as f64 - scr.y0;
                        let dist = (px * scr.dy - py * scr.dx).abs();
                        if dist < scr.width {
                            let target = if scr.delta < 0.0 { 0.0 } else { 255.0 };
                            let v = out.get(xx as usize, yy as usize) as f64;
                            out.set(xx as usize, yy as usize, (v * 0.2 + target * 0.8) as u8);
                        }
                    }
                }
            }
        }
        for d in &dust {
            let r = d.r.ceil() as isize;
            let dx0 = d.x.round() as isize;
            let dy0 = d.y.round() as isize;
            let fill = if d.delta < 0.0 { 0u8 } else { 255 };
            for y in (dy0 - r).max(0)..(dy0 + r + 1).min(out_h as isize) {
                for x in (dx0 - r).max(0)..(dx0 + r + 1).min(out_w as isize) {
                    let d2 = (x as f64 - d.x).powi(2) + (y as f64 - d.y).powi(2);
                    if d2 < d.r * d.r {
                        out.set(x as usize, y as usize, fill);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw::fill_rect;

    fn master() -> GrayImage {
        let mut img = GrayImage::new(100, 100, 255);
        fill_rect(&mut img, 20, 20, 60, 60, 0);
        img
    }

    #[test]
    fn pristine_scan_is_identity() {
        let m = master();
        let s = Scanner::new(DegradeParams::pristine(), 1).scan(&m);
        assert_eq!(s, m);
    }

    #[test]
    fn scan_is_deterministic_per_seed() {
        let m = master();
        let p = DegradeParams {
            noise_sigma: 10.0,
            dust_per_mpx: 500.0,
            dust_max_radius: 2.0,
            ..Default::default()
        };
        let a = Scanner::new(p.clone(), 7).scan(&m);
        let b = Scanner::new(p.clone(), 7).scan(&m);
        let c = Scanner::new(p, 8).scan(&m);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_perturbs_but_preserves_structure() {
        let m = master();
        let p = DegradeParams {
            noise_sigma: 8.0,
            ..Default::default()
        };
        let s = Scanner::new(p, 3).scan(&m);
        // Interior of the black square stays predominantly dark.
        assert!(s.get(50, 50) < 80);
        assert!(s.get(5, 5) > 175);
        // Roughly half the pixels move: clamping at 0/255 hides the half of
        // the Gaussian that pushes past the rails on a bitonal master.
        assert!(s.diff_fraction(&m) > 0.3);
    }

    #[test]
    fn scan_scale_resizes_output() {
        let m = master();
        let p = DegradeParams {
            scan_scale: 2.0,
            ..Default::default()
        };
        let s = Scanner::new(p, 1).scan(&m);
        assert_eq!(s.width(), 200);
        assert_eq!(s.height(), 200);
        // Same structure at doubled coordinates.
        assert!(s.get(100, 100) < 30);
        assert!(s.get(10, 10) > 220);
    }

    #[test]
    fn dust_creates_saturated_specks() {
        let m = GrayImage::new(200, 200, 128);
        let p = DegradeParams {
            dust_per_mpx: 2000.0,
            dust_max_radius: 3.0,
            ..Default::default()
        };
        let s = Scanner::new(p, 11).scan(&m);
        let extremes = s.as_bytes().iter().filter(|&&v| v == 0 || v == 255).count();
        assert!(extremes > 50, "only {extremes} saturated pixels");
    }

    #[test]
    fn lens_distortion_moves_edges_not_centre() {
        let m = master();
        let p = DegradeParams {
            lens_k: 0.05,
            ..Default::default()
        };
        let s = Scanner::new(p, 1).scan(&m);
        // Centre pixel unchanged; some pixels near the square's border moved.
        assert_eq!(s.get(50, 50), m.get(50, 50));
        assert!(s.diff_fraction(&m) > 0.001);
    }

    #[test]
    fn scaled_zero_is_pristine() {
        let p = DegradeParams {
            noise_sigma: 5.0,
            dust_per_mpx: 100.0,
            scratches: 3,
            fade_amplitude: 20.0,
            hotspots: 2,
            row_jitter: 1.5,
            lens_k: 0.01,
            ..Default::default()
        };
        let z = p.scaled(0.0);
        assert_eq!(z.noise_sigma, 0.0);
        assert_eq!(z.scratches, 0);
        assert_eq!(z.lens_k, 0.0);
    }
}
