//! Textual DynaRisc assembler — parses the same syntax the disassembler
//! emits, so archived instruction streams can be listed, audited, edited
//! and re-assembled (`asm::disassemble` ∘ `text_asm::assemble` is the
//! identity on programs).
//!
//! Syntax (one instruction per line; `;` starts a comment):
//!
//! ```text
//! start:                  ; labels end with ':'
//!     LDI   R0, #0x0010
//!     LDI   D1, #0x00000040
//!     LDM   R2, [D1]+     ; byte load, post-increment
//!     LDM.W R3, [D1]      ; 16-bit load
//!     ADD   R0, R2
//!     MUL.HI R4, R0
//!     JNZ   start         ; jump targets may be labels or numbers
//!     RET
//! ```

use crate::isa::{Instr, Mode, Opcode};
use std::collections::HashMap;

/// Assembly failures, with 1-based line numbers.
#[derive(Debug, PartialEq, Eq)]
pub struct AsmError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

/// An operand token.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    R(u8),
    D(u8),
    /// `D{n}.LO` / `D{n}.HI`
    DPart(u8, bool /*hi*/),
    /// `R{n}:R{n+1}` pair
    Pair(u8),
    Imm(u32),
    /// `[Dn]` or `[Dn]+`
    Mem(u8, bool /*post-inc*/),
    Label(String),
}

fn parse_num(s: &str, line: usize) -> Result<u32, AsmError> {
    let s = s.trim();
    let (digits, radix) = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(rest) => (rest, 16),
        None => (s, 10),
    };
    u32::from_str_radix(digits, radix).map_err(|_| err(line, format!("bad number {s:?}")))
}

fn parse_operand(tok: &str, line: usize) -> Result<Op, AsmError> {
    let t = tok.trim();
    if let Some(imm) = t.strip_prefix('#') {
        return Ok(Op::Imm(parse_num(imm, line)?));
    }
    if let Some(inner) = t.strip_prefix('[') {
        let (body, inc) = match inner.strip_suffix("]+") {
            Some(b) => (b, true),
            None => (
                inner
                    .strip_suffix(']')
                    .ok_or_else(|| err(line, format!("unclosed {t:?}")))?,
                false,
            ),
        };
        let d = body
            .trim()
            .strip_prefix('D')
            .and_then(|n| n.parse::<u8>().ok())
            .ok_or_else(|| err(line, format!("bad memory operand {t:?}")))?;
        if d >= 8 {
            return Err(err(line, format!("pointer register out of range: D{d}")));
        }
        return Ok(Op::Mem(d, inc));
    }
    if let Some((a, b)) = t.split_once(':') {
        let ra = a
            .trim()
            .strip_prefix('R')
            .and_then(|n| n.parse::<u8>().ok());
        let rb = b
            .trim()
            .strip_prefix('R')
            .and_then(|n| n.parse::<u8>().ok());
        if let (Some(ra), Some(rb)) = (ra, rb) {
            if ra >= 16 || rb >= 16 {
                return Err(err(line, format!("register out of range: R{ra}:R{rb}")));
            }
            if rb != (ra + 1) & 15 {
                return Err(err(line, format!("pair must be adjacent: R{ra}:R{rb}")));
            }
            return Ok(Op::Pair(ra));
        }
        return Err(err(line, format!("bad pair {t:?}")));
    }
    if let Some(rest) = t.strip_prefix('R') {
        if let Ok(n) = rest.parse::<u8>() {
            if n < 16 {
                return Ok(Op::R(n));
            }
        }
    }
    if let Some(rest) = t.strip_prefix('D') {
        if let Some((n, part)) = rest.split_once('.') {
            let d = n
                .parse::<u8>()
                .map_err(|_| err(line, format!("bad register {t:?}")))?;
            if d >= 8 {
                return Err(err(line, format!("pointer register out of range: D{d}")));
            }
            return match part {
                "LO" => Ok(Op::DPart(d, false)),
                "HI" => Ok(Op::DPart(d, true)),
                _ => Err(err(line, format!("bad pointer part {t:?}"))),
            };
        }
        if let Ok(n) = rest.parse::<u8>() {
            if n < 8 {
                return Ok(Op::D(n));
            }
        }
    }
    if parse_num(t, line).is_ok() {
        return Ok(Op::Imm(parse_num(t, line)?));
    }
    Ok(Op::Label(t.to_string()))
}

fn encode_line(
    mnemonic: &str,
    ops: &[Op],
    line: usize,
) -> Result<(Instr, Option<(usize, String)>), AsmError> {
    use Opcode::*;
    let m = mnemonic.to_ascii_uppercase();
    let bad = || err(line, format!("bad operands for {m}"));
    let imm16 = |v: u32| -> Result<u16, AsmError> {
        u16::try_from(v).map_err(|_| err(line, format!("immediate #{v:#x} exceeds 16 bits")))
    };
    let alu = |op: Opcode| -> Result<(Instr, Option<(usize, String)>), AsmError> {
        match ops {
            [Op::R(a), Op::R(b)] => Ok((Instr::new(op, *a, *b, Mode::M0), None)),
            [Op::R(a), Op::Imm(v)] => Ok((Instr::with_imm(op, *a, 0, Mode::M2, imm16(*v)?), None)),
            [Op::D(d), Op::R(b)] if matches!(op, Add | Sub) => {
                Ok((Instr::new(op, *d, *b, Mode::M1), None))
            }
            [Op::D(d), Op::Imm(v)] if matches!(op, Add | Sub) => {
                Ok((Instr::with_imm(op, *d, 0, Mode::M3, imm16(*v)?), None))
            }
            _ => Err(bad()),
        }
    };
    let shift = |op: Opcode| -> Result<(Instr, Option<(usize, String)>), AsmError> {
        match ops {
            [Op::R(a), Op::R(b)] => Ok((Instr::new(op, *a, *b, Mode::M0), None)),
            [Op::R(a), Op::Imm(v)] if *v < 16 => Ok((Instr::new(op, *a, *v as u8, Mode::M1), None)),
            _ => Err(bad()),
        }
    };
    let jump = |op: Opcode| -> Result<(Instr, Option<(usize, String)>), AsmError> {
        match ops {
            [Op::Imm(v)] => Ok((Instr::with_imm(op, 0, 0, Mode::M0, imm16(*v)?), None)),
            [Op::Label(l)] => Ok((Instr::with_imm(op, 0, 0, Mode::M0, 0), Some((1, l.clone())))),
            _ => Err(bad()),
        }
    };
    match m.as_str() {
        "ADD" => alu(Add),
        "ADC" => alu(Adc),
        "SUB" => alu(Sub),
        "SBB" => alu(Sbb),
        "CMP" => alu(Cmp),
        "AND" => alu(And),
        "OR" => alu(Or),
        "XOR" => alu(Xor),
        "MUL" => match ops {
            [Op::R(a), Op::R(b)] => Ok((Instr::new(Mul, *a, *b, Mode::M0), None)),
            _ => Err(bad()),
        },
        "MUL.HI" => match ops {
            [Op::R(a), Op::R(b)] => Ok((Instr::new(Mul, *a, *b, Mode::M1), None)),
            _ => Err(bad()),
        },
        "LSL" => shift(Lsl),
        "LSR" => shift(Lsr),
        "ASR" => shift(Asr),
        "ROR" => shift(Ror),
        "MOVE" => match ops {
            [Op::R(a), Op::R(b)] => Ok((Instr::new(Move, *a, *b, Mode::M0), None)),
            [Op::D(d), Op::R(b)] => Ok((Instr::new(Move, *d, *b, Mode::M1), None)),
            [Op::R(a), Op::DPart(d, false)] => Ok((Instr::new(Move, *a, *d, Mode::M2), None)),
            [Op::D(a), Op::D(b)] => Ok((Instr::new(Move, *a, *b, Mode::M3), None)),
            [Op::R(a), Op::DPart(d, true)] => Ok((Instr::new(Move, *a, *d, Mode::M4), None)),
            [Op::D(d), Op::Pair(hi)] => Ok((Instr::new(Move, *d, *hi, Mode::M5), None)),
            _ => Err(bad()),
        },
        "LDI" => match ops {
            [Op::R(a), Op::Imm(v)] if *v <= 0xFFFF => {
                Ok((Instr::with_imm(Ldi, *a, 0, Mode::M0, *v as u16), None))
            }
            [Op::D(d), Op::Imm(v)] => Ok((
                Instr {
                    opcode: Ldi,
                    a: *d,
                    b: 0,
                    mode: Mode::M1,
                    imm: *v as u16,
                    imm2: (*v >> 16) as u16,
                },
                None,
            )),
            _ => Err(bad()),
        },
        "LDM" | "LDM.W" => match ops {
            [Op::R(a), Op::Mem(d, inc)] => {
                let mode = match (m.as_str() == "LDM.W", inc) {
                    (false, false) => Mode::M0,
                    (false, true) => Mode::M1,
                    (true, false) => Mode::M2,
                    (true, true) => Mode::M3,
                };
                Ok((Instr::new(Ldm, *a, *d, mode), None))
            }
            _ => Err(bad()),
        },
        "STM" | "STM.W" => match ops {
            [Op::R(a), Op::Mem(d, inc)] => {
                let mode = match (m.as_str() == "STM.W", inc) {
                    (false, false) => Mode::M0,
                    (false, true) => Mode::M1,
                    (true, false) => Mode::M2,
                    (true, true) => Mode::M3,
                };
                Ok((Instr::new(Stm, *a, *d, mode), None))
            }
            _ => Err(bad()),
        },
        "JUMP" => jump(Jump),
        "JZ" => jump(Jz),
        "JNZ" => jump(Jnz),
        "JC" => jump(Jc),
        "CALL" => jump(Call),
        "RET" => {
            if ops.is_empty() {
                Ok((Instr::new(Ret, 0, 0, Mode::M0), None))
            } else {
                Err(bad())
            }
        }
        _ => Err(err(line, format!("unknown mnemonic {mnemonic:?}"))),
    }
}

/// Assemble textual DynaRisc source into instruction words.
pub fn assemble(src: &str) -> Result<Vec<u16>, AsmError> {
    let mut words: Vec<u16> = Vec::new();
    let mut labels: HashMap<String, u16> = HashMap::new();
    let mut fixups: Vec<(usize, String, usize)> = Vec::new(); // (word idx, label, line)
    for (lno, raw) in src.lines().enumerate() {
        let line = lno + 1;
        let mut text = raw;
        if let Some(i) = text.find(';') {
            text = &text[..i];
        }
        let mut text = text.trim();
        // Leading labels (possibly several).
        while let Some(colon) = text.find(':') {
            let (head, rest) = text.split_at(colon);
            let name = head.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break; // ':' inside an operand (e.g. a pair) — not a label
            }
            let pos = u16::try_from(words.len())
                .map_err(|_| err(line, "label address exceeds the 16-bit PC space"))?;
            if labels.insert(name.to_string(), pos).is_some() {
                return Err(err(line, format!("label {name:?} defined twice")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, ops_text) = match text.split_once(char::is_whitespace) {
            Some((m, rest)) => (m, rest.trim()),
            None => (text, ""),
        };
        let ops: Vec<Op> = if ops_text.is_empty() {
            Vec::new()
        } else {
            ops_text
                .split(',')
                .map(|t| parse_operand(t, line))
                .collect::<Result<_, _>>()?
        };
        let (instr, fixup) = encode_line(mnemonic, &ops, line)?;
        let base = words.len();
        words.extend(instr.encode());
        // Jump targets and label addresses are 16-bit; a longer program
        // would silently wrap them.
        if words.len() > (u16::MAX as usize) + 1 {
            return Err(err(line, "program exceeds 65536 words"));
        }
        if let Some((off, label)) = fixup {
            fixups.push((base + off, label, line));
        }
    }
    for (at, label, line) in fixups {
        let pos = *labels
            .get(&label)
            .ok_or_else(|| err(line, format!("undefined label {label:?}")))?;
        words[at] = pos;
    }
    Ok(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::disassemble;
    use crate::Vm;

    #[test]
    fn assembles_and_runs_a_loop() {
        let src = r#"
            ; sum 1..=10
            LDI R0, #0
            LDI R1, #10
        top:
            ADD R0, R1
            SUB R1, #1
            JNZ top
            RET
        "#;
        let words = assemble(src).unwrap();
        let mut vm = Vm::new(words, vec![]);
        vm.run(1000).unwrap();
        assert_eq!(vm.regs[0], 55);
    }

    #[test]
    fn roundtrips_through_the_disassembler() {
        // Assemble → disassemble → re-assemble must be a fixed point.
        let src = r#"
            LDI R0, #0x1234
            LDI D1, #0x00010040
            LDM R2, [D1]+
            LDM.W R3, [D1]
            STM R2, [D1]+
            STM.W R3, [D1]
            MOVE D2, R0:R1
            MOVE R4, D2.LO
            MOVE R5, D2.HI
            MUL.HI R6, R0
            ROR R6, #3
            ADD D1, R0
            SUB D1, #0x10
            RET
        "#;
        let words1 = assemble(src).unwrap();
        let listing = disassemble(&words1);
        // Strip the address prefixes the disassembler adds.
        let relisted: String = listing
            .lines()
            .map(|l| l.split_once(": ").map(|(_, i)| i).unwrap_or(l))
            .collect::<Vec<_>>()
            .join("\n");
        let words2 = assemble(&relisted).unwrap();
        assert_eq!(words1, words2, "listing:\n{listing}");
    }

    #[test]
    fn all_23_mnemonics_assemble() {
        let src = r#"
        here:
            ADD R0, R1
            ADC R0, #1
            SUB R0, R1
            SBB R0, #0
            CMP R0, R1
            MUL R0, R1
            AND R0, R1
            OR  R0, R1
            XOR R0, R1
            LSL R0, #1
            LSR R0, #1
            ASR R0, #1
            ROR R0, #1
            MOVE R0, R1
            LDI R0, #7
            LDM R0, [D0]
            STM R0, [D0]
            JUMP here
            JZ here
            JNZ here
            JC here
            CALL here
            RET
        "#;
        let words = assemble(src).unwrap();
        let listing = disassemble(&words);
        for mnemonic in [
            "ADD", "ADC", "SUB", "SBB", "CMP", "MUL", "AND", "OR", "XOR", "LSL", "LSR", "ASR",
            "ROR", "MOVE", "LDI", "LDM", "STM", "JUMP", "JZ", "JNZ", "JC", "CALL", "RET",
        ] {
            assert!(listing.contains(mnemonic), "missing {mnemonic}");
        }
    }

    #[test]
    fn out_of_range_immediates_rejected() {
        for src in ["ADD R0, #0x10000", "SUB D1, #0x10000", "JUMP #0x10000"] {
            let e = assemble(src).unwrap_err();
            assert!(e.msg.contains("exceeds 16 bits"), "{src}: {}", e.msg);
        }
    }

    #[test]
    fn out_of_range_registers_rejected() {
        // Regression: `R255:R0` used to overflow the adjacency check in
        // debug builds; out-of-range pointer registers used to alias
        // through the 3-bit field.
        for src in [
            "MOVE D2, R255:R0",
            "LDM R0, [D9]",
            "MOVE R4, D9.LO",
            "STM R0, [D200]+",
        ] {
            let e = assemble(src).unwrap_err();
            assert!(e.msg.contains("out of range"), "{src}: {}", e.msg);
        }
    }

    #[test]
    fn overlong_program_rejected() {
        // 32769 two-word LDIs = 65538 words, one past the 16-bit PC space.
        let mut src = String::new();
        for _ in 0..32_769 {
            src.push_str("LDI R0, #1\n");
        }
        let e = assemble(&src).unwrap_err();
        assert!(e.msg.contains("65536"), "{}", e.msg);
    }

    #[test]
    fn label_at_end_of_full_program_rejected() {
        // Exactly 65536 words of code is encodable, but a label *after*
        // them has no 16-bit address.
        let mut src = String::new();
        for _ in 0..32_768 {
            src.push_str("LDI R0, #1\n");
        }
        src.push_str("end:\n");
        let e = assemble(&src).unwrap_err();
        assert!(e.msg.contains("PC space"), "{}", e.msg);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("LDI R0, #1\nBOGUS R1, R2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("BOGUS"));
    }

    #[test]
    fn undefined_label_rejected() {
        let e = assemble("JUMP nowhere\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a:\nRET\na:\nRET\n").unwrap_err();
        assert!(e.msg.contains("twice"));
    }

    #[test]
    fn dbdecode_listing_reassembles_to_the_same_stream() {
        // The archived decoder itself survives a list/audit/re-assemble
        // round trip — exactly what a curator would do.
        let words1 = crate::programs::dbdecode::program();
        let listing = disassemble(&words1);
        let relisted: String = listing
            .lines()
            .map(|l| l.split_once(": ").map(|(_, i)| i).unwrap_or(l))
            .collect::<Vec<_>>()
            .join("\n");
        let words2 = assemble(&relisted).unwrap();
        assert_eq!(words1, words2);
    }
}
