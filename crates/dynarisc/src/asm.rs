//! DynaRisc assembler (label-resolving builder) and disassembler.
//!
//! The decoders the paper archives (`programs::dbdecode`,
//! `programs::modecode`) are written against this builder; `finish()`
//! produces the frozen instruction-word stream that is stored on the
//! medium (as system emblems / Bootstrap letters).

use crate::isa::{Instr, Mode, Opcode};

/// A forward-referencable program location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Label(usize);

/// Instruction-stream builder.
#[derive(Default)]
pub struct Asm {
    words: Vec<u16>,
    labels: Vec<Option<u16>>,
    fixups: Vec<(usize, Label)>,
}

impl Asm {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.words.len() as u16);
    }

    /// Create a label bound right here.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Current length in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    fn emit(&mut self, instr: Instr) {
        self.words.extend(instr.encode());
    }

    fn emit_jump(&mut self, opcode: Opcode, target: Label) {
        let instr = Instr::with_imm(opcode, 0, 0, Mode::M0, 0);
        let imm_at = self.words.len() + 1;
        self.emit(instr);
        self.fixups.push((imm_at, target));
    }

    /// Resolve labels and return the instruction words.
    ///
    /// # Panics
    /// Panics on unbound labels (a programming error in the decoder
    /// source, not a runtime condition).
    pub fn finish(mut self) -> Vec<u16> {
        for (at, label) in &self.fixups {
            let pos = self.labels[label.0].expect("unbound label");
            self.words[*at] = pos;
        }
        self.words
    }

    // ---- arithmetic ----
    pub fn add(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Add, a, b, Mode::M0));
    }
    pub fn addi(&mut self, a: u8, imm: u16) {
        self.emit(Instr::with_imm(Opcode::Add, a, 0, Mode::M2, imm));
    }
    pub fn add_d_r(&mut self, d: u8, r: u8) {
        self.emit(Instr::new(Opcode::Add, d, r, Mode::M1));
    }
    pub fn addi_d(&mut self, d: u8, imm: u16) {
        self.emit(Instr::with_imm(Opcode::Add, d, 0, Mode::M3, imm));
    }
    pub fn adc(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Adc, a, b, Mode::M0));
    }
    pub fn adci(&mut self, a: u8, imm: u16) {
        self.emit(Instr::with_imm(Opcode::Adc, a, 0, Mode::M2, imm));
    }
    pub fn sub(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Sub, a, b, Mode::M0));
    }
    pub fn subi(&mut self, a: u8, imm: u16) {
        self.emit(Instr::with_imm(Opcode::Sub, a, 0, Mode::M2, imm));
    }
    pub fn sub_d_r(&mut self, d: u8, r: u8) {
        self.emit(Instr::new(Opcode::Sub, d, r, Mode::M1));
    }
    pub fn subi_d(&mut self, d: u8, imm: u16) {
        self.emit(Instr::with_imm(Opcode::Sub, d, 0, Mode::M3, imm));
    }
    pub fn sbb(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Sbb, a, b, Mode::M0));
    }
    pub fn sbbi(&mut self, a: u8, imm: u16) {
        self.emit(Instr::with_imm(Opcode::Sbb, a, 0, Mode::M2, imm));
    }
    pub fn cmp(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Cmp, a, b, Mode::M0));
    }
    pub fn cmpi(&mut self, a: u8, imm: u16) {
        self.emit(Instr::with_imm(Opcode::Cmp, a, 0, Mode::M2, imm));
    }
    pub fn mul(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Mul, a, b, Mode::M0));
    }
    pub fn mul_hi(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Mul, a, b, Mode::M1));
    }

    // ---- logical ----
    pub fn and(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::And, a, b, Mode::M0));
    }
    pub fn andi(&mut self, a: u8, imm: u16) {
        self.emit(Instr::with_imm(Opcode::And, a, 0, Mode::M2, imm));
    }
    pub fn or(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Or, a, b, Mode::M0));
    }
    pub fn ori(&mut self, a: u8, imm: u16) {
        self.emit(Instr::with_imm(Opcode::Or, a, 0, Mode::M2, imm));
    }
    pub fn xor(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Xor, a, b, Mode::M0));
    }
    pub fn xori(&mut self, a: u8, imm: u16) {
        self.emit(Instr::with_imm(Opcode::Xor, a, 0, Mode::M2, imm));
    }
    pub fn lsl(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Lsl, a, b, Mode::M0));
    }
    pub fn lsl_i(&mut self, a: u8, n: u8) {
        self.emit(Instr::new(Opcode::Lsl, a, n & 15, Mode::M1));
    }
    pub fn lsr(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Lsr, a, b, Mode::M0));
    }
    pub fn lsr_i(&mut self, a: u8, n: u8) {
        self.emit(Instr::new(Opcode::Lsr, a, n & 15, Mode::M1));
    }
    pub fn asr(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Asr, a, b, Mode::M0));
    }
    pub fn asr_i(&mut self, a: u8, n: u8) {
        self.emit(Instr::new(Opcode::Asr, a, n & 15, Mode::M1));
    }
    pub fn ror(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Ror, a, b, Mode::M0));
    }
    pub fn ror_i(&mut self, a: u8, n: u8) {
        self.emit(Instr::new(Opcode::Ror, a, n & 15, Mode::M1));
    }

    // ---- data movement ----
    pub fn move_r(&mut self, a: u8, b: u8) {
        self.emit(Instr::new(Opcode::Move, a, b, Mode::M0));
    }
    pub fn move_d_r(&mut self, d: u8, r: u8) {
        self.emit(Instr::new(Opcode::Move, d, r, Mode::M1));
    }
    pub fn move_r_dlo(&mut self, r: u8, d: u8) {
        self.emit(Instr::new(Opcode::Move, r, d, Mode::M2));
    }
    pub fn move_d_d(&mut self, da: u8, db: u8) {
        self.emit(Instr::new(Opcode::Move, da, db, Mode::M3));
    }
    pub fn move_r_dhi(&mut self, r: u8, d: u8) {
        self.emit(Instr::new(Opcode::Move, r, d, Mode::M4));
    }
    /// `Dd ← (R[hi] << 16) | R[hi+1]` — hi names the *high* register of an
    /// adjacent pair.
    pub fn move_d_pair(&mut self, d: u8, hi: u8) {
        self.emit(Instr::new(Opcode::Move, d, hi, Mode::M5));
    }
    pub fn ldi(&mut self, r: u8, imm: u16) {
        self.emit(Instr::with_imm(Opcode::Ldi, r, 0, Mode::M0, imm));
    }
    pub fn ldi_d(&mut self, d: u8, imm: u32) {
        self.emit(Instr {
            opcode: Opcode::Ldi,
            a: d,
            b: 0,
            mode: Mode::M1,
            imm: imm as u16,
            imm2: (imm >> 16) as u16,
        });
    }
    pub fn ldm_byte(&mut self, r: u8, d: u8) {
        self.emit(Instr::new(Opcode::Ldm, r, d, Mode::M0));
    }
    pub fn ldm_byte_inc(&mut self, r: u8, d: u8) {
        self.emit(Instr::new(Opcode::Ldm, r, d, Mode::M1));
    }
    pub fn ldm_word(&mut self, r: u8, d: u8) {
        self.emit(Instr::new(Opcode::Ldm, r, d, Mode::M2));
    }
    pub fn ldm_word_inc(&mut self, r: u8, d: u8) {
        self.emit(Instr::new(Opcode::Ldm, r, d, Mode::M3));
    }
    pub fn stm_byte(&mut self, r: u8, d: u8) {
        self.emit(Instr::new(Opcode::Stm, r, d, Mode::M0));
    }
    pub fn stm_byte_inc(&mut self, r: u8, d: u8) {
        self.emit(Instr::new(Opcode::Stm, r, d, Mode::M1));
    }
    pub fn stm_word(&mut self, r: u8, d: u8) {
        self.emit(Instr::new(Opcode::Stm, r, d, Mode::M2));
    }
    pub fn stm_word_inc(&mut self, r: u8, d: u8) {
        self.emit(Instr::new(Opcode::Stm, r, d, Mode::M3));
    }

    // ---- control ----
    pub fn jump(&mut self, target: Label) {
        self.emit_jump(Opcode::Jump, target);
    }
    pub fn jz(&mut self, target: Label) {
        self.emit_jump(Opcode::Jz, target);
    }
    pub fn jnz(&mut self, target: Label) {
        self.emit_jump(Opcode::Jnz, target);
    }
    pub fn jc(&mut self, target: Label) {
        self.emit_jump(Opcode::Jc, target);
    }
    pub fn call(&mut self, target: Label) {
        self.emit_jump(Opcode::Call, target);
    }
    pub fn ret(&mut self) {
        self.emit(Instr::new(Opcode::Ret, 0, 0, Mode::M0));
    }

    // ---- composite helpers (emit multiple instructions) ----

    /// `(hi:lo) += imm` for a 16-bit register pair.
    pub fn pair_addi(&mut self, hi: u8, lo: u8, imm: u16) {
        self.addi(lo, imm);
        self.adci(hi, 0);
    }

    /// `(hi:lo) -= imm` for a 16-bit register pair.
    pub fn pair_subi(&mut self, hi: u8, lo: u8, imm: u16) {
        self.subi(lo, imm);
        self.sbbi(hi, 0);
    }

    /// `(ahi:alo) -= (bhi:blo)`.
    pub fn pair_sub(&mut self, ahi: u8, alo: u8, bhi: u8, blo: u8) {
        self.sub(alo, blo);
        self.sbb(ahi, bhi);
    }

    /// Sets Z if the pair (hi:lo) is zero. Clobbers `tmp`.
    pub fn pair_test_zero(&mut self, hi: u8, lo: u8, tmp: u8) {
        self.move_r(tmp, lo);
        self.or(tmp, hi);
    }
}

/// Render an instruction stream as human-readable assembly listing.
pub fn disassemble(words: &[u16]) -> String {
    let mut out = String::new();
    let mut pos = 0usize;
    while pos < words.len() {
        match Instr::decode(words, pos) {
            Ok(instr) => {
                out.push_str(&format!("{pos:04x}: {}\n", format_instr(&instr)));
                pos += instr.len_words();
            }
            Err(e) => {
                out.push_str(&format!("{pos:04x}: <{e:?}> {:#06x}\n", words[pos]));
                pos += 1;
            }
        }
    }
    out
}

fn format_instr(i: &Instr) -> String {
    use Opcode::*;
    let m = i.opcode.mnemonic();
    let (a, b) = (i.a, i.b);
    match (i.opcode, i.mode) {
        (Add | Adc | Sub | Sbb | Cmp | And | Or | Xor, Mode::M0) => format!("{m} R{a}, R{b}"),
        (Add | Sub, Mode::M1) => format!("{m} D{}, R{b}", a & 7),
        (Add | Adc | Sub | Sbb | Cmp | And | Or | Xor, Mode::M2) => {
            format!("{m} R{a}, #{:#06x}", i.imm)
        }
        (Add | Sub, Mode::M3) => format!("{m} D{}, #{:#06x}", a & 7, i.imm),
        (Mul, Mode::M0) => format!("MUL R{a}, R{b}"),
        (Mul, Mode::M1) => format!("MUL.HI R{a}, R{b}"),
        (Lsl | Lsr | Asr | Ror, Mode::M0) => format!("{m} R{a}, R{b}"),
        (Lsl | Lsr | Asr | Ror, Mode::M1) => format!("{m} R{a}, #{b}"),
        (Move, Mode::M0) => format!("MOVE R{a}, R{b}"),
        (Move, Mode::M1) => format!("MOVE D{}, R{b}", a & 7),
        (Move, Mode::M2) => format!("MOVE R{a}, D{}.LO", b & 7),
        (Move, Mode::M3) => format!("MOVE D{}, D{}", a & 7, b & 7),
        (Move, Mode::M4) => format!("MOVE R{a}, D{}.HI", b & 7),
        (Move, Mode::M5) => format!("MOVE D{}, R{b}:R{}", a & 7, (b + 1) & 15),
        (Ldi, Mode::M1) => {
            format!(
                "LDI D{}, #{:#010x}",
                a & 7,
                ((i.imm2 as u32) << 16) | i.imm as u32
            )
        }
        (Ldi, _) => format!("LDI R{a}, #{:#06x}", i.imm),
        (Ldm, Mode::M0) => format!("LDM R{a}, [D{}]", b & 7),
        (Ldm, Mode::M1) => format!("LDM R{a}, [D{}]+", b & 7),
        (Ldm, Mode::M2) => format!("LDM.W R{a}, [D{}]", b & 7),
        (Ldm, _) => format!("LDM.W R{a}, [D{}]+", b & 7),
        (Stm, Mode::M0) => format!("STM R{a}, [D{}]", b & 7),
        (Stm, Mode::M1) => format!("STM R{a}, [D{}]+", b & 7),
        (Stm, Mode::M2) => format!("STM.W R{a}, [D{}]", b & 7),
        (Stm, _) => format!("STM.W R{a}, [D{}]+", b & 7),
        (Jump | Jz | Jnz | Jc | Call, _) => format!("{m} {:#06x}", i.imm),
        (Ret, _) => "RET".to_string(),
        _ => format!("{m} R{a}, R{b} (mode {:?})", i.mode),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut a = Asm::new();
        let fwd = a.label();
        let back = a.here();
        a.ldi(0, 1);
        a.jump(fwd);
        a.ldi(0, 2); // skipped
        a.bind(fwd);
        a.jnz(back);
        a.ret();
        let words = a.finish();
        // Instruction at 0: LDI (2 words), JUMP target should be 4+... verify
        // by disassembly instead of hand-counting.
        let listing = disassemble(&words);
        assert!(listing.contains("JUMP"), "{listing}");
        assert!(listing.contains("RET"), "{listing}");
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.jump(l);
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.here();
        a.bind(l);
    }

    #[test]
    fn disassemble_covers_every_opcode() {
        let mut a = Asm::new();
        a.add(1, 2);
        a.adci(1, 3);
        a.sub_d_r(0, 1);
        a.sbb(2, 3);
        a.cmpi(4, 100);
        a.mul_hi(5, 6);
        a.andi(7, 0xFF);
        a.or(1, 2);
        a.xori(3, 0xF0F0);
        a.lsl_i(1, 3);
        a.lsr(2, 3);
        a.asr_i(4, 2);
        a.ror_i(5, 7);
        a.move_d_pair(2, 8);
        a.ldi_d(1, 0x12345678);
        a.ldm_word_inc(0, 1);
        a.stm_byte(2, 3);
        let l = a.here();
        a.jump(l);
        a.jz(l);
        a.jnz(l);
        a.jc(l);
        a.call(l);
        a.ret();
        let listing = disassemble(&a.finish());
        for mn in [
            "ADD",
            "ADC",
            "SUB D0",
            "SBB",
            "CMP",
            "MUL.HI",
            "AND",
            "OR R1",
            "XOR",
            "LSL",
            "LSR",
            "ASR",
            "ROR",
            "MOVE D2, R8:R9",
            "LDI D1, #0x12345678",
            "LDM.W R0, [D1]+",
            "STM R2, [D3]",
            "JUMP",
            "JZ",
            "JNZ",
            "JC",
            "CALL",
            "RET",
        ] {
            assert!(listing.contains(mn), "missing `{mn}` in:\n{listing}");
        }
    }

    #[test]
    fn pair_helpers_encode_two_instructions() {
        let mut a = Asm::new();
        a.pair_addi(1, 0, 5);
        assert_eq!(a.len(), 4); // ADD imm (2 words) + ADC imm (2 words)
    }
}
