//! Host ↔ program memory calling convention.
//!
//! DynaRisc has no I/O instructions; the host and the program exchange data
//! through fixed memory addresses, exactly as the Bootstrap document
//! instructs a future restorer to do ("convert the images into a linear
//! flat array of pixel intensities", then hand them to the emulated
//! decoders).
//!
//! ```text
//! 0x00 .. 0x10   reserved scratch
//! 0x10           input length  (u32 LE, host-written)
//! 0x14           output length (u32 LE, program-written)
//! 0x18           output base   (u32 LE, host-written)
//! 0x1C .. 0x40   program parameters (u16 LE words, host-written)
//! 0x40 ..        input data
//! out_base ..    output data
//! ```

/// Address of the input length (u32 LE).
pub const IN_LEN_ADDR: u32 = 0x10;
/// Address of the output length (u32 LE), written by the program.
pub const OUT_LEN_ADDR: u32 = 0x14;
/// Address of the output base pointer (u32 LE), chosen by the host.
pub const OUT_BASE_ADDR: u32 = 0x18;
/// First program parameter word (u16 LE each).
pub const PARAM_BASE: u32 = 0x1C;
/// Start of input data.
pub const IN_BASE: u32 = 0x40;

/// Compute a comfortable memory size and output base for given input and
/// expected output sizes (16-byte aligned output base).
pub fn plan_memory(input_len: usize, max_output_len: usize) -> (usize, u32) {
    let out_base = (IN_BASE as usize + input_len + 15) & !15;
    let size = out_base + max_output_len + 64;
    (size, out_base as u32)
}

/// Write host-side inputs into a fresh memory image.
pub fn build_memory(input: &[u8], max_output_len: usize, params: &[u16]) -> (Vec<u8>, u32) {
    let (size, out_base) = plan_memory(input.len(), max_output_len);
    let mut mem = vec![0u8; size];
    mem[IN_LEN_ADDR as usize..IN_LEN_ADDR as usize + 4]
        .copy_from_slice(&(input.len() as u32).to_le_bytes());
    mem[OUT_BASE_ADDR as usize..OUT_BASE_ADDR as usize + 4]
        .copy_from_slice(&out_base.to_le_bytes());
    for (i, &p) in params.iter().enumerate() {
        let at = PARAM_BASE as usize + i * 2;
        mem[at..at + 2].copy_from_slice(&p.to_le_bytes());
    }
    mem[IN_BASE as usize..IN_BASE as usize + input.len()].copy_from_slice(input);
    (mem, out_base)
}

/// Read the program's output back out of memory.
pub fn read_output(mem: &[u8], out_base: u32) -> Vec<u8> {
    let len = u32::from_le_bytes(
        mem[OUT_LEN_ADDR as usize..OUT_LEN_ADDR as usize + 4]
            .try_into()
            .unwrap(),
    ) as usize;
    let base = out_base as usize;
    mem[base..base + len].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_layout_places_fields() {
        let (mem, out_base) = build_memory(b"hello", 100, &[7, 9]);
        assert_eq!(&mem[IN_BASE as usize..IN_BASE as usize + 5], b"hello");
        assert_eq!(u32::from_le_bytes(mem[0x10..0x14].try_into().unwrap()), 5);
        assert_eq!(
            u32::from_le_bytes(mem[0x18..0x1C].try_into().unwrap()),
            out_base
        );
        assert_eq!(u16::from_le_bytes(mem[0x1C..0x1E].try_into().unwrap()), 7);
        assert_eq!(u16::from_le_bytes(mem[0x1E..0x20].try_into().unwrap()), 9);
        assert_eq!(out_base % 16, 0);
    }

    #[test]
    fn output_roundtrip() {
        let (mut mem, out_base) = build_memory(b"x", 16, &[]);
        mem[out_base as usize..out_base as usize + 3].copy_from_slice(b"abc");
        mem[OUT_LEN_ADDR as usize..OUT_LEN_ADDR as usize + 4].copy_from_slice(&3u32.to_le_bytes());
        assert_eq!(read_output(&mem, out_base), b"abc");
    }
}
