//! The DynaRisc instruction set: 23 opcodes, 16-bit instruction words.
//!
//! Word layout: `[opcode:5][a:4][b:4][mode:3]` (most significant bits
//! first). Some opcode/mode combinations take extra words (immediates and
//! jump targets). The encoding is **frozen** — instruction streams are
//! archived on analog media and referenced by the Bootstrap document.
//!
//! Register classes: `a`/`b` index data registers `R0..R15` or pointer
//! registers `D0..D7` depending on opcode+mode (pointer indices use the
//! low 3 bits).

/// The 23 DynaRisc opcodes. Values are frozen wire codes.
///
/// Table 1 of the paper shows ADC, SBB, SUB, CMP, MUL / AND, OR, XOR, LSL,
/// LSR, ASR, ROR / MOVE, LDI, LDM, STM, JUMP; the remaining six (ADD, JZ,
/// JNZ, JC, CALL, RET) complete the 23-instruction set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    Add = 0,
    Adc = 1,
    Sub = 2,
    Sbb = 3,
    Cmp = 4,
    Mul = 5,
    And = 6,
    Or = 7,
    Xor = 8,
    Lsl = 9,
    Lsr = 10,
    Asr = 11,
    Ror = 12,
    Move = 13,
    Ldi = 14,
    Ldm = 15,
    Stm = 16,
    Jump = 17,
    Jz = 18,
    Jnz = 19,
    Jc = 20,
    Call = 21,
    Ret = 22,
}

/// Number of opcodes — the "23-ISA" of the paper.
pub const OPCODE_COUNT: usize = 23;

impl Opcode {
    pub fn from_u8(v: u8) -> Option<Opcode> {
        use Opcode::*;
        const ALL: [Opcode; OPCODE_COUNT] = [
            Add, Adc, Sub, Sbb, Cmp, Mul, And, Or, Xor, Lsl, Lsr, Asr, Ror, Move, Ldi, Ldm, Stm,
            Jump, Jz, Jnz, Jc, Call, Ret,
        ];
        ALL.get(v as usize).copied()
    }

    pub fn mnemonic(&self) -> &'static str {
        match self {
            Opcode::Add => "ADD",
            Opcode::Adc => "ADC",
            Opcode::Sub => "SUB",
            Opcode::Sbb => "SBB",
            Opcode::Cmp => "CMP",
            Opcode::Mul => "MUL",
            Opcode::And => "AND",
            Opcode::Or => "OR",
            Opcode::Xor => "XOR",
            Opcode::Lsl => "LSL",
            Opcode::Lsr => "LSR",
            Opcode::Asr => "ASR",
            Opcode::Ror => "ROR",
            Opcode::Move => "MOVE",
            Opcode::Ldi => "LDI",
            Opcode::Ldm => "LDM",
            Opcode::Stm => "STM",
            Opcode::Jump => "JUMP",
            Opcode::Jz => "JZ",
            Opcode::Jnz => "JNZ",
            Opcode::Jc => "JC",
            Opcode::Call => "CALL",
            Opcode::Ret => "RET",
        }
    }

    /// Instruction class as presented in Table 1.
    pub fn class(&self) -> &'static str {
        match self {
            Opcode::Add | Opcode::Adc | Opcode::Sub | Opcode::Sbb | Opcode::Cmp | Opcode::Mul => {
                "Arithmetic"
            }
            Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Lsl
            | Opcode::Lsr
            | Opcode::Asr
            | Opcode::Ror => "Logical",
            Opcode::Move | Opcode::Ldi | Opcode::Ldm | Opcode::Stm => "Control/Data",
            Opcode::Jump | Opcode::Jz | Opcode::Jnz | Opcode::Jc | Opcode::Call | Opcode::Ret => {
                "Control/Data"
            }
        }
    }
}

/// Addressing / operand modes. Interpretation depends on the opcode — see
/// the match in [`crate::vm::Vm::step`] and the table in `DESIGN.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Mode {
    M0 = 0,
    M1 = 1,
    M2 = 2,
    M3 = 3,
    M4 = 4,
    M5 = 5,
    M6 = 6,
    M7 = 7,
}

impl Mode {
    pub fn from_u8(v: u8) -> Mode {
        match v & 7 {
            0 => Mode::M0,
            1 => Mode::M1,
            2 => Mode::M2,
            3 => Mode::M3,
            4 => Mode::M4,
            5 => Mode::M5,
            6 => Mode::M6,
            _ => Mode::M7,
        }
    }
}

/// A decoded instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Instr {
    pub opcode: Opcode,
    pub a: u8,
    pub b: u8,
    pub mode: Mode,
    /// First immediate / jump target word.
    pub imm: u16,
    /// Second immediate word (only `LDI Dd, #imm32`).
    pub imm2: u16,
}

/// Instruction decode errors.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeErr {
    BadOpcode(u8),
    Truncated,
}

impl Instr {
    pub fn new(opcode: Opcode, a: u8, b: u8, mode: Mode) -> Self {
        Self {
            opcode,
            a,
            b,
            mode,
            imm: 0,
            imm2: 0,
        }
    }

    pub fn with_imm(opcode: Opcode, a: u8, b: u8, mode: Mode, imm: u16) -> Self {
        Self {
            opcode,
            a,
            b,
            mode,
            imm,
            imm2: 0,
        }
    }

    /// Number of 16-bit words this instruction occupies.
    pub fn len_words(&self) -> usize {
        1 + self.extra_words()
    }

    /// Extra immediate words after the first.
    pub fn extra_words(&self) -> usize {
        use Opcode::*;
        match (self.opcode, self.mode) {
            (Ldi, Mode::M1) => 2,
            (Ldi, _) => 1,
            (Jump | Jz | Jnz | Jc | Call, _) => 1,
            (Add | Adc | Sub | Sbb | Cmp | And | Or | Xor, Mode::M2 | Mode::M3) => 1,
            _ => 0,
        }
    }

    /// Encode into instruction words.
    pub fn encode(&self) -> Vec<u16> {
        let w0 = ((self.opcode as u16) << 11)
            | (((self.a & 0xF) as u16) << 7)
            | (((self.b & 0xF) as u16) << 3)
            | (self.mode as u16);
        let mut words = vec![w0];
        match self.extra_words() {
            0 => {}
            1 => words.push(self.imm),
            2 => {
                words.push(self.imm); // low half first
                words.push(self.imm2);
            }
            _ => unreachable!(),
        }
        words
    }

    /// Decode the instruction starting at `words[pos]`.
    pub fn decode(words: &[u16], pos: usize) -> Result<Instr, DecodeErr> {
        let w0 = *words.get(pos).ok_or(DecodeErr::Truncated)?;
        let op_bits = (w0 >> 11) as u8;
        let opcode = Opcode::from_u8(op_bits).ok_or(DecodeErr::BadOpcode(op_bits))?;
        let a = ((w0 >> 7) & 0xF) as u8;
        let b = ((w0 >> 3) & 0xF) as u8;
        let mode = Mode::from_u8((w0 & 7) as u8);
        let mut instr = Instr::new(opcode, a, b, mode);
        match instr.extra_words() {
            0 => {}
            1 => instr.imm = *words.get(pos + 1).ok_or(DecodeErr::Truncated)?,
            2 => {
                instr.imm = *words.get(pos + 1).ok_or(DecodeErr::Truncated)?;
                instr.imm2 = *words.get(pos + 2).ok_or(DecodeErr::Truncated)?;
            }
            _ => unreachable!(),
        }
        Ok(instr)
    }
}

/// The ISA listing of Table 1, grouped by class: `(class, mnemonic,
/// operands)` rows for every one of the 23 instructions.
pub fn table1() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("Arithmetic", "ADD", "Rd, Rs | Dd, Rs | Rd, #imm | Dd, #imm"),
        ("Arithmetic", "ADC", "Rd, Rs | Rd, #imm (carry)"),
        ("Arithmetic", "SUB", "Rd, Rs | Dd, Rs | Rd, #imm | Dd, #imm"),
        ("Arithmetic", "SBB", "Rd, Rs | Rd, #imm (borrow)"),
        ("Arithmetic", "CMP", "Rd, Rs | Rd, #imm"),
        ("Arithmetic", "MUL", "Rd, Rs (low) | Rd, Rs (high)"),
        ("Logical", "AND", "Rd, Rs | Rd, #imm"),
        ("Logical", "OR", "Rd, Rs | Rd, #imm"),
        ("Logical", "XOR", "Rd, Rs | Rd, #imm"),
        ("Logical", "LSL", "Rd, Rs | Rd, #n"),
        ("Logical", "LSR", "Rd, Rs | Rd, #n"),
        ("Logical", "ASR", "Rd, Rs | Rd, #n"),
        ("Logical", "ROR", "Rd, Rs | Rd, #n"),
        (
            "Control/Data",
            "MOVE",
            "Rd, Rs | Dd, Rs | Rd, Ds(lo/hi) | Dd, Ds | Dd, Rs:Rs+1",
        ),
        ("Control/Data", "LDI", "Rd, #imm16 | Dd, #imm32"),
        ("Control/Data", "LDM", "Rd, [Ds] (byte/word, ±post-inc)"),
        ("Control/Data", "STM", "Rs, [Dd] (byte/word, ±post-inc)"),
        ("Control/Data", "JUMP", "address"),
        ("Control/Data", "JZ", "address"),
        ("Control/Data", "JNZ", "address"),
        ("Control/Data", "JC", "address"),
        ("Control/Data", "CALL", "address"),
        (
            "Control/Data",
            "RET",
            "(halts when the call stack is empty)",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_23_opcodes() {
        assert_eq!(table1().len(), OPCODE_COUNT);
        assert!(Opcode::from_u8(22).is_some());
        assert!(Opcode::from_u8(23).is_none());
    }

    #[test]
    fn table1_covers_every_paper_sample_instruction() {
        // Every mnemonic the paper's Table 1 shows must exist.
        let ours: Vec<&str> = table1().iter().map(|(_, m, _)| *m).collect();
        for paper in [
            "ADC", "SBB", "SUB", "CMP", "MUL", "AND", "OR", "XOR", "LSL", "LSR", "ASR", "ROR",
            "MOVE", "LDI", "LDM", "STM", "JUMP",
        ] {
            assert!(ours.contains(&paper), "missing {paper}");
        }
    }

    #[test]
    fn encode_decode_roundtrip_all_opcodes() {
        for code in 0..OPCODE_COUNT as u8 {
            let op = Opcode::from_u8(code).unwrap();
            for mode in 0..8u8 {
                let instr = Instr {
                    opcode: op,
                    a: 11,
                    b: 5,
                    mode: Mode::from_u8(mode),
                    imm: 0xBEEF,
                    imm2: 0x1234,
                };
                let words = instr.encode();
                assert_eq!(words.len(), instr.len_words());
                let back = Instr::decode(&words, 0).unwrap();
                assert_eq!(back.opcode, op);
                assert_eq!(back.a, 11);
                assert_eq!(back.b, 5);
                assert_eq!(back.mode, instr.mode);
                if instr.extra_words() >= 1 {
                    assert_eq!(back.imm, 0xBEEF);
                }
                if instr.extra_words() == 2 {
                    assert_eq!(back.imm2, 0x1234);
                }
            }
        }
    }

    #[test]
    fn truncated_stream_detected() {
        let instr = Instr::with_imm(Opcode::Ldi, 0, 0, Mode::M0, 42);
        let words = instr.encode();
        assert_eq!(
            Instr::decode(&words[..1], 0).unwrap_err(),
            DecodeErr::Truncated
        );
    }

    #[test]
    fn bad_opcode_detected() {
        let w = (31u16) << 11;
        assert_eq!(
            Instr::decode(&[w], 0).unwrap_err(),
            DecodeErr::BadOpcode(31)
        );
    }

    #[test]
    fn ldi_d_is_three_words() {
        let instr = Instr {
            opcode: Opcode::Ldi,
            a: 2,
            b: 0,
            mode: Mode::M1,
            imm: 0x5678,
            imm2: 0x1234,
        };
        assert_eq!(instr.len_words(), 3);
        let w = instr.encode();
        let back = Instr::decode(&w, 0).unwrap();
        assert_eq!(((back.imm2 as u32) << 16) | back.imm as u32, 0x1234_5678);
    }

    #[test]
    fn classes_partition_into_three() {
        let mut classes: Vec<&str> = table1().iter().map(|(c, _, _)| *c).collect();
        classes.dedup();
        assert_eq!(classes, vec!["Arithmetic", "Logical", "Control/Data"]);
    }
}
