//! DBDecode — the DBCoder decoder in DynaRisc assembly.
//!
//! Parses the `ULEA` container (magic, version, scheme, original length)
//! and decompresses the LZSS payload (window 4096, lengths 3..=18, flag
//! byte + 8 items — see `ule_compress::lzss`). This is the instruction
//! stream Micr'Olonys archives as *system emblems* (Figure 2a step 5).
//!
//! Register allocation:
//!
//! | reg  | use                          |
//! |------|------------------------------|
//! | R0/R1| 32-bit scratch pair (hi/lo)  |
//! | R2   | current flag byte            |
//! | R3   | items left in group          |
//! | R4   | temp                         |
//! | R5   | literal / token low / dist   |
//! | R6   | token high / match length    |
//! | R7   | copy temp                    |
//! | R10  | remaining output bytes, low  |
//! | R11  | remaining output bytes, high |
//! | D0   | source (archive) pointer     |
//! | D1   | destination pointer          |
//! | D2   | match source pointer         |
//! | D3   | scratch address register     |

use crate::asm::Asm;
use crate::layout::{build_memory, read_output, IN_BASE, OUT_LEN_ADDR};
use crate::programs::{status, ProgError};
use crate::vm::Vm;

/// Container header length (mirrors `ule_compress::container::HEADER_LEN`).
#[allow(dead_code)]
const HEADER_LEN: u16 = 18;
/// Scheme id of LZSS in the container.
const SCHEME_LZSS: u16 = 2;

/// Build the DBDecode instruction stream.
pub fn program() -> Vec<u16> {
    let mut a = Asm::new();
    let err_magic = a.label();
    let err_version = a.label();
    let err_scheme = a.label();
    let main_loop = a.label();
    let group_loop = a.label();
    let do_match = a.label();
    let copy_loop = a.label();
    let next_item = a.label();
    let done = a.label();
    let finish = a.label();

    // --- header checks ---
    a.ldi_d(0, IN_BASE);
    for (i, ch) in b"ULEA".iter().enumerate() {
        let _ = i;
        a.ldm_byte_inc(4, 0);
        a.cmpi(4, *ch as u16);
        a.jnz(err_magic);
    }
    a.ldm_byte_inc(4, 0); // version
    a.cmpi(4, 1);
    a.jnz(err_version);
    a.ldm_byte_inc(4, 0); // scheme
    a.cmpi(4, SCHEME_LZSS);
    a.jnz(err_scheme);
    // original length u64 LE at offset 6; we use the low 32 bits.
    a.ldm_word_inc(10, 0); // len low 16
    a.ldm_word_inc(11, 0); // len high 16
                           // skip len[4..8] and crc32 (4+4 bytes)
    a.addi_d(0, 8);

    // D1 = out_base (u32 LE at 0x18)
    a.ldi_d(3, 0x18);
    a.ldm_word_inc(1, 3); // low half
    a.ldm_word_inc(0, 3); // high half
    a.move_d_pair(1, 0); // D1 = (R0:R1)

    // --- main decode loop ---
    a.bind(main_loop);
    a.pair_test_zero(11, 10, 4);
    a.jz(done);
    a.ldm_byte_inc(2, 0); // flag byte
    a.ldi(3, 8);

    a.bind(group_loop);
    a.pair_test_zero(11, 10, 4);
    a.jz(done);
    a.move_r(4, 2);
    a.andi(4, 1);
    a.jz(do_match);
    // literal
    a.ldm_byte_inc(5, 0);
    a.stm_byte_inc(5, 1);
    a.pair_subi(11, 10, 1);
    a.jump(next_item);

    // match
    a.bind(do_match);
    a.ldm_byte_inc(5, 0); // token low
    a.ldm_byte_inc(6, 0); // token high
    a.lsl_i(6, 8);
    a.or(5, 6); // full token
    a.move_r(6, 5);
    a.andi(5, 0x0FFF);
    a.addi(5, 1); // dist in 1..=4096
    a.lsr_i(6, 12);
    a.addi(6, 3); // len in 3..=18
                  // D2 = D1 - dist (32-bit)
    a.move_r_dlo(1, 1); // R1 = D1 low
    a.move_r_dhi(0, 1); // R0 = D1 high
    a.sub(1, 5);
    a.sbbi(0, 0);
    a.move_d_pair(2, 0); // D2 = (R0:R1)

    a.bind(copy_loop);
    a.ldm_byte_inc(7, 2);
    a.stm_byte_inc(7, 1);
    a.pair_subi(11, 10, 1);
    a.pair_test_zero(11, 10, 4);
    a.jz(done);
    a.subi(6, 1);
    a.jnz(copy_loop);

    a.bind(next_item);
    a.lsr_i(2, 1);
    a.subi(3, 1);
    a.jnz(group_loop);
    a.jump(main_loop);

    // --- epilogue: out_len = original length (re-read from the header) ---
    a.bind(done);
    a.ldi_d(3, (IN_BASE + 6) as u32);
    a.ldm_word_inc(4, 3);
    a.ldm_word_inc(5, 3);
    a.ldi_d(3, OUT_LEN_ADDR);
    a.stm_word_inc(4, 3);
    a.stm_word_inc(5, 3);
    a.ldi(4, status::OK);
    a.jump(finish);

    a.bind(err_magic);
    a.ldi(4, status::BAD_MAGIC);
    a.jump(finish);
    a.bind(err_version);
    a.ldi(4, status::BAD_VERSION);
    a.jump(finish);
    a.bind(err_scheme);
    a.ldi(4, status::BAD_SCHEME);
    a.jump(finish);

    a.bind(finish);
    a.ldi_d(3, 0);
    a.stm_word(4, 3); // status word at address 0
    a.ret();
    a.finish()
}

/// Step budget per input byte (LZSS decode is linear; this is generous).
pub fn step_budget(archive_len: usize, out_len: usize) -> u64 {
    1_000 + 64 * (archive_len as u64 + out_len as u64)
}

/// Run DBDecode on the host DynaRisc VM: `archive` is a `ULEA` container
/// with the LZSS scheme; returns the decompressed bytes.
pub fn run(archive: &[u8]) -> Result<Vec<u8>, ProgError> {
    // The expected output size comes from the container header.
    let out_len = if archive.len() >= 14 {
        u64::from_le_bytes(archive[6..14].try_into().unwrap()) as usize
    } else {
        0
    };
    let (mem, out_base) = build_memory(archive, out_len, &[]);
    let mut vm = Vm::new(program(), mem);
    vm.run(step_budget(archive.len(), out_len))?;
    let st = u16::from_le_bytes([vm.mem[0], vm.mem[1]]);
    if st != status::OK {
        return Err(ProgError::Status(st));
    }
    Ok(read_output(&vm.mem, out_base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_compress::{compress, Scheme};

    fn archive(data: &[u8]) -> Vec<u8> {
        compress(Scheme::Lzss, data)
    }

    #[test]
    fn decodes_simple_text() {
        let data = b"hello hello hello hello hello!";
        assert_eq!(run(&archive(data)).unwrap(), data);
    }

    #[test]
    fn decodes_empty() {
        assert_eq!(run(&archive(b"")).unwrap(), b"");
    }

    #[test]
    fn decodes_sql_like_dump() {
        let mut data = Vec::new();
        for i in 0..400 {
            data.extend_from_slice(
                format!("{}\t{}\tCustomer#{:09}\t{}\n", i, i * 31 % 25, i, 1000 - i).as_bytes(),
            );
        }
        assert_eq!(run(&archive(&data)).unwrap(), data);
    }

    #[test]
    fn decodes_overlapping_runs() {
        let data = vec![b'z'; 5000];
        assert_eq!(run(&archive(&data)).unwrap(), data);
    }

    #[test]
    fn decodes_binary() {
        let data: Vec<u8> = (0..3000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
            .collect();
        assert_eq!(run(&archive(&data)).unwrap(), data);
    }

    #[test]
    fn matches_native_decoder_exactly() {
        let data = b"The quick brown fox jumps over the lazy dog. The quick brown fox!";
        let arc = archive(data);
        let native = ule_compress::decompress(&arc).unwrap();
        let emulated = run(&arc).unwrap();
        assert_eq!(native, emulated);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut arc = archive(b"data");
        arc[0] = b'X';
        assert_eq!(run(&arc).unwrap_err(), ProgError::Status(status::BAD_MAGIC));
    }

    #[test]
    fn rejects_wrong_scheme() {
        let arc = compress(Scheme::Lza, b"not lzss");
        assert_eq!(
            run(&arc).unwrap_err(),
            ProgError::Status(status::BAD_SCHEME)
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let mut arc = archive(b"data");
        arc[4] = 7;
        assert_eq!(
            run(&arc).unwrap_err(),
            ProgError::Status(status::BAD_VERSION)
        );
    }

    #[test]
    fn program_is_compact_enough_for_system_emblems() {
        // The whole decoder must comfortably fit one emblem as bytes.
        let words = program();
        assert!(words.len() < 512, "dbdecode is {} words", words.len());
    }
}
