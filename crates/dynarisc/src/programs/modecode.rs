//! MODecode — the MOCoder emblem reader in DynaRisc assembly.
//!
//! Reads a scanned emblem (as a flat array of pixel intensities, exactly
//! what the Bootstrap instructs the restoring user to prepare with
//! "standard image handling libraries"), samples the cell grid, reverses
//! the self-clocking cell code, and de-interleaves the inner-RS blocks.
//!
//! Scope note (`DESIGN.md` §6): this archived decoder handles clean scans
//! — the paper's film experiments decoded "without any errors". Damaged
//! media go through the native MOCoder decoder with full Reed–Solomon
//! correction; porting Berlekamp–Massey to DynaRisc is listed as future
//! work, as the paper itself defers richer DBCoder/MOCoder features.
//!
//! Parameters (u16 LE words at `layout::PARAM_BASE`):
//!
//! | #  | meaning                                        |
//! |----|------------------------------------------------|
//! | 0  | scan width in pixels                           |
//! | 1  | scan height in pixels                          |
//! | 2  | content cols (cells)                           |
//! | 3  | content rows (cells)                           |
//! | 4  | cell pitch in pixels                           |
//! | 5  | origin: offset of content cell (0,0) in pixels |
//! | 6  | inner RS block count                           |
//! | 7  | emblem x offset within the scan                |
//! | 8  | emblem y offset within the scan                |
//!
//! Output: the 16-byte emblem header followed by the de-interleaved
//! payload area (`nblocks × 223` bytes); `out_len = 16 + payload_len`.

use crate::asm::Asm;
use crate::layout::{build_memory, read_output, PARAM_BASE};
use crate::programs::{status, ProgError};
use crate::vm::Vm;

/// Host-side parameter block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModecodeParams {
    pub width: u16,
    pub height: u16,
    pub cols: u16,
    pub rows: u16,
    pub cell_px: u16,
    pub origin_px: u16,
    pub nblocks: u16,
    pub xoff: u16,
    pub yoff: u16,
}

impl ModecodeParams {
    pub fn to_words(self) -> [u16; 9] {
        [
            self.width,
            self.height,
            self.cols,
            self.rows,
            self.cell_px,
            self.origin_px,
            self.nblocks,
            self.xoff,
            self.yoff,
        ]
    }
}

/// Build the MODecode instruction stream.
pub fn program() -> Vec<u16> {
    let mut a = Asm::new();
    let sample = a.label();
    let sample_black = a.label();
    let next_cell = a.label();
    let nc_no_wrap = a.label();
    let read_byte = a.label();
    let rb_bit = a.label();
    let hdr_loop = a.label();
    let data_loop = a.label();
    let b_loop = a.label();
    let i_loop = a.label();

    // ---- parameter load ----
    a.ldi_d(3, PARAM_BASE);
    a.ldm_word_inc(15, 3); // width
    a.ldm_word_inc(4, 3); // height (unused)
    a.ldm_word_inc(9, 3); // cols
    a.ldm_word_inc(4, 3); // rows (unused)
    a.ldm_word_inc(14, 3); // cell_px
    a.ldm_word_inc(5, 3); // origin
    a.ldm_word_inc(8, 3); // nblocks
    a.ldm_word_inc(12, 3); // xoff
    a.ldm_word_inc(13, 3); // yoff
                           // base_x = xoff + origin + cell/2 ; base_y = yoff + origin + cell/2
    a.move_r(4, 14);
    a.lsr_i(4, 1);
    a.add(12, 5);
    a.add(12, 4);
    a.add(13, 5);
    a.add(13, 4);
    // D4 = out_base
    a.ldi_d(3, 0x18);
    a.ldm_word_inc(1, 3);
    a.ldm_word_inc(0, 3);
    a.move_d_pair(4, 0);
    a.move_d_d(1, 4);

    // ---- header: 16 bytes from content row 1 ----
    a.ldi(2, 0); // cx
    a.ldi(3, 1); // cy
    a.ldi(11, 16);
    a.bind(hdr_loop);
    a.call(read_byte);
    a.stm_byte_inc(6, 1);
    a.subi(11, 1);
    a.jnz(hdr_loop);

    // ---- data region: nblocks*255 coded bytes from rows 4.. ----
    // Save nblocks at scratch 0x02 for phase B.
    a.ldi_d(3, 2);
    a.stm_word(8, 3);
    a.ldi(4, 255);
    a.mul(8, 4); // coded_total (fits 16 bits for all geometries)
                 // D6 = codedbase = out_base + 16 + coded_total
    a.move_d_d(6, 4);
    a.addi_d(6, 16);
    a.add_d_r(6, 8);
    a.move_d_d(1, 6);
    a.ldi(2, 0);
    a.ldi(3, 4);
    a.bind(data_loop);
    a.call(read_byte);
    a.stm_byte_inc(6, 1);
    a.subi(8, 1);
    a.jnz(data_loop);

    // ---- phase B: de-interleave, dropping block parity ----
    a.ldi_d(3, 2);
    a.ldm_word(4, 3); // nblocks
    a.move_d_d(1, 4);
    a.addi_d(1, 16); // payload dst
    a.ldi(11, 0); // b
    a.bind(b_loop);
    a.ldi(10, 0); // i
    a.bind(i_loop);
    a.move_r(0, 10);
    a.mul(0, 4); // i * nblocks
    a.add(0, 11); // + b
    a.move_d_d(2, 6);
    a.add_d_r(2, 0);
    a.ldm_byte(5, 2);
    a.stm_byte_inc(5, 1);
    a.addi(10, 1);
    a.cmpi(10, 223);
    a.jnz(i_loop);
    a.addi(11, 1);
    a.cmp(11, 4);
    a.jnz(b_loop);

    // ---- out_len = 16 + payload_len (u32 at out_base+6) ----
    a.move_d_d(2, 4);
    a.addi_d(2, 6);
    a.ldm_word_inc(1, 2);
    a.ldm_word(0, 2);
    a.addi(1, 16);
    a.adci(0, 0);
    a.ldi_d(3, 0x14);
    a.stm_word_inc(1, 3);
    a.stm_word(0, 3);
    a.ldi(4, status::OK);
    a.ldi_d(3, 0);
    a.stm_word(4, 3);
    a.ret();

    // ---- subroutine: sample(R0=cx, R1=cy) -> R0 level; clobbers R1,R4,R5,D5
    a.bind(sample);
    a.mul(0, 14); // cx*cell
    a.add(0, 12); // + base_x
    a.move_r(4, 1);
    a.mul(4, 14); // cy*cell
    a.add(4, 13); // + base_y  => py
    a.move_r(5, 4);
    a.mul(5, 15); // low(py*w)
    a.mul_hi(4, 15); // high(py*w)
    a.add(5, 0);
    a.adci(4, 0); // + px
    a.addi(5, 0x40);
    a.adci(4, 0); // + IN_BASE
    a.move_d_pair(5, 4); // D5 = (R4:R5)
    a.ldm_byte(0, 5);
    a.cmpi(0, 128);
    a.jc(sample_black);
    a.ldi(0, 1);
    a.ret();
    a.bind(sample_black);
    a.ldi(0, 0);
    a.ret();

    // ---- subroutine: next_cell -> R0 level at (cx,cy), advances cx/cy
    a.bind(next_cell);
    a.move_r(0, 2);
    a.move_r(1, 3);
    a.call(sample);
    a.addi(2, 1);
    a.cmp(2, 9);
    a.jnz(nc_no_wrap);
    a.ldi(2, 0);
    a.addi(3, 1);
    a.bind(nc_no_wrap);
    a.ret();

    // ---- subroutine: read_byte -> R6 (8 bits, MSB first); clobbers R0,R1,R4,R5,R7,R10
    a.bind(read_byte);
    a.ldi(6, 0);
    a.ldi(7, 8);
    a.bind(rb_bit);
    a.call(next_cell);
    a.move_r(10, 0); // h1
    a.call(next_cell);
    a.xor(0, 10); // bit = h1 ^ h2
    a.lsl_i(6, 1);
    a.or(6, 0);
    a.subi(7, 1);
    a.jnz(rb_bit);
    a.ret();

    a.finish()
}

/// Step budget for a given geometry (generous: ~60 instructions per cell).
pub fn step_budget(params: &ModecodeParams) -> u64 {
    let cells = params.cols as u64 * params.rows as u64;
    200_000 + 120 * cells
}

/// Run MODecode on the host VM. `pixels` is the row-major scan (1 byte per
/// pixel). Returns `header_bytes(16) ++ payload_area(nblocks*223)`.
pub fn run(pixels: &[u8], params: &ModecodeParams) -> Result<Vec<u8>, ProgError> {
    assert_eq!(pixels.len(), params.width as usize * params.height as usize);
    let n = params.nblocks as usize;
    // The program parks its coded-byte scratch at out_base + 16 + n*255 and
    // fills another n*255 bytes there before de-interleaving downward.
    let max_out = 16 + 2 * n * 255 + 64;
    let (mem, out_base) = build_memory(pixels, max_out, &params.to_words());
    let mut vm = Vm::new(program(), mem);
    vm.run(step_budget(params))?;
    let st = u16::from_le_bytes([vm.mem[0], vm.mem[1]]);
    if st != status::OK {
        return Err(ProgError::Status(st));
    }
    Ok(read_output(&vm.mem, out_base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_emblem::geometry::{EDGE_CELLS, QUIET_CELLS};
    use ule_emblem::{encode_emblem, EmblemGeometry, EmblemHeader, EmblemKind};

    fn params_for(geom: &EmblemGeometry, width: u16, height: u16) -> ModecodeParams {
        ModecodeParams {
            width,
            height,
            cols: geom.cols as u16,
            rows: geom.rows as u16,
            cell_px: geom.cell_px as u16,
            origin_px: ((QUIET_CELLS + EDGE_CELLS) * geom.cell_px) as u16,
            nblocks: geom.rs_blocks() as u16,
            xoff: 0,
            yoff: 0,
        }
    }

    #[test]
    fn reads_pristine_emblem_exactly() {
        let geom = EmblemGeometry::test_small();
        let payload: Vec<u8> = (0..geom.payload_capacity())
            .map(|i| (i as u8).wrapping_mul(73).wrapping_add(5))
            .collect();
        let header = EmblemHeader::new(
            EmblemKind::Data,
            2,
            0,
            payload.len() as u32,
            payload.len() as u32,
        );
        let img = encode_emblem(&geom, &header, &payload);
        let p = params_for(&geom, img.width() as u16, img.height() as u16);
        let out = run(img.as_bytes(), &p).unwrap();
        assert_eq!(&out[..16], &header.to_bytes());
        assert_eq!(&out[16..16 + payload.len()], &payload[..]);
    }

    #[test]
    fn short_payload_reports_its_length() {
        let geom = EmblemGeometry::test_small();
        let payload = b"short payload".to_vec();
        let header = EmblemHeader::new(
            EmblemKind::System,
            0,
            0,
            payload.len() as u32,
            payload.len() as u32,
        );
        let img = encode_emblem(&geom, &header, &payload);
        let p = params_for(&geom, img.width() as u16, img.height() as u16);
        let out = run(img.as_bytes(), &p).unwrap();
        // out_len = 16 + payload_len from the decoded header
        assert_eq!(out.len(), 16 + payload.len());
        assert_eq!(&out[16..], &payload[..]);
    }

    #[test]
    fn matches_native_emblem_decoder() {
        let geom = EmblemGeometry::test_small();
        let payload: Vec<u8> = (0..500).map(|i| (i % 251) as u8).collect();
        let header = EmblemHeader::new(
            EmblemKind::Data,
            1,
            0,
            payload.len() as u32,
            payload.len() as u32,
        );
        let img = encode_emblem(&geom, &header, &payload);
        // Native path
        let (nh, np, _) = ule_emblem::decode_emblem(&geom, &img).unwrap();
        // Emulated path
        let p = params_for(&geom, img.width() as u16, img.height() as u16);
        let out = run(img.as_bytes(), &p).unwrap();
        let eh = EmblemHeader::from_bytes(&out[..16]).unwrap();
        assert_eq!(nh, eh);
        assert_eq!(np, &out[16..16 + np.len()]);
    }

    #[test]
    fn emblem_at_offset_in_larger_scan() {
        let geom = EmblemGeometry::test_small();
        let payload = vec![0xA7u8; 64];
        let header = EmblemHeader::new(EmblemKind::Data, 0, 0, 64, 64);
        let img = encode_emblem(&geom, &header, &payload);
        // Paste into a larger white canvas at (17, 23).
        let mut canvas = ule_raster::GrayImage::new(img.width() + 50, img.height() + 40, 255);
        ule_raster::draw::blit(&mut canvas, &img, 17, 23);
        let mut p = params_for(&geom, canvas.width() as u16, canvas.height() as u16);
        p.xoff = 17;
        p.yoff = 23;
        let out = run(canvas.as_bytes(), &p).unwrap();
        assert_eq!(&out[16..16 + 64], &payload[..]);
    }

    #[test]
    fn program_is_compact() {
        let words = program();
        assert!(words.len() < 400, "modecode is {} words", words.len());
    }
}
