//! The archived decoders, written in DynaRisc assembly (system **S6**).
//!
//! These are the instruction streams Micr'Olonys stores on the medium
//! (Figure 2a, steps 4–6):
//!
//! * [`dbdecode`] — DBCoder's decoder (ULEA container + LZSS), archived as
//!   *system emblems*;
//! * [`modecode`] — MOCoder's decoder (emblem cell sampling + the
//!   self-clocking cell code + de-interleaving), archived as letter pages
//!   in the Bootstrap document since it must run *before* any emblem can
//!   be read.
//!
//! Each module exposes the raw program (`program()`) and a host-side
//! runner that builds the memory image, executes the VM and extracts the
//! output. The same binaries run under the nested VeRisc emulator in
//! `ule-verisc` — restoring data without any native decoder.

pub mod dbdecode;
pub mod modecode;

use crate::vm::VmError;

/// Errors from running an archived program on the host VM.
#[derive(Debug, PartialEq, Eq)]
pub enum ProgError {
    /// VM-level failure (memory fault, step limit, …).
    Vm(VmError),
    /// The program reported a failure status word.
    Status(u16),
}

impl std::fmt::Display for ProgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgError::Vm(e) => write!(f, "vm error: {e}"),
            ProgError::Status(s) => write!(f, "program reported status {s}"),
        }
    }
}

impl std::error::Error for ProgError {}

impl From<VmError> for ProgError {
    fn from(e: VmError) -> Self {
        ProgError::Vm(e)
    }
}

/// Program status codes (written to data address 0).
pub mod status {
    pub const OK: u16 = 0;
    pub const BAD_MAGIC: u16 = 1;
    pub const BAD_SCHEME: u16 = 2;
    pub const BAD_VERSION: u16 = 3;
}
