//! The threaded-code DynaRisc engine: pre-decode once, dispatch through
//! function pointers, no per-step `match`.
//!
//! [`crate::vm::Vm`] re-decodes the instruction word at every step — the
//! honest mechanisation of the archived walkthrough, and the *reference
//! semantics*. This module trades that transparency for throughput the way
//! processor-based emulators do: a compile pass walks the program image
//! once and lowers **every word index** into a `Slot` — a decoded-operand
//! struct carrying a handler function pointer — and the dispatch loop is
//! just `(slot.exec)(vm, slot)`. Compiling at every word index (not just
//! instruction starts) matters because DynaRisc jump targets are arbitrary
//! word positions: a branch may land in the middle of an immediate, and the
//! interpreter would happily re-decode from there. The threaded engine must
//! agree bit-for-bit, so it pre-decodes those overlapping readings too.
//!
//! Parity contract (enforced by `tests/conformance.rs` fixtures and the
//! `dynarisc_diff` fuzz target): for any program image, data memory image
//! and fuel budget, [`ThreadedVm`] and [`crate::vm::Vm`] produce identical
//! [`MachineState`]s and identical `run` results — including fault
//! variants, fault ordering (partial `STM` word stores), and the rule that
//! `PcFault`/`Decode` do **not** count a step while `MemFault`/
//! `CallOverflow` do.

use crate::isa::{DecodeErr, Instr, Mode, Opcode};
use crate::vm::{Flags, MachineState, VmError, CALL_STACK_DEPTH};
use std::sync::Arc;

/// Handler signature: executes one pre-decoded slot. The slot is passed by
/// value (it is `Copy`) so handlers never re-borrow the code array.
type Handler = fn(&mut ThreadedVm, Slot) -> Result<(), VmError>;

/// One pre-decoded word position: handler + flattened operands.
#[derive(Clone, Copy)]
struct Slot {
    exec: Handler,
    /// `a` register field (full 4 bits).
    a: u8,
    /// `b` register field (full 4 bits) — also the shift count for the
    /// immediate-count shift forms.
    b: u8,
    /// `a & 7`: pointer-register index for `D`-destination forms.
    da: u8,
    /// `b & 7`: pointer-register index for `D`-source forms.
    db: u8,
    /// First immediate / jump target word.
    imm: u16,
    /// `(imm2 << 16) | imm` — the 32-bit `LDI Dd` immediate. Doubles as
    /// the offending opcode bits for `BadOpcode` fault slots.
    imm32: u32,
    /// Word index of the next sequential instruction.
    next_pc: u32,
}

/// A program image compiled to threaded code, shareable across VM
/// instances (and threads — slots are plain data plus `fn` pointers).
///
/// Compile once, then [`instantiate`](ThreadedImage::instantiate) one VM
/// per independent input; this is what the per-frame parallel emulated
/// restore fan-out does with the MODecode image.
#[derive(Clone)]
pub struct ThreadedImage {
    code: Arc<[Slot]>,
}

impl ThreadedImage {
    /// Lower a program image into threaded code. Never fails: undecodable
    /// word positions compile to fault slots that reproduce the
    /// interpreter's lazy `Decode` error if (and only if) reached.
    pub fn compile(program: &[u16]) -> Self {
        let code: Vec<Slot> = (0..program.len())
            .map(|pos| compile_slot(program, pos))
            .collect();
        Self { code: code.into() }
    }

    /// Number of program words (= number of slots).
    pub fn len_words(&self) -> usize {
        self.code.len()
    }

    /// A fresh machine over this image with the given data memory.
    pub fn instantiate(&self, mem: Vec<u8>) -> ThreadedVm {
        ThreadedVm {
            regs: [0; 16],
            ptrs: [0; 8],
            flags: Flags::default(),
            mem,
            code: Arc::clone(&self.code),
            pc: 0,
            call_stack: Vec::with_capacity(CALL_STACK_DEPTH),
            steps: 0,
            halted: false,
        }
    }
}

/// A DynaRisc machine running threaded code. Same architectural state as
/// [`crate::vm::Vm`]; only the dispatch differs.
pub struct ThreadedVm {
    pub regs: [u16; 16],
    pub ptrs: [u32; 8],
    pub flags: Flags,
    pub mem: Vec<u8>,
    code: Arc<[Slot]>,
    pc: usize,
    call_stack: Vec<usize>,
    steps: u64,
    halted: bool,
}

impl ThreadedVm {
    /// Compile `program` and create a machine — drop-in for
    /// [`crate::vm::Vm::new`].
    pub fn new(program: Vec<u16>, mem: Vec<u8>) -> Self {
        ThreadedImage::compile(&program).instantiate(mem)
    }

    pub fn halted(&self) -> bool {
        self.halted
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Full architectural snapshot for differential comparison.
    pub fn state(&self) -> MachineState {
        MachineState {
            regs: self.regs,
            ptrs: self.ptrs,
            flags: self.flags,
            pc: self.pc,
            steps: self.steps,
            halted: self.halted,
            call_stack: self.call_stack.clone(),
            mem: self.mem.clone(),
        }
    }

    /// Run until halt or `max_steps`. Returns executed step count.
    /// Byte-identical contract to [`crate::vm::Vm::run`].
    pub fn run(&mut self, max_steps: u64) -> Result<u64, VmError> {
        let start = self.steps;
        while !self.halted {
            if self.steps - start >= max_steps {
                return Err(VmError::StepLimit {
                    steps: self.steps - start,
                });
            }
            self.step()?;
        }
        Ok(self.steps - start)
    }

    /// Execute one instruction.
    pub fn step(&mut self) -> Result<(), VmError> {
        if self.halted {
            return Ok(());
        }
        if self.pc >= self.code.len() {
            return Err(VmError::PcFault { pc: self.pc });
        }
        let slot = self.code[self.pc];
        (slot.exec)(self, slot)
    }

    #[inline(always)]
    fn set_zn(&mut self, v: u16) {
        self.flags.z = v == 0;
        self.flags.n = v & 0x8000 != 0;
    }

    #[inline(always)]
    fn load_byte(&self, addr: u32) -> Result<u8, VmError> {
        self.mem
            .get(addr as usize)
            .copied()
            .ok_or(VmError::MemFault { addr, len: 1 })
    }

    #[inline(always)]
    fn load_word(&self, addr: u32) -> Result<u16, VmError> {
        let lo = self.load_byte(addr)?;
        let hi = self.load_byte(addr.wrapping_add(1))?;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    #[inline(always)]
    fn store_byte(&mut self, addr: u32, v: u8) -> Result<(), VmError> {
        match self.mem.get_mut(addr as usize) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(VmError::MemFault { addr, len: 1 }),
        }
    }
}

/// Lower one word position. Overlapping decodings (jump targets inside
/// immediates) are handled for free: every position gets its own slot.
fn compile_slot(words: &[u16], pos: usize) -> Slot {
    let mut slot = Slot {
        exec: op_ret,
        a: 0,
        b: 0,
        da: 0,
        db: 0,
        imm: 0,
        imm32: 0,
        next_pc: 0,
    };
    let instr = match Instr::decode(words, pos) {
        Ok(i) => i,
        Err(DecodeErr::BadOpcode(v)) => {
            slot.exec = op_fault_bad_opcode;
            slot.imm32 = v as u32;
            return slot;
        }
        Err(DecodeErr::Truncated) => {
            slot.exec = op_fault_truncated;
            return slot;
        }
    };
    slot.a = instr.a;
    slot.b = instr.b;
    slot.da = instr.a & 7;
    slot.db = instr.b & 7;
    slot.imm = instr.imm;
    slot.imm32 = ((instr.imm2 as u32) << 16) | instr.imm as u32;
    slot.next_pc = (pos + instr.len_words()) as u32;
    use Opcode::*;
    slot.exec = match (instr.opcode, instr.mode) {
        // ADD/ADC pointer forms ignore carry-in (matching the reference
        // `match`, whose M1/M3 arms never read it).
        (Add | Adc, Mode::M1) => op_add_ptr_reg,
        (Add | Adc, Mode::M3) => op_add_ptr_imm,
        (Add, Mode::M2) => op_add_imm,
        (Add, _) => op_add_reg,
        (Adc, Mode::M2) => op_adc_imm,
        (Adc, _) => op_adc_reg,
        (Sub, Mode::M1) => op_sub_ptr_reg,
        (Sub, Mode::M3) => op_sub_ptr_imm,
        (Sub, Mode::M2) => op_sub_imm,
        (Sub, _) => op_sub_reg,
        // SBB/CMP M3 carry an immediate word on the wire but the reference
        // semantics still take the register operand (only M2 selects imm).
        (Sbb, Mode::M2) => op_sbb_imm,
        (Sbb, _) => op_sbb_reg,
        (Cmp, Mode::M2) => op_cmp_imm,
        (Cmp, _) => op_cmp_reg,
        (Mul, Mode::M1) => op_mul_hi,
        (Mul, _) => op_mul_lo,
        (And, Mode::M2) => op_and_imm,
        (And, _) => op_and_reg,
        (Or, Mode::M2) => op_or_imm,
        (Or, _) => op_or_reg,
        (Xor, Mode::M2) => op_xor_imm,
        (Xor, _) => op_xor_reg,
        (Lsl, Mode::M1) => op_lsl_imm,
        (Lsl, _) => op_lsl_reg,
        (Lsr, Mode::M1) => op_lsr_imm,
        (Lsr, _) => op_lsr_reg,
        (Asr, Mode::M1) => op_asr_imm,
        (Asr, _) => op_asr_reg,
        (Ror, Mode::M1) => op_ror_imm,
        (Ror, _) => op_ror_reg,
        (Move, Mode::M0) => op_move_rr,
        (Move, Mode::M1) => op_move_dr,
        (Move, Mode::M2) => op_move_r_dlo,
        (Move, Mode::M3) => op_move_dd,
        (Move, Mode::M4) => op_move_r_dhi,
        (Move, _) => op_move_d_pair,
        (Ldi, Mode::M1) => op_ldi_d,
        (Ldi, _) => op_ldi_r,
        (Ldm, Mode::M0) => op_ldm_byte,
        (Ldm, Mode::M1) => op_ldm_byte_inc,
        (Ldm, Mode::M2) => op_ldm_word,
        (Ldm, _) => op_ldm_word_inc,
        (Stm, Mode::M0) => op_stm_byte,
        (Stm, Mode::M1) => op_stm_byte_inc,
        (Stm, Mode::M2) => op_stm_word,
        (Stm, _) => op_stm_word_inc,
        (Jump, _) => op_jump,
        (Jz, _) => op_jz,
        (Jnz, _) => op_jnz,
        (Jc, _) => op_jc,
        (Call, _) => op_call,
        (Ret, _) => op_ret,
    };
    slot
}

// ---------------------------------------------------------------------------
// Handlers. Every normal handler counts its step first (the reference
// interpreter increments `steps` after decode, before execution, so
// MemFault/CallOverflow land *after* the increment), then leaves `pc` on
// the faulting instruction on error, else advances it. Fault slots skip
// the increment: the interpreter never got past decode.
// ---------------------------------------------------------------------------

fn op_fault_bad_opcode(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    Err(VmError::Decode {
        pc: vm.pc,
        err: DecodeErr::BadOpcode(s.imm32 as u8),
    })
}

fn op_fault_truncated(vm: &mut ThreadedVm, _s: Slot) -> Result<(), VmError> {
    Err(VmError::Decode {
        pc: vm.pc,
        err: DecodeErr::Truncated,
    })
}

#[inline(always)]
fn alu_add(vm: &mut ThreadedVm, a: usize, rhs: u16, carry_in: u32) {
    let sum = vm.regs[a] as u32 + rhs as u32 + carry_in;
    vm.flags.c = sum > 0xFFFF;
    let v = sum as u16;
    vm.regs[a] = v;
    vm.set_zn(v);
}

#[inline(always)]
fn alu_sub(vm: &mut ThreadedVm, a: usize, rhs: u16, borrow_in: u32, write: bool) {
    let lhs = vm.regs[a] as u32;
    let total = rhs as u32 + borrow_in;
    vm.flags.c = lhs < total;
    let v = lhs.wrapping_sub(total) as u16;
    if write {
        vm.regs[a] = v;
    }
    vm.set_zn(v);
}

fn op_add_reg(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    alu_add(vm, s.a as usize, vm.regs[s.b as usize], 0);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_add_imm(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    alu_add(vm, s.a as usize, s.imm, 0);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_adc_reg(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let carry_in = vm.flags.c as u32;
    alu_add(vm, s.a as usize, vm.regs[s.b as usize], carry_in);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_adc_imm(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let carry_in = vm.flags.c as u32;
    alu_add(vm, s.a as usize, s.imm, carry_in);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_add_ptr_reg(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let da = s.da as usize;
    vm.ptrs[da] = vm.ptrs[da].wrapping_add(vm.regs[s.b as usize] as u32);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_add_ptr_imm(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let da = s.da as usize;
    vm.ptrs[da] = vm.ptrs[da].wrapping_add(s.imm as u32);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_sub_ptr_reg(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let da = s.da as usize;
    vm.ptrs[da] = vm.ptrs[da].wrapping_sub(vm.regs[s.b as usize] as u32);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_sub_ptr_imm(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let da = s.da as usize;
    vm.ptrs[da] = vm.ptrs[da].wrapping_sub(s.imm as u32);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_sub_reg(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    alu_sub(vm, s.a as usize, vm.regs[s.b as usize], 0, true);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_sub_imm(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    alu_sub(vm, s.a as usize, s.imm, 0, true);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_sbb_reg(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let borrow_in = vm.flags.c as u32;
    alu_sub(vm, s.a as usize, vm.regs[s.b as usize], borrow_in, true);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_sbb_imm(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let borrow_in = vm.flags.c as u32;
    alu_sub(vm, s.a as usize, s.imm, borrow_in, true);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_cmp_reg(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    alu_sub(vm, s.a as usize, vm.regs[s.b as usize], 0, false);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_cmp_imm(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    alu_sub(vm, s.a as usize, s.imm, 0, false);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_mul_lo(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let a = s.a as usize;
    let prod = vm.regs[a] as u32 * vm.regs[s.b as usize] as u32;
    let v = prod as u16;
    vm.regs[a] = v;
    vm.set_zn(v);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_mul_hi(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let a = s.a as usize;
    let prod = vm.regs[a] as u32 * vm.regs[s.b as usize] as u32;
    let v = (prod >> 16) as u16;
    vm.regs[a] = v;
    vm.set_zn(v);
    vm.pc = s.next_pc as usize;
    Ok(())
}

macro_rules! logic_handlers {
    ($reg:ident, $imm:ident, $op:tt) => {
        fn $reg(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
            vm.steps += 1;
            let a = s.a as usize;
            let v = vm.regs[a] $op vm.regs[s.b as usize];
            vm.regs[a] = v;
            vm.set_zn(v);
            vm.pc = s.next_pc as usize;
            Ok(())
        }
        fn $imm(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
            vm.steps += 1;
            let a = s.a as usize;
            let v = vm.regs[a] $op s.imm;
            vm.regs[a] = v;
            vm.set_zn(v);
            vm.pc = s.next_pc as usize;
            Ok(())
        }
    };
}

logic_handlers!(op_and_reg, op_and_imm, &);
logic_handlers!(op_or_reg, op_or_imm, |);
logic_handlers!(op_xor_reg, op_xor_imm, ^);

/// Shared shift body. `count == 0` leaves the value *and* the carry flag
/// untouched (Z/N still update) — reference semantics.
#[inline(always)]
fn shift(vm: &mut ThreadedVm, a: usize, count: u32, op: Opcode) {
    let x = vm.regs[a];
    let v = if count == 0 {
        x
    } else {
        match op {
            Opcode::Lsl => {
                vm.flags.c = (x >> (16 - count)) & 1 != 0;
                x << count
            }
            Opcode::Lsr => {
                vm.flags.c = (x >> (count - 1)) & 1 != 0;
                x >> count
            }
            Opcode::Asr => {
                vm.flags.c = (x >> (count - 1)) & 1 != 0;
                ((x as i16) >> count) as u16
            }
            _ => x.rotate_right(count),
        }
    };
    vm.regs[a] = v;
    vm.set_zn(v);
}

macro_rules! shift_handlers {
    ($imm:ident, $reg:ident, $op:expr) => {
        fn $imm(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
            vm.steps += 1;
            shift(vm, s.a as usize, s.b as u32, $op);
            vm.pc = s.next_pc as usize;
            Ok(())
        }
        fn $reg(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
            vm.steps += 1;
            let count = (vm.regs[s.b as usize] & 15) as u32;
            shift(vm, s.a as usize, count, $op);
            vm.pc = s.next_pc as usize;
            Ok(())
        }
    };
}

shift_handlers!(op_lsl_imm, op_lsl_reg, Opcode::Lsl);
shift_handlers!(op_lsr_imm, op_lsr_reg, Opcode::Lsr);
shift_handlers!(op_asr_imm, op_asr_reg, Opcode::Asr);
shift_handlers!(op_ror_imm, op_ror_reg, Opcode::Ror);

fn op_move_rr(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    vm.regs[s.a as usize] = vm.regs[s.b as usize];
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_move_dr(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    vm.ptrs[s.da as usize] = vm.regs[s.b as usize] as u32;
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_move_r_dlo(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    vm.regs[s.a as usize] = vm.ptrs[s.db as usize] as u16;
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_move_dd(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    vm.ptrs[s.da as usize] = vm.ptrs[s.db as usize];
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_move_r_dhi(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    vm.regs[s.a as usize] = (vm.ptrs[s.db as usize] >> 16) as u16;
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_move_d_pair(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let b = s.b as usize;
    let hi = vm.regs[b] as u32;
    let lo = vm.regs[(b + 1) & 15] as u32;
    vm.ptrs[s.da as usize] = (hi << 16) | lo;
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_ldi_r(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    vm.regs[s.a as usize] = s.imm;
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_ldi_d(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    vm.ptrs[s.da as usize] = s.imm32;
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_ldm_byte(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let addr = vm.ptrs[s.db as usize];
    vm.regs[s.a as usize] = vm.load_byte(addr)? as u16;
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_ldm_byte_inc(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let db = s.db as usize;
    let addr = vm.ptrs[db];
    vm.regs[s.a as usize] = vm.load_byte(addr)? as u16;
    vm.ptrs[db] = addr.wrapping_add(1);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_ldm_word(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let addr = vm.ptrs[s.db as usize];
    vm.regs[s.a as usize] = vm.load_word(addr)?;
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_ldm_word_inc(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let db = s.db as usize;
    let addr = vm.ptrs[db];
    vm.regs[s.a as usize] = vm.load_word(addr)?;
    vm.ptrs[db] = addr.wrapping_add(2);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_stm_byte(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let addr = vm.ptrs[s.db as usize];
    let v = vm.regs[s.a as usize];
    vm.store_byte(addr, v as u8)?;
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_stm_byte_inc(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let db = s.db as usize;
    let addr = vm.ptrs[db];
    let v = vm.regs[s.a as usize];
    vm.store_byte(addr, v as u8)?;
    vm.ptrs[db] = addr.wrapping_add(1);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_stm_word(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let addr = vm.ptrs[s.db as usize];
    let v = vm.regs[s.a as usize];
    // Low byte first: a fault on the high byte leaves the low byte
    // written, exactly like the reference interpreter.
    vm.store_byte(addr, v as u8)?;
    vm.store_byte(addr.wrapping_add(1), (v >> 8) as u8)?;
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_stm_word_inc(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    let db = s.db as usize;
    let addr = vm.ptrs[db];
    let v = vm.regs[s.a as usize];
    vm.store_byte(addr, v as u8)?;
    vm.store_byte(addr.wrapping_add(1), (v >> 8) as u8)?;
    vm.ptrs[db] = addr.wrapping_add(2);
    vm.pc = s.next_pc as usize;
    Ok(())
}

fn op_jump(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    vm.pc = s.imm as usize;
    Ok(())
}

fn op_jz(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    vm.pc = if vm.flags.z {
        s.imm as usize
    } else {
        s.next_pc as usize
    };
    Ok(())
}

fn op_jnz(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    vm.pc = if !vm.flags.z {
        s.imm as usize
    } else {
        s.next_pc as usize
    };
    Ok(())
}

fn op_jc(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    vm.pc = if vm.flags.c {
        s.imm as usize
    } else {
        s.next_pc as usize
    };
    Ok(())
}

fn op_call(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    if vm.call_stack.len() >= CALL_STACK_DEPTH {
        return Err(VmError::CallOverflow);
    }
    vm.call_stack.push(s.next_pc as usize);
    vm.pc = s.imm as usize;
    Ok(())
}

fn op_ret(vm: &mut ThreadedVm, s: Slot) -> Result<(), VmError> {
    vm.steps += 1;
    match vm.call_stack.pop() {
        Some(ret) => vm.pc = ret,
        None => vm.halted = true,
    }
    let _ = s;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::vm::Vm;

    /// Run the same (program, mem, fuel) on both engines and insist on
    /// identical run results and identical architectural state.
    fn diff_run(program: Vec<u16>, mem: Vec<u8>, fuel: u64) -> (ThreadedVm, Result<u64, VmError>) {
        let mut reference = Vm::new(program.clone(), mem.clone());
        let ref_result = reference.run(fuel);
        let mut threaded = ThreadedVm::new(program, mem);
        let thr_result = threaded.run(fuel);
        assert_eq!(ref_result, thr_result, "run results diverge");
        assert_eq!(reference.state(), threaded.state(), "states diverge");
        (threaded, thr_result)
    }

    fn diff_asm(build: impl FnOnce(&mut Asm), mem: Vec<u8>) -> ThreadedVm {
        let mut a = Asm::new();
        build(&mut a);
        a.ret();
        diff_run(a.finish(), mem, 1_000_000).0
    }

    #[test]
    fn arithmetic_and_flags_agree() {
        let vm = diff_asm(
            |a| {
                a.ldi(0, 0xFFFF);
                a.addi(0, 1); // carry + zero
                a.ldi(1, 0x0001);
                a.adci(1, 0); // carry chains
                a.ldi(2, 5);
                a.cmpi(2, 9); // borrow, no write
                a.ldi(3, 1234);
                a.ldi(4, 5678);
                a.mul(3, 4);
            },
            vec![],
        );
        assert_eq!(vm.regs[0], 0);
        assert_eq!(vm.regs[1], 2);
        assert_eq!(vm.regs[2], 5);
        assert_eq!(vm.regs[3], (1234u32 * 5678) as u16);
    }

    #[test]
    fn shifts_and_zero_count_agree() {
        let vm = diff_asm(
            |a| {
                a.ldi(0, 0x8001);
                a.lsl_i(0, 1);
                a.ldi(1, 0x8001);
                a.lsr_i(1, 1);
                a.ldi(2, 0x8001);
                a.asr_i(2, 1);
                a.ldi(3, 0x8001);
                a.ror_i(3, 4);
                // Register-count shift with count 0: no value/carry change.
                a.ldi(4, 0xABCD);
                a.ldi(5, 0);
                a.lsl(4, 5);
            },
            vec![],
        );
        assert_eq!(vm.regs[0], 0x0002);
        assert_eq!(vm.regs[1], 0x4000);
        assert_eq!(vm.regs[2], 0xC000);
        assert_eq!(vm.regs[3], 0x1800);
        assert_eq!(vm.regs[4], 0xABCD);
    }

    #[test]
    fn memory_and_pointer_ops_agree() {
        let vm = diff_asm(
            |a| {
                a.ldi_d(1, 32);
                a.ldi(0, 0xAB);
                a.stm_byte_inc(0, 1);
                a.ldi(0, 0xCD);
                a.stm_byte_inc(0, 1);
                a.ldi_d(1, 32);
                a.ldm_word(5, 1);
                a.ldi_d(0, 0x0001_0000);
                a.subi_d(0, 0x20);
            },
            vec![0u8; 64],
        );
        assert_eq!(vm.regs[5], 0xCDAB);
        assert_eq!(vm.ptrs[0], 0x0000_FFE0);
    }

    #[test]
    fn loops_calls_and_branches_agree() {
        let mut a = Asm::new();
        let sub = a.label();
        a.ldi(0, 0);
        a.ldi(1, 10);
        let top = a.here();
        a.add(0, 1);
        a.subi(1, 1);
        a.jnz(top);
        a.call(sub);
        a.ret();
        a.bind(sub);
        a.ldi(2, 42);
        a.ret();
        let (vm, _) = diff_run(a.finish(), vec![], 1_000_000);
        assert_eq!(vm.regs[0], 55);
        assert_eq!(vm.regs[2], 42);
        assert!(vm.halted());
    }

    #[test]
    fn mem_fault_agrees_including_partial_word_store() {
        // STM word at mem.len()-1: low byte lands, high byte faults.
        let mut a = Asm::new();
        a.ldi_d(0, 9);
        a.ldi(0, 0xBEEF);
        a.stm_word(0, 0);
        a.ret();
        let program = a.finish();
        let (vm, res) = diff_run(program, vec![0u8; 10], 100);
        assert_eq!(res.unwrap_err(), VmError::MemFault { addr: 10, len: 1 });
        assert_eq!(vm.mem[9], 0xEF, "partial store preserved");
    }

    fn raw_jump(target: u16) -> Vec<u16> {
        Instr::with_imm(Opcode::Jump, 0, 0, Mode::M0, target).encode()
    }

    #[test]
    fn pc_fault_and_step_accounting_agree() {
        // JUMP past the end: PcFault must not count a step.
        let (vm, res) = diff_run(raw_jump(1000), vec![], 100);
        assert_eq!(res.unwrap_err(), VmError::PcFault { pc: 1000 });
        assert_eq!(vm.steps(), 1, "only the JUMP counted");
    }

    #[test]
    fn decode_faults_agree_lazily() {
        // A bad opcode only faults when reached — and does not count a
        // step when it is.
        let bad = (31u16) << 11;
        let mut a = Asm::new();
        a.ldi(0, 7);
        a.ret();
        let mut program = a.finish();
        program.push(bad);
        // Not reached: clean halt on both engines.
        diff_run(program.clone(), vec![], 100).1.unwrap();
        // Reached via jump: Decode fault at the bad word's index.
        let target = program.len() as u16 - 1;
        let mut prog2 = raw_jump(target);
        prog2.resize(target as usize, 0x0000);
        prog2.push(bad);
        let (vm, res) = diff_run(prog2, vec![], 100);
        assert_eq!(
            res.unwrap_err(),
            VmError::Decode {
                pc: target as usize,
                err: DecodeErr::BadOpcode(31)
            }
        );
        assert_eq!(vm.steps(), 1);
    }

    #[test]
    fn truncated_tail_faults_identically() {
        // LDI's immediate word missing at the very end of the image.
        let ldi_w0 = (Opcode::Ldi as u16) << 11;
        let (_, res) = diff_run(vec![ldi_w0], vec![], 100);
        assert_eq!(
            res.unwrap_err(),
            VmError::Decode {
                pc: 0,
                err: DecodeErr::Truncated
            }
        );
    }

    #[test]
    fn jump_into_immediate_reinterprets_identically() {
        // LDI R0, #imm where the immediate word itself decodes as RET;
        // jumping into it must halt both engines the same way.
        let mut program = Vec::new();
        let ret_word = (Opcode::Ret as u16) << 11;
        program.extend(Instr::with_imm(Opcode::Ldi, 0, 0, Mode::M0, ret_word).encode());
        program.extend(Instr::with_imm(Opcode::Jump, 0, 0, Mode::M0, 1).encode());
        let (vm, res) = diff_run(program, vec![], 100);
        assert_eq!(res.unwrap(), 3); // LDI, JUMP, RET-inside-immediate
        assert!(vm.halted());
        assert_eq!(vm.regs[0], ret_word);
    }

    #[test]
    fn step_limit_and_fuel_accounting_agree() {
        let mut a = Asm::new();
        let top = a.here();
        a.jump(top);
        let (_, res) = diff_run(a.finish(), vec![], 100);
        assert_eq!(res.unwrap_err(), VmError::StepLimit { steps: 100 });
    }

    #[test]
    fn call_overflow_agrees() {
        let mut a = Asm::new();
        let top = a.here();
        a.call(top);
        let (_, res) = diff_run(a.finish(), vec![], 100_000);
        assert_eq!(res.unwrap_err(), VmError::CallOverflow);
    }

    #[test]
    fn image_is_shareable_across_instances() {
        let mut a = Asm::new();
        a.ldi_d(0, 0);
        a.ldm_byte(0, 0);
        a.addi(0, 1);
        a.ret();
        let image = ThreadedImage::compile(&a.finish());
        let results: Vec<u16> = (0u8..4)
            .map(|seed| {
                let mut vm = image.instantiate(vec![seed; 4]);
                vm.run(100).unwrap();
                vm.regs[0]
            })
            .collect();
        assert_eq!(results, vec![1, 2, 3, 4]);
    }

    #[test]
    fn archived_decoders_compile_one_slot_per_word() {
        // The real MODecode/DBDecode images are exercised end-to-end by
        // `crates/core`; here, pin that compiling them produces one slot
        // per word.
        let db = crate::programs::dbdecode::program();
        let image = ThreadedImage::compile(&db);
        assert_eq!(image.len_words(), db.len());
        let mo = crate::programs::modecode::program();
        assert_eq!(ThreadedImage::compile(&mo).len_words(), mo.len());
    }
}
