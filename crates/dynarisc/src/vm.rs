//! The DynaRisc interpreter.
//!
//! Architectural state (all of it — this is what the VeRisc-hosted
//! emulator in `ule-verisc` replicates):
//!
//! * `R0..R15` — 16-bit data registers;
//! * `D0..D7` — 32-bit memory pointer registers;
//! * flags C (carry/borrow), Z (zero), N (bit 15);
//! * a bounded internal call stack (depth 256);
//! * byte-addressed data memory (Harvard: programs are separate
//!   16-bit-word streams and cannot be modified at run time).
//!
//! `RET` with an empty call stack halts the machine — the convention that
//! replaces a HALT opcode.

use crate::isa::{DecodeErr, Instr, Mode, Opcode};

/// Maximum call-stack depth.
pub const CALL_STACK_DEPTH: usize = 256;

/// Execution failures.
#[derive(Debug, PartialEq, Eq)]
pub enum VmError {
    /// Data memory access out of bounds.
    MemFault { addr: u32, len: u32 },
    /// PC outside the program.
    PcFault { pc: usize },
    /// Invalid instruction encoding at `pc`.
    Decode { pc: usize, err: DecodeErr },
    /// CALL with a full call stack.
    CallOverflow,
    /// `run` exceeded its step budget.
    StepLimit { steps: u64 },
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::MemFault { addr, len } => write!(f, "memory fault at {addr:#x} (+{len})"),
            VmError::PcFault { pc } => write!(f, "pc {pc} outside program"),
            VmError::Decode { pc, err } => write!(f, "decode error at pc {pc}: {err:?}"),
            VmError::CallOverflow => write!(f, "call stack overflow"),
            VmError::StepLimit { steps } => write!(f, "step limit reached after {steps} steps"),
        }
    }
}

impl std::error::Error for VmError {}

/// Processor flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Flags {
    pub c: bool,
    pub z: bool,
    pub n: bool,
}

/// A full architectural snapshot, for differential engine comparison
/// (`tests/conformance.rs`, the `dynarisc_diff` fuzz target). Two engines
/// agree iff their `MachineState`s are equal after the same run — this
/// includes memory, the call stack, and the step count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineState {
    pub regs: [u16; 16],
    pub ptrs: [u32; 8],
    pub flags: Flags,
    pub pc: usize,
    pub steps: u64,
    pub halted: bool,
    pub call_stack: Vec<usize>,
    pub mem: Vec<u8>,
}

/// A DynaRisc machine instance.
pub struct Vm {
    pub regs: [u16; 16],
    pub ptrs: [u32; 8],
    pub flags: Flags,
    pub mem: Vec<u8>,
    program: Vec<u16>,
    pc: usize,
    call_stack: Vec<usize>,
    steps: u64,
    halted: bool,
}

impl Vm {
    /// Create a machine with the given program and data memory image.
    pub fn new(program: Vec<u16>, mem: Vec<u8>) -> Self {
        Self {
            regs: [0; 16],
            ptrs: [0; 8],
            flags: Flags::default(),
            mem,
            program,
            pc: 0,
            call_stack: Vec::with_capacity(CALL_STACK_DEPTH),
            steps: 0,
            halted: false,
        }
    }

    pub fn halted(&self) -> bool {
        self.halted
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Full architectural snapshot for differential comparison.
    pub fn state(&self) -> MachineState {
        MachineState {
            regs: self.regs,
            ptrs: self.ptrs,
            flags: self.flags,
            pc: self.pc,
            steps: self.steps,
            halted: self.halted,
            call_stack: self.call_stack.clone(),
            mem: self.mem.clone(),
        }
    }

    /// Run until halt or `max_steps`. Returns executed step count.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, VmError> {
        let start = self.steps;
        while !self.halted {
            if self.steps - start >= max_steps {
                return Err(VmError::StepLimit {
                    steps: self.steps - start,
                });
            }
            self.step()?;
        }
        Ok(self.steps - start)
    }

    #[inline]
    fn set_zn(&mut self, v: u16) {
        self.flags.z = v == 0;
        self.flags.n = v & 0x8000 != 0;
    }

    #[inline]
    fn load_byte(&self, addr: u32) -> Result<u8, VmError> {
        self.mem
            .get(addr as usize)
            .copied()
            .ok_or(VmError::MemFault { addr, len: 1 })
    }

    #[inline]
    fn load_word(&self, addr: u32) -> Result<u16, VmError> {
        let lo = self.load_byte(addr)?;
        let hi = self.load_byte(addr.wrapping_add(1))?;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    #[inline]
    fn store_byte(&mut self, addr: u32, v: u8) -> Result<(), VmError> {
        match self.mem.get_mut(addr as usize) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(VmError::MemFault { addr, len: 1 }),
        }
    }

    /// Execute one instruction.
    pub fn step(&mut self) -> Result<(), VmError> {
        if self.halted {
            return Ok(());
        }
        if self.pc >= self.program.len() {
            return Err(VmError::PcFault { pc: self.pc });
        }
        let instr = Instr::decode(&self.program, self.pc)
            .map_err(|err| VmError::Decode { pc: self.pc, err })?;
        let next_pc = self.pc + instr.len_words();
        self.steps += 1;
        let a = instr.a as usize;
        let b = instr.b as usize;
        let da = (instr.a & 7) as usize;
        let db = (instr.b & 7) as usize;
        use Opcode::*;
        match instr.opcode {
            Add | Adc => {
                let carry_in = if instr.opcode == Adc && self.flags.c {
                    1u32
                } else {
                    0
                };
                match instr.mode {
                    Mode::M1 => {
                        self.ptrs[da] = self.ptrs[da].wrapping_add(self.regs[b] as u32);
                    }
                    Mode::M3 => {
                        self.ptrs[da] = self.ptrs[da].wrapping_add(instr.imm as u32);
                    }
                    m => {
                        let rhs = if m == Mode::M2 {
                            instr.imm
                        } else {
                            self.regs[b]
                        };
                        let sum = self.regs[a] as u32 + rhs as u32 + carry_in;
                        self.flags.c = sum > 0xFFFF;
                        let v = sum as u16;
                        self.regs[a] = v;
                        self.set_zn(v);
                    }
                }
            }
            Sub | Sbb | Cmp => match (instr.opcode, instr.mode) {
                (Sub, Mode::M1) => {
                    self.ptrs[da] = self.ptrs[da].wrapping_sub(self.regs[b] as u32);
                }
                (Sub, Mode::M3) => {
                    self.ptrs[da] = self.ptrs[da].wrapping_sub(instr.imm as u32);
                }
                (_, m) => {
                    let borrow_in = if instr.opcode == Sbb && self.flags.c {
                        1u32
                    } else {
                        0
                    };
                    let rhs = if m == Mode::M2 {
                        instr.imm
                    } else {
                        self.regs[b]
                    };
                    let lhs = self.regs[a] as u32;
                    let total = rhs as u32 + borrow_in;
                    self.flags.c = lhs < total;
                    let v = (lhs.wrapping_sub(total)) as u16;
                    if instr.opcode != Cmp {
                        self.regs[a] = v;
                    }
                    self.set_zn(v);
                }
            },
            Mul => {
                let prod = self.regs[a] as u32 * self.regs[b] as u32;
                let v = if instr.mode == Mode::M1 {
                    (prod >> 16) as u16
                } else {
                    prod as u16
                };
                self.regs[a] = v;
                self.set_zn(v);
            }
            And | Or | Xor => {
                let rhs = if instr.mode == Mode::M2 {
                    instr.imm
                } else {
                    self.regs[b]
                };
                let v = match instr.opcode {
                    And => self.regs[a] & rhs,
                    Or => self.regs[a] | rhs,
                    _ => self.regs[a] ^ rhs,
                };
                self.regs[a] = v;
                self.set_zn(v);
            }
            Lsl | Lsr | Asr | Ror => {
                let count = if instr.mode == Mode::M1 {
                    instr.b as u32
                } else {
                    (self.regs[b] & 15) as u32
                };
                let x = self.regs[a];
                let v = if count == 0 {
                    x
                } else {
                    match instr.opcode {
                        Lsl => {
                            self.flags.c = (x >> (16 - count)) & 1 != 0;
                            x << count
                        }
                        Lsr => {
                            self.flags.c = (x >> (count - 1)) & 1 != 0;
                            x >> count
                        }
                        Asr => {
                            self.flags.c = (x >> (count - 1)) & 1 != 0;
                            ((x as i16) >> count) as u16
                        }
                        _ => x.rotate_right(count),
                    }
                };
                self.regs[a] = v;
                self.set_zn(v);
            }
            Move => match instr.mode {
                Mode::M0 => self.regs[a] = self.regs[b],
                Mode::M1 => self.ptrs[da] = self.regs[b] as u32,
                Mode::M2 => self.regs[a] = self.ptrs[db] as u16,
                Mode::M3 => self.ptrs[da] = self.ptrs[db],
                Mode::M4 => self.regs[a] = (self.ptrs[db] >> 16) as u16,
                _ => {
                    // M5: Dd ← (Rb : R[b+1]) — Rb is the high half.
                    let hi = self.regs[b] as u32;
                    let lo = self.regs[(b + 1) & 15] as u32;
                    self.ptrs[da] = (hi << 16) | lo;
                }
            },
            Ldi => match instr.mode {
                Mode::M1 => {
                    self.ptrs[da] = ((instr.imm2 as u32) << 16) | instr.imm as u32;
                }
                _ => self.regs[a] = instr.imm,
            },
            Ldm => {
                let addr = self.ptrs[db];
                match instr.mode {
                    Mode::M0 => self.regs[a] = self.load_byte(addr)? as u16,
                    Mode::M1 => {
                        self.regs[a] = self.load_byte(addr)? as u16;
                        self.ptrs[db] = addr.wrapping_add(1);
                    }
                    Mode::M2 => self.regs[a] = self.load_word(addr)?,
                    _ => {
                        self.regs[a] = self.load_word(addr)?;
                        self.ptrs[db] = addr.wrapping_add(2);
                    }
                }
            }
            Stm => {
                let addr = self.ptrs[db];
                let v = self.regs[a];
                match instr.mode {
                    Mode::M0 => self.store_byte(addr, v as u8)?,
                    Mode::M1 => {
                        self.store_byte(addr, v as u8)?;
                        self.ptrs[db] = addr.wrapping_add(1);
                    }
                    Mode::M2 => {
                        self.store_byte(addr, v as u8)?;
                        self.store_byte(addr.wrapping_add(1), (v >> 8) as u8)?;
                    }
                    _ => {
                        self.store_byte(addr, v as u8)?;
                        self.store_byte(addr.wrapping_add(1), (v >> 8) as u8)?;
                        self.ptrs[db] = addr.wrapping_add(2);
                    }
                }
            }
            Jump => {
                self.pc = instr.imm as usize;
                return Ok(());
            }
            Jz | Jnz | Jc => {
                let take = match instr.opcode {
                    Jz => self.flags.z,
                    Jnz => !self.flags.z,
                    _ => self.flags.c,
                };
                self.pc = if take { instr.imm as usize } else { next_pc };
                return Ok(());
            }
            Call => {
                if self.call_stack.len() >= CALL_STACK_DEPTH {
                    return Err(VmError::CallOverflow);
                }
                self.call_stack.push(next_pc);
                self.pc = instr.imm as usize;
                return Ok(());
            }
            Ret => {
                match self.call_stack.pop() {
                    Some(ret) => self.pc = ret,
                    None => self.halted = true,
                }
                return Ok(());
            }
        }
        self.pc = next_pc;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn run_asm(build: impl FnOnce(&mut Asm), mem: Vec<u8>) -> Vm {
        let mut a = Asm::new();
        build(&mut a);
        a.ret();
        let mut vm = Vm::new(a.finish(), mem);
        vm.run(1_000_000).unwrap();
        vm
    }

    #[test]
    fn add_sets_carry_and_zero() {
        let vm = run_asm(
            |a| {
                a.ldi(0, 0xFFFF);
                a.addi(0, 1);
            },
            vec![],
        );
        assert_eq!(vm.regs[0], 0);
        assert!(vm.flags.c);
        assert!(vm.flags.z);
    }

    #[test]
    fn adc_chains_carry_for_32bit_addition() {
        // 0x0001_FFFF + 0x0000_0001 = 0x0002_0000 as (hi, lo) pairs.
        let vm = run_asm(
            |a| {
                a.ldi(0, 0xFFFF); // lo
                a.ldi(1, 0x0001); // hi
                a.addi(0, 1);
                a.adci(1, 0);
            },
            vec![],
        );
        assert_eq!(vm.regs[0], 0x0000);
        assert_eq!(vm.regs[1], 0x0002);
    }

    #[test]
    fn sub_borrow_and_sbb() {
        // 0x0001_0000 - 1 = 0x0000_FFFF.
        let vm = run_asm(
            |a| {
                a.ldi(0, 0x0000);
                a.ldi(1, 0x0001);
                a.subi(0, 1);
                a.sbbi(1, 0);
            },
            vec![],
        );
        assert_eq!(vm.regs[0], 0xFFFF);
        assert_eq!(vm.regs[1], 0x0000);
    }

    #[test]
    fn cmp_sets_flags_without_writing() {
        let vm = run_asm(
            |a| {
                a.ldi(0, 5);
                a.cmpi(0, 9);
            },
            vec![],
        );
        assert_eq!(vm.regs[0], 5);
        assert!(vm.flags.c, "5 < 9 sets borrow");
        assert!(!vm.flags.z);
    }

    #[test]
    fn mul_low_and_high() {
        let vm = run_asm(
            |a| {
                a.ldi(0, 1234);
                a.ldi(1, 5678);
                a.ldi(2, 1234);
                a.mul(0, 1); // low
                a.mul_hi(2, 1); // high
            },
            vec![],
        );
        let prod = 1234u32 * 5678;
        assert_eq!(vm.regs[0], prod as u16);
        assert_eq!(vm.regs[2], (prod >> 16) as u16);
    }

    #[test]
    fn logical_ops() {
        let vm = run_asm(
            |a| {
                a.ldi(0, 0b1100);
                a.ldi(1, 0b1010);
                a.ldi(2, 0b1100);
                a.ldi(3, 0b1100);
                a.and(0, 1);
                a.or(2, 1);
                a.xor(3, 1);
            },
            vec![],
        );
        assert_eq!(vm.regs[0], 0b1000);
        assert_eq!(vm.regs[2], 0b1110);
        assert_eq!(vm.regs[3], 0b0110);
    }

    #[test]
    fn shifts_and_rotate() {
        let vm = run_asm(
            |a| {
                a.ldi(0, 0x8001);
                a.ldi(1, 0x8001);
                a.ldi(2, 0x8001);
                a.ldi(3, 0x8001);
                a.lsl_i(0, 1);
                a.lsr_i(1, 1);
                a.asr_i(2, 1);
                a.ror_i(3, 4);
            },
            vec![],
        );
        assert_eq!(vm.regs[0], 0x0002);
        assert_eq!(vm.regs[1], 0x4000);
        assert_eq!(vm.regs[2], 0xC000);
        assert_eq!(vm.regs[3], 0x1800);
    }

    #[test]
    fn lsl_carry_out() {
        let vm = run_asm(
            |a| {
                a.ldi(0, 0x8000);
                a.lsl_i(0, 1);
            },
            vec![],
        );
        assert!(vm.flags.c);
        assert!(vm.flags.z);
    }

    #[test]
    fn move_between_register_classes() {
        let vm = run_asm(
            |a| {
                a.ldi(0, 0x1234);
                a.ldi(1, 0x5678);
                a.move_d_pair(0, 0); // D0 = R0:R1 = 0x1234_5678
                a.move_r_dlo(2, 0); // R2 = 0x5678
                a.move_r_dhi(3, 0); // R3 = 0x1234
                a.move_d_d(1, 0); // D1 = D0
                a.move_r_dlo(4, 1);
            },
            vec![],
        );
        assert_eq!(vm.ptrs[0], 0x1234_5678);
        assert_eq!(vm.regs[2], 0x5678);
        assert_eq!(vm.regs[3], 0x1234);
        assert_eq!(vm.regs[4], 0x5678);
    }

    #[test]
    fn ldi_d_loads_32_bits() {
        let vm = run_asm(|a| a.ldi_d(3, 0xDEAD_BEEF), vec![]);
        assert_eq!(vm.ptrs[3], 0xDEAD_BEEF);
    }

    #[test]
    fn memory_load_store_with_postinc() {
        let mem = vec![0u8; 64];
        let vm = run_asm(
            |a| {
                a.ldi_d(0, 0); // src
                a.ldi_d(1, 32); // dst
                a.ldi(0, 0xAB);
                a.stm_byte_inc(0, 1);
                a.ldi(0, 0xCD);
                a.stm_byte_inc(0, 1);
                a.ldi_d(1, 32);
                a.ldm_word(5, 1); // LE: 0xCDAB
            },
            mem,
        );
        assert_eq!(vm.regs[5], 0xCDAB);
        assert_eq!(vm.ptrs[1], 32);
        assert_eq!(vm.mem[32], 0xAB);
        assert_eq!(vm.mem[33], 0xCD);
    }

    #[test]
    fn pointer_add_and_sub() {
        let vm = run_asm(
            |a| {
                a.ldi_d(0, 0x0001_0000);
                a.ldi(0, 0x10);
                a.add_d_r(0, 0);
                a.subi_d(0, 0x20);
            },
            vec![],
        );
        assert_eq!(vm.ptrs[0], 0x0000_FFF0);
    }

    #[test]
    fn loop_with_conditional_jumps() {
        // Sum 1..=10 with a JNZ loop.
        let vm = run_asm(
            |a| {
                a.ldi(0, 0); // acc
                a.ldi(1, 10); // counter
                let top = a.here();
                a.add(0, 1);
                a.subi(1, 1);
                a.jnz(top);
            },
            vec![],
        );
        assert_eq!(vm.regs[0], 55);
    }

    #[test]
    fn call_and_ret() {
        let mut a = Asm::new();
        let sub = a.label();
        a.ldi(0, 1);
        a.call(sub);
        a.ldi(2, 99);
        a.ret(); // halts (stack empty)
        a.bind(sub);
        a.ldi(1, 42);
        a.ret();
        let mut vm = Vm::new(a.finish(), vec![]);
        vm.run(1000).unwrap();
        assert_eq!(vm.regs[0], 1);
        assert_eq!(vm.regs[1], 42);
        assert_eq!(vm.regs[2], 99);
        assert!(vm.halted());
    }

    #[test]
    fn ret_on_empty_stack_halts() {
        let mut a = Asm::new();
        a.ret();
        let mut vm = Vm::new(a.finish(), vec![]);
        let steps = vm.run(10).unwrap();
        assert_eq!(steps, 1);
        assert!(vm.halted());
    }

    #[test]
    fn mem_fault_reported() {
        let mut a = Asm::new();
        a.ldi_d(0, 1000);
        a.ldm_byte(0, 0);
        a.ret();
        let mut vm = Vm::new(a.finish(), vec![0u8; 10]);
        assert_eq!(
            vm.run(10).unwrap_err(),
            VmError::MemFault { addr: 1000, len: 1 }
        );
    }

    #[test]
    fn step_limit_reported() {
        let mut a = Asm::new();
        let top = a.here();
        a.jump(top);
        let mut vm = Vm::new(a.finish(), vec![]);
        assert!(matches!(vm.run(100), Err(VmError::StepLimit { .. })));
    }

    #[test]
    fn call_overflow_detected() {
        let mut a = Asm::new();
        let top = a.here();
        a.call(top);
        let mut vm = Vm::new(a.finish(), vec![]);
        assert_eq!(vm.run(100_000).unwrap_err(), VmError::CallOverflow);
    }
}
