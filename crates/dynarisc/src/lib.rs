//! DynaRisc — the 23-instruction, 16-bit software processor (systems **S5**
//! and **S6** in `DESIGN.md`; paper §3.2 and Table 1).
//!
//! Olonys archives layout decoders by porting them to this fixed,
//! never-extended ISA. The paper's Table 1 lists a 17-instruction sample of
//! the 23-instruction set; this crate completes it (`DESIGN.md` §3.1
//! documents the completion) and provides:
//!
//! * [`isa`] — opcodes, addressing modes, instruction encode/decode;
//! * [`vm`] — the interpreter with `R0..R15` (16-bit data registers),
//!   `D0..D7` (32-bit memory pointer registers), C/Z/N flags, a bounded
//!   internal call stack, and byte-addressed data memory; it is the
//!   *reference* engine — the single `match` in `Vm::step` is the spec;
//! * [`threaded`] — the production engine: the same ISA pre-decoded into
//!   direct-dispatch threaded code (one handler pointer per word
//!   position), proven bit-identical to [`vm`] by conformance fixtures
//!   and a differential fuzz target;
//! * [`asm`] — a label-resolving programmatic assembler plus a
//!   disassembler (the instruction-listing side of Table 1);
//! * [`text_asm`] — a textual assembler accepting the disassembler's
//!   syntax, so archived streams can be audited and re-assembled;
//! * [`layout`] — the host↔program memory calling convention (input and
//!   output regions);
//! * [`programs`] — the decoders the paper stores on the medium, written
//!   in DynaRisc assembly: `dbdecode` (the DBCoder LZSS+container decoder,
//!   stored as *system emblems*) and `modecode` (the MOCoder emblem
//!   reader, stored in the Bootstrap document).
//!
//! The same binaries run on the native VM here and, nested, on the
//! DynaRisc-emulator-written-in-VeRisc in `ule-verisc` — that equivalence
//! is what makes the archive future-proof.

pub mod asm;
pub mod isa;
pub mod layout;
pub mod programs;
pub mod text_asm;
pub mod threaded;
pub mod vm;

pub use asm::Asm;
pub use isa::{Instr, Mode, Opcode};
pub use threaded::{ThreadedImage, ThreadedVm};
pub use vm::{MachineState, Vm, VmError};
