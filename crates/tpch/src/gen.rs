//! dbgen-style data generation for the eight TPC-H tables.
//!
//! Row counts follow the TPC-H specification scaled by `scale`:
//! supplier 10k·SF, part 200k·SF, customer 150k·SF, orders 1.5M·SF,
//! partsupp = 4 per part, lineitem = 1–7 per order, nation 25, region 5.
//! Values use the spec's vocabulary (nation names, part type words,
//! market segments, priorities) and shapes (money with two decimals,
//! dates in 1992–1998, grammar-free comment text).

use crate::rng::Xorshift;

/// One TPC-H table: a name, column names, and string-typed rows (the dump
/// format is textual; types only matter to the columnar codec downstream).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    pub name: &'static str,
    pub columns: Vec<&'static str>,
    pub rows: Vec<Vec<String>>,
}

/// The whole generated database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Database {
    pub tables: Vec<Table>,
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const TYPE_SYL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINERS1: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
const CONTAINERS2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const COLORS: [&str; 12] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
];
const NOUNS: [&str; 12] = [
    "packages",
    "requests",
    "accounts",
    "deposits",
    "foxes",
    "ideas",
    "theodolites",
    "pinto beans",
    "instructions",
    "dependencies",
    "excuses",
    "platelets",
];
const VERBS: [&str; 10] = [
    "sleep",
    "haggle",
    "nag",
    "wake",
    "cajole",
    "detect",
    "integrate",
    "boost",
    "doze",
    "unwind",
];
const ADVERBS: [&str; 8] = [
    "quickly",
    "slowly",
    "carefully",
    "furiously",
    "blithely",
    "daringly",
    "ruthlessly",
    "never",
];

/// Grammar-ish comment text of bounded length.
fn comment(rng: &mut Xorshift, max_words: usize) -> String {
    let n = rng.range(2, max_words as i64) as usize;
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        let word: &str = match i % 3 {
            0 => *rng.pick(&ADVERBS),
            1 => *rng.pick(&NOUNS),
            _ => *rng.pick(&VERBS),
        };
        out.push_str(word);
    }
    out
}

/// Money value with exactly two decimals.
fn money(rng: &mut Xorshift, lo_cents: i64, hi_cents: i64) -> String {
    let cents = rng.range(lo_cents, hi_cents);
    format!("{}.{:02}", cents / 100, (cents % 100).abs())
}

/// Day `base + offset` counted from 1992-01-01, rendered YYYY-MM-DD.
fn date_with_offset(base: i64, offset: i64) -> String {
    let mut days = base + offset;
    let mut year = 1992;
    loop {
        let leap = year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
        let in_year = if leap { 366 } else { 365 };
        if days < in_year {
            break;
        }
        days -= in_year;
        year += 1;
    }
    let leap = year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
    let month_days = [
        31,
        if leap { 29 } else { 28 },
        31,
        30,
        31,
        30,
        31,
        31,
        30,
        31,
        30,
        31,
    ];
    let mut month = 0usize;
    while days >= month_days[month] {
        days -= month_days[month];
        month += 1;
    }
    format!("{year:04}-{:02}-{:02}", month + 1, days + 1)
}

fn phone(rng: &mut Xorshift, nation: usize) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nation,
        rng.range(100, 999),
        rng.range(100, 999),
        rng.range(1000, 9999)
    )
}

fn address(rng: &mut Xorshift) -> String {
    let n = rng.range(8, 24) as usize;
    let mut s = String::with_capacity(n);
    for _ in 0..n {
        let c = b"abcdefghijklmnopqrstuvwxyz0123456789 ,"[rng.range(0, 37) as usize];
        s.push(c as char);
    }
    s.trim().to_string()
}

impl Database {
    /// Generate all eight tables at the given scale factor.
    pub fn generate(scale: f64, seed: u64) -> Database {
        let mut rng = Xorshift::new(seed ^ 0x7C07_7C07);
        let n_supplier = ((10_000.0 * scale).round() as usize).max(1);
        let n_part = ((200_000.0 * scale).round() as usize).max(1);
        let n_customer = ((150_000.0 * scale).round() as usize).max(1);
        let n_orders = ((1_500_000.0 * scale).round() as usize).max(1);

        let region = Table {
            name: "region",
            columns: vec!["r_regionkey", "r_name", "r_comment"],
            rows: REGIONS
                .iter()
                .enumerate()
                .map(|(i, name)| vec![i.to_string(), name.to_string(), comment(&mut rng, 8)])
                .collect(),
        };
        let nation = Table {
            name: "nation",
            columns: vec!["n_nationkey", "n_name", "n_regionkey", "n_comment"],
            rows: NATIONS
                .iter()
                .enumerate()
                .map(|(i, (name, r))| {
                    vec![
                        i.to_string(),
                        name.to_string(),
                        r.to_string(),
                        comment(&mut rng, 10),
                    ]
                })
                .collect(),
        };
        let supplier = Table {
            name: "supplier",
            columns: vec![
                "s_suppkey",
                "s_name",
                "s_address",
                "s_nationkey",
                "s_phone",
                "s_acctbal",
                "s_comment",
            ],
            rows: (1..=n_supplier)
                .map(|k| {
                    let nat = rng.range(0, 24) as usize;
                    vec![
                        k.to_string(),
                        format!("Supplier#{k:09}"),
                        address(&mut rng),
                        nat.to_string(),
                        phone(&mut rng, nat),
                        money(&mut rng, -99_999, 999_999),
                        comment(&mut rng, 12),
                    ]
                })
                .collect(),
        };
        let customer = Table {
            name: "customer",
            columns: vec![
                "c_custkey",
                "c_name",
                "c_address",
                "c_nationkey",
                "c_phone",
                "c_acctbal",
                "c_mktsegment",
                "c_comment",
            ],
            rows: (1..=n_customer)
                .map(|k| {
                    let nat = rng.range(0, 24) as usize;
                    vec![
                        k.to_string(),
                        format!("Customer#{k:09}"),
                        address(&mut rng),
                        nat.to_string(),
                        phone(&mut rng, nat),
                        money(&mut rng, -99_999, 999_999),
                        rng.pick(&SEGMENTS).to_string(),
                        comment(&mut rng, 14),
                    ]
                })
                .collect(),
        };
        let part = Table {
            name: "part",
            columns: vec![
                "p_partkey",
                "p_name",
                "p_mfgr",
                "p_brand",
                "p_type",
                "p_size",
                "p_container",
                "p_retailprice",
                "p_comment",
            ],
            rows: (1..=n_part)
                .map(|k| {
                    let m = rng.range(1, 5);
                    vec![
                        k.to_string(),
                        format!("{} {}", rng.pick(&COLORS), rng.pick(&NOUNS)),
                        format!("Manufacturer#{m}"),
                        format!("Brand#{m}{}", rng.range(1, 5)),
                        format!(
                            "{} {} {}",
                            rng.pick(&TYPE_SYL1),
                            rng.pick(&TYPE_SYL2),
                            rng.pick(&TYPE_SYL3)
                        ),
                        rng.range(1, 50).to_string(),
                        format!("{} {}", rng.pick(&CONTAINERS1), rng.pick(&CONTAINERS2)),
                        money(&mut rng, 90_000, 200_000),
                        comment(&mut rng, 6),
                    ]
                })
                .collect(),
        };
        let partsupp = Table {
            name: "partsupp",
            columns: vec![
                "ps_partkey",
                "ps_suppkey",
                "ps_availqty",
                "ps_supplycost",
                "ps_comment",
            ],
            rows: (1..=n_part)
                .flat_map(|p| (0..4).map(move |s| (p, s)))
                .map(|(p, s)| {
                    let supp = (p + s * (n_part / 4 + 1)) % n_supplier + 1;
                    vec![
                        p.to_string(),
                        supp.to_string(),
                        rng.range(1, 9999).to_string(),
                        money(&mut rng, 100, 100_000),
                        comment(&mut rng, 20),
                    ]
                })
                .collect(),
        };
        let mut orders_rows = Vec::with_capacity(n_orders);
        let mut lineitem_rows = Vec::new();
        for k in 1..=n_orders {
            // Sparse order keys like dbgen (skip 4 of every 8).
            let okey = (k - 1) / 8 * 32 + (k - 1) % 8 + 1;
            let cust = rng.range(1, n_customer as i64).to_string();
            let odate_base = rng.range(0, 2285);
            let n_lines = rng.range(1, 7);
            let mut total_cents = 0i64;
            for line in 1..=n_lines {
                let qty = rng.range(1, 50);
                let price_cents = rng.range(90_000, 200_000) * qty / 10;
                total_cents += price_cents;
                let ship = rng.range(1, 121);
                lineitem_rows.push(vec![
                    okey.to_string(),
                    rng.range(1, n_part as i64).to_string(),
                    rng.range(1, n_supplier as i64).to_string(),
                    line.to_string(),
                    qty.to_string(),
                    format!("{}.{:02}", price_cents / 100, price_cents % 100),
                    format!("0.{:02}", rng.range(0, 10)),
                    format!("0.{:02}", rng.range(0, 8)),
                    if rng.range(0, 99) < 25 { "R" } else { "N" }.to_string(),
                    if odate_base + ship < 2165 { "F" } else { "O" }.to_string(),
                    date_with_offset(odate_base, ship),
                    date_with_offset(odate_base, ship + rng.range(1, 30)),
                    date_with_offset(odate_base, ship + rng.range(1, 30)),
                    rng.pick(&INSTRUCTIONS).to_string(),
                    rng.pick(&MODES).to_string(),
                    comment(&mut rng, 8),
                ]);
            }
            orders_rows.push(vec![
                okey.to_string(),
                cust,
                if odate_base < 2165 { "F" } else { "O" }.to_string(),
                format!("{}.{:02}", total_cents / 100, total_cents % 100),
                date_with_offset(odate_base, 0),
                rng.pick(&PRIORITIES).to_string(),
                format!("Clerk#{:09}", rng.range(1, (n_orders as i64 / 15).max(1))),
                "0".to_string(),
                comment(&mut rng, 14),
            ]);
        }
        let orders = Table {
            name: "orders",
            columns: vec![
                "o_orderkey",
                "o_custkey",
                "o_orderstatus",
                "o_totalprice",
                "o_orderdate",
                "o_orderpriority",
                "o_clerk",
                "o_shippriority",
                "o_comment",
            ],
            rows: orders_rows,
        };
        let lineitem = Table {
            name: "lineitem",
            columns: vec![
                "l_orderkey",
                "l_partkey",
                "l_suppkey",
                "l_linenumber",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "l_tax",
                "l_returnflag",
                "l_linestatus",
                "l_shipdate",
                "l_commitdate",
                "l_receiptdate",
                "l_shipinstruct",
                "l_shipmode",
                "l_comment",
            ],
            rows: lineitem_rows,
        };
        Database {
            tables: vec![
                region, nation, supplier, customer, part, partsupp, orders, lineitem,
            ],
        }
    }

    /// Find a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Total row count across tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows.len()).sum()
    }
}

impl Table {
    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|&c| c == name)
    }

    /// Sum a numeric (integer or fixed-point) column, in cents when a
    /// decimal point is present.
    pub fn sum_cents(&self, column: &str) -> Option<i64> {
        let idx = self.column_index(column)?;
        let mut total = 0i64;
        for row in &self.rows {
            let v = &row[idx];
            let cents = match v.split_once('.') {
                Some((whole, frac)) => {
                    let sign = if whole.starts_with('-') { -1 } else { 1 };
                    whole.parse::<i64>().ok()? * 100 + sign * frac.parse::<i64>().ok()?
                }
                None => v.parse::<i64>().ok()? * 100,
            };
            total += cents;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = Database::generate(0.0002, 5);
        let b = Database::generate(0.0002, 5);
        assert_eq!(a, b);
        let c = Database::generate(0.0002, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn row_counts_scale() {
        let db = Database::generate(0.001, 1);
        assert_eq!(db.table("region").unwrap().rows.len(), 5);
        assert_eq!(db.table("nation").unwrap().rows.len(), 25);
        assert_eq!(db.table("supplier").unwrap().rows.len(), 10);
        assert_eq!(db.table("customer").unwrap().rows.len(), 150);
        assert_eq!(db.table("part").unwrap().rows.len(), 200);
        assert_eq!(db.table("partsupp").unwrap().rows.len(), 800);
        assert_eq!(db.table("orders").unwrap().rows.len(), 1500);
        let li = db.table("lineitem").unwrap().rows.len();
        assert!((1500..=10_500).contains(&li), "lineitem {li}");
    }

    #[test]
    fn dates_are_well_formed() {
        let db = Database::generate(0.0005, 3);
        let orders = db.table("orders").unwrap();
        let idx = orders.column_index("o_orderdate").unwrap();
        for row in &orders.rows {
            let d = &row[idx];
            assert_eq!(d.len(), 10, "{d}");
            let year: i32 = d[..4].parse().unwrap();
            let month: u32 = d[5..7].parse().unwrap();
            let day: u32 = d[8..10].parse().unwrap();
            assert!((1992..=1998).contains(&year), "{d}");
            assert!((1..=12).contains(&month), "{d}");
            assert!((1..=31).contains(&day), "{d}");
        }
    }

    #[test]
    fn leap_year_date_math() {
        assert_eq!(date_with_offset(0, 0), "1992-01-01");
        assert_eq!(date_with_offset(30, 1), "1992-02-01");
        assert_eq!(date_with_offset(59, 0), "1992-02-29"); // 1992 is a leap year
        assert_eq!(date_with_offset(366, 0), "1993-01-01");
    }

    #[test]
    fn money_has_two_decimals() {
        let db = Database::generate(0.0002, 11);
        let cust = db.table("customer").unwrap();
        let idx = cust.column_index("c_acctbal").unwrap();
        for row in &cust.rows {
            let (_, frac) = row[idx].split_once('.').expect("decimal point");
            assert_eq!(frac.len(), 2, "{}", row[idx]);
        }
    }

    #[test]
    fn no_tabs_or_newlines_in_values() {
        // Tab and newline are the COPY delimiters; values must stay clean.
        let db = Database::generate(0.0005, 4);
        for t in &db.tables {
            for row in &t.rows {
                for v in row {
                    assert!(!v.contains('\t') && !v.contains('\n'), "{}: {v:?}", t.name);
                }
            }
        }
    }

    #[test]
    fn sum_cents_aggregates() {
        let t = Table {
            name: "t",
            columns: vec!["v"],
            rows: vec![
                vec!["1.50".into()],
                vec!["2.25".into()],
                vec!["-0.75".into()],
            ],
        };
        assert_eq!(t.sum_cents("v"), Some(300));
    }
}
