//! Deterministic RNG for dbgen-style data (independent of any host RNG so
//! the E1 artifact is reproducible byte-for-byte across platforms).

/// xorshift64* — small, fast, deterministic.
#[derive(Clone, Debug)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    pub fn new(seed: u64) -> Self {
        Self { state: seed | 1 }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi]` inclusive.
    #[inline]
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// Pick an element of a slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next_u64() % items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Xorshift::new(1);
        let mut b = Xorshift::new(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = Xorshift::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(3, 7);
            assert!((3..=7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 7;
        }
        assert!(seen_lo && seen_hi);
    }
}
