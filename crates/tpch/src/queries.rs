//! Analytical queries over restored databases.
//!
//! §2 of the paper: because ULE only emulates the *decoders*, "queries can
//! be executed at bare-metal performance without any overhead". These
//! TPC-H-shaped aggregations run against a restored [`Database`] natively,
//! demonstrating that the archive round trip preserves query semantics,
//! not just bytes.

use crate::gen::Database;
use std::collections::BTreeMap;

/// One row of the Q1-style pricing summary.
#[derive(Clone, Debug, PartialEq)]
pub struct PricingSummaryRow {
    pub returnflag: String,
    pub linestatus: String,
    pub count: u64,
    pub sum_qty: i64,
    pub sum_base_price_cents: i64,
    pub avg_qty: f64,
}

fn cents(v: &str) -> i64 {
    match v.split_once('.') {
        Some((w, f)) => {
            let sign = if w.starts_with('-') { -1 } else { 1 };
            w.parse::<i64>().unwrap_or(0) * 100 + sign * f.parse::<i64>().unwrap_or(0)
        }
        None => v.parse::<i64>().unwrap_or(0) * 100,
    }
}

/// TPC-H Q1 shape: pricing summary grouped by (returnflag, linestatus)
/// for lineitems shipped on or before `cutoff_date` (YYYY-MM-DD).
pub fn pricing_summary(db: &Database, cutoff_date: &str) -> Vec<PricingSummaryRow> {
    let Some(li) = db.table("lineitem") else {
        return Vec::new();
    };
    let flag = li.column_index("l_returnflag").unwrap();
    let status = li.column_index("l_linestatus").unwrap();
    let qty = li.column_index("l_quantity").unwrap();
    let price = li.column_index("l_extendedprice").unwrap();
    let ship = li.column_index("l_shipdate").unwrap();
    let mut groups: BTreeMap<(String, String), (u64, i64, i64)> = BTreeMap::new();
    for row in &li.rows {
        if row[ship].as_str() > cutoff_date {
            continue;
        }
        let key = (row[flag].clone(), row[status].clone());
        let e = groups.entry(key).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += row[qty].parse::<i64>().unwrap_or(0);
        e.2 += cents(&row[price]);
    }
    groups
        .into_iter()
        .map(
            |((rf, ls), (count, sum_qty, sum_price))| PricingSummaryRow {
                returnflag: rf,
                linestatus: ls,
                count,
                sum_qty,
                sum_base_price_cents: sum_price,
                avg_qty: sum_qty as f64 / count as f64,
            },
        )
        .collect()
}

/// TPC-H Q6 shape: revenue from discounted lineitems in a date window and
/// quantity bound. Returns cents of `extendedprice * discount`.
pub fn forecast_revenue(db: &Database, year: &str, max_qty: i64) -> i64 {
    let Some(li) = db.table("lineitem") else {
        return 0;
    };
    let qty = li.column_index("l_quantity").unwrap();
    let price = li.column_index("l_extendedprice").unwrap();
    let disc = li.column_index("l_discount").unwrap();
    let ship = li.column_index("l_shipdate").unwrap();
    let lo = format!("{year}-01-01");
    let hi = format!("{year}-12-31");
    let mut revenue = 0i64;
    for row in &li.rows {
        let d = row[ship].as_str();
        if d < lo.as_str() || d > hi.as_str() {
            continue;
        }
        if row[qty].parse::<i64>().unwrap_or(i64::MAX) >= max_qty {
            continue;
        }
        // discount is "0.NN"
        let disc_pct = cents(&row[disc]); // e.g. 0.05 -> 5
        revenue += cents(&row[price]) * disc_pct / 100;
    }
    revenue
}

/// Top-N customers by total order value (a Q3-ish shape without the join
/// pruning, adequate at archive scales).
pub fn top_customers(db: &Database, n: usize) -> Vec<(String, i64)> {
    let Some(orders) = db.table("orders") else {
        return Vec::new();
    };
    let cust = orders.column_index("o_custkey").unwrap();
    let total = orders.column_index("o_totalprice").unwrap();
    let mut by_cust: BTreeMap<String, i64> = BTreeMap::new();
    for row in &orders.rows {
        *by_cust.entry(row[cust].clone()).or_insert(0) += cents(&row[total]);
    }
    let mut v: Vec<(String, i64)> = by_cust.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::sql_dump;
    use crate::load::parse_dump;

    fn db() -> Database {
        Database::generate(0.0005, 77)
    }

    #[test]
    fn q1_covers_all_lineitems_at_max_date() {
        let db = db();
        let rows = pricing_summary(&db, "1999-12-31");
        let total: u64 = rows.iter().map(|r| r.count).sum();
        assert_eq!(total as usize, db.table("lineitem").unwrap().rows.len());
        // Flags are R/N, statuses F/O: at most 4 groups.
        assert!(rows.len() <= 4 && !rows.is_empty());
        for r in &rows {
            assert!(r.avg_qty > 0.0 && r.avg_qty <= 50.0);
        }
    }

    #[test]
    fn q1_cutoff_filters() {
        let db = db();
        let all: u64 = pricing_summary(&db, "1999-12-31")
            .iter()
            .map(|r| r.count)
            .sum();
        let some: u64 = pricing_summary(&db, "1995-01-01")
            .iter()
            .map(|r| r.count)
            .sum();
        assert!(some < all);
        assert!(some > 0);
    }

    #[test]
    fn q6_revenue_is_positive_and_bounded() {
        let db = db();
        let rev = forecast_revenue(&db, "1994", 25);
        let rev_all = forecast_revenue(&db, "1994", 51);
        assert!(rev >= 0);
        assert!(rev_all >= rev, "looser predicate cannot reduce revenue");
    }

    #[test]
    fn top_customers_ordering() {
        let db = db();
        let top = top_customers(&db, 5);
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn queries_agree_before_and_after_archival_roundtrip() {
        // The §2 point: the restored database answers queries identically.
        let original = db();
        let restored = parse_dump(&sql_dump(&original)).unwrap();
        assert_eq!(
            pricing_summary(&original, "1996-06-30"),
            pricing_summary(&restored, "1996-06-30")
        );
        assert_eq!(
            forecast_revenue(&original, "1995", 24),
            forecast_revenue(&restored, "1995", 24)
        );
        assert_eq!(top_customers(&original, 10), top_customers(&restored, 10));
    }
}
