//! Analytical queries over restored databases.
//!
//! §2 of the paper: because ULE only emulates the *decoders*, "queries can
//! be executed at bare-metal performance without any overhead". These
//! TPC-H-shaped aggregations run against a restored [`Database`] natively,
//! demonstrating that the archive round trip preserves query semantics,
//! not just bytes.
//!
//! The aggregation cores live in small accumulator types
//! ([`PricingSummaryAcc`], [`ForecastRevenueAcc`], [`TopCustomersAcc`])
//! fed one row of column strings at a time, so the in-memory
//! [`Database`] path here and the streaming cold-media path in
//! [`crate::archival`] share the exact same arithmetic — answer identity
//! between the two is identity of the row feed, not of two parallel
//! implementations.

use crate::gen::Database;
use std::collections::BTreeMap;
use std::fmt;

/// Typed failure of a query's input validation. Dates used to be
/// compared as raw strings, so a malformed cutoff silently mis-filtered
/// every row; now the boundary rejects it instead of answering wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Not a `YYYY-MM-DD` calendar date.
    BadDate(String),
    /// Not a `YYYY` year.
    BadYear(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::BadDate(v) => write!(f, "not a YYYY-MM-DD date: {v:?}"),
            QueryError::BadYear(v) => write!(f, "not a YYYY year: {v:?}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Validate a `YYYY-MM-DD` date at the query boundary. String comparison
/// of dates is only an order-isomorphism on this exact shape, so anything
/// else is a typed error, not a silently wrong answer.
pub fn validate_date(v: &str) -> Result<(), QueryError> {
    let b = v.as_bytes();
    let digits = |r: std::ops::Range<usize>| b[r].iter().all(|c| c.is_ascii_digit());
    let ok = b.len() == 10
        && digits(0..4)
        && b[4] == b'-'
        && digits(5..7)
        && b[7] == b'-'
        && digits(8..10)
        && (1..=12).contains(&v[5..7].parse::<u8>().unwrap_or(0))
        && (1..=31).contains(&v[8..10].parse::<u8>().unwrap_or(0));
    if ok {
        Ok(())
    } else {
        Err(QueryError::BadDate(v.to_string()))
    }
}

/// Validate a `YYYY` year.
pub fn validate_year(v: &str) -> Result<(), QueryError> {
    if v.len() == 4 && v.bytes().all(|c| c.is_ascii_digit()) {
        Ok(())
    } else {
        Err(QueryError::BadYear(v.to_string()))
    }
}

/// One row of the Q1-style pricing summary.
#[derive(Clone, Debug, PartialEq)]
pub struct PricingSummaryRow {
    pub returnflag: String,
    pub linestatus: String,
    pub count: u64,
    pub sum_qty: i64,
    pub sum_base_price_cents: i64,
    pub avg_qty: f64,
}

pub(crate) fn cents(v: &str) -> i64 {
    match v.split_once('.') {
        Some((w, f)) => {
            let sign = if w.starts_with('-') { -1 } else { 1 };
            w.parse::<i64>().unwrap_or(0) * 100 + sign * f.parse::<i64>().unwrap_or(0)
        }
        None => v.parse::<i64>().unwrap_or(0) * 100,
    }
}

/// Streaming accumulator of the Q1 shape. Feed lineitem rows as column
/// strings; the exact cutoff predicate is re-applied per row, so zone
/// pruning upstream can only skip rows this filter would drop anyway.
pub struct PricingSummaryAcc {
    cutoff: String,
    groups: BTreeMap<(String, String), (u64, i64, i64)>,
}

impl PricingSummaryAcc {
    /// Columns to feed [`Self::row`], in order.
    pub const COLUMNS: [&'static str; 5] = [
        "l_shipdate",
        "l_returnflag",
        "l_linestatus",
        "l_quantity",
        "l_extendedprice",
    ];

    pub fn new(cutoff_date: &str) -> Result<Self, QueryError> {
        validate_date(cutoff_date)?;
        Ok(Self {
            cutoff: cutoff_date.to_string(),
            groups: BTreeMap::new(),
        })
    }

    pub fn row(&mut self, ship: &str, flag: &str, status: &str, qty: &str, price: &str) {
        if ship > self.cutoff.as_str() {
            return;
        }
        let e = self
            .groups
            .entry((flag.to_string(), status.to_string()))
            .or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += qty.parse::<i64>().unwrap_or(0);
        e.2 += cents(price);
    }

    pub fn finish(self) -> Vec<PricingSummaryRow> {
        self.groups
            .into_iter()
            .map(
                |((rf, ls), (count, sum_qty, sum_price))| PricingSummaryRow {
                    returnflag: rf,
                    linestatus: ls,
                    count,
                    sum_qty,
                    sum_base_price_cents: sum_price,
                    avg_qty: sum_qty as f64 / count as f64,
                },
            )
            .collect()
    }
}

/// Streaming accumulator of the Q6 shape.
pub struct ForecastRevenueAcc {
    lo: String,
    hi: String,
    max_qty: i64,
    revenue: i64,
}

impl ForecastRevenueAcc {
    /// Columns to feed [`Self::row`], in order.
    pub const COLUMNS: [&'static str; 4] =
        ["l_shipdate", "l_quantity", "l_extendedprice", "l_discount"];

    pub fn new(year: &str, max_qty: i64) -> Result<Self, QueryError> {
        validate_year(year)?;
        Ok(Self {
            lo: format!("{year}-01-01"),
            hi: format!("{year}-12-31"),
            max_qty,
            revenue: 0,
        })
    }

    pub fn row(&mut self, ship: &str, qty: &str, price: &str, disc: &str) {
        if ship < self.lo.as_str() || ship > self.hi.as_str() {
            return;
        }
        if qty.parse::<i64>().unwrap_or(i64::MAX) >= self.max_qty {
            return;
        }
        // discount is "0.NN"
        let disc_pct = cents(disc); // e.g. 0.05 -> 5
        self.revenue += cents(price) * disc_pct / 100;
    }

    pub fn finish(self) -> i64 {
        self.revenue
    }

    /// The Q6 date window, for upstream zone pruning.
    pub fn date_window(&self) -> (&str, &str) {
        (&self.lo, &self.hi)
    }
}

/// Streaming accumulator of the Q3-ish top-customers shape.
pub struct TopCustomersAcc {
    n: usize,
    by_cust: BTreeMap<String, i64>,
}

impl TopCustomersAcc {
    /// Columns to feed [`Self::row`], in order.
    pub const COLUMNS: [&'static str; 2] = ["o_custkey", "o_totalprice"];

    pub fn new(n: usize) -> Self {
        Self {
            n,
            by_cust: BTreeMap::new(),
        }
    }

    pub fn row(&mut self, cust: &str, total: &str) {
        *self.by_cust.entry(cust.to_string()).or_insert(0) += cents(total);
    }

    pub fn finish(self) -> Vec<(String, i64)> {
        let mut v: Vec<(String, i64)> = self.by_cust.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(self.n);
        v
    }
}

/// TPC-H Q1 shape: pricing summary grouped by (returnflag, linestatus)
/// for lineitems shipped on or before `cutoff_date` (YYYY-MM-DD).
pub fn pricing_summary(
    db: &Database,
    cutoff_date: &str,
) -> Result<Vec<PricingSummaryRow>, QueryError> {
    let mut acc = PricingSummaryAcc::new(cutoff_date)?;
    let Some(li) = db.table("lineitem") else {
        return Ok(Vec::new());
    };
    let flag = li.column_index("l_returnflag").unwrap();
    let status = li.column_index("l_linestatus").unwrap();
    let qty = li.column_index("l_quantity").unwrap();
    let price = li.column_index("l_extendedprice").unwrap();
    let ship = li.column_index("l_shipdate").unwrap();
    for row in &li.rows {
        acc.row(&row[ship], &row[flag], &row[status], &row[qty], &row[price]);
    }
    Ok(acc.finish())
}

/// TPC-H Q6 shape: revenue from discounted lineitems in a date window and
/// quantity bound. Returns cents of `extendedprice * discount`.
pub fn forecast_revenue(db: &Database, year: &str, max_qty: i64) -> Result<i64, QueryError> {
    let mut acc = ForecastRevenueAcc::new(year, max_qty)?;
    let Some(li) = db.table("lineitem") else {
        return Ok(0);
    };
    let qty = li.column_index("l_quantity").unwrap();
    let price = li.column_index("l_extendedprice").unwrap();
    let disc = li.column_index("l_discount").unwrap();
    let ship = li.column_index("l_shipdate").unwrap();
    for row in &li.rows {
        acc.row(&row[ship], &row[qty], &row[price], &row[disc]);
    }
    Ok(acc.finish())
}

/// Top-N customers by total order value (a Q3-ish shape without the join
/// pruning, adequate at archive scales).
pub fn top_customers(db: &Database, n: usize) -> Vec<(String, i64)> {
    let mut acc = TopCustomersAcc::new(n);
    let Some(orders) = db.table("orders") else {
        return Vec::new();
    };
    let cust = orders.column_index("o_custkey").unwrap();
    let total = orders.column_index("o_totalprice").unwrap();
    for row in &orders.rows {
        acc.row(&row[cust], &row[total]);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::sql_dump;
    use crate::load::parse_dump;

    fn db() -> Database {
        Database::generate(0.0005, 77)
    }

    #[test]
    fn q1_covers_all_lineitems_at_max_date() {
        let db = db();
        let rows = pricing_summary(&db, "1999-12-31").unwrap();
        let total: u64 = rows.iter().map(|r| r.count).sum();
        assert_eq!(total as usize, db.table("lineitem").unwrap().rows.len());
        // Flags are R/N, statuses F/O: at most 4 groups.
        assert!(rows.len() <= 4 && !rows.is_empty());
        for r in &rows {
            assert!(r.avg_qty > 0.0 && r.avg_qty <= 50.0);
        }
    }

    #[test]
    fn q1_cutoff_filters() {
        let db = db();
        let all: u64 = pricing_summary(&db, "1999-12-31")
            .unwrap()
            .iter()
            .map(|r| r.count)
            .sum();
        let some: u64 = pricing_summary(&db, "1995-01-01")
            .unwrap()
            .iter()
            .map(|r| r.count)
            .sum();
        assert!(some < all);
        assert!(some > 0);
    }

    #[test]
    fn malformed_dates_are_typed_errors_not_wrong_answers() {
        let db = db();
        for bad in [
            "1995",
            "1995-1-1",
            "31-12-1995",
            "1995/12/31",
            "1995-13-01",
            "1995-00-10",
            "1995-06-32",
            "yesterday",
            "",
        ] {
            assert_eq!(
                pricing_summary(&db, bad).unwrap_err(),
                QueryError::BadDate(bad.to_string()),
                "{bad:?}"
            );
        }
        for bad in ["95", "199x", "1995-01", ""] {
            assert_eq!(
                forecast_revenue(&db, bad, 24).unwrap_err(),
                QueryError::BadYear(bad.to_string()),
                "{bad:?}"
            );
        }
        // The boundary accepts what it should.
        assert!(pricing_summary(&db, "1995-06-30").is_ok());
        assert!(forecast_revenue(&db, "1995", 24).is_ok());
    }

    #[test]
    fn q6_revenue_is_positive_and_bounded() {
        let db = db();
        let rev = forecast_revenue(&db, "1994", 25).unwrap();
        let rev_all = forecast_revenue(&db, "1994", 51).unwrap();
        assert!(rev >= 0);
        assert!(rev_all >= rev, "looser predicate cannot reduce revenue");
    }

    #[test]
    fn top_customers_ordering() {
        let db = db();
        let top = top_customers(&db, 5);
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn queries_agree_before_and_after_archival_roundtrip() {
        // The §2 point: the restored database answers queries identically.
        let original = db();
        let restored = parse_dump(&sql_dump(&original)).unwrap();
        assert_eq!(
            pricing_summary(&original, "1996-06-30").unwrap(),
            pricing_summary(&restored, "1996-06-30").unwrap()
        );
        assert_eq!(
            forecast_revenue(&original, "1995", 24).unwrap(),
            forecast_revenue(&restored, "1995", 24).unwrap()
        );
        assert_eq!(top_customers(&original, 10), top_customers(&restored, 10));
    }
}
