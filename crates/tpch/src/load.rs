//! Parser for the pg_dump-style archive — the `db_load` end of Figure 2b.
//!
//! Round-trip property: `parse_dump(sql_dump(db)) == db`. The restoration
//! experiments verify archives both byte-for-byte and semantically
//! (re-parse, compare tables, run aggregates).

use crate::gen::{Database, Table};

/// Parse failures.
#[derive(Debug, PartialEq, Eq)]
pub enum LoadError {
    NotUtf8,
    UnterminatedCopy(String),
    RaggedRow { table: String, line: usize },
    UnknownTableShape(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::NotUtf8 => write!(f, "dump is not valid UTF-8"),
            LoadError::UnterminatedCopy(t) => write!(f, "COPY block for {t} not terminated"),
            LoadError::RaggedRow { table, line } => {
                write!(f, "row {line} of {table} has the wrong column count")
            }
            LoadError::UnknownTableShape(t) => write!(f, "cannot parse COPY header: {t}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Leak-free interning of column names: the generator uses `&'static str`
/// column names; the parser matches known columns back to those statics so
/// `Database` values compare equal.
fn intern_column(name: &str) -> Option<&'static str> {
    const ALL: [&str; 61] = [
        "r_regionkey",
        "r_name",
        "r_comment",
        "n_nationkey",
        "n_name",
        "n_regionkey",
        "n_comment",
        "s_suppkey",
        "s_name",
        "s_address",
        "s_nationkey",
        "s_phone",
        "s_acctbal",
        "s_comment",
        "c_custkey",
        "c_name",
        "c_address",
        "c_nationkey",
        "c_phone",
        "c_acctbal",
        "c_mktsegment",
        "c_comment",
        "p_partkey",
        "p_name",
        "p_mfgr",
        "p_brand",
        "p_type",
        "p_size",
        "p_container",
        "p_retailprice",
        "p_comment",
        "ps_partkey",
        "ps_suppkey",
        "ps_availqty",
        "ps_supplycost",
        "ps_comment",
        "o_orderkey",
        "o_custkey",
        "o_orderstatus",
        "o_totalprice",
        "o_orderdate",
        "o_orderpriority",
        "o_clerk",
        "o_shippriority",
        "o_comment",
        "l_orderkey",
        "l_partkey",
        "l_suppkey",
        "l_linenumber",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_returnflag",
        "l_linestatus",
        "l_shipdate",
        "l_commitdate",
        "l_receiptdate",
        "l_shipinstruct",
        "l_shipmode",
        "l_comment",
    ];
    ALL.iter().find(|&&c| c == name).copied()
}

fn intern_table(name: &str) -> Option<&'static str> {
    const ALL: [&str; 8] = [
        "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
    ];
    ALL.iter().find(|&&t| t == name).copied()
}

/// Parse a pg_dump-style archive back into a [`Database`].
pub fn parse_dump(dump: &[u8]) -> Result<Database, LoadError> {
    let text = std::str::from_utf8(dump).map_err(|_| LoadError::NotUtf8)?;
    let mut tables = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((_, line)) = lines.next() {
        let trimmed = line.trim_end();
        if !(trimmed.starts_with("COPY ") && trimmed.ends_with("FROM stdin;")) {
            continue;
        }
        // COPY <name> (<cols>) FROM stdin;
        let rest = &trimmed[5..trimmed.len() - "FROM stdin;".len()];
        let (name, cols) = rest
            .split_once('(')
            .ok_or_else(|| LoadError::UnknownTableShape(trimmed.to_string()))?;
        let name = intern_table(name.trim())
            .ok_or_else(|| LoadError::UnknownTableShape(name.trim().to_string()))?;
        let cols_inner = cols
            .rsplit_once(')')
            .ok_or_else(|| LoadError::UnknownTableShape(trimmed.to_string()))?
            .0;
        let columns: Vec<&'static str> = cols_inner
            .split(',')
            .map(|c| {
                intern_column(c.trim()).ok_or_else(|| LoadError::UnknownTableShape(c.to_string()))
            })
            .collect::<Result<_, _>>()?;
        let mut rows = Vec::new();
        let mut terminated = false;
        for (lno, row_line) in lines.by_ref() {
            if row_line == "\\." {
                terminated = true;
                break;
            }
            let fields: Vec<String> = row_line.split('\t').map(str::to_owned).collect();
            if fields.len() != columns.len() {
                return Err(LoadError::RaggedRow {
                    table: name.to_string(),
                    line: lno + 1,
                });
            }
            rows.push(fields);
        }
        if !terminated {
            return Err(LoadError::UnterminatedCopy(name.to_string()));
        }
        tables.push(Table {
            name,
            columns,
            rows,
        });
    }
    Ok(Database { tables })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::sql_dump;
    use crate::gen::Database;

    #[test]
    fn roundtrip_equality() {
        let db = Database::generate(0.0003, 13);
        let parsed = parse_dump(&sql_dump(&db)).unwrap();
        assert_eq!(db, parsed);
    }

    #[test]
    fn aggregates_survive_roundtrip() {
        let db = Database::generate(0.0005, 21);
        let parsed = parse_dump(&sql_dump(&db)).unwrap();
        let a = db
            .table("orders")
            .unwrap()
            .sum_cents("o_totalprice")
            .unwrap();
        let b = parsed
            .table("orders")
            .unwrap()
            .sum_cents("o_totalprice")
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn detects_unterminated_copy() {
        let text = b"COPY nation (n_nationkey, n_name, n_regionkey, n_comment) FROM stdin;\n0\tALGERIA\t0\tx\n";
        assert_eq!(
            parse_dump(text).unwrap_err(),
            LoadError::UnterminatedCopy("nation".into())
        );
    }

    #[test]
    fn detects_ragged_rows() {
        let text = b"COPY region (r_regionkey, r_name, r_comment) FROM stdin;\n0\tAFRICA\n\\.\n";
        assert!(matches!(
            parse_dump(text).unwrap_err(),
            LoadError::RaggedRow { .. }
        ));
    }

    #[test]
    fn rejects_unknown_tables() {
        let text = b"COPY mystery (a) FROM stdin;\n\\.\n";
        assert!(matches!(
            parse_dump(text).unwrap_err(),
            LoadError::UnknownTableShape(_)
        ));
    }

    #[test]
    fn non_copy_text_is_ignored() {
        let db = Database::generate(0.0002, 2);
        let mut dump = b"-- a comment line\nSET search_path = public;\n".to_vec();
        dump.extend(sql_dump(&db));
        assert_eq!(parse_dump(&dump).unwrap(), db);
    }
}
