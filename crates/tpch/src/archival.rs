//! Archival query engine: TPC-H aggregation straight off cold media.
//!
//! The paper's pitch is that an emulated archive is still a *database*,
//! not a backup blob. This module makes that concrete: the Q1/Q6/Q3-shaped
//! queries run against a shelf of scanned reels without materialising the
//! SQL dump or a [`crate::Database`] — [`ule_vault::Vault::query_table`]
//! streams the table's `COPY` bytes (zone-pruned where the catalog allows),
//! a row feeder cuts them into tab-separated columns, and the same
//! accumulators the in-memory path uses fold them down. Identity with the
//! restore-then-load answer is therefore structural: one aggregation core,
//! two row feeds, and zone pruning that only ever skips rows the exact
//! per-row predicate would drop anyway.

use crate::queries::{
    ForecastRevenueAcc, PricingSummaryAcc, PricingSummaryRow, QueryError, TopCustomersAcc,
};
use micr_olonys::Bootstrap;
use ule_vault::zones::{ColumnRange, ZonePredicate};
use ule_vault::{ReelScans, TableScan, Vault, VaultError};

/// Failures of a cold-media query.
#[derive(Debug)]
pub enum ArchivalError {
    /// Input validation at the query boundary.
    Query(QueryError),
    /// The medium could not serve the scan.
    Vault(VaultError),
    /// The restored bytes are not the `COPY` block the catalog promised.
    Malformed(String),
}

impl std::fmt::Display for ArchivalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchivalError::Query(e) => write!(f, "query input: {e}"),
            ArchivalError::Vault(e) => write!(f, "vault: {e:?}"),
            ArchivalError::Malformed(m) => write!(f, "malformed COPY block: {m}"),
        }
    }
}

impl std::error::Error for ArchivalError {}

impl From<QueryError> for ArchivalError {
    fn from(e: QueryError) -> Self {
        ArchivalError::Query(e)
    }
}

impl From<VaultError> for ArchivalError {
    fn from(e: VaultError) -> Self {
        ArchivalError::Vault(e)
    }
}

/// Cost accounting of one cold-media query (the E13 numbers), built
/// from the engine-side [`ule_vault::QueryStats`] of the scan that
/// actually ran — the aggregation layer adds only `rows_scanned`.
#[derive(Clone, Copy, Debug)]
pub struct QueryStats {
    /// Frames pushed through the emblem decoder to serve this query.
    pub frames_decoded: usize,
    /// Frames a full restore would decode (the comparison baseline).
    pub data_frames_total: usize,
    /// Zones the catalog holds for the scanned table.
    pub zones_total: usize,
    /// Zones the predicate could not exclude.
    pub zones_selected: usize,
    /// True when at least one zone was skipped.
    pub pruned: bool,
    /// Pieces the scan streamed to the aggregator.
    pub pieces_streamed: usize,
    /// Dump bytes across those pieces.
    pub bytes_touched: usize,
    /// Rows actually fed to the aggregator.
    pub rows_scanned: u64,
}

impl QueryStats {
    fn from_engine(stats: &ule_vault::QueryStats, rows_scanned: u64) -> Self {
        QueryStats {
            frames_decoded: stats.restore.frames_decoded,
            data_frames_total: stats.restore.data_frames_total,
            zones_total: stats.zones_total,
            zones_selected: stats.zones_scanned,
            pruned: stats.zones_pruned > 0,
            pieces_streamed: stats.pieces_streamed,
            bytes_touched: stats.bytes_touched,
            rows_scanned,
        }
    }
}

/// A queryable shelf: a vault plus the scanned reels of one archive.
pub struct ShelfQuery<'a> {
    vault: &'a Vault,
    bootstrap: &'a Bootstrap,
    reels: &'a ReelScans,
}

impl<'a> ShelfQuery<'a> {
    pub fn new(vault: &'a Vault, bootstrap: &'a Bootstrap, reels: &'a ReelScans) -> Self {
        Self {
            vault,
            bootstrap,
            reels,
        }
    }

    /// Q1 shape, streamed: pricing summary for lineitems shipped on or
    /// before `cutoff_date`. Zones wholly after the cutoff are skipped.
    pub fn pricing_summary(
        &self,
        cutoff_date: &str,
    ) -> Result<(Vec<PricingSummaryRow>, QueryStats), ArchivalError> {
        let mut acc = PricingSummaryAcc::new(cutoff_date)?;
        let pred = ZonePredicate::all().with(ColumnRange::at_most("l_shipdate", cutoff_date));
        let (scan, stats) =
            self.vault
                .query_table(self.bootstrap, self.reels, "lineitem", &pred)?;
        let rows = feed_rows(&scan, "lineitem", &PricingSummaryAcc::COLUMNS, |c| {
            acc.row(c[0], c[1], c[2], c[3], c[4])
        })?;
        Ok((acc.finish(), QueryStats::from_engine(&stats, rows)))
    }

    /// Q6 shape, streamed: discounted revenue inside `year` under a
    /// quantity bound. Zones outside the year, or whose quantities all
    /// reach the bound, are skipped.
    pub fn forecast_revenue(
        &self,
        year: &str,
        max_qty: i64,
    ) -> Result<(i64, QueryStats), ArchivalError> {
        let mut acc = ForecastRevenueAcc::new(year, max_qty)?;
        let (lo, hi) = acc.date_window();
        let pred = ZonePredicate::all()
            .with(ColumnRange::between("l_shipdate", lo, hi))
            .with(ColumnRange::at_most(
                "l_quantity",
                &max_qty.saturating_sub(1).to_string(),
            ));
        let (scan, stats) =
            self.vault
                .query_table(self.bootstrap, self.reels, "lineitem", &pred)?;
        let rows = feed_rows(&scan, "lineitem", &ForecastRevenueAcc::COLUMNS, |c| {
            acc.row(c[0], c[1], c[2], c[3])
        })?;
        Ok((acc.finish(), QueryStats::from_engine(&stats, rows)))
    }

    /// Q3-ish shape, streamed: top-`n` customers by total order value.
    /// Unpredicated, so this measures the pure streaming scan of `orders`
    /// (still selective: only that table's frames are decoded).
    pub fn top_customers(
        &self,
        n: usize,
    ) -> Result<(Vec<(String, i64)>, QueryStats), ArchivalError> {
        let mut acc = TopCustomersAcc::new(n);
        let (scan, stats) =
            self.vault
                .query_table(self.bootstrap, self.reels, "orders", &ZonePredicate::all())?;
        let rows = feed_rows(&scan, "orders", &TopCustomersAcc::COLUMNS, |c| {
            acc.row(c[0], c[1])
        })?;
        Ok((acc.finish(), QueryStats::from_engine(&stats, rows)))
    }
}

/// Feed the rows of a scanned `COPY` block to `f` as the `wanted`
/// columns, in order. Zone pieces are row-aligned by construction, so
/// lines never straddle piece boundaries; the header piece names the
/// column order and the `\.` terminator closes the feed. Returns the
/// number of rows fed.
fn feed_rows<F: FnMut(&[&str])>(
    scan: &TableScan,
    table: &str,
    wanted: &[&str],
    mut f: F,
) -> Result<u64, ArchivalError> {
    let mut col_idx: Option<Vec<usize>> = None;
    let mut fields: Vec<&str> = Vec::new();
    let mut picked: Vec<&str> = Vec::with_capacity(wanted.len());
    let mut rows = 0u64;
    let mut terminated = false;
    for (_, piece) in &scan.pieces {
        let text = std::str::from_utf8(piece)
            .map_err(|_| ArchivalError::Malformed(format!("{table}: not UTF-8")))?;
        for line in text.split('\n') {
            if line.is_empty() || terminated {
                continue;
            }
            if line == "\\." {
                terminated = true;
                continue;
            }
            let Some(idx) = &col_idx else {
                // First line: `COPY name (col1, col2, ...) FROM stdin;`.
                let cols = line
                    .strip_prefix(&format!("COPY {table} ("))
                    .and_then(|r| r.split_once(')'))
                    .map(|(c, _)| c.split(',').map(|c| c.trim()).collect::<Vec<_>>())
                    .ok_or_else(|| {
                        ArchivalError::Malformed(format!("{table}: missing COPY header"))
                    })?;
                let idx = wanted
                    .iter()
                    .map(|w| cols.iter().position(|c| c == w))
                    .collect::<Option<Vec<usize>>>()
                    .ok_or_else(|| {
                        ArchivalError::Malformed(format!("{table}: missing columns {wanted:?}"))
                    })?;
                col_idx = Some(idx);
                continue;
            };
            fields.clear();
            fields.extend(line.split('\t'));
            picked.clear();
            for &i in idx {
                picked.push(*fields.get(i).ok_or_else(|| {
                    ArchivalError::Malformed(format!("{table}: row with {} fields", fields.len()))
                })?);
            }
            f(&picked);
            rows += 1;
        }
    }
    if col_idx.is_none() {
        return Err(ArchivalError::Malformed(format!(
            "{table}: empty scan, no COPY header"
        )));
    }
    if !terminated {
        return Err(ArchivalError::Malformed(format!(
            "{table}: COPY block never terminated"
        )));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;
    use crate::{parse_dump, sql_dump, Database};
    use micr_olonys::MicrOlonys;

    fn shelf() -> (Vault, ule_vault::VaultArchive, ReelScans, Database) {
        let db = Database::generate(0.0002, 77);
        let dump = sql_dump(&db);
        let vault = Vault::sharded(
            MicrOlonys::test_tiny(),
            ule_vault::ShardPlan::single_parity(12, 2),
        );
        let arc = vault.archive(&dump);
        let scans = vault.scan_reels(&arc, 41);
        (vault, arc, scans, db)
    }

    #[test]
    fn streamed_answers_match_database_answers() {
        let (vault, arc, scans, db) = shelf();
        let shelf = ShelfQuery::new(&vault, &arc.bootstrap, &scans);

        let (q1, s1) = shelf.pricing_summary("1996-06-30").unwrap();
        assert_eq!(q1, queries::pricing_summary(&db, "1996-06-30").unwrap());
        assert!(s1.frames_decoded < s1.data_frames_total, "{s1:?}");

        let (q6, _) = shelf.forecast_revenue("1995", 24).unwrap();
        assert_eq!(q6, queries::forecast_revenue(&db, "1995", 24).unwrap());

        let (q3, s3) = shelf.top_customers(10).unwrap();
        assert_eq!(q3, queries::top_customers(&db, 10));
        assert!(s3.rows_scanned > 0);
    }

    #[test]
    fn excluding_cutoff_prunes_and_still_agrees() {
        let (vault, arc, scans, db) = shelf();
        let shelf = ShelfQuery::new(&vault, &arc.bootstrap, &scans);
        // A pre-TPC-H cutoff: every row zone is skipped, only the header
        // and terminator stream in — and the empty answer still matches.
        let (q1, stats) = shelf.pricing_summary("1000-01-01").unwrap();
        assert_eq!(q1, queries::pricing_summary(&db, "1000-01-01").unwrap());
        assert!(q1.is_empty());
        assert!(stats.pruned, "{stats:?}");
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn malformed_inputs_fail_before_touching_the_medium() {
        let (vault, arc, _, _) = shelf();
        // No scans at all: validation must reject the input first.
        let empty: ReelScans = Vec::new();
        let shelf = ShelfQuery::new(&vault, &arc.bootstrap, &empty);
        match shelf.pricing_summary("not-a-date") {
            Err(ArchivalError::Query(QueryError::BadDate(v))) => assert_eq!(v, "not-a-date"),
            other => panic!("want BadDate, got {other:?}"),
        }
        match shelf.forecast_revenue("95", 24) {
            Err(ArchivalError::Query(QueryError::BadYear(v))) => assert_eq!(v, "95"),
            other => panic!("want BadYear, got {other:?}"),
        }
    }

    #[test]
    fn restored_database_load_agrees_with_streaming() {
        // The full triangle: stream-off-media ≡ restore+parse+query.
        let (vault, arc, scans, _) = shelf();
        let (dump, _) = vault.restore_all(&arc.bootstrap, &scans).unwrap();
        let restored = parse_dump(&dump).unwrap();
        let shelf = ShelfQuery::new(&vault, &arc.bootstrap, &scans);
        let (q1, _) = shelf.pricing_summary("1995-01-01").unwrap();
        assert_eq!(
            q1,
            queries::pricing_summary(&restored, "1995-01-01").unwrap()
        );
    }
}
