//! TPC-H workload substrate (system **S11** in `DESIGN.md`).
//!
//! The paper's §4 paper-archive experiment loads TPC-H data into
//! PostgreSQL and dumps it with `pg_dump` ("configured the TPC-H scale
//! factor to produce an archive file that was roughly 1MB (1.2MB)").
//! We substitute both with a deterministic in-process pipeline:
//!
//! * [`gen`] — a dbgen-style generator for all eight TPC-H tables at
//!   fractional scale factors, with spec-shaped distributions (comment
//!   grammar text, skewed status flags, date windows 1992–1998, money as
//!   fixed-point decimals);
//! * [`dump`] — a pg_dump-style SQL archive writer (`CREATE TABLE` DDL +
//!   `COPY … FROM stdin;` blocks with tab-separated rows);
//! * [`load`] — a parser back into tables, so archival round trips can be
//!   verified semantically as well as byte-for-byte;
//! * [`queries`] — Q1/Q6/Q3-shaped aggregations over restored databases
//!   ("queries can be executed at bare-metal performance", §2);
//! * [`archival`] — the same aggregations streamed directly off scanned
//!   reels through [`ule_vault::Vault::query_table`], zone-pruned, without
//!   materialising the dump or a [`Database`] (E13).

pub mod archival;
pub mod dump;
pub mod gen;
pub mod load;
pub mod queries;
pub mod rng;

pub use dump::sql_dump;
pub use gen::{Database, Table};
pub use load::parse_dump;

/// Generate the TPC-H database and serialize it to a pg_dump-style SQL
/// archive in one call — the artifact Micr'Olonys archives in E1.
pub fn dump_for_scale(scale: f64, seed: u64) -> Vec<u8> {
    sql_dump(&Database::generate(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_dump_parses_back() {
        let db = Database::generate(0.0002, 7);
        let dump = sql_dump(&db);
        let back = parse_dump(&dump).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn scale_0001_is_roughly_1_2_mb() {
        // The paper's experiment: "roughly 1MB (1.2MB)".
        let dump = dump_for_scale(0.001, 42);
        let len = dump.len();
        assert!(
            (1_000_000..1_500_000).contains(&len),
            "dump is {len} bytes; want ~1.2 MB"
        );
    }
}
