//! pg_dump-style SQL archive writer.
//!
//! Mirrors the shape of `pg_dump --format=plain`: a SET preamble, one
//! `CREATE TABLE` per table, and `COPY … FROM stdin;` blocks with
//! tab-separated rows terminated by `\.`. This text file *is* the
//! "software-independent format" the paper archives (§3.3 step 1).

use crate::gen::{Database, Table};

/// Column type names used in the DDL (cosmetic — the archive pipeline is
/// type-agnostic, but a real DBMS could replay this DDL).
fn column_type(col: &str) -> &'static str {
    if col.ends_with("key")
        || col.ends_with("size")
        || col.ends_with("qty")
        || col.ends_with("number")
        || col.ends_with("priority") && col.starts_with("o_ship")
    {
        "integer"
    } else if col.ends_with("price")
        || col.ends_with("bal")
        || col.ends_with("cost")
        || col.ends_with("discount")
        || col.ends_with("tax")
        || col.ends_with("quantity")
    {
        "numeric(15,2)"
    } else if col.ends_with("date") {
        "date"
    } else {
        "text"
    }
}

fn write_table(out: &mut String, t: &Table) {
    out.push_str(&format!("CREATE TABLE {} (\n", t.name));
    for (i, col) in t.columns.iter().enumerate() {
        let sep = if i + 1 == t.columns.len() { "" } else { "," };
        out.push_str(&format!("    {} {}{}\n", col, column_type(col), sep));
    }
    out.push_str(");\n\n");
}

fn write_copy(out: &mut String, t: &Table) {
    out.push_str(&format!(
        "COPY {} ({}) FROM stdin;\n",
        t.name,
        t.columns.join(", ")
    ));
    for row in &t.rows {
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    out.push_str("\\.\n\n");
}

/// Serialize the database as a pg_dump-style SQL text archive.
pub fn sql_dump(db: &Database) -> Vec<u8> {
    let mut out = String::with_capacity(db.total_rows() * 96);
    out.push_str(
        "--\n-- PostgreSQL database dump (ULE reproduction of pg_dump plain format)\n--\n\n",
    );
    out.push_str("SET statement_timeout = 0;\nSET client_encoding = 'UTF8';\nSET standard_conforming_strings = on;\n\n");
    for t in &db.tables {
        write_table(&mut out, t);
    }
    for t in &db.tables {
        write_copy(&mut out, t);
    }
    out.push_str("--\n-- PostgreSQL database dump complete\n--\n");
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Database;

    #[test]
    fn dump_contains_ddl_and_copy_for_every_table() {
        let db = Database::generate(0.0002, 1);
        let dump = String::from_utf8(sql_dump(&db)).unwrap();
        for t in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(dump.contains(&format!("CREATE TABLE {t} (")), "DDL for {t}");
            assert!(dump.contains(&format!("COPY {t} (")), "COPY for {t}");
        }
        assert!(dump.contains("\\.\n"));
    }

    #[test]
    fn copy_rows_match_table_rows() {
        let db = Database::generate(0.0002, 2);
        let dump = String::from_utf8(sql_dump(&db)).unwrap();
        let nation_rows = db.table("nation").unwrap().rows.len();
        let section = dump.split("COPY nation").nth(1).unwrap();
        let body = section.split("\\.").next().unwrap();
        let rows = body.lines().skip(1).filter(|l| !l.is_empty()).count();
        assert_eq!(rows, nation_rows);
    }

    #[test]
    fn dump_is_deterministic() {
        let a = sql_dump(&Database::generate(0.0003, 9));
        let b = sql_dump(&Database::generate(0.0003, 9));
        assert_eq!(a, b);
    }
}
