//! Property tests across the emblem pipeline: arbitrary payloads survive
//! encoding, mild degradation, and decoding; headers never lie.

use proptest::prelude::*;
use ule_emblem::{
    decode_emblem, decode_stream, encode_emblem, encode_stream, EmblemGeometry, EmblemHeader,
    EmblemKind,
};
use ule_raster::{DegradeParams, Scanner};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_payload_roundtrips_pristine(
        payload in proptest::collection::vec(any::<u8>(), 0..1115),
        index in any::<u16>(),
        group in 0u16..100,
    ) {
        let geom = EmblemGeometry::test_small();
        let header = EmblemHeader::new(
            EmblemKind::Data, index, group, payload.len() as u32, payload.len() as u32);
        let img = encode_emblem(&geom, &header, &payload);
        let (h, p, stats) = decode_emblem(&geom, &img).unwrap();
        prop_assert_eq!(h, header);
        prop_assert_eq!(p, payload);
        prop_assert_eq!(stats.rs_corrected, 0);
    }

    #[test]
    fn any_payload_roundtrips_with_noise(
        payload in proptest::collection::vec(any::<u8>(), 1..1115),
        seed in any::<u64>(),
        sigma in 0.0f64..28.0,
    ) {
        let geom = EmblemGeometry::test_small();
        let header = EmblemHeader::new(
            EmblemKind::Data, 1, 0, payload.len() as u32, payload.len() as u32);
        let img = encode_emblem(&geom, &header, &payload);
        let params = DegradeParams { noise_sigma: sigma, row_jitter: 0.4, ..Default::default() };
        let scan = Scanner::new(params, seed).scan(&img);
        let (h, p, _) = decode_emblem(&geom, &scan).unwrap();
        prop_assert_eq!(h.payload_len as usize, p.len());
        prop_assert_eq!(p, payload);
    }

    #[test]
    fn streams_roundtrip_any_loss_pattern_up_to_three(
        len in 1usize..(1115 * 6),
        lost in proptest::collection::hash_set(0usize..9, 0..=3),
        seed in any::<u64>(),
    ) {
        // ≤6 data emblems + 3 parity = ≤9 frames; drop up to 3 of them.
        let geom = EmblemGeometry::test_small();
        let payload: Vec<u8> =
            (0..len).map(|i| (i as u8) ^ (seed as u8).wrapping_mul(i as u8)).collect();
        let images = encode_stream(&geom, EmblemKind::Data, &payload, true);
        let per_group = images.len().min(20);
        let kept: Vec<_> = images
            .iter()
            .enumerate()
            .filter(|(i, _)| !(lost.contains(i) && *i < per_group))
            .map(|(_, im)| im.clone())
            .collect();
        let (restored, _) = decode_stream(&geom, &kept).unwrap();
        prop_assert_eq!(restored, payload);
    }
}
