//! Emblem decoding: scanned image → header + payload.
//!
//! The decoder mirrors what the paper's MOCoder must do after scanning:
//!
//! 1. threshold the grayscale scan (Otsu — robust to fading);
//! 2. locate the thick black border and build per-scanline edge maps;
//! 3. resample the cell grid *relative to the border*, which compensates
//!    lens curvature and transport jitter (the §3.1 distortion sources);
//! 4. verify the calibration dots (orientation/geometry check);
//! 5. read the redundant header copies;
//! 6. read the data region, reverse the self-clocking cell code,
//!    de-interleave, and run inner Reed–Solomon correction per block.

use crate::encode::calibration_level;
use crate::geometry::{EmblemGeometry, EDGE_CELLS, HEADER_COPIES, OVERHEAD_ROWS, RS_K, RS_N};
use crate::header::{EmblemHeader, HEADER_BYTES};
use crate::locate::{edge_map, find_border_box, EdgeMap};
use crate::manchester::{bits_to_bytes, decode_cells};
use ule_par::ThreadConfig;
use ule_raster::sample::block_mean;
use ule_raster::GrayImage;

/// Decoding diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Bytes corrected by the inner RS code across all blocks.
    pub rs_corrected: usize,
    /// Which header copy parsed cleanly (0-based; HEADER_COPIES = majority vote).
    pub header_copy_used: usize,
    /// Self-clocking violations observed in the data region.
    pub sync_errors: usize,
    /// Fraction (per mille) of calibration cells that matched.
    pub calibration_match_pm: u16,
}

/// Decode failures.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// No border square found in the scan.
    BorderNotFound,
    /// Border found but the calibration dots don't match this geometry.
    CalibrationMismatch { matched_pm: u16 },
    /// No header copy could be parsed (individually or by majority vote).
    HeaderUnreadable,
    /// An inner RS block had more errors than it can correct.
    RsFailure { block: usize },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BorderNotFound => write!(f, "emblem border not found"),
            DecodeError::CalibrationMismatch { matched_pm } => {
                write!(
                    f,
                    "calibration dots mismatch ({}% matched)",
                    *matched_pm as f64 / 10.0
                )
            }
            DecodeError::HeaderUnreadable => write!(f, "no readable header copy"),
            DecodeError::RsFailure { block } => write!(f, "inner RS failure in block {block}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Grid resampler: maps content-cell coordinates to scan pixels by
/// interpolating between the border edges (per-scanline), then samples the
/// cell's mean intensity.
struct GridSampler<'a> {
    scan: &'a GrayImage,
    edges: EdgeMap,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
}

impl<'a> GridSampler<'a> {
    fn new(scan: &'a GrayImage, bit: &GrayImage, geom: &EmblemGeometry) -> Option<Self> {
        let bbox = find_border_box(bit)?;
        let total_cols = (geom.cols + 2 * EDGE_CELLS) as f64;
        let total_rows = (geom.rows + 2 * EDGE_CELLS) as f64;
        let cell_w = bbox.width() as f64 / total_cols;
        let cell_h = bbox.height() as f64 / total_rows;
        let border_px = cell_w * 3.0;
        let edges = edge_map(bit, bbox, border_px);
        Some(Self {
            scan,
            edges,
            cols: geom.cols,
            rows: geom.rows,
            cell_w,
            cell_h,
        })
    }

    /// Scan-pixel centre of content cell (cx, cy).
    #[inline]
    fn cell_center(&self, cx: usize, cy: usize) -> (f64, f64) {
        let u = (EDGE_CELLS as f64 + cx as f64 + 0.5) / (self.cols + 2 * EDGE_CELLS) as f64;
        let v = (EDGE_CELLS as f64 + cy as f64 + 0.5) / (self.rows + 2 * EDGE_CELLS) as f64;
        // First approximation of the row from the box, then interpolate
        // along the border edge maps (which absorb smooth distortion).
        let y_rough = self.edges.bbox.y0 as f64 + v * (self.edges.bbox.height() as f64 - 1.0);
        let yi =
            ((y_rough - self.edges.bbox.y0 as f64).round() as usize).min(self.edges.left.len() - 1);
        let xl = self.edges.left[yi];
        let xr = self.edges.right[yi];
        let x = xl + u * (xr - xl + 1.0);
        let xi = ((x - self.edges.bbox.x0 as f64).round() as isize)
            .clamp(0, self.edges.top.len() as isize - 1) as usize;
        let yt = self.edges.top[xi];
        let yb = self.edges.bottom[xi];
        let y = yt + v * (yb - yt + 1.0);
        (x, y)
    }

    /// Mean intensity over the central portion of a cell.
    #[inline]
    fn sample(&self, cx: usize, cy: usize) -> f64 {
        let (x, y) = self.cell_center(cx, cy);
        let half_w = (self.cell_w * 0.3).max(0.5);
        let half_h = (self.cell_h * 0.3).max(0.5);
        let x0 = (x - half_w).max(0.0) as usize;
        let y0 = (y - half_h).max(0.0) as usize;
        let block = ((half_w.min(half_h) * 2.0).round() as usize).max(1);
        block_mean(self.scan, x0, y0, block)
    }
}

/// Decode a single emblem from a (possibly degraded) grayscale scan.
pub fn decode_emblem(
    geom: &EmblemGeometry,
    scan: &GrayImage,
) -> Result<(EmblemHeader, Vec<u8>, DecodeStats), DecodeError> {
    let threshold = scan.otsu_threshold();
    let bit = scan.threshold(threshold);
    let sampler = GridSampler::new(scan, &bit, geom).ok_or(DecodeError::BorderNotFound)?;
    let is_white = |v: f64| v >= threshold as f64;
    let mut stats = DecodeStats::default();

    // Calibration row: verify the large-scale dots.
    let mut matched = 0usize;
    for cx in 0..geom.cols {
        if is_white(sampler.sample(cx, 0)) == calibration_level(cx) {
            matched += 1;
        }
    }
    stats.calibration_match_pm = (matched * 1000 / geom.cols) as u16;
    if stats.calibration_match_pm < 850 {
        return Err(DecodeError::CalibrationMismatch {
            matched_pm: stats.calibration_match_pm,
        });
    }

    // Header copies.
    let header_cells_len = HEADER_BYTES * 8 * 2;
    let mut header: Option<EmblemHeader> = None;
    let mut copies_bits: Vec<Vec<bool>> = Vec::with_capacity(HEADER_COPIES);
    for copy in 0..HEADER_COPIES {
        let row = 1 + copy;
        let cells: Vec<bool> = (0..header_cells_len)
            .map(|cx| is_white(sampler.sample(cx, row)))
            .collect();
        let dec = decode_cells(&cells, true);
        let bytes = bits_to_bytes(&dec.bits);
        if let Ok(h) = EmblemHeader::from_bytes(&bytes) {
            header = Some(h);
            stats.header_copy_used = copy;
            break;
        }
        copies_bits.push(dec.bits);
    }
    let header = match header {
        Some(h) => h,
        None => {
            // Majority vote across the copies we collected.
            let nbits = HEADER_BYTES * 8;
            let mut voted = vec![false; nbits];
            for (i, slot) in voted.iter_mut().enumerate() {
                let ones = copies_bits
                    .iter()
                    .filter(|c| c.get(i) == Some(&true))
                    .count();
                *slot = ones * 2 > copies_bits.len();
            }
            stats.header_copy_used = HEADER_COPIES;
            EmblemHeader::from_bytes(&bits_to_bytes(&voted))
                .map_err(|_| DecodeError::HeaderUnreadable)?
        }
    };

    // Data region: one continuous self-clocked run.
    let data_rows = geom.rows - OVERHEAD_ROWS;
    let mut cells = Vec::with_capacity(data_rows * geom.cols);
    for cy in 0..data_rows {
        for cx in 0..geom.cols {
            cells.push(is_white(sampler.sample(cx, cy + OVERHEAD_ROWS)));
        }
    }
    let dec = decode_cells(&cells, true);
    stats.sync_errors = dec.sync_errors.len();
    let coded_all = bits_to_bytes(&dec.bits);

    // De-interleave and correct each inner block.
    let (mut payload, fixed) = inner_decode_with(geom, &coded_all, ThreadConfig::Serial)?;
    stats.rs_corrected += fixed;
    payload.truncate(header.payload_len as usize);
    Ok((header, payload, stats))
}

/// De-interleave an inner-coded byte stream (the layout
/// [`crate::encode::inner_encode`] produces) and run errors-only
/// Reed–Solomon correction on every block,
/// fanning the independent blocks out across `threads` workers.
///
/// Returns the untruncated payload (`rs_blocks() * 223` bytes) plus the
/// total number of corrected byte positions. This is the byte-level half
/// of [`decode_emblem`], exposed so damage experiments can drive the §3.1
/// intra-emblem boundary without synthesising pixel scans.
///
/// Undamaged blocks take [`ule_gf256::RsCode::decode`]'s clean-frame fast
/// path — one slice-kernel syndromes pass each, no Berlekamp–Massey — so
/// scanning intact media is syndromes-bound (`DESIGN.md` §12, report
/// `[E11]`).
pub fn inner_decode_with(
    geom: &EmblemGeometry,
    coded: &[u8],
    threads: ThreadConfig,
) -> Result<(Vec<u8>, usize), DecodeError> {
    let nblocks = geom.rs_blocks();
    assert!(
        coded.len() >= nblocks * RS_N,
        "coded stream shorter than {} blocks",
        nblocks
    );
    // De-interleave inside each parallel job: the codeword is built,
    // corrected and returned by the same worker, so no intermediate
    // block table (or per-block clone) is ever materialised.
    let rs = geom.inner_code();
    let results = ule_par::map_indexed(threads, nblocks, |b| {
        let mut cw: Vec<u8> = (0..RS_N).map(|i| coded[i * nblocks + b]).collect();
        rs.decode(&mut cw, &[]).map(|fixed| (cw, fixed))
    });
    let mut payload = Vec::with_capacity(nblocks * RS_K);
    let mut corrected = 0;
    for (b, r) in results.into_iter().enumerate() {
        match r {
            Ok((cw, fixed)) => {
                corrected += fixed;
                payload.extend_from_slice(&cw[..RS_K]);
            }
            Err(_) => return Err(DecodeError::RsFailure { block: b }),
        }
    }
    Ok((payload, corrected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_emblem;
    use crate::header::EmblemKind;
    use ule_raster::{DegradeParams, Scanner};

    fn geom() -> EmblemGeometry {
        EmblemGeometry::test_small()
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(11))
            .collect()
    }

    fn hdr(len: usize) -> EmblemHeader {
        EmblemHeader::new(EmblemKind::Data, 3, 1, len as u32, len as u32)
    }

    #[test]
    fn pristine_roundtrip() {
        let g = geom();
        let data = payload(g.payload_capacity());
        let img = encode_emblem(&g, &hdr(data.len()), &data);
        let (h, p, stats) = decode_emblem(&g, &img).unwrap();
        assert_eq!(h.index, 3);
        assert_eq!(p, data);
        assert_eq!(stats.rs_corrected, 0);
        assert_eq!(stats.sync_errors, 0);
        assert_eq!(stats.calibration_match_pm, 1000);
    }

    #[test]
    fn partial_payload_roundtrip() {
        let g = geom();
        let data = payload(100);
        let img = encode_emblem(&g, &hdr(100), &data);
        let (_, p, _) = decode_emblem(&g, &img).unwrap();
        assert_eq!(p, data);
    }

    #[test]
    fn noisy_scan_roundtrip() {
        let g = geom();
        let data = payload(g.payload_capacity());
        let img = encode_emblem(&g, &hdr(data.len()), &data);
        let params = DegradeParams {
            noise_sigma: 30.0,
            row_jitter: 0.6,
            fade_amplitude: 15.0,
            ..Default::default()
        };
        let scan = Scanner::new(params, 42).scan(&img);
        let (_, p, _) = decode_emblem(&g, &scan).unwrap();
        assert_eq!(p, data);
    }

    #[test]
    fn rescaled_scan_roundtrip() {
        // A 1.5x scan resolution (like 2K film scanned at 4K, scaled down).
        let g = geom();
        let data = payload(200);
        let img = encode_emblem(&g, &hdr(200), &data);
        let params = DegradeParams {
            scan_scale: 1.5,
            noise_sigma: 10.0,
            ..Default::default()
        };
        let scan = Scanner::new(params, 5).scan(&img);
        let (_, p, _) = decode_emblem(&g, &scan).unwrap();
        assert_eq!(p, data);
    }

    #[test]
    fn dusty_scan_is_corrected_by_inner_rs() {
        let g = geom();
        let data = payload(g.payload_capacity());
        let img = encode_emblem(&g, &hdr(data.len()), &data);
        let params = DegradeParams {
            dust_per_mpx: 40.0,
            dust_max_radius: 2.0,
            noise_sigma: 10.0,
            ..Default::default()
        };
        let scan = Scanner::new(params, 9).scan(&img);
        let (_, p, stats) = decode_emblem(&g, &scan).unwrap();
        assert_eq!(p, data);
        assert!(stats.rs_corrected > 0, "dust should force RS corrections");
    }

    #[test]
    fn blank_image_reports_border_not_found() {
        let g = geom();
        let img = GrayImage::new(400, 300, 255);
        assert_eq!(
            decode_emblem(&g, &img).unwrap_err(),
            DecodeError::BorderNotFound
        );
    }

    #[test]
    fn wrong_geometry_rejected_by_calibration() {
        let g = geom();
        let data = payload(50);
        let img = encode_emblem(&g, &hdr(50), &data);
        // Try to decode with a much wider geometry: cell sampling lands on
        // wrong positions and the calibration row cannot match.
        let wrong = EmblemGeometry::new(512, 96, 3);
        let err = decode_emblem(&wrong, &img).unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::CalibrationMismatch { .. } | DecodeError::HeaderUnreadable
            ),
            "{err:?}"
        );
    }
}
