//! MOCoder — the media layout encoder/decoder (system **S4** in `DESIGN.md`).
//!
//! MOCoder performs the "physical" layout of bits across 2D barcodes the
//! paper calls *emblems* (§3.1, Figure 1). Unlike QR codes, emblems:
//!
//! * pair the bit signal with the clock signal (differential-Manchester
//!   style, [`manchester`]) instead of relying on separate timing patterns,
//!   giving robust **local** clock recovery;
//! * are surrounded by a thick black square plus large-scale black/white
//!   dots ([`geometry`]) for fast, robust detection of emblem geometry and
//!   type;
//! * carry multi-megabyte streams across many emblems with **nested
//!   Reed–Solomon** protection: an inner RS(255,223) per emblem (corrects
//!   up to 7.2% damaged data) and an outer RS(20,17) across groups of 20
//!   emblems (any 3 whole emblems may be lost) — see [`stream`].
//!
//! Encoding renders print masters as [`ule_raster::GrayImage`]s; decoding
//! consumes (possibly degraded, rescaled) scans and follows the border
//! geometry to resample the cell grid, so lens curvature and transport
//! jitter are compensated exactly the way §3.1 demands.
//!
//! Emblems in a stream are independent, so the batch entry points
//! ([`encode_stream_with`], [`decode_stream_with`], plus the
//! `inner_*_with` block-level helpers) accept a [`ThreadConfig`] and fan
//! the per-emblem work out across a scoped worker pool — with output
//! byte-identical to the serial path at any thread count, because the
//! on-medium format is frozen (`DESIGN.md` §9).

pub mod decode;
pub mod encode;
pub mod geometry;
pub mod header;
pub mod locate;
pub mod manchester;
pub mod stream;

pub use decode::{decode_emblem, inner_decode_with, DecodeError, DecodeStats};
pub use encode::{encode_emblem, inner_encode, inner_encode_with};
pub use geometry::EmblemGeometry;
pub use header::{EmblemHeader, EmblemKind};
pub use stream::{
    decode_stream, decode_stream_traced, decode_stream_with, encode_stream, encode_stream_traced,
    encode_stream_with, StreamError,
};
pub use ule_par::ThreadConfig;
