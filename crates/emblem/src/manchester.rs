//! Self-clocking cell coding (differential-Manchester family).
//!
//! Each data bit occupies two consecutive cells (half-periods). The encoder
//! guarantees a level transition at every bit boundary — that is the clock
//! signal, paired with the data exactly as §3.1 describes ("an approach
//! similar to Differential Manchester encoding used in floppy disks") — and
//! encodes the bit in whether a *mid-period* transition occurs:
//!
//! * bit 1 → the two half-cells differ;
//! * bit 0 → the two half-cells are equal.
//!
//! Decoding therefore only compares *adjacent* cells, so slow distortions
//! (fading, lens shading) that shift absolute intensity cancel out, and a
//! missing boundary transition is detectable as a local sync error.

/// Encode `bits` into cell levels (false = black, true = white), starting
/// from `start_level` (the level of the *last* cell before this run; the
/// first emitted cell will be its inverse).
pub fn encode_cells(bits: &[bool], start_level: bool) -> Vec<bool> {
    let mut cells = Vec::with_capacity(bits.len() * 2);
    let mut level = start_level;
    for &bit in bits {
        level = !level; // clock transition at the bit boundary
        cells.push(level);
        if bit {
            level = !level; // mid-period transition encodes a 1
        }
        cells.push(level);
    }
    cells
}

/// Result of decoding a cell run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellDecode {
    pub bits: Vec<bool>,
    /// Indices of bits whose *boundary* transition was missing — a local
    /// clock-sync violation, flagged so callers can treat the surrounding
    /// bytes as suspect (soft erasure information for the RS layer).
    pub sync_errors: Vec<usize>,
}

/// Decode cells produced by [`encode_cells`]. `start_level` must match the
/// value passed to the encoder.
///
/// Cells come in half-period pairs, but a scanner that tears mid-bit hands
/// this decoder an odd run; the dangling half-period decodes to no bit and
/// is reported as a sync error at the final pair index, instead of
/// panicking on hostile input.
pub fn decode_cells(cells: &[bool], start_level: bool) -> CellDecode {
    let mut bits = Vec::with_capacity(cells.len() / 2);
    let mut sync_errors = Vec::new();
    let mut prev = start_level;
    for (i, pair) in cells.chunks_exact(2).enumerate() {
        let (h1, h2) = (pair[0], pair[1]);
        if h1 == prev {
            // Boundary transition missing: the clock slipped here.
            sync_errors.push(i);
        }
        bits.push(h1 != h2);
        prev = h2;
    }
    if cells.len() % 2 != 0 {
        sync_errors.push(cells.len() / 2);
    }
    CellDecode { bits, sync_errors }
}

/// Pack bits (MSB-first) into bytes, zero-padding the tail.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 0x80 >> (i % 8);
        }
    }
    out
}

/// Unpack bytes into bits, MSB-first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            out.push((b >> i) & 1 != 0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_byte_values() {
        for byte in 0..=255u8 {
            let bits = bytes_to_bits(&[byte]);
            for start in [false, true] {
                let cells = encode_cells(&bits, start);
                let dec = decode_cells(&cells, start);
                assert_eq!(dec.bits, bits, "byte {byte:#04x} start {start}");
                assert!(dec.sync_errors.is_empty());
            }
        }
    }

    #[test]
    fn odd_cell_run_decodes_with_sync_error() {
        // Fuzz regression: a torn scan hands the decoder an odd number of
        // half-periods; the dangling one must be a sync error, not a panic.
        let bits = bytes_to_bits(&[0xA5]);
        let cells = encode_cells(&bits, false);
        let dec = decode_cells(&cells[..cells.len() - 1], false);
        assert_eq!(dec.bits, bits[..bits.len() - 1]);
        assert_eq!(dec.sync_errors, vec![bits.len() - 1]);
    }

    #[test]
    fn single_half_period_yields_no_bits() {
        let dec = decode_cells(&[true], false);
        assert!(dec.bits.is_empty());
        assert_eq!(dec.sync_errors, vec![0]);
    }

    #[test]
    fn every_bit_boundary_has_transition() {
        let bits = bytes_to_bits(&[0x00, 0xFF, 0xA5, 0x3C]);
        let cells = encode_cells(&bits, false);
        let mut prev = false;
        for pair in cells.chunks_exact(2) {
            assert_ne!(pair[0], prev, "boundary transition missing");
            prev = pair[1];
        }
    }

    #[test]
    fn zero_bits_hold_level_within_period() {
        let cells = encode_cells(&[false, false], false);
        assert_eq!(cells, vec![true, true, false, false]);
    }

    #[test]
    fn one_bits_flip_mid_period() {
        let cells = encode_cells(&[true, true], false);
        assert_eq!(cells, vec![true, false, true, false]);
    }

    #[test]
    fn corrupted_cell_is_detected_as_sync_error() {
        let bits = bytes_to_bits(&[0b1010_1010]);
        let mut cells = encode_cells(&bits, false);
        cells[4] = !cells[4]; // flip one half-cell
        let dec = decode_cells(&cells, false);
        assert!(!dec.sync_errors.is_empty());
    }

    #[test]
    fn long_constant_runs_still_clock() {
        // 10 000 zero bits: a plain NRZ code would have no transitions; the
        // self-clocking code transitions every bit boundary.
        let bits = vec![false; 10_000];
        let cells = encode_cells(&bits, true);
        let transitions = cells.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(transitions >= 9_999);
        let dec = decode_cells(&cells, true);
        assert_eq!(dec.bits, bits);
    }

    #[test]
    fn bits_bytes_roundtrip_with_padding() {
        let bits = vec![true, false, true]; // 3 bits -> 1 byte padded
        let bytes = bits_to_bytes(&bits);
        assert_eq!(bytes, vec![0b1010_0000]);
        assert_eq!(&bytes_to_bits(&bytes)[..3], &bits[..]);
    }
}
