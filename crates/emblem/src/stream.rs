//! Multi-emblem streams and the inter-emblem (outer) Reed–Solomon code.
//!
//! §3.1: "The outer code, or inter-emblem mechanism, protects against
//! whole-emblem failures, by including three parity emblems with each set
//! of 17 data emblems. This results in the full bit-for-bit restoration of
//! data contained within a series of 20 emblems in which any three are
//! missing altogether."
//!
//! Groups with fewer than 17 data emblems (the stream tail) use the
//! shortened RS(n+3, n) code — still any-3-of-(n+3) recoverable.

use crate::decode::{decode_emblem, DecodeStats};
use crate::encode::encode_emblem;
use crate::geometry::EmblemGeometry;
use crate::header::{EmblemHeader, EmblemKind};
use ule_gf256::RsCode;
use ule_par::ThreadConfig;
use ule_raster::GrayImage;

/// Data emblems per full group.
pub const GROUP_DATA: usize = 17;
/// Parity emblems per group.
pub const GROUP_PARITY: usize = 3;

/// How a payload maps onto emblems.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamPlan {
    /// Payload bytes carried per emblem.
    pub chunk_size: usize,
    /// Number of data emblems.
    pub data_emblems: usize,
    /// Number of parity emblems (0 when the outer code is disabled).
    pub parity_emblems: usize,
    /// Total stream length in bytes.
    pub total_len: usize,
}

impl StreamPlan {
    pub fn total_emblems(&self) -> usize {
        self.data_emblems + self.parity_emblems
    }
}

/// Compute the emblem plan for `len` payload bytes.
pub fn plan(geom: &EmblemGeometry, len: usize, with_parity: bool) -> StreamPlan {
    let chunk = geom.payload_capacity();
    let data = len.div_ceil(chunk).max(1);
    let parity = if with_parity {
        data.div_ceil(GROUP_DATA) * GROUP_PARITY
    } else {
        0
    };
    StreamPlan {
        chunk_size: chunk,
        data_emblems: data,
        parity_emblems: parity,
        total_len: len,
    }
}

/// Encode a payload into a sequence of emblem print masters.
///
/// Emission order per group: the group's data emblems, then its 3 parity
/// emblems; indices are global and sequential. With `with_parity = false`
/// only data emblems are produced (the paper's §4 paper-archive experiment
/// reports 26 emblems for 1.2 MB, i.e. data emblems only).
pub fn encode_stream(
    geom: &EmblemGeometry,
    kind: EmblemKind,
    payload: &[u8],
    with_parity: bool,
) -> Vec<GrayImage> {
    encode_stream_with(geom, kind, payload, with_parity, ThreadConfig::Serial)
}

/// [`encode_stream`] with the per-emblem work (outer-code parity, inner RS
/// encode, cell layout, rasterisation) fanned out across `threads` workers.
///
/// Determinism: emblem content is a pure function of `(header, chunk)`, and
/// both the outer-parity stage (one job per group) and the render stage
/// (one job per emblem) join their results in index order, so the produced
/// images are byte-identical to the serial path at any thread count
/// (`tests/parallel_identity.rs` pins this; `tests/golden_format.rs` pins
/// the absolute bytes so the frozen format cannot drift).
pub fn encode_stream_with(
    geom: &EmblemGeometry,
    kind: EmblemKind,
    payload: &[u8],
    with_parity: bool,
    threads: ThreadConfig,
) -> Vec<GrayImage> {
    let p = plan(geom, payload.len(), with_parity);
    let cap = p.chunk_size;
    let total = payload.len() as u32;
    let n_groups = p.data_emblems.div_ceil(GROUP_DATA);
    let chunk = |c: usize| -> &[u8] {
        let start = c * cap;
        let end = ((c + 1) * cap).min(payload.len());
        &payload[start.min(payload.len())..end]
    };

    // Stage 1: outer-code parity chunks, one independent job per group.
    let parity_chunks: Vec<Vec<Vec<u8>>> = if with_parity {
        ule_par::map_indexed(threads, n_groups, |g| {
            let base = g * GROUP_DATA;
            let in_group = (p.data_emblems - base).min(GROUP_DATA);
            let rs = RsCode::new(in_group + GROUP_PARITY, in_group);
            let mut parity = vec![vec![0u8; cap]; GROUP_PARITY];
            let mut col = vec![0u8; in_group + GROUP_PARITY];
            for j in 0..cap {
                for (i, slot) in col[..in_group].iter_mut().enumerate() {
                    *slot = chunk(base + i).get(j).copied().unwrap_or(0);
                }
                for v in col[in_group..].iter_mut() {
                    *v = 0;
                }
                rs.fill_parity(&mut col);
                for (pi, pchunk) in parity.iter_mut().enumerate() {
                    pchunk[j] = col[in_group + pi];
                }
            }
            parity
        })
    } else {
        Vec::new()
    };

    // Stage 2: flatten to the emission order (group's data, then its
    // parity; global sequential indices), then render every emblem in
    // parallel.
    let mut jobs: Vec<(EmblemHeader, &[u8])> = Vec::with_capacity(p.total_emblems());
    let mut index = 0u16;
    for g in 0..n_groups {
        let base = g * GROUP_DATA;
        let in_group = (p.data_emblems - base).min(GROUP_DATA);
        for i in 0..in_group {
            let ch = chunk(base + i);
            let header = EmblemHeader::new(kind, index, g as u16, ch.len() as u32, total);
            jobs.push((header, ch));
            index += 1;
        }
        if with_parity {
            for pchunk in &parity_chunks[g] {
                let header =
                    EmblemHeader::new(EmblemKind::Parity, index, g as u16, cap as u32, total);
                jobs.push((header, pchunk.as_slice()));
                index += 1;
            }
        }
    }
    ule_par::map(threads, &jobs, |(header, ch)| {
        encode_emblem(geom, header, ch)
    })
}

/// Stream-level decode failures.
#[derive(Debug, PartialEq, Eq)]
pub enum StreamError {
    /// No scan decoded to a usable emblem.
    NoEmblems,
    /// Emblems disagree about the stream length.
    InconsistentHeaders,
    /// A group lost more emblems than the outer code can restore.
    TooManyMissing {
        group: u16,
        missing: usize,
        correctable: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::NoEmblems => write!(f, "no decodable emblems"),
            StreamError::InconsistentHeaders => write!(f, "emblem headers disagree"),
            StreamError::TooManyMissing { group, missing, correctable } => write!(
                f,
                "group {group}: {missing} emblems missing, outer code corrects at most {correctable}"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Stream decode diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Scans handed in.
    pub scans: usize,
    /// Scans that failed individual emblem decoding.
    pub failed_scans: usize,
    /// Whole emblems reconstructed by the outer code.
    pub emblems_recovered: usize,
    /// Total bytes fixed by the inner code across emblems.
    pub rs_corrected: usize,
}

/// Decode a set of scans (unordered, possibly incomplete and with
/// duplicates) back into the stream payload.
pub fn decode_stream(
    geom: &EmblemGeometry,
    scans: &[GrayImage],
) -> Result<(Vec<u8>, StreamStats), StreamError> {
    decode_stream_with(geom, scans, ThreadConfig::Serial)
}

/// [`decode_stream`] with the per-scan pipeline (locate border → resample
/// grid → inner RS errors correction) fanned out across `threads` workers.
/// The outer-code erasure recovery and reassembly run after the join and
/// consume per-scan results in input order, so payload bytes and
/// [`StreamStats`] are identical to the serial path at any thread count.
pub fn decode_stream_with(
    geom: &EmblemGeometry,
    scans: &[GrayImage],
    threads: ThreadConfig,
) -> Result<(Vec<u8>, StreamStats), StreamError> {
    let mut stats = StreamStats {
        scans: scans.len(),
        ..Default::default()
    };
    // Individual decode; tolerate per-scan failures (the outer code's job).
    let results = ule_par::map(threads, scans, |scan| decode_emblem(geom, scan));
    let mut decoded: Vec<(EmblemHeader, Vec<u8>, DecodeStats)> = Vec::new();
    for r in results {
        match r {
            Ok(r) => decoded.push(r),
            Err(_) => stats.failed_scans += 1,
        }
    }
    if decoded.is_empty() {
        return Err(StreamError::NoEmblems);
    }
    let total_len = decoded[0].0.total_len;
    if decoded.iter().any(|(h, _, _)| h.total_len != total_len) {
        return Err(StreamError::InconsistentHeaders);
    }
    for (_, _, s) in &decoded {
        stats.rs_corrected += s.rs_corrected;
    }

    let cap = geom.payload_capacity();
    let n_chunks = (total_len as usize).div_ceil(cap).max(1);
    let had_parity = decoded.iter().any(|(h, _, _)| h.kind == EmblemKind::Parity);

    // Rebuild chunk table: chunk c lives in group c / 17 at position c % 17.
    let mut chunks: Vec<Option<Vec<u8>>> = vec![None; n_chunks];
    let mut parity: Vec<Vec<Option<Vec<u8>>>> =
        vec![vec![None; GROUP_PARITY]; n_chunks.div_ceil(GROUP_DATA)];
    for (h, payload, _) in decoded {
        let idx = h.index as usize;
        let group = h.group as usize;
        match h.kind {
            EmblemKind::Parity => {
                // Parity emblems follow the group's data emblems: their
                // position within the group is recovered from the index.
                let group_start_idx = group_start_index(group, n_chunks, had_parity);
                let in_group = group_data_count(group, n_chunks);
                let pos = idx.saturating_sub(group_start_idx + in_group);
                if group < parity.len() && pos < GROUP_PARITY && parity[group][pos].is_none() {
                    let mut p = payload;
                    p.resize(cap, 0);
                    parity[group][pos] = Some(p);
                }
            }
            _ => {
                let group_start_idx = group_start_index(group, n_chunks, had_parity);
                let chunk_no = group * GROUP_DATA + (idx - group_start_idx);
                if chunk_no < n_chunks && chunks[chunk_no].is_none() {
                    chunks[chunk_no] = Some(payload);
                }
            }
        }
    }

    // Per-group erasure recovery.
    for group in 0..n_chunks.div_ceil(GROUP_DATA) {
        let in_group = group_data_count(group, n_chunks);
        let base = group * GROUP_DATA;
        let missing: Vec<usize> = (0..in_group)
            .filter(|&i| chunks[base + i].is_none())
            .collect();
        if missing.is_empty() {
            continue;
        }
        let parity_avail = parity[group].iter().filter(|p| p.is_some()).count();
        let missing_parity = GROUP_PARITY - parity_avail;
        if missing.len() + missing_parity > GROUP_PARITY {
            return Err(StreamError::TooManyMissing {
                group: group as u16,
                missing: missing.len() + missing_parity,
                correctable: GROUP_PARITY,
            });
        }
        let rs = RsCode::new(in_group + GROUP_PARITY, in_group);
        // Erasure positions in codeword coordinates.
        let mut erasures: Vec<usize> = missing.clone();
        for (pi, p) in parity[group].iter().enumerate() {
            if p.is_none() {
                erasures.push(in_group + pi);
            }
        }
        let mut recovered: Vec<Vec<u8>> = vec![vec![0u8; cap]; missing.len()];
        let mut col = vec![0u8; in_group + GROUP_PARITY];
        for j in 0..cap {
            for i in 0..in_group {
                col[i] = chunks[base + i]
                    .as_ref()
                    .map_or(0, |c| c.get(j).copied().unwrap_or(0));
            }
            for (pi, p) in parity[group].iter().enumerate() {
                col[in_group + pi] = p.as_ref().map_or(0, |c| c[j]);
            }
            rs.decode(&mut col, &erasures)
                .map_err(|_| StreamError::TooManyMissing {
                    group: group as u16,
                    missing: erasures.len(),
                    correctable: GROUP_PARITY,
                })?;
            for (mi, &m) in missing.iter().enumerate() {
                recovered[mi][j] = col[m];
            }
        }
        for (mi, m) in missing.into_iter().enumerate() {
            // Trim the final chunk to the stream tail length.
            let chunk_no = base + m;
            let logical_len = if chunk_no + 1 == n_chunks {
                total_len as usize - chunk_no * cap
            } else {
                cap
            };
            let mut c = std::mem::take(&mut recovered[mi]);
            c.truncate(logical_len);
            chunks[chunk_no] = Some(c);
            stats.emblems_recovered += 1;
        }
    }

    // Concatenate.
    let mut out = Vec::with_capacity(total_len as usize);
    for c in chunks {
        out.extend_from_slice(&c.expect("all chunks present after recovery"));
    }
    out.truncate(total_len as usize);
    Ok((out, stats))
}

/// CRC-32 fingerprint of an image sequence (order-sensitive): the
/// byte-identity check used by the conformance net — `tests/golden_format.rs`
/// pins these against checked-in vectors and the report's `[E8]` section
/// compares them across thread counts — so both sides measure exactly the
/// same thing.
pub fn stream_crc32(images: &[GrayImage]) -> u32 {
    let mut st = 0xFFFF_FFFFu32;
    for im in images {
        st = ule_gf256::crc::crc32_update(st, im.as_bytes());
    }
    st ^ 0xFFFF_FFFF
}

/// Global emblem index at which `group`'s data emblems start.
fn group_start_index(group: usize, n_chunks: usize, with_parity: bool) -> usize {
    let full_groups = group.min(n_chunks / GROUP_DATA);
    let mut idx = full_groups * GROUP_DATA + group.saturating_sub(full_groups) * 0;
    if with_parity {
        idx += group * GROUP_PARITY;
    }
    // Account for a shorter group only if it precedes `group` (cannot
    // happen: only the last group is short), so the above suffices.
    idx
}

/// Number of data emblems in `group`.
fn group_data_count(group: usize, n_chunks: usize) -> usize {
    (n_chunks - group * GROUP_DATA).min(GROUP_DATA)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> EmblemGeometry {
        EmblemGeometry::test_small()
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(131).wrapping_add(7))
            .collect()
    }

    #[test]
    fn plan_counts() {
        let g = geom();
        let cap = g.payload_capacity();
        let p = plan(&g, cap * 17, true);
        assert_eq!(p.data_emblems, 17);
        assert_eq!(p.parity_emblems, 3);
        let p = plan(&g, cap * 18, true);
        assert_eq!(p.data_emblems, 18);
        assert_eq!(p.parity_emblems, 6);
        let p = plan(&g, cap * 5, false);
        assert_eq!(p.parity_emblems, 0);
    }

    #[test]
    fn single_emblem_stream_roundtrip() {
        let g = geom();
        let data = payload(300);
        let images = encode_stream(&g, EmblemKind::Data, &data, true);
        assert_eq!(images.len(), 4); // 1 data + 3 parity
        let (out, stats) = decode_stream(&g, &images).unwrap();
        assert_eq!(out, data);
        assert_eq!(stats.emblems_recovered, 0);
    }

    #[test]
    fn multi_emblem_stream_roundtrip() {
        let g = geom();
        let data = payload(g.payload_capacity() * 4 + 123);
        let images = encode_stream(&g, EmblemKind::Data, &data, true);
        assert_eq!(images.len(), 5 + 3);
        let (out, _) = decode_stream(&g, &images).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn any_three_missing_recovered() {
        let g = geom();
        let data = payload(g.payload_capacity() * 5 + 17);
        let images = encode_stream(&g, EmblemKind::Data, &data, true);
        // Drop 3 emblems: two data + one parity.
        let kept: Vec<GrayImage> = images
            .iter()
            .enumerate()
            .filter(|(i, _)| ![1usize, 4, 7].contains(i))
            .map(|(_, im)| im.clone())
            .collect();
        let (out, stats) = decode_stream(&g, &kept).unwrap();
        assert_eq!(out, data);
        assert_eq!(stats.emblems_recovered, 2); // the two data emblems
    }

    #[test]
    fn four_missing_fails() {
        let g = geom();
        let data = payload(g.payload_capacity() * 5);
        let images = encode_stream(&g, EmblemKind::Data, &data, true);
        let kept: Vec<GrayImage> = images
            .iter()
            .enumerate()
            .filter(|(i, _)| ![0usize, 1, 2, 5].contains(i))
            .map(|(_, im)| im.clone())
            .collect();
        assert!(matches!(
            decode_stream(&g, &kept),
            Err(StreamError::TooManyMissing { .. })
        ));
    }

    #[test]
    fn unordered_and_duplicated_scans_ok() {
        let g = geom();
        let data = payload(g.payload_capacity() * 2 + 9);
        let mut images = encode_stream(&g, EmblemKind::Data, &data, true);
        images.reverse();
        let dup = images[0].clone();
        images.push(dup);
        let (out, _) = decode_stream(&g, &images).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn no_parity_stream_roundtrip() {
        let g = geom();
        let data = payload(g.payload_capacity() * 3 + 1);
        let images = encode_stream(&g, EmblemKind::Data, &data, false);
        assert_eq!(images.len(), 4);
        let (out, _) = decode_stream(&g, &images).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn no_parity_stream_missing_emblem_fails() {
        let g = geom();
        let data = payload(g.payload_capacity() * 3);
        let images = encode_stream(&g, EmblemKind::Data, &data, false);
        let kept = &images[1..];
        assert!(decode_stream(&g, kept).is_err());
    }

    #[test]
    fn empty_payload_still_produces_an_emblem() {
        let g = geom();
        let images = encode_stream(&g, EmblemKind::System, &[], true);
        assert_eq!(images.len(), 4);
        let (out, _) = decode_stream(&g, &images).unwrap();
        assert!(out.is_empty());
    }
}
