//! Multi-emblem streams and the inter-emblem (outer) Reed–Solomon code.
//!
//! §3.1: "The outer code, or inter-emblem mechanism, protects against
//! whole-emblem failures, by including three parity emblems with each set
//! of 17 data emblems. This results in the full bit-for-bit restoration of
//! data contained within a series of 20 emblems in which any three are
//! missing altogether."
//!
//! Groups with fewer than 17 data emblems (the stream tail) use the
//! shortened RS(n+3, n) code — still any-3-of-(n+3) recoverable.

use crate::decode::{decode_emblem, DecodeStats};
use crate::encode::encode_emblem;
use crate::geometry::EmblemGeometry;
use crate::header::{EmblemHeader, EmblemKind};
use ule_gf256::RsCode;
use ule_obs::Telemetry;
use ule_par::ThreadConfig;
use ule_raster::GrayImage;

/// Data emblems per full group.
pub const GROUP_DATA: usize = 17;
/// Parity emblems per group.
pub const GROUP_PARITY: usize = 3;

/// How a payload maps onto emblems.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamPlan {
    /// Payload bytes carried per emblem.
    pub chunk_size: usize,
    /// Number of data emblems.
    pub data_emblems: usize,
    /// Number of parity emblems (0 when the outer code is disabled).
    pub parity_emblems: usize,
    /// Total stream length in bytes.
    pub total_len: usize,
}

impl StreamPlan {
    pub fn total_emblems(&self) -> usize {
        self.data_emblems + self.parity_emblems
    }
}

/// Compute the emblem plan for `len` payload bytes.
pub fn plan(geom: &EmblemGeometry, len: usize, with_parity: bool) -> StreamPlan {
    let chunk = geom.payload_capacity();
    let data = len.div_ceil(chunk).max(1);
    let parity = if with_parity {
        data.div_ceil(GROUP_DATA) * GROUP_PARITY
    } else {
        0
    };
    StreamPlan {
        chunk_size: chunk,
        data_emblems: data,
        parity_emblems: parity,
        total_len: len,
    }
}

/// Encode a payload into a sequence of emblem print masters.
///
/// Emission order per group: the group's data emblems, then its 3 parity
/// emblems; indices are global and sequential. With `with_parity = false`
/// only data emblems are produced (the paper's §4 paper-archive experiment
/// reports 26 emblems for 1.2 MB, i.e. data emblems only).
pub fn encode_stream(
    geom: &EmblemGeometry,
    kind: EmblemKind,
    payload: &[u8],
    with_parity: bool,
) -> Vec<GrayImage> {
    encode_stream_with(geom, kind, payload, with_parity, ThreadConfig::Serial)
}

/// [`encode_stream`] with the per-emblem work (outer-code parity, inner RS
/// encode, cell layout, rasterisation) fanned out across `threads` workers.
///
/// Determinism: emblem content is a pure function of `(header, chunk)`, and
/// both the outer-parity stage (one job per group) and the render stage
/// (one job per emblem) join their results in index order, so the produced
/// images are byte-identical to the serial path at any thread count
/// (`tests/parallel_identity.rs` pins this; `tests/golden_format.rs` pins
/// the absolute bytes so the frozen format cannot drift).
pub fn encode_stream_with(
    geom: &EmblemGeometry,
    kind: EmblemKind,
    payload: &[u8],
    with_parity: bool,
    threads: ThreadConfig,
) -> Vec<GrayImage> {
    encode_stream_traced(geom, kind, payload, with_parity, threads, &Telemetry::off())
}

/// [`encode_stream_with`] plus telemetry: spans for the outer-parity and
/// render stages, counters for data/parity emblem counts. The recorder
/// only observes — emitted images are byte-identical to the untraced path
/// (and the default [`Telemetry::off`] handle never reads the clock).
pub fn encode_stream_traced(
    geom: &EmblemGeometry,
    kind: EmblemKind,
    payload: &[u8],
    with_parity: bool,
    threads: ThreadConfig,
    tel: &Telemetry,
) -> Vec<GrayImage> {
    let p = plan(geom, payload.len(), with_parity);
    let cap = p.chunk_size;
    let total = payload.len() as u32;
    let n_groups = p.data_emblems.div_ceil(GROUP_DATA);
    let chunk = |c: usize| -> &[u8] {
        let start = c * cap;
        let end = ((c + 1) * cap).min(payload.len());
        &payload[start.min(payload.len())..end]
    };

    // Stage 1: outer-code parity chunks, one independent job per group.
    // `parity_of` batches all `cap` byte columns per slice-kernel call
    // (DESIGN.md §12) — byte-identical to the old column-at-a-time
    // `fill_parity` loop, which is exactly the per-column contract
    // `parity_of` documents and pins.
    let parity_chunks: Vec<Vec<Vec<u8>>> = if with_parity {
        let _span = tel.span("archive.encode.parity");
        ule_par::map_indexed(threads, n_groups, |g| {
            let base = g * GROUP_DATA;
            let in_group = (p.data_emblems - base).min(GROUP_DATA);
            let rs = RsCode::new(in_group + GROUP_PARITY, in_group);
            let padded: Vec<Vec<u8>> = (0..in_group)
                .map(|i| {
                    let mut c = chunk(base + i).to_vec();
                    c.resize(cap, 0);
                    c
                })
                .collect();
            let refs: Vec<&[u8]> = padded.iter().map(|c| c.as_slice()).collect();
            rs.parity_of(&refs)
        })
    } else {
        Vec::new()
    };

    // Stage 2: flatten to the emission order (group's data, then its
    // parity; global sequential indices), then render every emblem in
    // parallel.
    let mut jobs: Vec<(EmblemHeader, &[u8])> = Vec::with_capacity(p.total_emblems());
    let mut index = 0u16;
    for g in 0..n_groups {
        let base = g * GROUP_DATA;
        let in_group = (p.data_emblems - base).min(GROUP_DATA);
        for i in 0..in_group {
            let ch = chunk(base + i);
            let header = EmblemHeader::new(kind, index, g as u16, ch.len() as u32, total);
            jobs.push((header, ch));
            index += 1;
        }
        if with_parity {
            for pchunk in &parity_chunks[g] {
                let header =
                    EmblemHeader::new(EmblemKind::Parity, index, g as u16, cap as u32, total);
                jobs.push((header, pchunk.as_slice()));
                index += 1;
            }
        }
    }
    tel.add("encode.data_emblems", p.data_emblems as u64);
    tel.add("encode.parity_emblems", p.parity_emblems as u64);
    let _span = tel.span("archive.encode.render");
    ule_par::map(threads, &jobs, |(header, ch)| {
        encode_emblem(geom, header, ch)
    })
}

/// Stream-level decode failures.
#[derive(Debug, PartialEq, Eq)]
pub enum StreamError {
    /// No scan decoded to a usable emblem.
    NoEmblems,
    /// Emblems disagree about the stream length.
    InconsistentHeaders,
    /// Whole emblems of one group are missing (lost frames, or scans too
    /// damaged to decode) beyond the outer code's budget. `expected` and
    /// `found` count the group's emblems; `missing` lists the absent
    /// **global** emblem indices, so the caller can name exactly which
    /// frames to go looking for.
    FrameLoss {
        group: u16,
        expected: usize,
        found: usize,
        missing: Vec<u16>,
    },
    /// The outer erasure decode itself failed (defensive: unreachable
    /// when the budget pre-check above holds).
    TooManyMissing {
        group: u16,
        missing: usize,
        correctable: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::NoEmblems => write!(f, "no decodable emblems"),
            StreamError::InconsistentHeaders => write!(f, "emblem headers disagree"),
            StreamError::FrameLoss {
                group,
                expected,
                found,
                missing,
            } => write!(
                f,
                "group {group}: {found} of {expected} emblems present, missing indices {missing:?} \
                 are beyond outer-code recovery"
            ),
            StreamError::TooManyMissing { group, missing, correctable } => write!(
                f,
                "group {group}: {missing} emblems missing, outer code corrects at most {correctable}"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Stream decode diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Scans handed in.
    pub scans: usize,
    /// Scans that failed individual emblem decoding.
    pub failed_scans: usize,
    /// Whole emblems reconstructed by the outer code.
    pub emblems_recovered: usize,
    /// Total bytes fixed by the inner code across emblems.
    pub rs_corrected: usize,
    /// Codeword slots (data *and* parity) declared as erasures during
    /// outer-code recovery. Unlike [`StreamStats::emblems_recovered`]
    /// (reconstructed data emblems only) this also counts missing parity
    /// frames the group had to decode around — the full erasure load the
    /// outer code carried.
    pub erasure_frames: usize,
}

/// Decode a set of scans (unordered, possibly incomplete and with
/// duplicates) back into the stream payload.
pub fn decode_stream(
    geom: &EmblemGeometry,
    scans: &[GrayImage],
) -> Result<(Vec<u8>, StreamStats), StreamError> {
    decode_stream_with(geom, scans, ThreadConfig::Serial)
}

/// [`decode_stream`] with the per-scan pipeline (locate border → resample
/// grid → inner RS errors correction) fanned out across `threads` workers.
/// The outer-code erasure recovery and reassembly run after the join and
/// consume per-scan results in input order, so payload bytes and
/// [`StreamStats`] are identical to the serial path at any thread count.
pub fn decode_stream_with(
    geom: &EmblemGeometry,
    scans: &[GrayImage],
    threads: ThreadConfig,
) -> Result<(Vec<u8>, StreamStats), StreamError> {
    decode_stream_traced(geom, scans, threads, &Telemetry::off())
}

/// [`decode_stream_with`] plus decode-health telemetry: a per-frame span
/// (recorded into one shard per scan, merged in input order after the
/// join — worker scheduling can never reorder the trace), RS corrected-
/// symbol and erasure counters, and the clean-frame fast-path hit ratio.
///
/// The recorder only observes: payload bytes and [`StreamStats`] are
/// identical to the untraced path, and a disabled handle skips the
/// sharded fan-out entirely.
pub fn decode_stream_traced(
    geom: &EmblemGeometry,
    scans: &[GrayImage],
    threads: ThreadConfig,
    tel: &Telemetry,
) -> Result<(Vec<u8>, StreamStats), StreamError> {
    let mut stats = StreamStats {
        scans: scans.len(),
        ..Default::default()
    };
    // Individual decode; tolerate per-scan failures (the outer code's job).
    // With telemetry on, each scan gets its own recorder shard (worker
    // writes stay item-local) and the shards merge back in input order.
    let results = if tel.is_enabled() {
        let shards = tel.fork(scans.len());
        let jobs: Vec<(&GrayImage, Telemetry)> = scans.iter().zip(shards.iter().cloned()).collect();
        let results = ule_par::map(threads, &jobs, |(scan, shard)| {
            let _frame = shard.span("scan.decode.frame");
            decode_emblem(geom, scan)
        });
        tel.absorb(shards);
        results
    } else {
        ule_par::map(threads, scans, |scan| decode_emblem(geom, scan))
    };
    let mut decoded: Vec<(EmblemHeader, Vec<u8>, DecodeStats)> = Vec::new();
    for r in results {
        match r {
            Ok(r) => decoded.push(r),
            Err(_) => stats.failed_scans += 1,
        }
    }
    tel.add("decode.frames_total", scans.len() as u64);
    tel.add("decode.frames_failed", stats.failed_scans as u64);
    if decoded.is_empty() {
        return Err(StreamError::NoEmblems);
    }
    let total_len = decoded[0].0.total_len;
    if decoded.iter().any(|(h, _, _)| h.total_len != total_len) {
        return Err(StreamError::InconsistentHeaders);
    }
    let mut clean_frames = 0u64;
    for (_, _, s) in &decoded {
        stats.rs_corrected += s.rs_corrected;
        if s.rs_corrected == 0 {
            clean_frames += 1;
        } else {
            tel.add("decode.frames_corrected", 1);
        }
        tel.add("decode.corrected_symbols", s.rs_corrected as u64);
        tel.add("decode.sync_errors", s.sync_errors as u64);
        if s.header_copy_used > 0 {
            tel.add("decode.header_retries", 1);
        }
    }
    tel.add("decode.clean_frames", clean_frames);
    tel.gauge(
        "decode.clean_frame_ratio",
        clean_frames as f64 / decoded.len() as f64,
    );

    let cap = geom.payload_capacity();
    let n_chunks = (total_len as usize).div_ceil(cap).max(1);
    let n_groups = n_chunks.div_ceil(GROUP_DATA);
    // Did this stream carry outer parity? Surviving parity emblems say so
    // directly; failing that, a data emblem whose (group, index) pair is
    // *valid* under the parity layout but *invalid* under the dense one
    // betrays the parity slots even when every parity frame was lost. The
    // two-sided consistency check matters: a damaged-but-checksum-
    // colliding header with an arbitrary out-of-range index must not flip
    // an intact dense stream into the parity layout (it reads as garbage
    // under both and is ignored here, then counted as a failed scan
    // below). Residual blind spot: a stream that lost all its parity
    // frames and every layout-disambiguating data emblem looks
    // parity-less; group-0 emblems never disambiguate (both layouts
    // agree there). Mis-inference can only misreport FrameLoss details
    // or fail a group whose parity is entirely gone — never silently
    // corrupt the success path.
    let data_consistent = |h: &EmblemHeader, with_parity: bool| -> bool {
        let group = h.group as usize;
        if group >= n_chunks.div_ceil(GROUP_DATA) {
            return false;
        }
        let start = chunk_global_index(group * GROUP_DATA, with_parity);
        let idx = h.index as usize;
        idx >= start && idx - start < group_data_count(group, n_chunks)
    };
    let had_parity = decoded.iter().any(|(h, _, _)| h.kind == EmblemKind::Parity)
        || decoded.iter().any(|(h, _, _)| {
            h.kind != EmblemKind::Parity && data_consistent(h, true) && !data_consistent(h, false)
        });

    // Rebuild chunk table: chunk c lives in group c / 17 at position c % 17.
    let mut chunks: Vec<Option<Vec<u8>>> = vec![None; n_chunks];
    let mut parity: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; GROUP_PARITY]; n_groups];
    for (h, payload, _) in decoded {
        let idx = h.index as usize;
        let group = h.group as usize;
        // A damaged-but-checksum-colliding header (or a scan from some
        // other archive) can carry any (group, index) pair; coordinates
        // inconsistent with this stream's layout count as a failed scan
        // instead of panicking on index math or clobbering a good slot.
        let group_start_idx = if group < n_groups {
            group_start_index(group, n_chunks, had_parity)
        } else {
            usize::MAX
        };
        if group >= n_groups || idx < group_start_idx {
            stats.failed_scans += 1;
            continue;
        }
        let in_group = group_data_count(group, n_chunks);
        match h.kind {
            EmblemKind::Parity => {
                // Parity emblems follow the group's data emblems: their
                // position within the group is recovered from the index.
                // An index inside the data range (or past the parity
                // slots) is another layout inconsistency — rejecting it
                // keeps a colliding header from clobbering a slot whose
                // genuine emblem would then be dropped as a duplicate.
                if idx < group_start_idx + in_group {
                    stats.failed_scans += 1;
                    continue;
                }
                let pos = idx - (group_start_idx + in_group);
                if pos >= GROUP_PARITY {
                    stats.failed_scans += 1;
                    continue;
                }
                if parity[group][pos].is_none() {
                    let mut p = payload;
                    p.resize(cap, 0);
                    parity[group][pos] = Some(p);
                }
            }
            _ => {
                // Same inconsistency guard for data: the index must land
                // inside its own group's data range, or first-copy-wins
                // would let garbage displace the genuine chunk.
                let pos = idx - group_start_idx;
                if pos >= in_group {
                    stats.failed_scans += 1;
                    continue;
                }
                let chunk_no = group * GROUP_DATA + pos;
                if chunks[chunk_no].is_none() {
                    chunks[chunk_no] = Some(payload);
                }
            }
        }
    }

    // Per-group erasure recovery.
    for group in 0..n_chunks.div_ceil(GROUP_DATA) {
        let in_group = group_data_count(group, n_chunks);
        let base = group * GROUP_DATA;
        let missing: Vec<usize> = (0..in_group)
            .filter(|&i| chunks[base + i].is_none())
            .collect();
        if missing.is_empty() {
            continue;
        }
        let parity_avail = parity[group].iter().filter(|p| p.is_some()).count();
        let missing_parity = GROUP_PARITY - parity_avail;
        if missing.len() + missing_parity > GROUP_PARITY {
            // Name the absent frames by their global emblem indices. A
            // stream encoded without parity counts only its data emblems
            // as expected — the three "missing" parity slots are not lost
            // frames, they never existed.
            let start = group_start_index(group, n_chunks, had_parity);
            let mut absent: Vec<u16> = missing.iter().map(|&i| (start + i) as u16).collect();
            let mut expected = in_group;
            if had_parity {
                expected += GROUP_PARITY;
                for (pi, p) in parity[group].iter().enumerate() {
                    if p.is_none() {
                        absent.push((start + in_group + pi) as u16);
                    }
                }
            }
            return Err(StreamError::FrameLoss {
                group: group as u16,
                expected,
                found: expected - absent.len(),
                missing: absent,
            });
        }
        let rs = RsCode::new(in_group + GROUP_PARITY, in_group);
        // Erasure positions in codeword coordinates.
        let mut erasures: Vec<usize> = missing.clone();
        for (pi, p) in parity[group].iter().enumerate() {
            if p.is_none() {
                erasures.push(in_group + pi);
            }
        }
        stats.erasure_frames += erasures.len();
        let _recovery = tel.span("scan.decode.outer_recovery");
        let mut outer_corrected = 0u64;
        let mut recovered: Vec<Vec<u8>> = vec![vec![0u8; cap]; missing.len()];
        let mut col = vec![0u8; in_group + GROUP_PARITY];
        for j in 0..cap {
            for i in 0..in_group {
                col[i] = chunks[base + i]
                    .as_ref()
                    .map_or(0, |c| c.get(j).copied().unwrap_or(0));
            }
            for (pi, p) in parity[group].iter().enumerate() {
                col[in_group + pi] = p.as_ref().map_or(0, |c| c[j]);
            }
            let fixed =
                rs.decode(&mut col, &erasures)
                    .map_err(|_| StreamError::TooManyMissing {
                        group: group as u16,
                        missing: erasures.len(),
                        correctable: GROUP_PARITY,
                    })?;
            outer_corrected += fixed as u64;
            for (mi, &m) in missing.iter().enumerate() {
                recovered[mi][j] = col[m];
            }
        }
        tel.add("decode.erasure_frames", erasures.len() as u64);
        tel.add("decode.outer_corrected_symbols", outer_corrected);
        for (mi, m) in missing.into_iter().enumerate() {
            // Trim the final chunk to the stream tail length.
            let chunk_no = base + m;
            let logical_len = if chunk_no + 1 == n_chunks {
                total_len as usize - chunk_no * cap
            } else {
                cap
            };
            let mut c = std::mem::take(&mut recovered[mi]);
            c.truncate(logical_len);
            chunks[chunk_no] = Some(c);
            stats.emblems_recovered += 1;
        }
    }

    tel.add("decode.emblems_recovered", stats.emblems_recovered as u64);

    // Concatenate.
    let mut out = Vec::with_capacity(total_len as usize);
    for c in chunks {
        out.extend_from_slice(&c.expect("all chunks present after recovery"));
    }
    out.truncate(total_len as usize);
    Ok((out, stats))
}

/// CRC-32 fingerprint of an image sequence (order-sensitive): the
/// byte-identity check used by the conformance net — `tests/golden_format.rs`
/// pins these against checked-in vectors and the report's `[E8]` section
/// compares them across thread counts — so both sides measure exactly the
/// same thing.
pub fn stream_crc32(images: &[GrayImage]) -> u32 {
    let mut st = 0xFFFF_FFFFu32;
    for im in images {
        st = ule_gf256::crc::crc32_update(st, im.as_bytes());
    }
    st ^ 0xFFFF_FFFF
}

/// Global emblem index of stream chunk `chunk` (a data/system emblem's
/// position in its stream): with the outer code on, every group of
/// [`GROUP_DATA`] chunks is followed by [`GROUP_PARITY`] parity emblems
/// that share the numbering. This is *the* frozen index layout — the
/// restorer's emulated path maps sequence numbers through it too.
pub fn chunk_global_index(chunk: usize, with_parity: bool) -> usize {
    if with_parity {
        (chunk / GROUP_DATA) * (GROUP_DATA + GROUP_PARITY) + chunk % GROUP_DATA
    } else {
        chunk
    }
}

/// Global emblem index at which `group`'s data emblems start. (Only the
/// last group can be short, so every preceding group is full and the
/// chunk mapping applies directly.)
fn group_start_index(group: usize, _n_chunks: usize, with_parity: bool) -> usize {
    chunk_global_index(group * GROUP_DATA, with_parity)
}

/// Number of data emblems in `group`.
fn group_data_count(group: usize, n_chunks: usize) -> usize {
    (n_chunks - group * GROUP_DATA).min(GROUP_DATA)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> EmblemGeometry {
        EmblemGeometry::test_small()
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(131).wrapping_add(7))
            .collect()
    }

    #[test]
    fn plan_counts() {
        let g = geom();
        let cap = g.payload_capacity();
        let p = plan(&g, cap * 17, true);
        assert_eq!(p.data_emblems, 17);
        assert_eq!(p.parity_emblems, 3);
        let p = plan(&g, cap * 18, true);
        assert_eq!(p.data_emblems, 18);
        assert_eq!(p.parity_emblems, 6);
        let p = plan(&g, cap * 5, false);
        assert_eq!(p.parity_emblems, 0);
    }

    #[test]
    fn single_emblem_stream_roundtrip() {
        let g = geom();
        let data = payload(300);
        let images = encode_stream(&g, EmblemKind::Data, &data, true);
        assert_eq!(images.len(), 4); // 1 data + 3 parity
        let (out, stats) = decode_stream(&g, &images).unwrap();
        assert_eq!(out, data);
        assert_eq!(stats.emblems_recovered, 0);
    }

    #[test]
    fn multi_emblem_stream_roundtrip() {
        let g = geom();
        let data = payload(g.payload_capacity() * 4 + 123);
        let images = encode_stream(&g, EmblemKind::Data, &data, true);
        assert_eq!(images.len(), 5 + 3);
        let (out, _) = decode_stream(&g, &images).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn any_three_missing_recovered() {
        let g = geom();
        let data = payload(g.payload_capacity() * 5 + 17);
        let images = encode_stream(&g, EmblemKind::Data, &data, true);
        // Drop 3 emblems: two data + one parity.
        let kept: Vec<GrayImage> = images
            .iter()
            .enumerate()
            .filter(|(i, _)| ![1usize, 4, 7].contains(i))
            .map(|(_, im)| im.clone())
            .collect();
        let (out, stats) = decode_stream(&g, &kept).unwrap();
        assert_eq!(out, data);
        assert_eq!(stats.emblems_recovered, 2); // the two data emblems
    }

    #[test]
    fn four_missing_fails() {
        let g = geom();
        let data = payload(g.payload_capacity() * 5);
        let images = encode_stream(&g, EmblemKind::Data, &data, true);
        let kept: Vec<GrayImage> = images
            .iter()
            .enumerate()
            .filter(|(i, _)| ![0usize, 1, 2, 5].contains(i))
            .map(|(_, im)| im.clone())
            .collect();
        match decode_stream(&g, &kept) {
            Err(StreamError::FrameLoss {
                group,
                expected,
                found,
                missing,
            }) => {
                assert_eq!(group, 0);
                assert_eq!(expected, 8); // 5 data + 3 parity
                assert_eq!(found, 4);
                assert_eq!(missing, vec![0, 1, 2, 5]);
            }
            other => panic!("expected FrameLoss, got {other:?}"),
        }
    }

    #[test]
    fn unordered_and_duplicated_scans_ok() {
        let g = geom();
        let data = payload(g.payload_capacity() * 2 + 9);
        let mut images = encode_stream(&g, EmblemKind::Data, &data, true);
        images.reverse();
        let dup = images[0].clone();
        images.push(dup);
        let (out, _) = decode_stream(&g, &images).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn no_parity_stream_roundtrip() {
        let g = geom();
        let data = payload(g.payload_capacity() * 3 + 1);
        let images = encode_stream(&g, EmblemKind::Data, &data, false);
        assert_eq!(images.len(), 4);
        let (out, _) = decode_stream(&g, &images).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn no_parity_stream_missing_emblem_fails() {
        let g = geom();
        let data = payload(g.payload_capacity() * 3);
        let images = encode_stream(&g, EmblemKind::Data, &data, false);
        let kept = &images[1..];
        match decode_stream(&g, kept) {
            Err(StreamError::FrameLoss {
                expected,
                found,
                missing,
                ..
            }) => {
                // No parity was ever encoded, so only the three data
                // emblems count as expected — and only the lost one as
                // missing.
                assert_eq!(expected, 3);
                assert_eq!(found, 2);
                assert_eq!(missing, vec![0]);
            }
            other => panic!("expected FrameLoss, got {other:?}"),
        }
    }

    #[test]
    fn rogue_header_cannot_flip_layout_or_poison_slots() {
        // A checksum-valid emblem whose header claims coordinates no
        // layout provides (the damaged-scan collision case): it must be
        // counted as a failed scan, not flip an intact dense multi-group
        // stream into the parity layout or displace a genuine chunk.
        let g = geom();
        let data = payload(g.payload_capacity() * 20 + 5); // 21 chunks, 2 groups
        let images = encode_stream(&g, EmblemKind::Data, &data, false);
        let rogue_h = EmblemHeader::new(EmblemKind::Data, 40, 1, 7, data.len() as u32);
        let mut scans = images.clone();
        scans.push(crate::encode::encode_emblem(&g, &rogue_h, &payload(7)));
        let (out, stats) = decode_stream(&g, &scans).unwrap();
        assert_eq!(out, data);
        assert_eq!(stats.failed_scans, 1);
    }

    #[test]
    fn losing_every_parity_frame_still_decodes_a_multi_group_stream() {
        // With all parity emblems gone, the layout must be inferred from
        // the surviving data indices (group >= 1 disambiguates) so the
        // dense mapping does not mis-slot the second group.
        let g = geom();
        let data = payload(g.payload_capacity() * 20 + 5); // 21 chunks, 2 groups
        let images = encode_stream(&g, EmblemKind::Data, &data, true);
        assert_eq!(images.len(), 27); // 21 data + 6 parity
                                      // Parity emblems sit at indices 17..20 and 24..27 of the emission
                                      // order (after each group's data).
        let kept: Vec<GrayImage> = images
            .iter()
            .enumerate()
            .filter(|(i, _)| !(17..20).contains(i) && !(24..27).contains(i))
            .map(|(_, im)| im.clone())
            .collect();
        assert_eq!(kept.len(), 21);
        let (out, stats) = decode_stream(&g, &kept).unwrap();
        assert_eq!(out, data);
        assert_eq!(stats.emblems_recovered, 0);
    }

    #[test]
    fn empty_payload_still_produces_an_emblem() {
        let g = geom();
        let images = encode_stream(&g, EmblemKind::System, &[], true);
        assert_eq!(images.len(), 4);
        let (out, _) = decode_stream(&g, &images).unwrap();
        assert!(out.is_empty());
    }
}
