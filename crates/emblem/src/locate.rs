//! Emblem localisation: find the border square in a page/frame scan.
//!
//! The thick black border is the emblem's "large-scale" detection feature
//! (§3.1). We find it with black-mass profiles: border rows/columns are
//! almost entirely black, data rows hover near 50%, page margins near 0%.

use ule_raster::GrayImage;

/// Outer bounding box of the emblem border, inclusive pixel coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BorderBox {
    pub x0: usize,
    pub y0: usize,
    pub x1: usize,
    pub y1: usize,
}

impl BorderBox {
    pub fn width(&self) -> usize {
        self.x1 - self.x0 + 1
    }
    pub fn height(&self) -> usize {
        self.y1 - self.y0 + 1
    }
}

/// Black fraction per row over a column span.
fn row_profile(bit: &GrayImage, x0: usize, x1: usize) -> Vec<f64> {
    let span = (x1 - x0 + 1) as f64;
    (0..bit.height())
        .map(|y| {
            let row = bit.row(y);
            let black = row[x0..=x1].iter().filter(|&&p| p == 0).count();
            black as f64 / span
        })
        .collect()
}

/// Black fraction per column over a row span.
fn col_profile(bit: &GrayImage, y0: usize, y1: usize) -> Vec<f64> {
    let span = (y1 - y0 + 1) as f64;
    (0..bit.width())
        .map(|x| {
            let black = (y0..=y1).filter(|&y| bit.get(x, y) == 0).count();
            black as f64 / span
        })
        .collect()
}

/// Longest contiguous run of indices with `profile >= threshold`,
/// tolerating gaps up to `max_gap` (dust holes, gap ring overshoot).
fn longest_run(profile: &[f64], threshold: f64, max_gap: usize) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize)> = None;
    let mut start: Option<usize> = None;
    let mut last_hit = 0usize;
    for (i, &v) in profile.iter().enumerate() {
        if v >= threshold {
            if start.is_none() {
                start = Some(i);
            }
            last_hit = i;
        } else if let Some(s) = start {
            if i - last_hit > max_gap {
                let cand = (s, last_hit);
                if best.map_or(true, |(bs, be)| last_hit - s > be - bs) {
                    best = Some(cand);
                }
                start = None;
            }
        }
    }
    if let Some(s) = start {
        let cand = (s, last_hit);
        if best.map_or(true, |(bs, be)| last_hit - s > be - bs) {
            best = Some(cand);
        }
    }
    best
}

/// First and last indices within `[lo, hi]` whose profile clears `threshold`.
fn first_last(profile: &[f64], threshold: f64, lo: usize, hi: usize) -> Option<(usize, usize)> {
    let first = (lo..=hi).find(|&i| profile[i] >= threshold)?;
    let last = (lo..=hi).rev().find(|&i| profile[i] >= threshold)?;
    Some((first, last))
}

/// Locate the emblem border's outer box in a thresholded (0/255) scan.
///
/// Works when the emblem is surrounded by white margin (printed page,
/// film frame) and occupies a substantial share of the image.
pub fn find_border_box(bit: &GrayImage) -> Option<BorderBox> {
    if bit.width() < 8 || bit.height() < 8 {
        return None;
    }
    let gap = bit.width().max(bit.height()) / 50 + 2;
    // Pass 1: rough vertical span from full-width row profile. Emblem rows
    // carry at least ~25% black even when the emblem fills only part of
    // the page width.
    let rp = row_profile(bit, 0, bit.width() - 1);
    let peak = rp.iter().cloned().fold(0.0f64, f64::max);
    let (ry0, ry1) = longest_run(&rp, (peak * 0.35).max(0.05), gap)?;
    // Pass 2: horizontal span within that vertical band.
    let cp = col_profile(bit, ry0, ry1);
    let cpeak = cp.iter().cloned().fold(0.0f64, f64::max);
    let (cx0, cx1) = longest_run(&cp, (cpeak * 0.35).max(0.05), gap)?;
    // Pass 3: exact outer border rows/cols — the first and last profile
    // entries above 30% black near the rough span (the border itself is
    // nearly solid, the data region sits around 50%).
    let margin = 2 * gap;
    let rp2 = row_profile(bit, cx0, cx1);
    let (y0, y1) = first_last(
        &rp2,
        0.30,
        ry0.saturating_sub(margin),
        (ry1 + margin).min(rp2.len() - 1),
    )?;
    let cp2 = col_profile(bit, y0, y1);
    let (x0, x1) = first_last(
        &cp2,
        0.30,
        cx0.saturating_sub(margin),
        (cx1 + margin).min(cp2.len() - 1),
    )?;
    if x1 <= x0 + 8 || y1 <= y0 + 8 {
        return None;
    }
    Some(BorderBox { x0, y0, x1, y1 })
}

/// Per-scanline border edge positions, used to resample the cell grid under
/// smooth geometric distortion. `left[y]`/`right[y]` give the border's outer
/// x at pixel row `y` (relative to the full image); `top[x]`/`bottom[x]`
/// give the outer y per column. Gaps are filled by interpolation and the
/// arrays are median-smoothed against dust.
pub struct EdgeMap {
    pub bbox: BorderBox,
    pub left: Vec<f64>,
    pub right: Vec<f64>,
    pub top: Vec<f64>,
    pub bottom: Vec<f64>,
}

fn median_smooth(values: &mut [f64], window: usize) {
    if values.len() < window || window < 3 {
        return;
    }
    let orig = values.to_vec();
    let half = window / 2;
    let mut buf = vec![0.0; window];
    for i in half..values.len() - half {
        buf.clear();
        buf.extend_from_slice(&orig[i - half..=i + half]);
        buf.sort_by(|a, b| a.partial_cmp(b).unwrap());
        values[i] = buf[half];
    }
}

/// Scan for the first black run of length ≥ `min_run` along a line.
fn first_black_run(mut pixels: impl Iterator<Item = u8>, min_run: usize) -> Option<usize> {
    let mut run = 0usize;
    let mut start = 0usize;
    let mut i = 0usize;
    loop {
        let p = pixels.next()?;
        if p == 0 {
            if run == 0 {
                start = i;
            }
            run += 1;
            if run >= min_run {
                return Some(start);
            }
        } else {
            run = 0;
        }
        i += 1;
    }
}

/// Build the edge map for a located emblem. `border_px` is the expected
/// border thickness in scan pixels (used to reject dust).
pub fn edge_map(bit: &GrayImage, bbox: BorderBox, border_px: f64) -> EdgeMap {
    let min_run = (border_px * 0.5).max(2.0) as usize;
    let slack = (border_px * 2.0) as usize;
    let h = bbox.height();
    let w = bbox.width();
    let mut left = vec![f64::NAN; h];
    let mut right = vec![f64::NAN; h];
    for (i, y) in (bbox.y0..=bbox.y1).enumerate() {
        let xa = bbox.x0.saturating_sub(slack);
        let xb = (bbox.x1 + slack).min(bit.width() - 1);
        if let Some(off) = first_black_run((xa..=xb).map(|x| bit.get(x, y)), min_run) {
            left[i] = (xa + off) as f64;
        }
        if let Some(off) = first_black_run((xa..=xb).rev().map(|x| bit.get(x, y)), min_run) {
            right[i] = (xb - off) as f64;
        }
    }
    let mut top = vec![f64::NAN; w];
    let mut bottom = vec![f64::NAN; w];
    for (i, x) in (bbox.x0..=bbox.x1).enumerate() {
        let ya = bbox.y0.saturating_sub(slack);
        let yb = (bbox.y1 + slack).min(bit.height() - 1);
        if let Some(off) = first_black_run((ya..=yb).map(|y| bit.get(x, y)), min_run) {
            top[i] = (ya + off) as f64;
        }
        if let Some(off) = first_black_run((ya..=yb).rev().map(|y| bit.get(x, y)), min_run) {
            bottom[i] = (yb - off) as f64;
        }
    }
    for arr in [&mut left, &mut right, &mut top, &mut bottom] {
        fill_nan(arr);
        median_smooth(arr, 7);
    }
    EdgeMap {
        bbox,
        left,
        right,
        top,
        bottom,
    }
}

/// Replace NaNs with the nearest valid neighbour (linear fill).
fn fill_nan(values: &mut [f64]) {
    let first_valid = values.iter().position(|v| !v.is_nan());
    let Some(fv) = first_valid else {
        for v in values.iter_mut() {
            *v = 0.0;
        }
        return;
    };
    let head = values[fv];
    for v in values[..fv].iter_mut() {
        *v = head;
    }
    let mut last = head;
    for v in values[fv..].iter_mut() {
        if v.is_nan() {
            *v = last;
        } else {
            last = *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_raster::draw::{draw_ring, fill_rect};

    fn page_with_emblem(px: usize, py: usize, size: usize) -> GrayImage {
        let mut img = GrayImage::new(400, 300, 255);
        draw_ring(&mut img, px, py, size, 8, 0);
        // Dense interior texture, like a real data region (~50% black):
        // vertical stripes, 2 px on / 2 px off.
        for x in (px + 14..px + size - 14).step_by(4) {
            fill_rect(&mut img, x, py + 14, 2, size - 28, 0);
        }
        img
    }

    #[test]
    fn finds_centered_emblem() {
        let img = page_with_emblem(100, 50, 180);
        let b = find_border_box(&img).unwrap();
        assert!((b.x0 as i64 - 100).unsigned_abs() <= 2, "{b:?}");
        assert!((b.y0 as i64 - 50).unsigned_abs() <= 2, "{b:?}");
        assert!((b.x1 as i64 - 279).unsigned_abs() <= 2, "{b:?}");
        assert!((b.y1 as i64 - 229).unsigned_abs() <= 2, "{b:?}");
    }

    #[test]
    fn ignores_scattered_dust() {
        let mut img = page_with_emblem(120, 60, 150);
        for (x, y) in [(5, 5), (390, 10), (20, 290), (395, 295), (10, 150)] {
            fill_rect(&mut img, x, y, 2, 2, 0);
        }
        let b = find_border_box(&img).unwrap();
        assert!((b.x0 as i64 - 120).unsigned_abs() <= 3, "{b:?}");
        assert!((b.y0 as i64 - 60).unsigned_abs() <= 3, "{b:?}");
    }

    #[test]
    fn blank_page_returns_none() {
        let img = GrayImage::new(200, 200, 255);
        assert!(find_border_box(&img).is_none());
    }

    #[test]
    fn edge_map_tracks_straight_border() {
        let img = page_with_emblem(100, 50, 180);
        let b = find_border_box(&img).unwrap();
        let em = edge_map(&img, b, 8.0);
        for &l in em.left.iter().skip(5).take(em.left.len() - 10) {
            assert!((l - 100.0).abs() <= 1.5, "left={l}");
        }
        for &r in em.right.iter().skip(5).take(em.right.len() - 10) {
            assert!((r - 279.0).abs() <= 1.5, "right={r}");
        }
    }

    #[test]
    fn median_smooth_removes_spikes() {
        let mut v = vec![10.0; 20];
        v[10] = 500.0;
        median_smooth(&mut v, 5);
        assert!((v[10] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fill_nan_interpolates() {
        let mut v = vec![f64::NAN, 2.0, f64::NAN, f64::NAN, 5.0];
        fill_nan(&mut v);
        assert_eq!(v[0], 2.0);
        assert_eq!(v[2], 2.0);
        assert_eq!(v[4], 5.0);
    }
}
