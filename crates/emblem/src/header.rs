//! The 16-byte emblem header, stored three times per emblem.

use ule_gf256::crc::crc16_ccitt;

/// What an emblem carries — the "type" the frame dots let scanners detect
/// quickly (§3.1). Data vs system matters during restoration: system
/// emblems (the DynaRisc DBDecode stream) must be decoded before data
/// emblems can be interpreted (Figure 2b, steps 4–5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EmblemKind {
    /// Database payload.
    Data = 0,
    /// Decoder payload (DynaRisc instruction streams).
    System = 1,
    /// Outer-code parity emblem.
    Parity = 2,
    /// Vault content-index stream (S16): the table → chunk → frame-range
    /// catalog that enables selective restore. Self-delimiting — a
    /// restorer that does not know about vaults can skip these emblems
    /// and still perform a full restore.
    Index = 3,
    /// Cross-reel parity stream (S16): the byte-wise RS parity of a group
    /// of content reels, written on its own parity reel so any single
    /// lost reel in the group is recoverable.
    ReelParity = 4,
}

impl EmblemKind {
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(EmblemKind::Data),
            1 => Some(EmblemKind::System),
            2 => Some(EmblemKind::Parity),
            3 => Some(EmblemKind::Index),
            4 => Some(EmblemKind::ReelParity),
            _ => None,
        }
    }
}

/// Per-emblem metadata. 16 bytes on the wire:
///
/// ```text
/// 0     version (1)
/// 1     kind
/// 2-3   emblem index within the stream (u16 LE)
/// 4-5   group id (u16 LE)
/// 6-9   payload bytes stored in this emblem (u32 LE)
/// 10-13 total stream length in bytes (u32 LE)
/// 14-15 CRC-16/CCITT of bytes 0..14 (LE)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmblemHeader {
    pub version: u8,
    pub kind: EmblemKind,
    pub index: u16,
    pub group: u16,
    pub payload_len: u32,
    pub total_len: u32,
}

/// Serialized header size in bytes.
pub const HEADER_BYTES: usize = 16;
/// Current header version.
pub const HEADER_VERSION: u8 = 1;

/// Header parse failures.
#[derive(Debug, PartialEq, Eq)]
pub enum HeaderError {
    BadLength,
    BadCrc,
    BadVersion(u8),
    BadKind(u8),
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::BadLength => write!(f, "header must be 16 bytes"),
            HeaderError::BadCrc => write!(f, "header crc mismatch"),
            HeaderError::BadVersion(v) => write!(f, "unknown header version {v}"),
            HeaderError::BadKind(k) => write!(f, "unknown emblem kind {k}"),
        }
    }
}

impl std::error::Error for HeaderError {}

impl EmblemHeader {
    pub fn new(kind: EmblemKind, index: u16, group: u16, payload_len: u32, total_len: u32) -> Self {
        Self {
            version: HEADER_VERSION,
            kind,
            index,
            group,
            payload_len,
            total_len,
        }
    }

    /// Serialize to the 16-byte wire format.
    pub fn to_bytes(&self) -> [u8; HEADER_BYTES] {
        let mut b = [0u8; HEADER_BYTES];
        b[0] = self.version;
        b[1] = self.kind as u8;
        b[2..4].copy_from_slice(&self.index.to_le_bytes());
        b[4..6].copy_from_slice(&self.group.to_le_bytes());
        b[6..10].copy_from_slice(&self.payload_len.to_le_bytes());
        b[10..14].copy_from_slice(&self.total_len.to_le_bytes());
        let crc = crc16_ccitt(&b[..14]);
        b[14..16].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Parse and validate the wire format.
    pub fn from_bytes(b: &[u8]) -> Result<Self, HeaderError> {
        if b.len() != HEADER_BYTES {
            return Err(HeaderError::BadLength);
        }
        let stored = u16::from_le_bytes([b[14], b[15]]);
        if crc16_ccitt(&b[..14]) != stored {
            return Err(HeaderError::BadCrc);
        }
        if b[0] != HEADER_VERSION {
            return Err(HeaderError::BadVersion(b[0]));
        }
        let kind = EmblemKind::from_u8(b[1]).ok_or(HeaderError::BadKind(b[1]))?;
        Ok(Self {
            version: b[0],
            kind,
            index: u16::from_le_bytes([b[2], b[3]]),
            group: u16::from_le_bytes([b[4], b[5]]),
            payload_len: u32::from_le_bytes(b[6..10].try_into().unwrap()),
            total_len: u32::from_le_bytes(b[10..14].try_into().unwrap()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = EmblemHeader::new(EmblemKind::Data, 7, 0, 48_000, 1_230_000);
        let b = h.to_bytes();
        assert_eq!(EmblemHeader::from_bytes(&b).unwrap(), h);
    }

    #[test]
    fn crc_rejects_bit_flip() {
        let h = EmblemHeader::new(EmblemKind::System, 1, 2, 100, 200);
        for i in 0..HEADER_BYTES {
            let mut b = h.to_bytes();
            b[i] ^= 0x10;
            assert_eq!(
                EmblemHeader::from_bytes(&b).unwrap_err(),
                HeaderError::BadCrc,
                "byte {i}"
            );
        }
    }

    #[test]
    fn kind_codes_are_stable() {
        assert_eq!(EmblemKind::Data as u8, 0);
        assert_eq!(EmblemKind::System as u8, 1);
        assert_eq!(EmblemKind::Parity as u8, 2);
        assert_eq!(EmblemKind::Index as u8, 3);
        assert_eq!(EmblemKind::ReelParity as u8, 4);
        assert_eq!(EmblemKind::from_u8(5), None);
    }

    #[test]
    fn wrong_length_rejected() {
        assert_eq!(
            EmblemHeader::from_bytes(&[0; 15]).unwrap_err(),
            HeaderError::BadLength
        );
    }

    #[test]
    fn bad_kind_detected_after_crc() {
        let h = EmblemHeader::new(EmblemKind::Data, 0, 0, 1, 1);
        let mut b = h.to_bytes();
        b[1] = 9;
        let crc = ule_gf256::crc::crc16_ccitt(&b[..14]);
        b[14..16].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            EmblemHeader::from_bytes(&b).unwrap_err(),
            HeaderError::BadKind(9)
        );
    }
}
