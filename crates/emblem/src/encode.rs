//! Emblem rendering: payload bytes → print-master image.

use crate::geometry::{
    EmblemGeometry, EDGE_CELLS, GAP_CELLS, HEADER_COPIES, OVERHEAD_ROWS, QUIET_CELLS, RS_K, RS_N,
};
use crate::header::{EmblemHeader, HEADER_BYTES};
use crate::manchester::{bytes_to_bits, encode_cells};
use ule_par::ThreadConfig;
use ule_raster::draw::fill_rect;
use ule_raster::GrayImage;

/// Apply the inner RS code and byte-interleave across blocks: byte `i` of
/// block `b` lands at position `i * nblocks + b`, so a contiguous damaged
/// patch spreads across many blocks.
pub fn inner_encode(geom: &EmblemGeometry, payload: &[u8]) -> Vec<u8> {
    inner_encode_with(geom, payload, ThreadConfig::Serial)
}

/// [`inner_encode`] with the RS blocks fanned out across `threads` workers
/// (byte-identical output at any thread count — the blocks are independent
/// and the interleave is position-determined).
pub fn inner_encode_with(geom: &EmblemGeometry, payload: &[u8], threads: ThreadConfig) -> Vec<u8> {
    let nblocks = geom.rs_blocks();
    assert!(
        payload.len() <= nblocks * RS_K,
        "payload exceeds emblem capacity"
    );
    let rs = geom.inner_code();
    let mut padded = payload.to_vec();
    padded.resize(nblocks * RS_K, 0);
    let msgs: Vec<&[u8]> = padded.chunks(RS_K).collect();
    let cws = rs.encode_batch(&msgs, threads);
    let mut coded = vec![0u8; nblocks * RS_N];
    for (b, cw) in cws.iter().enumerate() {
        for (i, &byte) in cw.iter().enumerate() {
            coded[i * nblocks + b] = byte;
        }
    }
    coded
}

/// The calibration-row level for content cell `cx` (row 0): a solid 4-cell
/// black start mark, then alternating 2-white / 2-black large-scale dots.
#[inline]
pub fn calibration_level(cx: usize) -> bool {
    if cx < 4 {
        false // black
    } else {
        ((cx - 4) / 2) % 2 == 0 // 2 white, 2 black, ...
    }
}

/// Build the full content-cell grid (`true` = white) for one emblem.
pub fn content_cells(geom: &EmblemGeometry, header: &EmblemHeader, payload: &[u8]) -> Vec<bool> {
    let (cols, rows) = (geom.cols, geom.rows);
    let mut cells = vec![true; cols * rows];

    // Row 0: calibration dots.
    for cx in 0..cols {
        cells[cx] = calibration_level(cx);
    }

    // Rows 1..=3: redundant header copies (one per row, rest of row white).
    let header_bits = bytes_to_bits(&header.to_bytes());
    debug_assert_eq!(header_bits.len(), HEADER_BYTES * 8);
    for copy in 0..HEADER_COPIES {
        let row = 1 + copy;
        let hcells = encode_cells(&header_bits, true);
        cells[row * cols..row * cols + hcells.len()].copy_from_slice(&hcells);
    }

    // Rows 4..: one continuous self-clocked run over the coded payload,
    // extended with zero bits to fill the region (keeps the clock alive so
    // the decoder can treat the region as a single run).
    let coded = inner_encode(geom, payload);
    let mut bits = bytes_to_bits(&coded);
    let region_bits = (rows - OVERHEAD_ROWS) * cols / 2;
    bits.resize(region_bits, false);
    let data_cells = encode_cells(&bits, true);
    cells[OVERHEAD_ROWS * cols..].copy_from_slice(&data_cells);
    cells
}

/// Render an emblem print master (bitonal: 0 = black ink, 255 = white).
pub fn encode_emblem(geom: &EmblemGeometry, header: &EmblemHeader, payload: &[u8]) -> GrayImage {
    let cp = geom.cell_px;
    let mut img = GrayImage::new(geom.image_width(), geom.image_height(), 255);

    // Thick black border ring.
    let border_off = QUIET_CELLS * cp;
    let border_size_w = (geom.cols + 2 * EDGE_CELLS) * cp;
    let border_size_h = (geom.rows + 2 * EDGE_CELLS) * cp;
    let t = (EDGE_CELLS - GAP_CELLS) * cp;
    fill_rect(&mut img, border_off, border_off, border_size_w, t, 0);
    fill_rect(
        &mut img,
        border_off,
        border_off + border_size_h - t,
        border_size_w,
        t,
        0,
    );
    fill_rect(&mut img, border_off, border_off, t, border_size_h, 0);
    fill_rect(
        &mut img,
        border_off + border_size_w - t,
        border_off,
        t,
        border_size_h,
        0,
    );

    // Content cells.
    let cells = content_cells(geom, header, payload);
    let origin = (QUIET_CELLS + EDGE_CELLS) * cp;
    for cy in 0..geom.rows {
        for cx in 0..geom.cols {
            if !cells[cy * geom.cols + cx] {
                fill_rect(&mut img, origin + cx * cp, origin + cy * cp, cp, cp, 0);
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::EmblemKind;

    fn geom() -> EmblemGeometry {
        EmblemGeometry::test_small()
    }

    fn header(len: u32) -> EmblemHeader {
        EmblemHeader::new(EmblemKind::Data, 0, 0, len, len)
    }

    #[test]
    fn image_dimensions_match_geometry() {
        let g = geom();
        let img = encode_emblem(&g, &header(10), &[1; 10]);
        assert_eq!(img.width(), g.image_width());
        assert_eq!(img.height(), g.image_height());
        assert!(img.is_bitonal());
    }

    #[test]
    fn quiet_zone_is_white_border_is_black() {
        let g = geom();
        let img = encode_emblem(&g, &header(1), &[9]);
        assert_eq!(img.get(0, 0), 255);
        let b = QUIET_CELLS * g.cell_px + 1;
        assert_eq!(img.get(b, b), 0);
        // Gap ring between border and content is white.
        let gpx = (QUIET_CELLS + EDGE_CELLS - GAP_CELLS) * g.cell_px + 1;
        assert_eq!(img.get(gpx, gpx), 255);
    }

    #[test]
    fn inner_encode_interleaves() {
        let g = geom();
        let nblocks = g.rs_blocks();
        assert!(nblocks >= 2, "test geometry should have multiple blocks");
        let payload: Vec<u8> = (0..g.payload_capacity()).map(|i| i as u8).collect();
        let coded = inner_encode(&g, &payload);
        assert_eq!(coded.len(), nblocks * RS_N);
        // First nblocks coded bytes are byte 0 of every block, i.e. the
        // first byte of every 223-byte chunk of the payload.
        for b in 0..nblocks {
            assert_eq!(coded[b], payload[b * RS_K]);
        }
    }

    #[test]
    fn inner_encode_threaded_is_byte_identical() {
        let g = geom();
        let payload: Vec<u8> = (0..g.payload_capacity()).map(|i| (i * 13) as u8).collect();
        let serial = inner_encode(&g, &payload);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                inner_encode_with(&g, &payload, ThreadConfig::Fixed(threads)),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn calibration_pattern_shape() {
        assert!(!calibration_level(0));
        assert!(!calibration_level(3));
        assert!(calibration_level(4));
        assert!(calibration_level(5));
        assert!(!calibration_level(6));
        assert!(!calibration_level(7));
        assert!(calibration_level(8));
    }

    #[test]
    #[should_panic(expected = "exceeds emblem capacity")]
    fn oversized_payload_panics() {
        let g = geom();
        let too_big = vec![0u8; g.payload_capacity() + 1];
        encode_emblem(&g, &header(0), &too_big);
    }

    #[test]
    fn content_grid_has_expected_size() {
        let g = geom();
        let cells = content_cells(&g, &header(5), &[1, 2, 3, 4, 5]);
        assert_eq!(cells.len(), g.cols * g.rows);
    }
}
