//! Emblem geometry: frame layout, cell grid, and capacity math.
//!
//! Cell-space layout (one cell = `cell_px` × `cell_px` printed pixels):
//!
//! ```text
//! ┌ quiet zone (2 cells, white) ───────────────────────────┐
//! │ ┌ border (3 cells, black) ─────────────────────────┐   │
//! │ │ ┌ gap (1 cell, white) ───────────────────────┐   │   │
//! │ │ │ content: cols × rows cells                 │   │   │
//! │ │ │   row 0        calibration dots            │   │   │
//! │ │ │   rows 1..=3   header (3 redundant copies) │   │   │
//! │ │ │   rows 4..     data region                 │   │   │
//! │ │ └────────────────────────────────────────────┘   │   │
//! │ └──────────────────────────────────────────────────┘   │
//! └────────────────────────────────────────────────────────┘
//! ```
//!
//! The calibration row starts with a solid 4-cell black start mark then
//! alternates black/white with period 4 — the "large-scale black and white
//! dots" of §3.1, used to confirm orientation and cell pitch.

use ule_gf256::RsCode;

/// Frame constants, in cells.
pub const QUIET_CELLS: usize = 2;
pub const BORDER_CELLS: usize = 3;
pub const GAP_CELLS: usize = 1;
/// Cells from the border's outer edge to the content area on each side.
pub const EDGE_CELLS: usize = BORDER_CELLS + GAP_CELLS;
/// Content rows consumed by calibration + header.
pub const OVERHEAD_ROWS: usize = 4;
/// Header copies stored per emblem.
pub const HEADER_COPIES: usize = 3;

/// Inner Reed–Solomon parameters (paper §3.1: blocks of 223 user bytes +
/// 32 redundancy bytes).
pub const RS_N: usize = 255;
pub const RS_K: usize = 223;

/// Geometry of one emblem class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmblemGeometry {
    /// Content width in cells. Must be a multiple of 4 and at least 32
    /// (the header row must hold one 128-bit header copy per row).
    pub cols: usize,
    /// Content height in cells (≥ OVERHEAD_ROWS + 1).
    pub rows: usize,
    /// Printed pixels per cell side.
    pub cell_px: usize,
}

impl EmblemGeometry {
    pub fn new(cols: usize, rows: usize, cell_px: usize) -> Self {
        assert!(
            cols >= 256,
            "content must be at least 256 cells wide for the header"
        );
        assert!(cols % 4 == 0, "cols must be a multiple of 4");
        assert!(rows > OVERHEAD_ROWS, "no data rows");
        assert!(cell_px >= 1);
        Self {
            cols,
            rows,
            cell_px,
        }
    }

    /// A4 paper at 600 dpi (Canon IR 6255i class, §4 "Paper archive"):
    /// page is 4960×7016 px; this geometry fills it with ~48 KB payload so
    /// a ~1.2 MB archive needs ~26 pages at ~50 KB/page, the paper's row.
    pub fn paper_a4_600dpi() -> Self {
        Self::new(820, 1128, 5)
    }

    /// 16 mm microfilm frame (IMAGELINK 9600: 3888×5498 bitonal).
    pub fn microfilm_16mm() -> Self {
        Self::new(760, 1072, 5)
    }

    /// 35 mm cinema film, 2K full-aperture write (2048×1556), scanned at 4K.
    pub fn cinema_2k() -> Self {
        Self::new(1000, 760, 2)
    }

    /// Small geometry for fast tests (446-byte payload at cell_px 3).
    pub fn test_small() -> Self {
        Self::new(256, 96, 3)
    }

    /// Minimal geometry (one inner RS block, 223-byte payload) for the
    /// nested-emulation end-to-end tests, where every cell costs tens of
    /// thousands of host VeRisc instructions.
    pub fn test_micro() -> Self {
        Self::new(256, 20, 2)
    }

    /// Emblem image width in pixels (incl. quiet zone).
    pub fn image_width(&self) -> usize {
        (self.cols + 2 * (QUIET_CELLS + EDGE_CELLS)) * self.cell_px
    }

    /// Emblem image height in pixels (incl. quiet zone).
    pub fn image_height(&self) -> usize {
        (self.rows + 2 * (QUIET_CELLS + EDGE_CELLS)) * self.cell_px
    }

    /// Cells in the data region.
    pub fn data_cells(&self) -> usize {
        (self.rows - OVERHEAD_ROWS) * self.cols
    }

    /// Raw (pre-RS) data-region capacity in bytes; each byte needs 16 cells
    /// (8 bits × 2 half-cells).
    pub fn raw_bytes(&self) -> usize {
        self.data_cells() / 16
    }

    /// Number of full inner RS blocks that fit.
    pub fn rs_blocks(&self) -> usize {
        self.raw_bytes() / RS_N
    }

    /// Payload capacity per emblem in bytes (after inner RS overhead).
    pub fn payload_capacity(&self) -> usize {
        self.rs_blocks() * RS_K
    }

    /// The inner code instance.
    pub fn inner_code(&self) -> RsCode {
        RsCode::new(RS_N, RS_K)
    }

    /// Number of emblems needed for `len` payload bytes (data emblems only,
    /// before outer-code parity).
    pub fn emblems_for(&self, len: usize) -> usize {
        len.div_ceil(self.payload_capacity().max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_fits_a4_at_600dpi() {
        let g = EmblemGeometry::paper_a4_600dpi();
        assert!(g.image_width() <= 4960, "{}", g.image_width());
        assert!(g.image_height() <= 7016, "{}", g.image_height());
        // ~26 pages for a ~1.2 MB archive, i.e. ~46-50 KB per page.
        let cap = g.payload_capacity();
        assert!((45_000..52_000).contains(&cap), "payload {cap}");
    }

    #[test]
    fn microfilm_profile_fits_imagelink_frame() {
        let g = EmblemGeometry::microfilm_16mm();
        assert!(g.image_width() <= 3888, "{}", g.image_width());
        assert!(g.image_height() <= 5498, "{}", g.image_height());
        // The paper wrote a 102 KB image as 3 emblems: ≥ 34 KB each.
        assert!(
            g.payload_capacity() >= 34_000,
            "payload {}",
            g.payload_capacity()
        );
    }

    #[test]
    fn cinema_profile_fits_2k_frame() {
        let g = EmblemGeometry::cinema_2k();
        assert!(g.image_width() <= 2048, "{}", g.image_width());
        assert!(g.image_height() <= 1556, "{}", g.image_height());
        assert!(
            g.payload_capacity() >= 34_000,
            "payload {}",
            g.payload_capacity()
        );
    }

    #[test]
    fn capacity_math_consistency() {
        let g = EmblemGeometry::test_small();
        assert_eq!(g.data_cells(), (96 - 4) * 256);
        assert_eq!(g.raw_bytes(), g.data_cells() / 16);
        assert_eq!(g.payload_capacity(), g.rs_blocks() * 223);
        assert!(g.payload_capacity() > 0);
    }

    #[test]
    fn emblems_for_rounds_up() {
        let g = EmblemGeometry::test_small();
        let cap = g.payload_capacity();
        assert_eq!(g.emblems_for(0), 1);
        assert_eq!(g.emblems_for(cap), 1);
        assert_eq!(g.emblems_for(cap + 1), 2);
        assert_eq!(g.emblems_for(cap * 5), 5);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn cols_must_be_multiple_of_4() {
        EmblemGeometry::new(258, 96, 3);
    }

    #[test]
    fn paper_density_is_about_50kb_per_page() {
        // The headline E1 number: 1.2 MB / 26 pages ≈ 50 KB/page.
        let g = EmblemGeometry::paper_a4_600dpi();
        let emblems = g.emblems_for(1_230_000);
        assert!((25..=27).contains(&emblems), "emblems={emblems}");
    }
}
