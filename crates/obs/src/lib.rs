//! `ule_obs`: structured telemetry for the archival pipeline.
//!
//! The paper's thesis is that an archive must stay *diagnosable* decades
//! after it was written. The pipeline already computes the signals that
//! make that possible — RS corrected-symbol counts, clean-frame fast-path
//! hits, zone-prune decisions, guest VM fuel — and this crate is where
//! they stop being dropped on the floor. It provides three primitives:
//!
//! - **spans** — hierarchical wall-clock timings keyed by dot-separated
//!   paths (`"archive.compress"` is a child of `"archive"`); repeated
//!   entries aggregate into call counts plus total nanoseconds;
//! - **counters** — named monotonic `u64` sums (`"decode.corrected_symbols"`);
//! - **gauges** — named `f64` last-write-wins readings
//!   (`"decode.clean_frame_ratio"`).
//!
//! Two properties are load-bearing and pinned by tests:
//!
//! **Off is free.** [`Telemetry::off`] (the [`Default`]) carries no sink.
//! Every recording call starts with a null check and returns without
//! reading the clock, taking a lock, or allocating — so the frozen format
//! suites run against the exact same code paths whether or not anyone is
//! watching. `tests/telemetry.rs` pins enabled ≡ disabled restore bytes.
//!
//! **Sharded recording is deterministic.** Inside `ule_par` fan-outs the
//! recorder hands one shard per work item ([`Telemetry::fork`]); workers
//! write only to their own shard, and after the join the parent absorbs
//! the shards *in input order* ([`Telemetry::absorb`]). Aggregates are
//! then independent of which worker ran which item and of completion
//! order — the same argument that makes `ule_par::map` byte-identical at
//! any thread count. See `DESIGN.md` §15.
//!
//! Snapshots ([`Telemetry::snapshot`]) export two surfaces: hand-rolled
//! JSON ([`Trace::to_json`], the `BENCH_trace.json` convention) and a
//! human-readable span-tree profile ([`Trace::render`], printed by
//! `report -- --e14`).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Aggregate of one span path: how many times it was entered and the
/// total wall-clock time spent inside, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Number of completed entries into this span.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all entries.
    pub wall_ns: u64,
}

#[derive(Default)]
struct TraceData {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

#[derive(Default)]
struct Sink {
    data: Mutex<TraceData>,
}

/// A cheap, cloneable telemetry handle.
///
/// Cloning shares the underlying recorder (it is an `Arc` bump), so a
/// pipeline can thread one handle through every stage and read a single
/// combined [`Trace`] at the end. The default handle is [`Telemetry::off`]:
/// recording calls are no-ops that never touch the clock.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<Sink>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The disabled recorder: every call is a null-check and a return.
    pub fn off() -> Self {
        Telemetry { sink: None }
    }

    /// A live recorder with an empty trace.
    pub fn enabled() -> Self {
        Telemetry {
            sink: Some(Arc::new(Sink::default())),
        }
    }

    /// True when this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Enter the span at `name` (a dot path, e.g. `"restore.decode"`).
    /// The returned guard records one call and the elapsed wall time when
    /// dropped. Disabled handles return an inert guard without reading
    /// the clock.
    #[must_use = "the span measures until the guard is dropped"]
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.sink {
            None => SpanGuard { live: None },
            Some(sink) => SpanGuard {
                live: Some((Arc::clone(sink), name.to_string(), Instant::now())),
            },
        }
    }

    /// Add `n` to the monotonic counter at `name`.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(sink) = &self.sink {
            let mut data = sink.data.lock().unwrap();
            *data.counters.entry(name.to_string()).or_insert(0) += n;
        }
    }

    /// Set the gauge at `name` to `v` (last write wins).
    pub fn gauge(&self, name: &str, v: f64) {
        if let Some(sink) = &self.sink {
            let mut data = sink.data.lock().unwrap();
            data.gauges.insert(name.to_string(), v);
        }
    }

    /// Record a span's aggregate directly, without a guard. This is the
    /// merge primitive `absorb` uses; it is public so callers that time a
    /// region themselves can fold it in.
    pub fn span_record(&self, name: &str, calls: u64, wall_ns: u64) {
        if let Some(sink) = &self.sink {
            let mut data = sink.data.lock().unwrap();
            let agg = data.spans.entry(name.to_string()).or_default();
            agg.calls += calls;
            agg.wall_ns += wall_ns;
        }
    }

    /// One recorder shard per work item of a `ule_par` fan-out.
    ///
    /// Each shard is an independent enabled recorder (or an inert handle
    /// when `self` is off, so disabled stays free). Workers write only to
    /// the shard of the item they are processing; after the join the
    /// caller merges them back with [`Telemetry::absorb`] *in input
    /// order*, making every aggregate independent of worker scheduling.
    pub fn fork(&self, n: usize) -> Vec<Telemetry> {
        match &self.sink {
            None => vec![Telemetry::off(); n],
            Some(_) => (0..n).map(|_| Telemetry::enabled()).collect(),
        }
    }

    /// Merge `shards` into this recorder, in the order given. Counters
    /// and span aggregates are commutative sums; gauges are last-write-
    /// wins, which the fixed order makes deterministic.
    pub fn absorb(&self, shards: Vec<Telemetry>) {
        let Some(sink) = &self.sink else { return };
        let mut data = sink.data.lock().unwrap();
        for shard in shards {
            let Some(shard_sink) = shard.sink else {
                continue;
            };
            let shard_data = shard_sink.data.lock().unwrap();
            for (name, agg) in &shard_data.spans {
                let dst = data.spans.entry(name.clone()).or_default();
                dst.calls += agg.calls;
                dst.wall_ns += agg.wall_ns;
            }
            for (name, n) in &shard_data.counters {
                *data.counters.entry(name.clone()).or_insert(0) += n;
            }
            for (name, v) in &shard_data.gauges {
                data.gauges.insert(name.clone(), *v);
            }
        }
    }

    /// Read the counter at `name` (0 when absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.sink {
            None => 0,
            Some(sink) => {
                let data = sink.data.lock().unwrap();
                data.counters.get(name).copied().unwrap_or(0)
            }
        }
    }

    /// A point-in-time copy of everything recorded so far. The maps are
    /// `BTreeMap`-ordered, so exports are deterministic given the same
    /// recorded names and values.
    pub fn snapshot(&self) -> Trace {
        match &self.sink {
            None => Trace::default(),
            Some(sink) => {
                let data = sink.data.lock().unwrap();
                Trace {
                    spans: data.spans.clone(),
                    counters: data.counters.clone(),
                    gauges: data.gauges.clone(),
                }
            }
        }
    }
}

/// RAII span timer returned by [`Telemetry::span`]. Dropping it records
/// one call plus the elapsed wall time; an inert guard (from a disabled
/// handle) drops for free.
pub struct SpanGuard {
    live: Option<(Arc<Sink>, String, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((sink, name, start)) = self.live.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let mut data = sink.data.lock().unwrap();
            let agg = data.spans.entry(name).or_default();
            agg.calls += 1;
            agg.wall_ns += ns;
        }
    }
}

/// An immutable snapshot of a recorder: spans, counters and gauges,
/// each in deterministic (sorted-name) order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Aggregated spans keyed by dot path.
    pub spans: BTreeMap<String, SpanAgg>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
}

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Trace {
    /// Hand-rolled JSON export — the `BENCH_trace.json` surface, in the
    /// same no-serde convention as `BENCH_report.json`/`BENCH_fuzz.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": [\n");
        let mut first = true;
        for (name, agg) in &self.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"calls\": {}, \"wall_ms\": {:.6}}}",
                json_escape(name),
                agg.calls,
                agg.wall_ns as f64 / 1e6
            ));
        }
        out.push_str("\n  ],\n  \"counters\": {");
        first = true;
        for (name, n) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), n));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {:.6}", json_escape(name), v));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Human-readable profile: the span tree (indentation from dot
    /// depth), then counters, then gauges.
    pub fn render(&self) -> String {
        // A span's dot-path ancestors may never have been recorded
        // themselves (`restore.native` with no `restore` span); emit a
        // bare group row for each so indentation always means nesting.
        let mut rows: std::collections::BTreeMap<&str, Option<&SpanAgg>> = BTreeMap::new();
        for (name, agg) in &self.spans {
            rows.insert(name, Some(agg));
            let mut end = 0;
            while let Some(dot) = name[end..].find('.') {
                end += dot;
                rows.entry(&name[..end]).or_insert(None);
                end += 1;
            }
        }
        let mut out = String::new();
        let width = rows
            .keys()
            .map(|n| n.matches('.').count() * 2 + n.rsplit('.').next().unwrap_or(n).len())
            .max()
            .unwrap_or(0)
            .max(12);
        for (name, agg) in &rows {
            let depth = name.matches('.').count();
            let leaf = name.rsplit('.').next().unwrap_or(name);
            match agg {
                Some(agg) => out.push_str(&format!(
                    "{:indent$}{:w$}  {:>7} call{}  {:>12.3} ms\n",
                    "",
                    leaf,
                    agg.calls,
                    if agg.calls == 1 { ' ' } else { 's' },
                    agg.wall_ns as f64 / 1e6,
                    indent = depth * 2,
                    w = width - depth * 2,
                )),
                None => out.push_str(&format!("{:indent$}{leaf}\n", "", indent = depth * 2)),
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, n) in &self.counters {
                out.push_str(&format!("  {name} = {n}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name} = {v:.4}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let tel = Telemetry::off();
        assert!(!tel.is_enabled());
        {
            let _g = tel.span("archive");
        }
        tel.add("decode.frames", 3);
        tel.gauge("ratio", 0.5);
        let t = tel.snapshot();
        assert!(t.spans.is_empty() && t.counters.is_empty() && t.gauges.is_empty());
        assert_eq!(tel.counter("decode.frames"), 0);
    }

    #[test]
    fn default_is_off() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn counters_sum_and_spans_aggregate() {
        let tel = Telemetry::enabled();
        for _ in 0..3 {
            let _g = tel.span("scan.decode");
        }
        tel.add("decode.frames", 2);
        tel.add("decode.frames", 5);
        tel.gauge("ratio", 0.25);
        tel.gauge("ratio", 0.75);
        let t = tel.snapshot();
        assert_eq!(t.spans["scan.decode"].calls, 3);
        assert_eq!(t.counters["decode.frames"], 7);
        assert_eq!(tel.counter("decode.frames"), 7);
        assert_eq!(t.gauges["ratio"], 0.75);
    }

    #[test]
    fn clones_share_one_recorder() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        other.add("x", 1);
        tel.add("x", 1);
        assert_eq!(tel.counter("x"), 2);
    }

    #[test]
    fn fork_of_off_is_off_and_absorb_into_off_is_noop() {
        let off = Telemetry::off();
        let shards = off.fork(4);
        assert!(shards.iter().all(|s| !s.is_enabled()));
        off.absorb(shards);
        assert!(off.snapshot().counters.is_empty());
    }

    #[test]
    fn absorb_merges_in_input_order_regardless_of_write_order() {
        // Two interleavings of shard *writes* (simulating worker
        // scheduling) must produce the same merged trace, because the
        // merge order is the shard (input) order, not completion order.
        let run = |reverse_writes: bool| {
            let tel = Telemetry::enabled();
            let shards = tel.fork(3);
            let order: Vec<usize> = if reverse_writes {
                vec![2, 1, 0]
            } else {
                vec![0, 1, 2]
            };
            for &i in &order {
                shards[i].add("decode.corrected", (i as u64 + 1) * 10);
                shards[i].span_record("scan.decode", 1, 1_000 * (i as u64 + 1));
                shards[i].gauge("last_index", i as f64);
            }
            tel.absorb(shards);
            tel.snapshot()
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.spans, b.spans);
        assert_eq!(a.gauges, b.gauges);
        assert_eq!(a.counters["decode.corrected"], 60);
        assert_eq!(a.spans["scan.decode"].calls, 3);
        assert_eq!(a.spans["scan.decode"].wall_ns, 6_000);
        // Gauge: shard 2 wrote last in merge order both times.
        assert_eq!(a.gauges["last_index"], 2.0);
    }

    #[test]
    fn span_guard_measures_elapsed_time() {
        let tel = Telemetry::enabled();
        {
            let _g = tel.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let t = tel.snapshot();
        assert_eq!(t.spans["work"].calls, 1);
        assert!(
            t.spans["work"].wall_ns >= 1_000_000,
            "{:?}",
            t.spans["work"]
        );
    }

    #[test]
    fn json_export_shape_is_stable() {
        let tel = Telemetry::enabled();
        tel.span_record("archive", 1, 2_000_000);
        tel.span_record("archive.compress", 1, 1_000_000);
        tel.add("codec.bytes_in", 100);
        tel.gauge("decode.clean_frame_ratio", 1.0);
        let json = tel.snapshot().to_json();
        assert!(json.contains("\"name\": \"archive.compress\""));
        assert!(json.contains("\"codec.bytes_in\": 100"));
        assert!(json.contains("\"decode.clean_frame_ratio\": 1.000000"));
        // Minimal structural sanity: balanced braces/brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn render_indents_children_under_parents() {
        let tel = Telemetry::enabled();
        tel.span_record("archive", 1, 5_000_000);
        tel.span_record("archive.compress", 2, 3_000_000);
        tel.add("frames", 4);
        let text = tel.snapshot().render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("archive"), "{text}");
        assert!(lines[1].starts_with("  compress"), "{text}");
        assert!(text.contains("frames = 4"), "{text}");
    }

    #[test]
    fn render_synthesizes_missing_ancestors() {
        let tel = Telemetry::enabled();
        tel.span_record("restore.native", 1, 5_000_000);
        tel.span_record("scan.decode.frame", 3, 2_000_000);
        let lines: String = tel.snapshot().render();
        let lines: Vec<&str> = lines.lines().collect();
        // Group rows for `restore`, `scan` and `scan.decode` appear even
        // though no span was ever recorded under those exact names.
        assert_eq!(lines[0], "restore");
        assert!(lines[1].starts_with("  native"), "{lines:?}");
        assert_eq!(lines[2], "scan");
        assert_eq!(lines[3], "  decode");
        assert!(lines[4].starts_with("    frame"), "{lines:?}");
    }
}
