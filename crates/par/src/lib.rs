//! Deterministic scoped worker pool (system **S14** in `DESIGN.md` §9).
//!
//! Every stage of the Figure 2a/2b pipeline is embarrassingly parallel per
//! emblem (encode, inner/outer Reed–Solomon coding, frame rasterisation,
//! per-scan decode), but the archival format is *frozen*: the bytes written
//! to the medium must never depend on how many worker threads happened to
//! run. This crate therefore provides exactly one parallel primitive —
//! an **ordered map**: work items are claimed dynamically by a pool of
//! scoped threads (`std::thread::scope`, no external dependencies), and
//! results are joined back in input-index order. Output is byte-identical
//! to the serial path at any thread count; `tests/parallel_identity.rs`
//! asserts this end to end and `tests/golden_format.rs` pins the absolute
//! bytes.
//!
//! [`ThreadConfig::Serial`] bypasses the pool entirely (no threads are
//! spawned), which is the default everywhere: parallelism is strictly
//! opt-in via `MicrOlonys { threads, .. }` or the `*_with` entry points.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a batch entry point may use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ThreadConfig {
    /// Run on the calling thread, in input order. The default everywhere,
    /// including the emulated restore path — whose per-frame fan-out is,
    /// like every other use of the pool, a pure wall-clock knob with
    /// byte-identical output at any thread count (DESIGN.md §9).
    #[default]
    Serial,
    /// Spawn exactly `n` workers (clamped to ≥ 1). Output is identical to
    /// `Serial` — only wall-clock time changes.
    Fixed(usize),
    /// Use [`std::thread::available_parallelism`] workers, capped at
    /// [`ThreadConfig::AUTO_MAX_WORKERS`]. When the runtime cannot
    /// determine the core count (sandboxed or exotic platforms return
    /// `Err`), `Auto` degrades to a single worker — i.e. exactly the
    /// `Serial` behaviour, never a guess above the hardware.
    Auto,
}

impl ThreadConfig {
    /// Upper bound on what `Auto` resolves to. The pipeline's work items
    /// are whole emblems (tens of KB to MBs each), so past this width the
    /// ordered join and allocator pressure dominate any extra cores;
    /// machines wider than this should opt in explicitly via `Fixed(n)`.
    pub const AUTO_MAX_WORKERS: usize = 64;

    /// Number of worker threads this configuration resolves to (≥ 1).
    ///
    /// Edge cases are pinned by unit tests: `Serial` is always exactly 1,
    /// `Fixed(0)` clamps to 1 (a zero-width pool cannot make progress),
    /// and `Auto` is `min(available_parallelism(), AUTO_MAX_WORKERS)`
    /// with a documented fallback of 1 when the core count is unknown.
    pub fn workers(self) -> usize {
        match self {
            ThreadConfig::Serial => 1,
            ThreadConfig::Fixed(n) => n.max(1),
            ThreadConfig::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
                .min(Self::AUTO_MAX_WORKERS),
        }
    }

    /// Resolve the `ULE_TEST_THREADS` environment variable (the CI matrix
    /// knob): unset or unparsable → `default`; `0` or `1` → `Serial`;
    /// `n > 1` → `Fixed(n)`.
    pub fn from_env_or(default: ThreadConfig) -> ThreadConfig {
        match std::env::var("ULE_TEST_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 1 => ThreadConfig::Fixed(n),
                Ok(_) => ThreadConfig::Serial,
                Err(_) => default,
            },
            Err(_) => default,
        }
    }
}

impl std::fmt::Display for ThreadConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadConfig::Serial => write!(f, "serial"),
            ThreadConfig::Fixed(n) => write!(f, "{} threads", n.max(&1)),
            ThreadConfig::Auto => write!(f, "auto ({} threads)", self.workers()),
        }
    }
}

/// Ordered parallel map over `0..n`: returns `[f(0), f(1), .., f(n-1)]`.
///
/// Work is claimed dynamically in **chunks**: each worker grabs a run of
/// `max(1, n / (8 · workers))` consecutive indices per cursor bump, so a
/// batch of many small items (the shape the kernel layer created — per
/// 255-byte RS block instead of per emblem) costs one atomic RMW and one
/// result-lock acquisition per run rather than per item, while ~8 chunks
/// per worker keep uneven item costs balanced. Results still land in
/// their input slots, so the output is independent of scheduling at any
/// thread count (`tests/parallel_identity.rs` pins serial ≡ threaded end
/// to end). A panic in `f` propagates to the caller when the scope joins.
pub fn map_indexed<R, F>(cfg: ThreadConfig, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = cfg.workers().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = (n / (8 * workers)).max(1);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                // Compute outside the lock: the lock only guards the
                // (cheap) result placement, not the work.
                let run: Vec<R> = (start..end).map(&f).collect();
                let mut guard = slots.lock().unwrap();
                for (i, r) in run.into_iter().enumerate() {
                    guard[start + i] = Some(r);
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("every index claimed exactly once"))
        .collect()
}

/// Ordered parallel map over a slice: returns `[f(&items[0]), ..]`.
pub fn map<T, R, F>(cfg: ThreadConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed(cfg, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let serial = map(ThreadConfig::Serial, &items, |&x| x * x + 1);
        for threads in [2, 3, 4, 8] {
            let par = map(ThreadConfig::Fixed(threads), &items, |&x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn order_is_input_order_not_completion_order() {
        // Make early items slow: with dynamic claiming, later items finish
        // first, but the output must still be in index order.
        let out = map_indexed(ThreadConfig::Fixed(4), 16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map(ThreadConfig::Fixed(8), &empty, |&x| x).is_empty());
        assert_eq!(map(ThreadConfig::Fixed(8), &[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn workers_are_clamped() {
        assert_eq!(ThreadConfig::Serial.workers(), 1);
        assert_eq!(ThreadConfig::Fixed(0).workers(), 1);
        assert_eq!(ThreadConfig::Fixed(6).workers(), 6);
        assert!(ThreadConfig::Auto.workers() >= 1);
    }

    #[test]
    fn auto_is_capped_at_available_parallelism() {
        // Auto must never exceed the hardware (capped further at
        // AUTO_MAX_WORKERS) — and must still be a usable pool width.
        let auto = ThreadConfig::Auto.workers();
        let avail = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        assert!(auto <= avail.min(ThreadConfig::AUTO_MAX_WORKERS));
        assert!(auto >= 1, "fallback when the core count is unknown");
    }

    #[test]
    fn serial_and_fixed_zero_run_on_the_calling_thread() {
        // The Serial / Fixed(0) edge cases: both resolve to one worker,
        // and map() must not spawn — observable via thread id equality.
        let caller = std::thread::current().id();
        for cfg in [ThreadConfig::Serial, ThreadConfig::Fixed(0)] {
            assert_eq!(cfg.workers(), 1, "{cfg:?}");
            let ids = map_indexed(cfg, 4, |_| std::thread::current().id());
            assert!(ids.iter().all(|&id| id == caller), "{cfg:?} spawned");
        }
        // Fixed(1) also degenerates to the calling thread: one worker
        // never beats zero spawn overhead.
        assert_eq!(ThreadConfig::Fixed(1).workers(), 1);
    }

    #[test]
    fn chunked_claiming_covers_every_index_exactly_once() {
        // Sizes around the chunk-boundary arithmetic: n < workers,
        // n == chunk edge, n % chunk != 0, and a many-small-item batch
        // (the contention shape the chunked cursor exists for).
        for n in [1usize, 5, 31, 32, 33, 257, 4096] {
            for threads in [2usize, 4, 8] {
                let out = map_indexed(ThreadConfig::Fixed(threads), n, |i| i * 3);
                assert_eq!(
                    out,
                    (0..n).map(|i| i * 3).collect::<Vec<_>>(),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = map_indexed(ThreadConfig::Fixed(32), 3, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        map_indexed(ThreadConfig::Fixed(2), 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn default_is_serial() {
        assert_eq!(ThreadConfig::default(), ThreadConfig::Serial);
    }
}
