//! The frozen VeRisc machine definition (paper §3.2).
//!
//! > "The four instructions in the VeRisc ISA are (i) LD &address …,
//! > (ii) ST &address …, (iii) SBB &address …, and (iv) AND &address …"
//!
//! Control flow needs no fifth instruction: the program counter and the
//! borrow flag are memory-mapped, so jumps are stores to address 0 and
//! conditional execution derives jump targets arithmetically from the
//! borrow mask.

/// Memory-mapped program counter. Reading yields the address of the next
/// instruction; writing jumps.
pub const PC_ADDR: u32 = 0;
/// Memory-mapped borrow flag, stored as a 0 / 0xFFFFFFFF mask. Writing any
/// non-zero value sets the flag.
pub const BORROW_ADDR: u32 = 1;
/// First code address.
pub const CODE_BASE: u32 = 2;
/// Jumping here halts the machine.
pub const HALT_ADDR: u32 = 0xFFFF_FFFF;

/// Instruction opcodes (first word of each two-word instruction).
pub const OP_LD: u32 = 0;
pub const OP_ST: u32 = 1;
pub const OP_SBB: u32 = 2;
pub const OP_AND: u32 = 3;

/// Number of instructions in the ISA — the paper's "four-ISA" processor.
pub const OPCODE_COUNT: usize = 4;

/// The plain-text algorithm description a future user implements from —
/// the core of the Bootstrap document (§3.2: "less than 500 lines …
/// implemented by anyone with a basic programming background").
pub fn pseudocode() -> String {
    let text = r#"
VERISC EMULATOR — PLAIN-TEXT ALGORITHM (Bootstrap section 1)
=============================================================

You will build a tiny virtual computer. It has:
  * MEM   : an array of unsigned 32-bit integers (size given below)
  * R     : one unsigned 32-bit accumulator register, initially 0

Two array entries are special:
  * MEM[0] is the PROGRAM COUNTER. It always holds the index of the
    next instruction. Writing to MEM[0] transfers control.
  * MEM[1] is the BORROW FLAG, stored as a mask: 0 means "no borrow",
    4294967295 (2^32-1) means "borrow". When any value is stored to
    MEM[1], store 0 if it is zero and 4294967295 otherwise.

An instruction is two consecutive array entries: [OP, ADDR].
OP is one of:
  0 = LD   : R <- MEM[ADDR]
  1 = ST   : MEM[ADDR] <- R            (with the MEM[0]/MEM[1] rules)
  2 = SBB  : T <- R - MEM[ADDR] - B, where B is 1 if the borrow flag
             is set and 0 otherwise; all arithmetic modulo 2^32.
             Set the borrow flag if and only if MEM[ADDR] + B > R.
             Then R <- T.
  3 = AND  : R <- R bitwise-and MEM[ADDR]

THE MAIN LOOP:
  1. Let P be MEM[0]. If P equals 4294967295, stop: the program has
     finished.
  2. Read OP = MEM[P] and ADDR = MEM[P+1].
  3. Set MEM[0] to P + 2 (the next instruction) BEFORE executing, so
     that reading MEM[0] during execution yields the next address.
  4. Execute the instruction per the table above.
  5. Go to step 1.

NOTES FOR THE IMPLEMENTER:
  * All arithmetic is unsigned, modulo 2^32. In languages without
    fixed-width integers, apply "mod 4294967296" after every
    subtraction and addition.
  * An ST to MEM[0] performs a jump; the main loop must re-read
    MEM[0] each iteration rather than keeping a cached counter.
  * The program may overwrite its own instruction words (this is how
    it implements indirect addressing). Never cache instructions.
  * Execution starts at MEM[0] = 2.
  * Loading the memory image: section 2 and 3 of this document list
    the memory contents as letters. Letters A..P encode the
    hexadecimal digits F..0 respectively (A=15, B=14, C=13, D=12,
    E=11, F=10, G=9, H=8, I=7, J=6, K=5, L=4, M=3, N=2, O=1, P=0).
    Every 8 letters form one 32-bit word, most significant digit
    first. Word 0 of the image is MEM[0], word 1 is MEM[1], and so
    on. After the listed words, extend MEM with zeros up to the size
    written in section 2's header line.
  * When the machine stops, the decoded output is in MEM: the result
    region and its meaning are described in section 4 (the decoder
    manifest).
"#;
    text.trim_start().to_string()
}

/// Line count of the pseudocode — checked against the paper's "less than
/// 500 lines" claim in the E5 experiment.
pub fn pseudocode_lines() -> usize {
    pseudocode().lines().count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_opcodes() {
        assert_eq!(OPCODE_COUNT, 4);
        assert_eq!(OP_LD, 0);
        assert_eq!(OP_AND, 3);
    }

    #[test]
    fn pseudocode_is_well_under_500_lines() {
        let lines = pseudocode_lines();
        assert!(lines < 500, "pseudocode is {lines} lines");
        assert!(lines > 20, "pseudocode suspiciously short");
    }

    #[test]
    fn pseudocode_mentions_all_four_instructions() {
        let text = pseudocode();
        for op in ["LD", "ST", "SBB", "AND"] {
            assert!(text.contains(op), "missing {op}");
        }
    }
}
