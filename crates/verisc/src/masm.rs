//! Macro-assembler for VeRisc.
//!
//! Lowers conventional macros — MOV, ADD, conditional jumps, CALL/RET,
//! indirect loads/stores — onto the four VeRisc instructions, using the
//! machine's three idioms:
//!
//! * jumps are stores to the memory-mapped PC (`mem[0]`);
//! * conditionals derive the jump target arithmetically from the borrow
//!   mask (`target = fall + ((label − fall) & mask)`);
//! * indirection patches the operand word of a following instruction
//!   (self-modifying code).
//!
//! The emitted image layout is `[PC, BORROW, code…, cells…]`; `finish()`
//! resolves labels, constant pools and cell addresses, and returns the
//! memory image plus a symbol table for host-side I/O.

use crate::spec::{BORROW_ADDR, CODE_BASE, HALT_ADDR, OP_AND, OP_LD, OP_SBB, OP_ST, PC_ADDR};
use std::collections::HashMap;

/// Handle to a data cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Cell(usize);

/// Handle to a code label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Label(usize);

/// A code word that may reference a not-yet-placed cell.
#[derive(Clone, Copy, Debug)]
enum Word {
    Lit(u32),
    CellAddr(Cell),
}

/// How a cell's initial value is computed at `finish()` time.
#[derive(Clone, Copy, Debug)]
enum CellInit {
    Lit(u32),
    /// Absolute code address of a label.
    LabelAddr(Label),
    /// `label_address − fall_address` (wrapping) — used by conditionals.
    LabelDiff(Label, u32),
    /// Absolute address of another cell.
    AddrOf(Cell),
}

/// A builder-contract violation, reported by [`Masm::try_finish`].
///
/// The assembler is driven programmatically, but the programs it is asked
/// to build may themselves be reconstructed from untrusted archival input
/// — so every misuse is recorded and surfaced as a structured error
/// instead of panicking mid-build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MasmError {
    /// `bind` was called twice for the same label.
    LabelBoundTwice(usize),
    /// A label was referenced but never bound when the image was finished.
    UnboundLabel(usize),
    /// `array` was given more initial values than its length.
    ArrayInitOverflow { len: usize, init: usize },
    /// `pin_tail_array` was called more than once.
    TailArrayRepinned,
}

impl std::fmt::Display for MasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MasmError::LabelBoundTwice(i) => write!(f, "label {i} bound twice"),
            MasmError::UnboundLabel(i) => write!(f, "label {i} never bound"),
            MasmError::ArrayInitOverflow { len, init } => {
                write!(f, "array of {len} cells given {init} initial values")
            }
            MasmError::TailArrayRepinned => write!(f, "only one tail array supported"),
        }
    }
}

impl std::error::Error for MasmError {}

/// The assembled image.
pub struct Image {
    pub mem: Vec<u32>,
    /// Named cell → absolute word address.
    pub symbols: HashMap<String, u32>,
    /// Number of code words (for reporting).
    pub code_words: usize,
}

/// The assembler.
pub struct Masm {
    code: Vec<Word>,
    labels: Vec<Option<u32>>,
    cells: Vec<CellInit>,
    konsts: HashMap<u32, Cell>,
    label_cells: HashMap<usize, Cell>,
    named: HashMap<String, Cell>,
    zero: Cell,
    scratch: Cell,
    /// (first cell index, length) of an array relocated to the end of the
    /// cell area at finish() time — used so the guest data region can be
    /// the final region of the image and grow at restore time.
    pinned: Option<(usize, usize)>,
    /// First builder-contract violation, surfaced by `try_finish`.
    err: Option<MasmError>,
}

impl Default for Masm {
    fn default() -> Self {
        Self::new()
    }
}

impl Masm {
    pub fn new() -> Self {
        let mut m = Self {
            code: Vec::new(),
            labels: Vec::new(),
            cells: Vec::new(),
            konsts: HashMap::new(),
            label_cells: HashMap::new(),
            named: HashMap::new(),
            zero: Cell(usize::MAX),
            scratch: Cell(usize::MAX),
            pinned: None,
            err: None,
        };
        m.zero = m.konst(0);
        m.scratch = m.cell(0);
        m
    }

    // ---- cells & labels ----

    /// Allocate a variable cell with an initial value.
    pub fn cell(&mut self, init: u32) -> Cell {
        self.cells.push(CellInit::Lit(init));
        Cell(self.cells.len() - 1)
    }

    /// Deduplicated constant cell.
    pub fn konst(&mut self, v: u32) -> Cell {
        if let Some(&c) = self.konsts.get(&v) {
            return c;
        }
        let c = self.cell(v);
        self.konsts.insert(v, c);
        c
    }

    /// Constant cell holding a label's absolute address.
    pub fn konst_label(&mut self, l: Label) -> Cell {
        if let Some(&c) = self.label_cells.get(&l.0) {
            return c;
        }
        self.cells.push(CellInit::LabelAddr(l));
        let c = Cell(self.cells.len() - 1);
        self.label_cells.insert(l.0, c);
        c
    }

    /// Constant cell holding another cell's absolute address.
    pub fn konst_addr_of(&mut self, target: Cell) -> Cell {
        self.cells.push(CellInit::AddrOf(target));
        Cell(self.cells.len() - 1)
    }

    /// Allocate `len` contiguous cells; returns the first. `init` may be
    /// shorter than `len` (the rest are zero).
    pub fn array(&mut self, len: usize, init: &[u32]) -> Cell {
        if init.len() > len {
            self.record(MasmError::ArrayInitOverflow {
                len,
                init: init.len(),
            });
        }
        let first = Cell(self.cells.len());
        for i in 0..len {
            self.cells
                .push(CellInit::Lit(init.get(i).copied().unwrap_or(0)));
        }
        first
    }

    /// Give a cell a host-visible name in the symbol table.
    pub fn name(&mut self, name: &str, cell: Cell) {
        self.named.insert(name.to_string(), cell);
    }

    /// Relocate the array starting at `first` (of `len` cells) to the very
    /// end of the cell area when the image is finished. Only one array may
    /// be pinned.
    pub fn pin_tail_array(&mut self, first: Cell, len: usize) {
        if self.pinned.is_some() {
            self.record(MasmError::TailArrayRepinned);
            return;
        }
        self.pinned = Some((first.0, len));
    }

    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    pub fn bind(&mut self, l: Label) {
        if self.labels[l.0].is_some() {
            self.record(MasmError::LabelBoundTwice(l.0));
            return;
        }
        self.labels[l.0] = Some(self.code.len() as u32);
    }

    /// Keep the first violation: later errors are usually cascades of it.
    fn record(&mut self, e: MasmError) {
        if self.err.is_none() {
            self.err = Some(e);
        }
    }

    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Current absolute code address.
    fn cur_addr(&self) -> u32 {
        CODE_BASE + self.code.len() as u32
    }

    // ---- raw instructions ----

    pub fn ld(&mut self, c: Cell) {
        self.code.push(Word::Lit(OP_LD));
        self.code.push(Word::CellAddr(c));
    }
    pub fn st(&mut self, c: Cell) {
        self.code.push(Word::Lit(OP_ST));
        self.code.push(Word::CellAddr(c));
    }
    pub fn sbb(&mut self, c: Cell) {
        self.code.push(Word::Lit(OP_SBB));
        self.code.push(Word::CellAddr(c));
    }
    pub fn and_(&mut self, c: Cell) {
        self.code.push(Word::Lit(OP_AND));
        self.code.push(Word::CellAddr(c));
    }
    pub fn ld_abs(&mut self, addr: u32) {
        self.code.push(Word::Lit(OP_LD));
        self.code.push(Word::Lit(addr));
    }
    pub fn st_abs(&mut self, addr: u32) {
        self.code.push(Word::Lit(OP_ST));
        self.code.push(Word::Lit(addr));
    }
    pub fn sbb_abs(&mut self, addr: u32) {
        self.code.push(Word::Lit(OP_SBB));
        self.code.push(Word::Lit(addr));
    }

    // ---- macros ----

    /// Clear the borrow flag (R is clobbered).
    pub fn clc(&mut self) {
        let z = self.zero;
        self.ld(z);
        self.st_abs(BORROW_ADDR);
    }

    /// `dst ← src`.
    pub fn mov(&mut self, dst: Cell, src: Cell) {
        self.ld(src);
        self.st(dst);
    }

    /// `dst ← imm`.
    pub fn movi(&mut self, dst: Cell, imm: u32) {
        let k = self.konst(imm);
        self.mov(dst, k);
    }

    /// `dst ← a − b` (borrow flag afterwards = a < b).
    pub fn sub(&mut self, dst: Cell, a: Cell, b: Cell) {
        self.clc();
        self.ld(a);
        self.sbb(b);
        self.st(dst);
    }

    /// `dst ← a − imm` (borrow flag afterwards = a < imm).
    pub fn subi(&mut self, dst: Cell, a: Cell, imm: u32) {
        let k = self.konst(imm);
        self.sub(dst, a, k);
    }

    /// `dst ← a + b` (mod 2^32, borrow left clear).
    pub fn add(&mut self, dst: Cell, a: Cell, b: Cell) {
        // -b into scratch, then a - (-b).
        let z = self.zero;
        let t = self.scratch;
        self.clc();
        self.ld(z);
        self.sbb(b);
        self.st(t);
        self.clc();
        self.ld(a);
        self.sbb(t);
        self.st(dst);
    }

    /// `dst ← a + imm`.
    pub fn addi(&mut self, dst: Cell, a: Cell, imm: u32) {
        // a - (-imm): one clc + sbb with a negative constant.
        let k = self.konst(imm.wrapping_neg());
        self.clc();
        self.ld(a);
        self.sbb(k);
        self.st(dst);
    }

    /// `dst ← a & b`.
    pub fn band(&mut self, dst: Cell, a: Cell, b: Cell) {
        self.ld(a);
        self.and_(b);
        self.st(dst);
    }

    /// `dst ← bitwise NOT a` (= 0xFFFFFFFF − a, no borrow possible).
    pub fn bnot(&mut self, dst: Cell, a: Cell) {
        let ones = self.konst(u32::MAX);
        self.clc();
        self.ld(ones);
        self.sbb(a);
        self.st(dst);
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, l: Label) {
        let k = self.konst_label(l);
        self.ld(k);
        self.st_abs(PC_ADDR);
    }

    /// Halt the machine.
    pub fn halt(&mut self) {
        let k = self.konst(HALT_ADDR);
        self.ld(k);
        self.st_abs(PC_ADDR);
    }

    /// Jump if the borrow flag is set. Emits a fixed 13-instruction
    /// sequence computing `target = fall + ((label − fall) & mask)`.
    pub fn jc(&mut self, l: Label) {
        const SEQ_WORDS: u32 = 26;
        let fall = self.cur_addr() + SEQ_WORDS;
        // diff cell: label − fall, resolved at finish time.
        self.cells.push(CellInit::LabelDiff(l, fall));
        let diff = Cell(self.cells.len() - 1);
        let k_fall = self.konst(fall);
        let t = self.scratch;
        let start = self.code.len();
        self.ld_abs(BORROW_ADDR); // R = mask
        self.and_(diff); // R = diff & mask
        self.st(t);
        self.clc();
        let z = self.zero;
        self.ld(z);
        self.sbb(t);
        self.st(t); // t = −(diff & mask)
        self.clc();
        self.ld(k_fall);
        self.sbb(t); // R = fall + (diff & mask)
        self.st_abs(PC_ADDR);
        debug_assert_eq!(self.code.len() - start, SEQ_WORDS as usize);
    }

    /// Jump if the borrow flag is clear.
    pub fn jnc(&mut self, l: Label) {
        let skip = self.label();
        self.jc(skip);
        self.jmp(l);
        self.bind(skip);
    }

    /// Jump if `cell == 0` (R clobbered, borrow clobbered).
    pub fn jz_cell(&mut self, c: Cell, l: Label) {
        let one = self.konst(1);
        self.clc();
        self.ld(c);
        self.sbb(one); // borrow iff c == 0
        self.jc(l);
    }

    /// Jump if `cell != 0`.
    pub fn jnz_cell(&mut self, c: Cell, l: Label) {
        let one = self.konst(1);
        self.clc();
        self.ld(c);
        self.sbb(one);
        self.jnc(l);
    }

    /// Jump if `a < b` (unsigned).
    pub fn jlt(&mut self, a: Cell, b: Cell, l: Label) {
        self.clc();
        self.ld(a);
        self.sbb(b);
        self.jc(l);
    }

    /// Jump if `a >= b` (unsigned).
    pub fn jge(&mut self, a: Cell, b: Cell, l: Label) {
        self.clc();
        self.ld(a);
        self.sbb(b);
        self.jnc(l);
    }

    /// Jump if `a == b`.
    pub fn jeq(&mut self, a: Cell, b: Cell, l: Label) {
        let t2 = self.cell(0);
        self.sub(t2, a, b);
        self.jz_cell(t2, l);
    }

    /// Jump if `a != b`.
    pub fn jne(&mut self, a: Cell, b: Cell, l: Label) {
        let t2 = self.cell(0);
        self.sub(t2, a, b);
        self.jnz_cell(t2, l);
    }

    /// Call: stores the return address in `link`, then jumps. Pair with
    /// [`Masm::ret`]. (No stack — the generated emulator uses one link
    /// cell per subroutine, which suffices without recursion.)
    pub fn call(&mut self, l: Label, link: Cell) {
        const SEQ_WORDS: u32 = 14;
        let k_off = self.konst(8u32.wrapping_neg()); // R += 8
        let start = self.code.len();
        // clc first — it clobbers R, so the PC read must come after.
        self.clc();
        self.ld_abs(PC_ADDR); // R = seq_start + 6
        self.sbb(k_off); // R = seq_start + 14 = return address
        self.st(link);
        // jmp l
        let k = self.konst_label(l);
        self.ld(k);
        self.st_abs(PC_ADDR);
        debug_assert_eq!(self.code.len() - start, SEQ_WORDS as usize);
    }

    /// Return through a link cell.
    pub fn ret(&mut self, link: Cell) {
        self.ld(link);
        self.st_abs(PC_ADDR);
    }

    /// `R ← mem[mem[ptr]]` (indirect load via operand patching).
    pub fn ld_ind(&mut self, ptr: Cell) {
        // Patch target: the operand of the LD two instructions below.
        let patch = self.cur_addr() + 5;
        self.ld(ptr);
        self.st_abs(patch);
        self.ld_abs(0); // operand rewritten at run time
    }

    /// `mem[mem[ptr]] ← value_cell` (indirect store via operand patching).
    pub fn st_ind(&mut self, ptr: Cell, value: Cell) {
        let patch = self.cur_addr() + 7;
        self.ld(ptr);
        self.st_abs(patch);
        self.ld(value);
        self.st_abs(0); // operand rewritten at run time
    }

    // ---- finish ----

    /// Resolve everything and emit the memory image, with `extra_zeros`
    /// additional cells appended (host scratch).
    /// Resolve labels, constant pools and cell addresses.
    ///
    /// Panics on a builder-contract violation; use [`Masm::try_finish`]
    /// when the program being assembled derives from untrusted input.
    pub fn finish(self, extra_zeros: usize) -> Image {
        self.try_finish(extra_zeros)
            .unwrap_or_else(|e| panic!("masm: {e}"))
    }

    /// Non-panicking [`Masm::finish`]: the first contract violation —
    /// recorded during building or found at resolution time — comes back
    /// as a [`MasmError`].
    pub fn try_finish(self, extra_zeros: usize) -> Result<Image, MasmError> {
        if let Some(e) = self.err {
            return Err(e);
        }
        if let Some(i) = self.labels.iter().position(|l| l.is_none()) {
            // Only referenced labels matter, but an allocated-and-forgotten
            // label is the same authoring bug one edit earlier.
            return Err(MasmError::UnboundLabel(i));
        }
        let code_words = self.code.len();
        let cell_base = CODE_BASE as usize + code_words;
        let resolve_label =
            |l: &Label| -> u32 { CODE_BASE + self.labels[l.0].expect("checked above") };
        let total_cells = self.cells.len();
        let pinned = self.pinned;
        let cell_addr = move |c: &Cell| -> u32 {
            let idx = match pinned {
                Some((p0, plen)) => {
                    if c.0 >= p0 && c.0 < p0 + plen {
                        total_cells - plen + (c.0 - p0)
                    } else if c.0 < p0 {
                        c.0
                    } else {
                        c.0 - plen
                    }
                }
                None => c.0,
            };
            (cell_base + idx) as u32
        };
        let mut mem = vec![0u32; cell_base + self.cells.len() + extra_zeros];
        mem[PC_ADDR as usize] = CODE_BASE;
        for (i, w) in self.code.iter().enumerate() {
            mem[CODE_BASE as usize + i] = match w {
                Word::Lit(v) => *v,
                Word::CellAddr(c) => cell_addr(c),
            };
        }
        for (i, init) in self.cells.iter().enumerate() {
            let at = cell_addr(&Cell(i)) as usize;
            mem[at] = match init {
                CellInit::Lit(v) => *v,
                CellInit::LabelAddr(l) => resolve_label(l),
                CellInit::LabelDiff(l, fall) => resolve_label(l).wrapping_sub(*fall),
                CellInit::AddrOf(c) => cell_addr(c),
            };
        }
        let symbols = self
            .named
            .iter()
            .map(|(n, c)| (n.clone(), cell_addr(c)))
            .collect::<HashMap<_, _>>();
        Ok(Image {
            mem,
            symbols,
            code_words,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{Engine, EngineKind};

    fn run(image: Image, max_steps: u64) -> Engine {
        let mut e = Engine::new(EngineKind::MatchBased, image.mem);
        e.run(max_steps).unwrap();
        assert!(e.halted());
        e
    }

    fn run_all_engines(image: &Image, max_steps: u64) -> Vec<Vec<u32>> {
        EngineKind::ALL
            .iter()
            .map(|&k| {
                let mut e = Engine::new(k, image.mem.clone());
                e.run(max_steps).unwrap();
                e.mem
            })
            .collect()
    }

    #[test]
    fn try_finish_reports_unbound_label() {
        let mut m = Masm::new();
        let l = m.label();
        m.jmp(l);
        m.halt();
        assert!(matches!(m.try_finish(0), Err(MasmError::UnboundLabel(_))));
    }

    #[test]
    fn try_finish_reports_double_bind() {
        let mut m = Masm::new();
        let l = m.label();
        m.bind(l);
        m.bind(l);
        m.halt();
        assert_eq!(m.try_finish(0).err(), Some(MasmError::LabelBoundTwice(l.0)));
    }

    #[test]
    fn try_finish_reports_array_overflow_and_repin() {
        let mut m = Masm::new();
        let a = m.array(4, &[1, 2, 3, 4]);
        let b = m.array(2, &[0, 0]);
        m.pin_tail_array(a, 4);
        m.pin_tail_array(b, 2);
        m.halt();
        assert_eq!(m.try_finish(0).err(), Some(MasmError::TailArrayRepinned));

        let mut m = Masm::new();
        m.array(1, &[1, 2, 3]);
        m.halt();
        assert_eq!(
            m.try_finish(0).err(),
            Some(MasmError::ArrayInitOverflow { len: 1, init: 3 })
        );
    }

    #[test]
    fn mov_add_sub() {
        let mut m = Masm::new();
        let a = m.cell(100);
        let b = m.cell(42);
        let sum = m.cell(0);
        let diff = m.cell(0);
        m.name("sum", sum);
        m.name("diff", diff);
        m.add(sum, a, b);
        m.sub(diff, a, b);
        m.halt();
        let img = m.finish(0);
        let e = run(img, 1000);
        // cells are after code; find via recomputation: easier to re-finish
        // with names. Rebuild to read symbols:
        let mut m2 = Masm::new();
        let a2 = m2.cell(100);
        let b2 = m2.cell(42);
        let sum2 = m2.cell(0);
        let diff2 = m2.cell(0);
        m2.name("sum", sum2);
        m2.name("diff", diff2);
        m2.add(sum2, a2, b2);
        m2.sub(diff2, a2, b2);
        m2.halt();
        let img2 = m2.finish(0);
        assert_eq!(e.mem[img2.symbols["sum"] as usize], 142);
        assert_eq!(e.mem[img2.symbols["diff"] as usize], 58);
    }

    #[test]
    fn addi_and_wrapping() {
        let mut m = Masm::new();
        let x = m.cell(u32::MAX);
        m.name("x", x);
        m.addi(x, x, 2); // wraps to 1
        m.halt();
        let img = m.finish(0);
        let syms = img.symbols.clone();
        let e = run(img, 1000);
        assert_eq!(e.mem[syms["x"] as usize], 1);
    }

    #[test]
    fn conditional_jumps_both_ways() {
        let mut m = Masm::new();
        let small = m.cell(3);
        let big = m.cell(10);
        let out = m.cell(0);
        m.name("out", out);
        let was_less = m.label();
        let end = m.label();
        m.jlt(small, big, was_less);
        m.movi(out, 111); // must be skipped
        m.jmp(end);
        m.bind(was_less);
        m.movi(out, 222);
        m.bind(end);
        m.halt();
        let img = m.finish(0);
        let syms = img.symbols.clone();
        let e = run(img, 1000);
        assert_eq!(e.mem[syms["out"] as usize], 222);
    }

    #[test]
    fn jge_takes_on_equal() {
        let mut m = Masm::new();
        let a = m.cell(7);
        let b = m.cell(7);
        let out = m.cell(0);
        m.name("out", out);
        let ge = m.label();
        m.jge(a, b, ge);
        m.movi(out, 1);
        m.halt();
        m.bind(ge);
        m.movi(out, 2);
        m.halt();
        let img = m.finish(0);
        let syms = img.symbols.clone();
        let e = run(img, 1000);
        assert_eq!(e.mem[syms["out"] as usize], 2);
    }

    #[test]
    fn loop_sums_numbers() {
        // sum = Σ 1..=50 on all three engines.
        let mut m = Masm::new();
        let i = m.cell(1);
        let limit = m.cell(50);
        let sum = m.cell(0);
        m.name("sum", sum);
        let top = m.here();
        m.add(sum, sum, i);
        m.addi(i, i, 1);
        let done = m.label();
        m.jlt(limit, i, done); // limit < i → done
        m.jmp(top);
        m.bind(done);
        m.halt();
        let img = m.finish(0);
        let syms = img.symbols.clone();
        for mem in run_all_engines(&img, 100_000) {
            assert_eq!(mem[syms["sum"] as usize], 1275);
        }
    }

    #[test]
    fn call_and_ret() {
        let mut m = Masm::new();
        let link = m.cell(0);
        let out = m.cell(0);
        m.name("out", out);
        let sub = m.label();
        m.call(sub, link);
        m.addi(out, out, 100); // after return
        m.halt();
        m.bind(sub);
        m.movi(out, 5);
        m.ret(link);
        let img = m.finish(0);
        let syms = img.symbols.clone();
        let e = run(img, 1000);
        assert_eq!(e.mem[syms["out"] as usize], 105);
    }

    #[test]
    fn indirect_load_and_store() {
        let mut m = Masm::new();
        let table = m.array(4, &[10, 20, 30, 40]);
        let idx = m.cell(2);
        let ptr = m.cell(0);
        let out = m.cell(0);
        let val = m.cell(77);
        m.name("out", out);
        m.name("table", table);
        // ptr = &table + idx; out = *ptr
        let k_table = m.konst_addr_of(table);
        m.add(ptr, k_table, idx);
        m.ld_ind(ptr);
        m.st(out);
        // *ptr(idx 3) = 77
        m.addi(ptr, ptr, 1);
        m.st_ind(ptr, val);
        m.halt();
        let img = m.finish(0);
        let syms = img.symbols.clone();
        let e = run(img, 1000);
        assert_eq!(e.mem[syms["out"] as usize], 30);
        assert_eq!(e.mem[syms["table"] as usize + 3], 77);
    }

    #[test]
    fn bnot_and_band() {
        let mut m = Masm::new();
        let a = m.cell(0x0F0F_0F0F);
        let b = m.cell(0x00FF_00FF);
        let na = m.cell(0);
        let ab = m.cell(0);
        m.name("na", na);
        m.name("ab", ab);
        m.bnot(na, a);
        m.band(ab, a, b);
        m.halt();
        let img = m.finish(0);
        let syms = img.symbols.clone();
        let e = run(img, 1000);
        assert_eq!(e.mem[syms["na"] as usize], 0xF0F0_F0F0);
        assert_eq!(e.mem[syms["ab"] as usize], 0x000F_000F);
    }

    #[test]
    fn all_engines_agree_on_macro_program() {
        let mut m = Masm::new();
        let x = m.cell(1);
        m.name("x", x);
        let top = m.here();
        m.add(x, x, x); // x *= 2
        let k = m.konst(1 << 20);
        let done = m.label();
        m.jge(x, k, done);
        m.jmp(top);
        m.bind(done);
        m.halt();
        let img = m.finish(0);
        let syms = img.symbols.clone();
        let results: Vec<u32> = run_all_engines(&img, 100_000)
            .iter()
            .map(|mem| mem[syms["x"] as usize])
            .collect();
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(results[0], 1 << 20);
    }
}
