//! Three independent VeRisc interpreter implementations.
//!
//! The paper's §4 portability experiment had people of diverse backgrounds
//! implement the VeRisc emulator in JavaScript, Python, C++ and C#, all
//! from the Bootstrap description alone. We reproduce the testable core of
//! that claim with three *structurally different* Rust interpreters that
//! must agree bit-for-bit on every program:
//!
//! * [`EngineKind::MatchBased`] — a direct `match` over the opcode;
//! * [`EngineKind::TableDriven`] — function-pointer dispatch;
//! * [`EngineKind::MicroCoded`] — each instruction lowered to a sequence
//!   of micro-operations interpreted by a second-level loop.
//!
//! All three consume the same memory-image format defined in [`crate::spec`].

use crate::spec::{BORROW_ADDR, HALT_ADDR, OP_AND, OP_LD, OP_SBB, OP_ST, PC_ADDR};

/// Interpreter failures.
#[derive(Debug, PartialEq, Eq)]
pub enum VeriscError {
    /// PC or operand outside memory.
    OutOfBounds { addr: u32 },
    /// Unknown opcode word.
    BadOpcode { at: u32, op: u32 },
    /// Step budget exhausted.
    StepLimit { steps: u64 },
}

impl std::fmt::Display for VeriscError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VeriscError::OutOfBounds { addr } => {
                write!(f, "verisc access out of bounds: {addr:#x}")
            }
            VeriscError::BadOpcode { at, op } => write!(f, "bad verisc opcode {op} at {at:#x}"),
            VeriscError::StepLimit { steps } => write!(f, "verisc step limit after {steps}"),
        }
    }
}

impl std::error::Error for VeriscError {}

/// Which interpreter implementation to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    MatchBased,
    TableDriven,
    MicroCoded,
}

impl EngineKind {
    pub const ALL: [EngineKind; 3] = [
        EngineKind::MatchBased,
        EngineKind::TableDriven,
        EngineKind::MicroCoded,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::MatchBased => "match-based",
            EngineKind::TableDriven => "table-driven",
            EngineKind::MicroCoded => "micro-coded",
        }
    }
}

/// A VeRisc machine: memory image + accumulator.
pub struct Engine {
    kind: EngineKind,
    pub mem: Vec<u32>,
    pub acc: u32,
    steps: u64,
    halted: bool,
}

impl Engine {
    /// Wrap a memory image (`MEM[0]` must already hold the entry PC).
    ///
    /// Any size is accepted — an image too small to even hold the PC and
    /// borrow cells faults with [`VeriscError::OutOfBounds`] on first use
    /// rather than being rejected here, so a truncated archival image is
    /// a structured runtime error, not a panic.
    pub fn new(kind: EngineKind, mem: Vec<u32>) -> Self {
        Self {
            kind,
            mem,
            acc: 0,
            steps: 0,
            halted: false,
        }
    }

    pub fn halted(&self) -> bool {
        self.halted
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Run to halt or `max_steps`; returns executed instruction count.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, VeriscError> {
        let start = self.steps;
        match self.kind {
            EngineKind::MatchBased => self.run_match(max_steps),
            EngineKind::TableDriven => self.run_table(max_steps),
            EngineKind::MicroCoded => self.run_micro(max_steps),
        }?;
        Ok(self.steps - start)
    }

    #[inline]
    fn read(&self, addr: u32) -> Result<u32, VeriscError> {
        self.mem
            .get(addr as usize)
            .copied()
            .ok_or(VeriscError::OutOfBounds { addr })
    }

    #[inline]
    fn write(&mut self, addr: u32, v: u32) -> Result<(), VeriscError> {
        if addr == BORROW_ADDR {
            // The borrow cell stores a saturated mask, never the raw value.
            let mask = if v == 0 { 0 } else { u32::MAX };
            return match self.mem.get_mut(BORROW_ADDR as usize) {
                Some(slot) => {
                    *slot = mask;
                    Ok(())
                }
                None => Err(VeriscError::OutOfBounds { addr }),
            };
        }
        match self.mem.get_mut(addr as usize) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => {
                if addr == HALT_ADDR {
                    // ST to the halt sentinel only happens via PC writes,
                    // which are handled by the fetch loop; a data store
                    // there is a fault.
                }
                Err(VeriscError::OutOfBounds { addr })
            }
        }
    }

    /// One fetch/execute iteration shared by engine 1 and 2 (they differ in
    /// how `exec` dispatches).
    #[inline]
    fn fetch(&mut self) -> Result<Option<(u32, u32)>, VeriscError> {
        let pc = self.read(PC_ADDR)?;
        if pc == HALT_ADDR {
            self.halted = true;
            return Ok(None);
        }
        let op = self.read(pc)?;
        let addr = self.read(pc.wrapping_add(1))?;
        self.mem[PC_ADDR as usize] = pc.wrapping_add(2);
        Ok(Some((op, addr)))
    }

    #[inline]
    fn borrow_bit(&self) -> u32 {
        // A missing borrow cell reads as clear; the paired write faults,
        // so the inconsistency cannot go unnoticed.
        match self.mem.get(BORROW_ADDR as usize) {
            Some(0) | None => 0,
            Some(_) => 1,
        }
    }

    // ---- engine 1: match-based ----
    fn run_match(&mut self, max_steps: u64) -> Result<(), VeriscError> {
        let budget_end = self.steps + max_steps;
        while !self.halted {
            if self.steps >= budget_end {
                return Err(VeriscError::StepLimit { steps: self.steps });
            }
            let Some((op, addr)) = self.fetch()? else {
                break;
            };
            self.steps += 1;
            match op {
                OP_LD => self.acc = self.read(addr)?,
                OP_ST => self.write(addr, self.acc)?,
                OP_SBB => {
                    let m = self.read(addr)?;
                    let b = self.borrow_bit();
                    let rhs = m as u64 + b as u64;
                    let borrow_out = rhs > self.acc as u64;
                    self.acc = (self.acc as u64).wrapping_sub(rhs) as u32;
                    self.write(BORROW_ADDR, if borrow_out { u32::MAX } else { 0 })?;
                }
                OP_AND => self.acc &= self.read(addr)?,
                _ => {
                    return Err(VeriscError::BadOpcode {
                        at: self.mem[PC_ADDR as usize].wrapping_sub(2),
                        op,
                    })
                }
            }
        }
        Ok(())
    }

    // ---- engine 2: table-driven ----
    fn run_table(&mut self, max_steps: u64) -> Result<(), VeriscError> {
        type Handler = fn(&mut Engine, u32) -> Result<(), VeriscError>;
        fn h_ld(e: &mut Engine, a: u32) -> Result<(), VeriscError> {
            e.acc = e.read(a)?;
            Ok(())
        }
        fn h_st(e: &mut Engine, a: u32) -> Result<(), VeriscError> {
            e.write(a, e.acc)
        }
        fn h_sbb(e: &mut Engine, a: u32) -> Result<(), VeriscError> {
            let m = e.read(a)?;
            let rhs = m as u64 + e.borrow_bit() as u64;
            let borrow_out = rhs > e.acc as u64;
            e.acc = (e.acc as u64).wrapping_sub(rhs) as u32;
            e.write(BORROW_ADDR, if borrow_out { u32::MAX } else { 0 })
        }
        fn h_and(e: &mut Engine, a: u32) -> Result<(), VeriscError> {
            e.acc &= e.read(a)?;
            Ok(())
        }
        const TABLE: [Handler; 4] = [h_ld, h_st, h_sbb, h_and];
        let budget_end = self.steps + max_steps;
        while !self.halted {
            if self.steps >= budget_end {
                return Err(VeriscError::StepLimit { steps: self.steps });
            }
            let Some((op, addr)) = self.fetch()? else {
                break;
            };
            self.steps += 1;
            let handler = TABLE.get(op as usize).ok_or(VeriscError::BadOpcode {
                at: self.mem[PC_ADDR as usize].wrapping_sub(2),
                op,
            })?;
            handler(self, addr)?;
        }
        Ok(())
    }

    // ---- engine 3: micro-coded ----
    fn run_micro(&mut self, max_steps: u64) -> Result<(), VeriscError> {
        /// Micro-operations of the third implementation. The instruction
        /// set is re-expressed as tiny dataflow programs over two latches.
        #[derive(Clone, Copy)]
        enum Uop {
            /// latch_a ← MEM[addr]
            LoadA,
            /// latch_a ← ACC
            ReadAcc,
            /// ACC ← latch_a
            WriteAcc,
            /// MEM[addr] ← latch_a
            Store,
            /// latch_a ← ACC − latch_a − borrow; update borrow
            SubBorrow,
            /// latch_a ← ACC & latch_a
            BitAnd,
        }
        const U_LD: &[Uop] = &[Uop::LoadA, Uop::WriteAcc];
        const U_ST: &[Uop] = &[Uop::ReadAcc, Uop::Store];
        const U_SBB: &[Uop] = &[Uop::LoadA, Uop::SubBorrow, Uop::WriteAcc];
        const U_AND: &[Uop] = &[Uop::LoadA, Uop::BitAnd, Uop::WriteAcc];
        let budget_end = self.steps + max_steps;
        while !self.halted {
            if self.steps >= budget_end {
                return Err(VeriscError::StepLimit { steps: self.steps });
            }
            let Some((op, addr)) = self.fetch()? else {
                break;
            };
            self.steps += 1;
            let prog: &[Uop] = match op {
                OP_LD => U_LD,
                OP_ST => U_ST,
                OP_SBB => U_SBB,
                OP_AND => U_AND,
                _ => {
                    return Err(VeriscError::BadOpcode {
                        at: self.mem[PC_ADDR as usize].wrapping_sub(2),
                        op,
                    })
                }
            };
            let mut latch: u32 = 0;
            for u in prog {
                match u {
                    Uop::LoadA => latch = self.read(addr)?,
                    Uop::ReadAcc => latch = self.acc,
                    Uop::WriteAcc => self.acc = latch,
                    Uop::Store => self.write(addr, latch)?,
                    Uop::SubBorrow => {
                        let rhs = latch as u64 + self.borrow_bit() as u64;
                        let borrow_out = rhs > self.acc as u64;
                        latch = (self.acc as u64).wrapping_sub(rhs) as u32;
                        self.write(BORROW_ADDR, if borrow_out { u32::MAX } else { 0 })?;
                    }
                    Uop::BitAnd => latch &= self.acc,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CODE_BASE;

    /// Build a raw image: code words at CODE_BASE, PC pointing there.
    fn image(code: &[u32], extra_cells: usize) -> Vec<u32> {
        let mut mem = vec![0u32; 2 + code.len() + extra_cells];
        mem[0] = CODE_BASE;
        mem[2..2 + code.len()].copy_from_slice(code);
        mem
    }

    /// `HALT` = LD from a cell holding 0xFFFFFFFF, ST to PC.
    fn halt_via(cell: u32) -> Vec<u32> {
        vec![OP_LD, cell, OP_ST, PC_ADDR]
    }

    #[test]
    fn undersized_images_fault_identically_on_all_engines() {
        // Hostile-input hardening: a truncated archival image must come
        // back as OutOfBounds from every engine, never a construction
        // panic or an unchecked borrow-cell write.
        for mem in [vec![], vec![5], vec![2, 7]] {
            let mut results = Vec::new();
            for kind in EngineKind::ALL {
                let mut e = Engine::new(kind, mem.clone());
                let res = e.run(100);
                assert!(
                    matches!(res, Err(VeriscError::OutOfBounds { .. })),
                    "{kind:?} on {mem:?}: {res:?}"
                );
                results.push((res, e.acc, e.mem.clone()));
            }
            assert!(results.windows(2).all(|w| w[0] == w[1]), "mem {mem:?}");
        }
    }

    #[test]
    fn ld_st_roundtrip_on_all_engines() {
        // code = 4 instrs (8 words at 2..10); cells from 10.
        let src = 10;
        let halt_cell = 11;
        let dst = 12;
        let mut code = vec![OP_LD, src, OP_ST, dst];
        code.extend(halt_via(halt_cell));
        for kind in EngineKind::ALL {
            let mut mem = image(&code, 3);
            mem[src as usize] = 1234;
            mem[halt_cell as usize] = HALT_ADDR;
            let mut e = Engine::new(kind, mem);
            e.run(100).unwrap();
            assert!(e.halted(), "{kind:?}");
            assert_eq!(e.mem[dst as usize], 1234, "{kind:?}");
        }
    }

    #[test]
    fn sbb_computes_subtraction_and_borrow() {
        // R = m[a]; R -= m[b]; store to diff; store borrow mask to out.
        // layout: code(7 instrs = 14 words) then cells at 16..
        let a = 16;
        let b = 17;
        let diff = 18;
        let borrow_out = 19;
        let halt_cell = 20;
        let code = vec![
            OP_LD,
            a,
            OP_SBB,
            b,
            OP_ST,
            diff,
            OP_LD,
            BORROW_ADDR,
            OP_ST,
            borrow_out,
            OP_LD,
            halt_cell,
            OP_ST,
            PC_ADDR,
        ];
        for kind in EngineKind::ALL {
            let mut mem = image(&code, 5);
            mem[a as usize] = 10;
            mem[b as usize] = 3;
            mem[halt_cell as usize] = HALT_ADDR;
            let mut e = Engine::new(kind, mem);
            e.run(100).unwrap();
            assert_eq!(e.mem[diff as usize], 7, "{kind:?}");
            assert_eq!(e.mem[borrow_out as usize], 0, "{kind:?}");

            // Now 3 - 10: borrow set, wrap-around result.
            let mut mem = image(&code, 5);
            mem[a as usize] = 3;
            mem[b as usize] = 10;
            mem[halt_cell as usize] = HALT_ADDR;
            let mut e = Engine::new(kind, mem);
            e.run(100).unwrap();
            assert_eq!(e.mem[diff as usize], 3u32.wrapping_sub(10), "{kind:?}");
            assert_eq!(e.mem[borrow_out as usize], u32::MAX, "{kind:?}");
        }
    }

    #[test]
    fn sbb_consumes_borrow_in() {
        // With borrow pre-set: 10 - 3 - 1 = 6.
        let a = 12;
        let b = 13;
        let diff = 14;
        let halt_cell = 15;
        let code = vec![
            OP_LD, a, OP_SBB, b, OP_ST, diff, OP_LD, halt_cell, OP_ST, PC_ADDR,
        ];
        for kind in EngineKind::ALL {
            let mut mem = image(&code, 4);
            mem[1] = u32::MAX; // borrow set
            mem[a as usize] = 10;
            mem[b as usize] = 3;
            mem[halt_cell as usize] = HALT_ADDR;
            let mut e = Engine::new(kind, mem);
            e.run(100).unwrap();
            assert_eq!(e.mem[diff as usize], 6, "{kind:?}");
        }
    }

    #[test]
    fn and_masks_bits() {
        let a = 12;
        let b = 13;
        let out = 14;
        let halt_cell = 15;
        let code = vec![
            OP_LD, a, OP_AND, b, OP_ST, out, OP_LD, halt_cell, OP_ST, PC_ADDR,
        ];
        for kind in EngineKind::ALL {
            let mut mem = image(&code, 4);
            mem[a as usize] = 0xFF00FF00;
            mem[b as usize] = 0x0FF00FF0;
            mem[halt_cell as usize] = HALT_ADDR;
            let mut e = Engine::new(kind, mem);
            e.run(100).unwrap();
            assert_eq!(e.mem[out as usize], 0x0F000F00, "{kind:?}");
        }
    }

    #[test]
    fn store_to_borrow_normalises_to_mask() {
        let v = 10;
        let halt_cell = 11;
        let code = vec![
            OP_LD,
            v,
            OP_ST,
            BORROW_ADDR,
            OP_LD,
            halt_cell,
            OP_ST,
            PC_ADDR,
        ];
        for kind in EngineKind::ALL {
            let mut mem = image(&code, 2);
            mem[v as usize] = 7; // any non-zero
            mem[halt_cell as usize] = HALT_ADDR;
            let mut e = Engine::new(kind, mem);
            e.run(100).unwrap();
            assert_eq!(e.mem[1], u32::MAX, "{kind:?}");
        }
    }

    #[test]
    fn jump_via_store_to_pc() {
        // Jump over an instruction that would store 99.
        // code: LD k_target; ST 0; LD k99; ST out; (target:) LD halt; ST 0
        let k_target = 14;
        let k99 = 15;
        let out = 16;
        let halt_cell = 17;
        let code = vec![
            OP_LD, k_target, OP_ST, PC_ADDR, // jump
            OP_LD, k99, OP_ST, out, // skipped
            OP_LD, halt_cell, OP_ST, PC_ADDR,
        ];
        for kind in EngineKind::ALL {
            let mut mem = image(&code, 4);
            mem[k_target as usize] = CODE_BASE + 8; // skip two instructions
            mem[k99 as usize] = 99;
            mem[halt_cell as usize] = HALT_ADDR;
            let mut e = Engine::new(kind, mem);
            e.run(100).unwrap();
            assert_eq!(e.mem[out as usize], 0, "{kind:?}: jump did not skip");
        }
    }

    #[test]
    fn self_modifying_code_indirection() {
        // Patch the operand of a later LD: the canonical VeRisc idiom.
        let ptr = 14;
        let out = 15;
        let halt_cell = 16;
        let secret = 17;
        // code: LD ptr; ST (addr of LD operand below); LD <patched>; ST out; halt
        let patched_operand_addr = CODE_BASE + 5; // word index of the 3rd instr's ADDR
        let code = vec![
            OP_LD,
            ptr,
            OP_ST,
            patched_operand_addr,
            OP_LD,
            0xDEAD,
            OP_ST,
            out,
            OP_LD,
            halt_cell,
            OP_ST,
            PC_ADDR,
        ];
        for kind in EngineKind::ALL {
            let mut mem = image(&code, 4);
            mem[ptr as usize] = secret;
            mem[secret as usize] = 0x5EC2E7;
            mem[halt_cell as usize] = HALT_ADDR;
            let mut e = Engine::new(kind, mem);
            e.run(100).unwrap();
            assert_eq!(e.mem[out as usize], 0x5EC2E7, "{kind:?}");
        }
    }

    #[test]
    fn engines_agree_on_a_busy_program() {
        // A loop that sums 1..=100 via SBB-based addition, then halts.
        // acc_cell += i by computing acc - (0 - i).
        // This exercises borrow propagation heavily.
        let zero = 80;
        let one = 81;
        let i_cell = 82;
        let limit = 83;
        let acc = 84;
        let neg = 85;
        let halt_cell = 86;
        let loop_start = CODE_BASE;
        #[rustfmt::skip]
        let code = vec![
            // loop: neg = 0 - i   (clear borrow first: ST borrow with R=0)
            OP_LD, zero, OP_ST, BORROW_ADDR,
            OP_LD, zero, OP_SBB, i_cell, OP_ST, neg,
            // acc = acc - neg  (clear borrow)
            OP_LD, zero, OP_ST, BORROW_ADDR,
            OP_LD, acc, OP_SBB, neg, OP_ST, acc,
            // i += 1: neg = 0-1 … same trick
            OP_LD, zero, OP_ST, BORROW_ADDR,
            OP_LD, zero, OP_SBB, one, OP_ST, neg,
            OP_LD, zero, OP_ST, BORROW_ADDR,
            OP_LD, i_cell, OP_SBB, neg, OP_ST, i_cell,
            // if i <= limit continue: borrow = (limit < i)? compute limit - i
            OP_LD, zero, OP_ST, BORROW_ADDR,
            OP_LD, limit, OP_SBB, i_cell,
            // jump target = loop if no borrow else halt:
            // t = (halt - loop) & borrow_mask; target = loop + t
            OP_LD, BORROW_ADDR, OP_AND, /*diff*/ 87, OP_ST, /*tmp*/ 88,
            OP_LD, zero, OP_ST, BORROW_ADDR,
            OP_LD, zero, OP_SBB, 88, OP_ST, 88, // tmp = -t
            OP_LD, zero, OP_ST, BORROW_ADDR,
            OP_LD, /*k_loop*/ 89, OP_SBB, 88, OP_ST, PC_ADDR,
        ];
        let mut results = Vec::new();
        for kind in EngineKind::ALL {
            let mut mem = image(&code, 20);
            mem[one as usize] = 1;
            mem[i_cell as usize] = 1;
            mem[limit as usize] = 100;
            mem[halt_cell as usize] = HALT_ADDR;
            mem[87] = HALT_ADDR.wrapping_sub(loop_start); // diff = halt - loop
            mem[89] = loop_start;
            let mut e = Engine::new(kind, mem);
            e.run(100_000).unwrap();
            results.push((kind, e.mem[acc as usize], e.steps()));
        }
        for w in results.windows(2) {
            assert_eq!(w[0].1, w[1].1, "{:?} vs {:?}", w[0].0, w[1].0);
            assert_eq!(w[0].2, w[1].2, "step counts differ");
        }
        assert_eq!(results[0].1, 5050);
    }

    #[test]
    fn step_limit_enforced() {
        // Tight infinite loop: jump to self.
        let k = 6;
        let code = vec![OP_LD, k, OP_ST, PC_ADDR];
        for kind in EngineKind::ALL {
            let mut mem = image(&code, 1);
            mem[k as usize] = CODE_BASE;
            let mut e = Engine::new(kind, mem);
            assert!(
                matches!(e.run(1000), Err(VeriscError::StepLimit { .. })),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        let code = vec![9, 0];
        for kind in EngineKind::ALL {
            let mut e = Engine::new(kind, image(&code, 0));
            assert!(
                matches!(e.run(10), Err(VeriscError::BadOpcode { op: 9, .. })),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn out_of_bounds_rejected() {
        let code = vec![OP_LD, 999_999];
        for kind in EngineKind::ALL {
            let mut e = Engine::new(kind, image(&code, 0));
            assert!(
                matches!(e.run(10), Err(VeriscError::OutOfBounds { addr: 999_999 })),
                "{kind:?}"
            );
        }
    }
}
