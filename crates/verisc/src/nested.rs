//! Olonys nested emulation: a **DynaRisc emulator written in VeRisc**.
//!
//! This is the paper's §3.2 novelty: "Instead of emulating just DynaRisc,
//! Olonys internally emulates two ISAs … Using just these four VeRisc
//! instructions, we have built an emulator that can interpret the broader
//! DynaRisc ISA." A future user implements only the four-instruction
//! VeRisc machine; the program below (generated once by our
//! macro-assembler and archived as letters in the Bootstrap) turns that
//! machine into a full DynaRisc processor, which then runs the archived
//! MODecode/DBDecode instruction streams.
//!
//! Memory map of the generated VeRisc image:
//!
//! ```text
//! [0]  PC     [1] BORROW
//! [2…] emulator code (≈ a few thousand words of LD/ST/SBB/AND pairs)
//! […]  emulator state cells: R0..R15, D0..D7, C/Z/N, call stack, …
//! […]  PROG  — the guest DynaRisc program, one 16-bit word per cell
//! […]  DYNMEM — the guest data memory, one byte per cell
//! ```
//!
//! Guest semantics replicate `ule_dynarisc::vm::Vm` exactly; the
//! equivalence is enforced by differential tests (same binary, same
//! inputs, byte-identical outputs and step-for-step register state).

use crate::masm::{Cell, Image, Label, Masm};
use crate::vm::{Engine, EngineKind, VeriscError};
use std::collections::HashMap;

/// Depth of the guest call stack (mirrors the native VM).
const GUEST_STACK: usize = 256;

/// A ready-to-run nested emulator instance.
pub struct NestedEmulator {
    image: Vec<u32>,
    symbols: HashMap<String, u32>,
    code_words: usize,
    dyn_mem_len: usize,
}

#[allow(dead_code)] // the array-handle fields document the image layout
struct Gen {
    m: Masm,
    // decode outputs
    w: Cell,
    opcode: Cell,
    fa: Cell,
    fb: Cell,
    mode: Cell,
    // guest state
    dpc: Cell,
    cflag: Cell,
    zflag: Cell,
    nflag: Cell,
    sp: Cell,
    regs: Cell,
    ptrs: Cell,
    stack: Cell,
    prog: Cell,
    dynmem: Cell,
    // address-of constants
    k_regs: Cell,
    k_ptrs: Cell,
    k_stack: Cell,
    k_prog: Cell,
    k_dynmem: Cell,
    // operand scratch
    imm: Cell,
    va: Cell,
    vb: Cell,
    res: Cell,
    t1: Cell,
    t2: Cell,
    t3: Cell,
    ptr_t: Cell,
    // subroutine plumbing
    lk_fetch: Cell,
    fetched: Cell,
    lk_extract: Cell,
    lk_div2: Cell,
    dv: Cell,
    bit_out: Cell,
    lk_mul: Cell,
    ma: Cell,
    mb: Cell,
    phi: Cell,
    plo: Cell,
    lk_shr8: Cell,
    gsteps: Cell,
    /// Private scratch for the shared subroutines (extract/div2/shr8/mul)
    /// — deliberately distinct from `t1`, which handlers may hold live
    /// across subroutine calls (e.g. STM keeps the guest address in t1
    /// while calling shr8 for the high byte).
    st1: Cell,
    jt: Option<Cell>,
    handler_labels: Option<Vec<Label>>,
    sub_fetch: Label,
    sub_extract: Label,
    sub_div2: Label,
    sub_mul: Label,
    sub_shr8: Label,
    main_loop: Label,
}

impl Gen {
    fn new_with_capacity(dyn_program: &[u16], prog_capacity: usize, dyn_mem: &[u8]) -> Self {
        let mut m = Masm::new();
        let w = m.cell(0);
        let opcode = m.cell(0);
        let fa = m.cell(0);
        let fb = m.cell(0);
        let mode = m.cell(0);
        let dpc = m.cell(0);
        let cflag = m.cell(0);
        let zflag = m.cell(0);
        let nflag = m.cell(0);
        let sp = m.cell(0);
        let imm = m.cell(0);
        let va = m.cell(0);
        let vb = m.cell(0);
        let res = m.cell(0);
        let t1 = m.cell(0);
        let t2 = m.cell(0);
        let t3 = m.cell(0);
        let ptr_t = m.cell(0);
        let fetched = m.cell(0);
        let dv = m.cell(0);
        let bit_out = m.cell(0);
        let ma = m.cell(0);
        let mb = m.cell(0);
        let phi = m.cell(0);
        let plo = m.cell(0);
        let lk_fetch = m.cell(0);
        let lk_extract = m.cell(0);
        let lk_div2 = m.cell(0);
        let lk_mul = m.cell(0);
        let lk_shr8 = m.cell(0);
        let regs = m.array(16, &[]);
        let ptrs = m.array(8, &[]);
        let stack = m.array(GUEST_STACK, &[]);
        let prog_words: Vec<u32> = dyn_program.iter().map(|&x| x as u32).collect();
        let cap = prog_capacity.max(prog_words.len()).max(1);
        let prog = m.array(cap, &prog_words);
        let mem_words: Vec<u32> = dyn_mem.iter().map(|&x| x as u32).collect();
        let dynmem = m.array(mem_words.len().max(1), &mem_words);
        m.pin_tail_array(dynmem, mem_words.len().max(1));
        let k_regs = m.konst_addr_of(regs);
        let k_ptrs = m.konst_addr_of(ptrs);
        let k_stack = m.konst_addr_of(stack);
        let k_prog = m.konst_addr_of(prog);
        let k_dynmem = m.konst_addr_of(dynmem);
        m.name("DPC", dpc);
        m.name("REGS", regs);
        m.name("PTRS", ptrs);
        m.name("DYNMEM", dynmem);
        m.name("CFLAG", cflag);
        m.name("ZFLAG", zflag);
        m.name("NFLAG", nflag);
        m.name("SP", sp);
        m.name("PROG", prog);
        m.name("STACK", stack);
        m.name("W", w);
        m.name("OPCODE", opcode);
        m.name("FA", fa);
        m.name("FB", fb);
        m.name("MODE", mode);
        let gsteps = m.cell(0);
        m.name("GSTEPS", gsteps);
        let st1 = m.cell(0);
        let sub_fetch = m.label();
        let sub_extract = m.label();
        let sub_div2 = m.label();
        let sub_mul = m.label();
        let sub_shr8 = m.label();
        let main_loop = m.label();
        Self {
            m,
            gsteps,
            st1,
            jt: None,
            handler_labels: None,
            w,
            opcode,
            fa,
            fb,
            mode,
            dpc,
            cflag,
            zflag,
            nflag,
            sp,
            regs,
            ptrs,
            stack,
            prog,
            dynmem,
            k_regs,
            k_ptrs,
            k_stack,
            k_prog,
            k_dynmem,
            imm,
            va,
            vb,
            res,
            t1,
            t2,
            t3,
            ptr_t,
            lk_fetch,
            fetched,
            lk_extract,
            lk_div2,
            dv,
            bit_out,
            lk_mul,
            ma,
            mb,
            phi,
            plo,
            lk_shr8,
            sub_fetch,
            sub_extract,
            sub_div2,
            sub_mul,
            sub_shr8,
            main_loop,
        }
    }

    // ---- inline helpers ----

    /// `dst ← REGS[idx]`.
    fn getreg(&mut self, dst: Cell, idx: Cell) {
        self.m.add(self.ptr_t, self.k_regs, idx);
        self.m.ld_ind(self.ptr_t);
        self.m.st(dst);
    }

    /// `REGS[idx] ← src`.
    fn setreg(&mut self, idx: Cell, src: Cell) {
        self.m.add(self.ptr_t, self.k_regs, idx);
        self.m.st_ind(self.ptr_t, src);
    }

    /// `dst ← PTRS[idx & 7]`.
    fn getptr(&mut self, dst: Cell, idx: Cell) {
        let k7 = self.m.konst(7);
        self.m.band(self.t3, idx, k7);
        self.m.add(self.ptr_t, self.k_ptrs, self.t3);
        self.m.ld_ind(self.ptr_t);
        self.m.st(dst);
    }

    /// `PTRS[idx & 7] ← src`.
    fn setptr(&mut self, idx: Cell, src: Cell) {
        let k7 = self.m.konst(7);
        self.m.band(self.t3, idx, k7);
        self.m.add(self.ptr_t, self.k_ptrs, self.t3);
        self.m.st_ind(self.ptr_t, src);
    }

    /// Set Z/N flags from a 16-bit value cell.
    fn set_zn(&mut self, v: Cell) {
        self.m.movi(self.zflag, 0);
        self.m.movi(self.nflag, 0);
        let not_zero = self.m.label();
        self.m.jnz_cell(v, not_zero);
        self.m.movi(self.zflag, 1);
        self.m.bind(not_zero);
        let k = self.m.konst(0x8000);
        let no_n = self.m.label();
        self.m.jlt(v, k, no_n);
        self.m.movi(self.nflag, 1);
        self.m.bind(no_n);
    }

    /// `fetched ← PROG[dpc]; dpc += 1` (call site).
    fn fetch(&mut self) {
        self.m.call(self.sub_fetch, self.lk_fetch);
    }

    /// 16-bit add with carry-in cell: `res ← (va + vb + cin) mod 2^16`,
    /// `cflag ← carry out`.
    fn add16(&mut self, cin: Cell) {
        self.m.add(self.res, self.va, self.vb);
        self.m.add(self.res, self.res, cin);
        let k = self.m.konst(0x10000);
        self.m.movi(self.cflag, 0);
        let no_carry = self.m.label();
        self.m.jlt(self.res, k, no_carry);
        self.m.movi(self.cflag, 1);
        let km = self.m.konst(0xFFFF);
        self.m.band(self.res, self.res, km);
        self.m.bind(no_carry);
    }

    /// 16-bit subtract with borrow-in cell: `res ← (va − vb − bin) mod 2^16`,
    /// `cflag ← borrow out`.
    fn sub16(&mut self, bin: Cell) {
        self.m.add(self.t1, self.vb, bin);
        // res = va - t1 (host borrow tells us the guest borrow)
        self.m.clc();
        self.m.ld(self.va);
        self.m.sbb(self.t1);
        self.m.st(self.res);
        // cflag = borrow mask & 1
        self.m.ld_abs(1);
        let k1 = self.m.konst(1);
        self.m.and_(k1);
        self.m.st(self.cflag);
        let km = self.m.konst(0xFFFF);
        self.m.band(self.res, self.res, km);
    }

    /// Load the ALU right-hand side per mode (M2 → immediate, else R[fb])
    /// into `vb`.
    fn load_alu_rhs(&mut self) {
        let k2 = self.m.konst(2);
        let use_imm = self.m.label();
        let done = self.m.label();
        self.m.jeq(self.mode, k2, use_imm);
        let fb = self.fb;
        self.getreg(self.vb, fb);
        self.m.jmp(done);
        self.m.bind(use_imm);
        self.fetch();
        self.m.mov(self.vb, self.fetched);
        self.m.bind(done);
    }

    /// Shared tail for R-register ALU writers: Z/N, write-back, next.
    fn alu_finish(&mut self, write_back: bool) {
        self.set_zn(self.res);
        if write_back {
            let fa = self.fa;
            self.setreg(fa, self.res);
        }
        self.m.jmp(self.main_loop);
    }

    /// Pointer-form ADD/SUB (modes 1 and 3). `sub` selects subtraction.
    /// Expects to be placed at a label the main handler jumps to.
    fn ptr_arith(&mut self, is_sub: bool) {
        // rhs: mode 1 → R[fb]; mode 3 → imm
        let k1 = self.m.konst(1);
        let use_reg = self.m.label();
        let have_rhs = self.m.label();
        self.m.jeq(self.mode, k1, use_reg);
        self.fetch();
        self.m.mov(self.vb, self.fetched);
        self.m.jmp(have_rhs);
        self.m.bind(use_reg);
        let fb = self.fb;
        self.getreg(self.vb, fb);
        self.m.bind(have_rhs);
        let fa = self.fa;
        self.getptr(self.va, fa);
        if is_sub {
            self.m.sub(self.res, self.va, self.vb); // 32-bit wrapping, flags untouched
        } else {
            self.m.add(self.res, self.va, self.vb);
        }
        self.setptr(fa, self.res);
        self.m.jmp(self.main_loop);
    }

    /// `va >>= 1` via the DIV2 subroutine; `bit_out` gets the old low bit.
    fn div2_va(&mut self) {
        self.m.mov(self.dv, self.va);
        self.m.call(self.sub_div2, self.lk_div2);
        self.m.mov(self.va, self.dv);
    }

    // ---- the generator body ----

    fn generate(mut self) -> Image {
        let g = &mut self;
        g.emit_main();
        g.emit_handlers();
        g.emit_subroutines();
        self.m.finish(8)
    }

    fn emit_main(&mut self) {
        let main = self.main_loop;
        self.m.bind(main);
        let gs = self.gsteps;
        self.m.addi(gs, gs, 1);
        self.fetch();
        self.m.mov(self.w, self.fetched);
        self.m.call(self.sub_extract, self.lk_extract);
        // dispatch: JT[opcode]
        let jt = self.jump_table_placeholder();
        let k_jt = self.m.konst_addr_of(jt);
        self.m.add(self.ptr_t, k_jt, self.opcode);
        self.m.ld_ind(self.ptr_t);
        self.m.st_abs(0);
    }

    /// Allocate the 23-entry dispatch table; handler labels are bound later
    /// and patched through `CellInit::LabelAddr` cells.
    fn jump_table_placeholder(&mut self) -> Cell {
        // created in emit_handlers() — placeholder populated there via
        // label-addr cells allocated contiguously.
        if let Some(c) = self.jt {
            return c;
        }
        let labels: Vec<Label> = (0..23).map(|_| self.m.label()).collect();
        let first = self.m.konst_label(labels[0]);
        for &l in &labels[1..] {
            self.m.konst_label(l);
        }
        self.handler_labels = Some(labels);
        self.jt = Some(first);
        first
    }

    fn emit_handlers(&mut self) {
        let labels = self.handler_labels.clone().expect("jump table allocated");
        // 0 ADD, 1 ADC
        for (code, with_carry) in [(0usize, false), (1usize, true)] {
            self.m.bind(labels[code]);
            if !with_carry {
                // pointer modes first
                let k1 = self.m.konst(1);
                let k3 = self.m.konst(3);
                let ptr_path = self.m.label();
                let reg_path = self.m.label();
                self.m.jeq(self.mode, k1, ptr_path);
                self.m.jeq(self.mode, k3, ptr_path);
                self.m.jmp(reg_path);
                self.m.bind(ptr_path);
                self.ptr_arith(false);
                self.m.bind(reg_path);
            }
            self.load_alu_rhs();
            let fa = self.fa;
            self.getreg(self.va, fa);
            let cin = if with_carry {
                self.cflag
            } else {
                let z = self.m.cell(0);
                self.m.movi(z, 0);
                z
            };
            self.add16(cin);
            self.alu_finish(true);
        }
        // 2 SUB, 3 SBB, 4 CMP
        for (code, with_borrow, write_back) in [
            (2usize, false, true),
            (3usize, true, true),
            (4usize, false, false),
        ] {
            self.m.bind(labels[code]);
            if code == 2 {
                let k1 = self.m.konst(1);
                let k3 = self.m.konst(3);
                let ptr_path = self.m.label();
                let reg_path = self.m.label();
                self.m.jeq(self.mode, k1, ptr_path);
                self.m.jeq(self.mode, k3, ptr_path);
                self.m.jmp(reg_path);
                self.m.bind(ptr_path);
                self.ptr_arith(true);
                self.m.bind(reg_path);
            }
            self.load_alu_rhs();
            let fa = self.fa;
            self.getreg(self.va, fa);
            let bin = if with_borrow {
                self.cflag
            } else {
                let z = self.m.cell(0);
                self.m.movi(z, 0);
                z
            };
            self.sub16(bin);
            self.alu_finish(write_back);
        }
        // 5 MUL
        {
            self.m.bind(labels[5]);
            let fa = self.fa;
            let fb = self.fb;
            self.getreg(self.ma, fa);
            self.getreg(self.mb, fb);
            self.m.call(self.sub_mul, self.lk_mul);
            // mode 1 → high half, else low half
            let k1 = self.m.konst(1);
            let hi_path = self.m.label();
            let done = self.m.label();
            self.m.jeq(self.mode, k1, hi_path);
            self.m.mov(self.res, self.plo);
            self.m.jmp(done);
            self.m.bind(hi_path);
            self.m.mov(self.res, self.phi);
            self.m.bind(done);
            self.alu_finish(true);
        }
        // 6 AND, 7 OR, 8 XOR
        for code in [6usize, 7, 8] {
            self.m.bind(labels[code]);
            self.load_alu_rhs();
            let fa = self.fa;
            self.getreg(self.va, fa);
            match code {
                6 => self.m.band(self.res, self.va, self.vb),
                7 => {
                    // OR = NOT(AND(NOT a, NOT b))
                    self.m.bnot(self.t1, self.va);
                    self.m.bnot(self.t2, self.vb);
                    self.m.band(self.t1, self.t1, self.t2);
                    self.m.bnot(self.res, self.t1);
                }
                _ => {
                    // XOR = OR − AND (no carries interact bitwise)
                    self.m.bnot(self.t1, self.va);
                    self.m.bnot(self.t2, self.vb);
                    self.m.band(self.t1, self.t1, self.t2);
                    self.m.bnot(self.t1, self.t1); // OR
                    self.m.band(self.t2, self.va, self.vb); // AND
                    self.m.sub(self.res, self.t1, self.t2);
                }
            }
            self.alu_finish(true);
        }
        // 9 LSL, 10 LSR, 11 ASR, 12 ROR
        for code in [9usize, 10, 11, 12] {
            self.m.bind(labels[code]);
            // count: mode 1 → fb literal; else R[fb] & 15
            let k1 = self.m.konst(1);
            let k15 = self.m.konst(15);
            let count = self.m.cell(0);
            let lit = self.m.label();
            let have = self.m.label();
            self.m.jeq(self.mode, k1, lit);
            let fb = self.fb;
            self.getreg(self.t1, fb);
            self.m.band(count, self.t1, k15);
            self.m.jmp(have);
            self.m.bind(lit);
            self.m.mov(count, self.fb);
            self.m.bind(have);
            let fa = self.fa;
            self.getreg(self.va, fa);
            // ASR precomputes the sign fill.
            let sign = self.m.cell(0);
            if code == 11 {
                self.m.movi(sign, 0);
                let k8000 = self.m.konst(0x8000);
                let no_sign = self.m.label();
                self.m.jlt(self.va, k8000, no_sign);
                self.m.movi(sign, 1);
                self.m.bind(no_sign);
            }
            let loop_top = self.m.label();
            let loop_end = self.m.label();
            self.m.bind(loop_top);
            self.m.jz_cell(count, loop_end);
            match code {
                9 => {
                    // LSL: va += va; cflag = bit16 out
                    self.m.add(self.va, self.va, self.va);
                    let k = self.m.konst(0x10000);
                    let km = self.m.konst(0xFFFF);
                    let nc = self.m.label();
                    self.m.movi(self.cflag, 0);
                    self.m.jlt(self.va, k, nc);
                    self.m.movi(self.cflag, 1);
                    self.m.band(self.va, self.va, km);
                    self.m.bind(nc);
                }
                10 => {
                    self.div2_va();
                    self.m.mov(self.cflag, self.bit_out);
                }
                11 => {
                    self.div2_va();
                    self.m.mov(self.cflag, self.bit_out);
                    let no_fill = self.m.label();
                    self.m.jz_cell(sign, no_fill);
                    self.m.addi(self.va, self.va, 0x8000);
                    self.m.bind(no_fill);
                }
                _ => {
                    // ROR: wrap the low bit to bit 15; C untouched.
                    self.div2_va();
                    let no_wrap = self.m.label();
                    self.m.jz_cell(self.bit_out, no_wrap);
                    self.m.addi(self.va, self.va, 0x8000);
                    self.m.bind(no_wrap);
                }
            }
            self.m.subi(count, count, 1);
            self.m.jmp(loop_top);
            self.m.bind(loop_end);
            self.m.mov(self.res, self.va);
            self.alu_finish(true);
        }
        // 13 MOVE
        {
            self.m.bind(labels[13]);
            let fa = self.fa;
            let fb = self.fb;
            let ks: Vec<Cell> = (0..6).map(|v| self.m.konst(v)).collect();
            let cases: Vec<Label> = (0..6).map(|_| self.m.label()).collect();
            for (v, &case) in cases.iter().enumerate() {
                self.m.jeq(self.mode, ks[v], case);
            }
            self.m.jmp(cases[5]); // modes 6/7 behave like mode 5 (native `_` arm)
                                  // m0: Ra ← Rb
            self.m.bind(cases[0]);
            self.getreg(self.va, fb);
            self.setreg(fa, self.va);
            self.m.jmp(self.main_loop);
            // m1: Da ← Rb (zero-extended)
            self.m.bind(cases[1]);
            self.getreg(self.va, fb);
            self.setptr(fa, self.va);
            self.m.jmp(self.main_loop);
            // m2: Ra ← Db & 0xFFFF
            self.m.bind(cases[2]);
            self.getptr(self.va, fb);
            let km = self.m.konst(0xFFFF);
            self.m.band(self.va, self.va, km);
            self.setreg(fa, self.va);
            self.m.jmp(self.main_loop);
            // m3: Da ← Db
            self.m.bind(cases[3]);
            self.getptr(self.va, fb);
            self.setptr(fa, self.va);
            self.m.jmp(self.main_loop);
            // m4: Ra ← Db >> 16
            self.m.bind(cases[4]);
            self.getptr(self.va, fb);
            // shift right 16 by doubling a mirror from the top: compute
            // hi = (v - (v & 0xFFFF)) / 65536 via 16 halvings of a 32-bit
            // value. DIV2 is 16-bit only, so subtract the low half first
            // and halve by adding into a scaled accumulator instead:
            // iterate 16 × DIV2_32 — implemented inline with borrow trick:
            // v/2 = (v - (v&1)) with each bit shift … simplest correct
            // approach: 16 rounds of "halve a 32-bit value" using the
            // identity below.
            {
                // halve 32-bit value: for k in 31..=1 test 2^k — that is
                // what sub_div2 does for 16 bits. Do it in two halves:
                // lo16 = v & 0xFFFF, hi16 = (v - lo16) * 2^-16 … the clean
                // route: repeatedly subtract 65536 is too slow, so we use
                // the precomputed-weights loop inline (unrolled, 16 iters).
                let acc = self.m.cell(0);
                self.m.movi(acc, 0);
                for k in (16..32u32).rev() {
                    let kpow = self.m.konst(1u32 << k);
                    let kw = self.m.konst(1u32 << (k - 16));
                    let skip = self.m.label();
                    // if va >= 2^k { va -= 2^k; acc += 2^(k-16) }
                    self.m.sub(self.t1, self.va, kpow);
                    self.m.jc(skip);
                    self.m.mov(self.va, self.t1);
                    self.m.add(acc, acc, kw);
                    self.m.bind(skip);
                }
                self.setreg(fa, acc);
            }
            self.m.jmp(self.main_loop);
            // m5: Da ← (R[fb] << 16) | R[(fb+1) & 15]
            self.m.bind(cases[5]);
            self.getreg(self.t1, fb);
            // t1 <<= 16 (32-bit doubling, safe: t1 < 2^16)
            for _ in 0..16 {
                self.m.add(self.t1, self.t1, self.t1);
            }
            let k15 = self.m.konst(15);
            self.m.addi(self.t2, fb, 1);
            self.m.band(self.t2, self.t2, k15);
            self.getreg(self.va, self.t2);
            self.m.add(self.t1, self.t1, self.va);
            self.setptr(fa, self.t1);
            self.m.jmp(self.main_loop);
        }
        // 14 LDI
        {
            self.m.bind(labels[14]);
            let fa = self.fa;
            let k1 = self.m.konst(1);
            let dptr = self.m.label();
            self.m.jeq(self.mode, k1, dptr);
            self.fetch();
            self.m.mov(self.va, self.fetched);
            self.setreg(fa, self.va);
            self.m.jmp(self.main_loop);
            self.m.bind(dptr);
            self.fetch();
            self.m.mov(self.t1, self.fetched); // low
            self.fetch();
            self.m.mov(self.t2, self.fetched); // high
            for _ in 0..16 {
                self.m.add(self.t2, self.t2, self.t2);
            }
            self.m.add(self.t1, self.t1, self.t2);
            self.setptr(fa, self.t1);
            self.m.jmp(self.main_loop);
        }
        // 15 LDM
        {
            self.m.bind(labels[15]);
            let fa = self.fa;
            let fb = self.fb;
            self.getptr(self.t1, fb); // guest address
                                      // byte0 = DYNMEM[addr]
            self.m.add(self.ptr_t, self.k_dynmem, self.t1);
            self.m.ld_ind(self.ptr_t);
            self.m.st(self.va);
            // word modes add the second byte
            let k2 = self.m.konst(2);
            let byte_mode = self.m.label();
            self.m.jlt(self.mode, k2, byte_mode);
            self.m.addi(self.ptr_t, self.ptr_t, 1);
            self.m.ld_ind(self.ptr_t);
            self.m.st(self.t2);
            for _ in 0..8 {
                self.m.add(self.t2, self.t2, self.t2);
            }
            self.m.add(self.va, self.va, self.t2);
            self.m.bind(byte_mode);
            self.setreg(fa, self.va);
            // post-inc for modes 1 (by 1) and 3 (by 2)
            let k1 = self.m.konst(1);
            let k3 = self.m.konst(3);
            let inc1 = self.m.label();
            let inc2 = self.m.label();
            self.m.jeq(self.mode, k1, inc1);
            self.m.jeq(self.mode, k3, inc2);
            self.m.jmp(self.main_loop);
            self.m.bind(inc1);
            self.m.addi(self.t1, self.t1, 1);
            self.setptr(fb, self.t1);
            self.m.jmp(self.main_loop);
            self.m.bind(inc2);
            self.m.addi(self.t1, self.t1, 2);
            self.setptr(fb, self.t1);
            self.m.jmp(self.main_loop);
        }
        // 16 STM
        {
            self.m.bind(labels[16]);
            let fa = self.fa;
            let fb = self.fb;
            self.getptr(self.t1, fb);
            self.getreg(self.va, fa);
            let kff = self.m.konst(0xFF);
            self.m.band(self.t2, self.va, kff); // low byte
            self.m.add(self.ptr_t, self.k_dynmem, self.t1);
            self.m.st_ind(self.ptr_t, self.t2);
            let k2 = self.m.konst(2);
            let after_hi = self.m.label();
            self.m.jlt(self.mode, k2, after_hi);
            // high byte = va >> 8 via the shared subroutine
            self.m.mov(self.dv, self.va);
            self.m.call(self.sub_shr8, self.lk_shr8);
            self.m.addi(self.ptr_t, self.ptr_t, 1);
            self.m.st_ind(self.ptr_t, self.dv);
            self.m.bind(after_hi);
            let k1 = self.m.konst(1);
            let k3 = self.m.konst(3);
            let inc1 = self.m.label();
            let inc2 = self.m.label();
            self.m.jeq(self.mode, k1, inc1);
            self.m.jeq(self.mode, k3, inc2);
            self.m.jmp(self.main_loop);
            self.m.bind(inc1);
            self.m.addi(self.t1, self.t1, 1);
            self.setptr(fb, self.t1);
            self.m.jmp(self.main_loop);
            self.m.bind(inc2);
            self.m.addi(self.t1, self.t1, 2);
            self.setptr(fb, self.t1);
            self.m.jmp(self.main_loop);
        }
        // 17 JUMP, 18 JZ, 19 JNZ, 20 JC
        {
            self.m.bind(labels[17]);
            self.fetch();
            self.m.mov(self.dpc, self.fetched);
            self.m.jmp(self.main_loop);

            self.m.bind(labels[18]); // JZ
            self.fetch();
            let taken = self.m.label();
            self.m.jnz_cell(self.zflag, taken);
            self.m.jmp(self.main_loop);
            self.m.bind(taken);
            self.m.mov(self.dpc, self.fetched);
            self.m.jmp(self.main_loop);

            self.m.bind(labels[19]); // JNZ
            self.fetch();
            let taken = self.m.label();
            self.m.jz_cell(self.zflag, taken);
            self.m.jmp(self.main_loop);
            self.m.bind(taken);
            self.m.mov(self.dpc, self.fetched);
            self.m.jmp(self.main_loop);

            self.m.bind(labels[20]); // JC
            self.fetch();
            let taken = self.m.label();
            self.m.jnz_cell(self.cflag, taken);
            self.m.jmp(self.main_loop);
            self.m.bind(taken);
            self.m.mov(self.dpc, self.fetched);
            self.m.jmp(self.main_loop);
        }
        // 21 CALL
        {
            self.m.bind(labels[21]);
            self.fetch();
            let k_stack = self.k_stack;
            let sp = self.sp;
            self.m.add(self.ptr_t, k_stack, sp);
            self.m.st_ind(self.ptr_t, self.dpc);
            self.m.addi(sp, sp, 1);
            self.m.mov(self.dpc, self.fetched);
            self.m.jmp(self.main_loop);
        }
        // 22 RET — empty stack halts (the guest's HALT convention)
        {
            self.m.bind(labels[22]);
            let sp = self.sp;
            let halted = self.m.label();
            self.m.jz_cell(sp, halted);
            self.m.subi(sp, sp, 1);
            let k_stack = self.k_stack;
            self.m.add(self.ptr_t, k_stack, sp);
            self.m.ld_ind(self.ptr_t);
            self.m.st(self.dpc);
            self.m.jmp(self.main_loop);
            self.m.bind(halted);
            self.m.halt();
        }
    }

    fn emit_subroutines(&mut self) {
        // fetch: fetched = PROG[dpc]; dpc += 1
        {
            self.m.bind(self.sub_fetch);
            self.m.add(self.ptr_t, self.k_prog, self.dpc);
            self.m.ld_ind(self.ptr_t);
            self.m.st(self.fetched);
            self.m.addi(self.dpc, self.dpc, 1);
            self.m.ret(self.lk_fetch);
        }
        // extract: split w into opcode/fa/fb/mode (bit-weight peeling)
        {
            self.m.bind(self.sub_extract);
            self.m.movi(self.opcode, 0);
            self.m.movi(self.fa, 0);
            self.m.movi(self.fb, 0);
            self.m.movi(self.mode, 0);
            for k in (0..16u32).rev() {
                let kpow = self.m.konst(1u32 << k);
                let (field, weight) = match k {
                    11..=15 => (self.opcode, 1u32 << (k - 11)),
                    7..=10 => (self.fa, 1u32 << (k - 7)),
                    3..=6 => (self.fb, 1u32 << (k - 3)),
                    _ => (self.mode, 1u32 << k),
                };
                let skip = self.m.label();
                self.m.sub(self.st1, self.w, kpow);
                self.m.jc(skip);
                self.m.mov(self.w, self.st1);
                self.m.addi(field, field, weight);
                self.m.bind(skip);
            }
            self.m.ret(self.lk_extract);
        }
        // div2: dv = dv >> 1 (16-bit); bit_out = old low bit
        {
            self.m.bind(self.sub_div2);
            let y = self.m.cell(0);
            self.m.movi(y, 0);
            for k in (1..16u32).rev() {
                let kpow = self.m.konst(1u32 << k);
                let kw = self.m.konst(1u32 << (k - 1));
                let skip = self.m.label();
                self.m.sub(self.st1, self.dv, kpow);
                self.m.jc(skip);
                self.m.mov(self.dv, self.st1);
                self.m.add(y, y, kw);
                self.m.bind(skip);
            }
            self.m.mov(self.bit_out, self.dv);
            self.m.mov(self.dv, y);
            self.m.ret(self.lk_div2);
        }
        // shr8: dv = dv >> 8 (16-bit input) — peel weights 15..8
        {
            self.m.bind(self.sub_shr8);
            let y = self.m.cell(0);
            self.m.movi(y, 0);
            for k in (8..16u32).rev() {
                let kpow = self.m.konst(1u32 << k);
                let kw = self.m.konst(1u32 << (k - 8));
                let skip = self.m.label();
                self.m.sub(self.st1, self.dv, kpow);
                self.m.jc(skip);
                self.m.mov(self.dv, self.st1);
                self.m.add(y, y, kw);
                self.m.bind(skip);
            }
            self.m.mov(self.dv, y);
            self.m.ret(self.lk_shr8);
        }
        // mul: (phi:plo) = ma * mb, 16×16→32, high-bit-first shift-add
        {
            self.m.bind(self.sub_mul);
            self.m.movi(self.phi, 0);
            self.m.movi(self.plo, 0);
            let k8000 = self.m.konst(0x8000);
            let k10000 = self.m.konst(0x10000);
            let kffff = self.m.konst(0xFFFF);
            for _ in 0..16 {
                // acc <<= 1
                self.m.add(self.plo, self.plo, self.plo);
                self.m.add(self.phi, self.phi, self.phi);
                let no_c = self.m.label();
                self.m.jlt(self.plo, k10000, no_c);
                self.m.band(self.plo, self.plo, kffff);
                self.m.addi(self.phi, self.phi, 1);
                self.m.bind(no_c);
                self.m.band(self.phi, self.phi, kffff);
                // top bit of ma?
                let no_add = self.m.label();
                self.m.sub(self.st1, self.ma, k8000);
                self.m.jc(no_add);
                self.m.mov(self.ma, self.st1);
                self.m.add(self.plo, self.plo, self.mb);
                let no_c2 = self.m.label();
                self.m.jlt(self.plo, k10000, no_c2);
                self.m.band(self.plo, self.plo, kffff);
                self.m.addi(self.phi, self.phi, 1);
                self.m.band(self.phi, self.phi, kffff);
                self.m.bind(no_c2);
                self.m.bind(no_add);
                // ma <<= 1 (top bit already removed)
                self.m.add(self.ma, self.ma, self.ma);
            }
            self.m.ret(self.lk_mul);
        }
    }
}

impl NestedEmulator {
    /// Build the emulator image around a guest program and its initial
    /// data-memory image (as produced by `ule_dynarisc::layout`).
    pub fn new(dyn_program: &[u16], dyn_mem: &[u8]) -> Self {
        Self::with_capacity(dyn_program, dyn_program.len(), dyn_mem)
    }

    /// Like [`NestedEmulator::new`] but reserving `prog_capacity` guest
    /// program cells, so other decoders (up to that size) can later be
    /// loaded into the same archived image via [`Self::load_guest_program`].
    pub fn with_capacity(dyn_program: &[u16], prog_capacity: usize, dyn_mem: &[u8]) -> Self {
        let gen = Gen::new_with_capacity(dyn_program, prog_capacity, dyn_mem);
        let image = gen.generate();
        Self {
            dyn_mem_len: dyn_mem.len(),
            symbols: image.symbols.clone(),
            code_words: image.code_words,
            image: image.mem,
        }
    }

    /// Size of the emulator code in VeRisc words (reported by E7/E5).
    pub fn code_words(&self) -> usize {
        self.code_words
    }

    /// Total image size in words.
    pub fn image_words(&self) -> usize {
        self.image.len()
    }

    /// The raw VeRisc memory image (what the Bootstrap letters encode).
    pub fn image(&self) -> &[u32] {
        &self.image
    }

    /// Run the guest to completion under the chosen host interpreter.
    pub fn run(&mut self, kind: EngineKind, max_steps: u64) -> Result<u64, VeriscError> {
        let mut engine = Engine::new(kind, std::mem::take(&mut self.image));
        let result = engine.run(max_steps);
        self.image = engine.mem;
        result
    }

    /// Read back the guest data memory (one byte per cell).
    pub fn dyn_mem(&self) -> Vec<u8> {
        let base = self.symbols["DYNMEM"] as usize;
        self.image[base..base + self.dyn_mem_len]
            .iter()
            .map(|&w| w as u8)
            .collect()
    }

    /// Guest register file (for differential testing).
    pub fn guest_regs(&self) -> [u16; 16] {
        let base = self.symbols["REGS"] as usize;
        let mut out = [0u16; 16];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.image[base + i] as u16;
        }
        out
    }

    /// Guest pointer registers.
    pub fn guest_ptrs(&self) -> [u32; 8] {
        let base = self.symbols["PTRS"] as usize;
        let mut out = [0u32; 8];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.image[base + i];
        }
        out
    }

    /// Symbol table of the generated image (cell name → absolute address).
    pub fn symbols(&self) -> &HashMap<String, u32> {
        &self.symbols
    }

    /// Reset guest architectural state and rewind the host PC so the same
    /// image can run another decoder (Figure 2b runs MODecode repeatedly,
    /// then DBDecode, inside one emulator).
    pub fn reset_guest(&mut self) {
        self.image[0] = crate::spec::CODE_BASE;
        self.image[1] = 0;
        for name in ["DPC", "SP", "CFLAG", "ZFLAG", "NFLAG"] {
            let a = self.symbols[name] as usize;
            self.image[a] = 0;
        }
        let regs = self.symbols["REGS"] as usize;
        for i in 0..16 {
            self.image[regs + i] = 0;
        }
        let ptrs = self.symbols["PTRS"] as usize;
        for i in 0..8 {
            self.image[ptrs + i] = 0;
        }
    }

    /// Overwrite the guest program region (the Bootstrap's "load the
    /// decoder stream into PROG" step). Panics if it does not fit the
    /// region allocated at generation time.
    pub fn load_guest_program(&mut self, program: &[u16], capacity: usize) {
        assert!(
            program.len() <= capacity,
            "guest program exceeds PROG capacity"
        );
        let base = self.symbols["PROG"] as usize;
        for (i, &w) in program.iter().enumerate() {
            self.image[base + i] = w as u32;
        }
    }

    /// Replace the guest data memory region. The region was sized at
    /// generation time; `mem` must not exceed it.
    pub fn load_dyn_mem(&mut self, mem: &[u8]) {
        assert!(mem.len() <= self.dyn_mem_len, "dyn mem exceeds region");
        let base = self.symbols["DYNMEM"] as usize;
        for (i, &b) in mem.iter().enumerate() {
            self.image[base + i] = b as u32;
        }
        for i in mem.len()..self.dyn_mem_len {
            self.image[base + i] = 0;
        }
    }

    /// Rebuild an emulator from an archived image prefix (the Bootstrap
    /// letters): `prefix` covers words `[0, dynmem_base)`; the data region
    /// is appended from `dyn_mem`, one byte per cell.
    pub fn from_image_prefix(
        prefix: &[u32],
        symbols: HashMap<String, u32>,
        dyn_mem: &[u8],
    ) -> Self {
        let dynmem_base = symbols["DYNMEM"] as usize;
        assert!(
            prefix.len() >= dynmem_base,
            "prefix shorter than DYNMEM base"
        );
        let mut image = prefix[..dynmem_base].to_vec();
        image.extend(dyn_mem.iter().map(|&b| b as u32));
        image.extend(std::iter::repeat(0).take(8));
        Self {
            dyn_mem_len: dyn_mem.len(),
            symbols,
            code_words: 0,
            image,
        }
    }
}
