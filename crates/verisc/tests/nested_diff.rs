//! Differential tests: the DynaRisc-emulator-in-VeRisc must reproduce the
//! native DynaRisc VM exactly — same register file, same pointer
//! registers, same data memory — for the same guest binary and inputs.
//! This equivalence is what lets Micr'Olonys promise that a future user's
//! 4-instruction interpreter restores archives bit-for-bit.

use ule_dynarisc::{Asm, Vm};
use ule_verisc::vm::EngineKind;
use ule_verisc::NestedEmulator;

/// Run a guest program on both paths and compare full final state.
fn differential(program: Vec<u16>, mem: Vec<u8>, dyn_steps: u64) {
    // Native path.
    let mut native = Vm::new(program.clone(), mem.clone());
    native.run(dyn_steps).expect("native run");
    // Nested path (each host engine).
    for kind in EngineKind::ALL {
        let mut nested = NestedEmulator::new(&program, &mem);
        // Generous host budget: ~4000 VeRisc instructions per guest step.
        nested
            .run(kind, dyn_steps.saturating_mul(4000).max(1_000_000))
            .expect("nested run");
        assert_eq!(
            nested.guest_regs(),
            native.regs,
            "regs mismatch on {kind:?}"
        );
        assert_eq!(
            nested.guest_ptrs(),
            native.ptrs,
            "ptrs mismatch on {kind:?}"
        );
        assert_eq!(nested.dyn_mem(), native.mem, "memory mismatch on {kind:?}");
    }
}

#[test]
fn arithmetic_and_flags() {
    let mut a = Asm::new();
    a.ldi(0, 0xFFFF);
    a.addi(0, 1); // wraps, sets C+Z
    a.adci(1, 0); // R1 = carry
    a.ldi(2, 100);
    a.subi(2, 101); // borrow
    a.sbbi(3, 0); // R3 -= borrow -> 0xFFFF
    a.ldi(4, 1234);
    a.ldi(5, 5678);
    a.mul(4, 5);
    a.ldi(6, 1234);
    a.mul_hi(6, 5);
    a.ret();
    differential(a.finish(), vec![0u8; 16], 100);
}

#[test]
fn logic_and_shifts() {
    let mut a = Asm::new();
    a.ldi(0, 0b1010_1010_1100_0011);
    a.ldi(1, 0b0110_0110_0110_0110);
    a.ldi(2, 0);
    a.move_r(2, 0);
    a.and(2, 1);
    a.ldi(3, 0);
    a.move_r(3, 0);
    a.or(3, 1);
    a.ldi(4, 0);
    a.move_r(4, 0);
    a.xor(4, 1);
    a.ldi(5, 0x8001);
    a.lsl_i(5, 3);
    a.ldi(6, 0x8001);
    a.lsr_i(6, 3);
    a.ldi(7, 0x8001);
    a.asr_i(7, 3);
    a.ldi(8, 0x8001);
    a.ror_i(8, 3);
    a.ldi(9, 5);
    a.ldi(10, 0xF0F0);
    a.lsr(10, 9); // register-count shift
    a.ret();
    differential(a.finish(), vec![0u8; 16], 100);
}

#[test]
fn memory_and_pointers() {
    let mut a = Asm::new();
    a.ldi_d(0, 4); // src
    a.ldi_d(1, 40); // dst
                    // copy 8 bytes with post-increment
    a.ldi(1, 8);
    let top = a.here();
    a.ldm_byte_inc(2, 0);
    a.stm_byte_inc(2, 1);
    a.subi(1, 1);
    a.jnz(top);
    // word access + pointer moves
    a.ldi_d(2, 40);
    a.ldm_word(3, 2);
    a.ldi(4, 0xBEEF);
    a.ldi_d(3, 50);
    a.stm_word(4, 3);
    a.move_r_dlo(5, 3);
    a.move_r_dhi(6, 3);
    a.ldi(7, 0x0001);
    a.ldi(8, 0x2345);
    a.move_d_pair(4, 7); // D4 = 0x0001_2345
    a.add_d_r(4, 8); // D4 += 0x2345
    a.subi_d(4, 0x45);
    a.ret();
    let mut mem = vec![0u8; 64];
    for (i, b) in mem.iter_mut().enumerate().take(16) {
        *b = (i * 13 + 7) as u8;
    }
    differential(a.finish(), mem, 200);
}

#[test]
fn calls_loops_and_branches() {
    let mut a = Asm::new();
    let sub = a.label();
    a.ldi(0, 0); // acc
    a.ldi(1, 12); // n
    let top = a.here();
    a.call(sub);
    a.subi(1, 1);
    a.jnz(top);
    a.ret();
    a.bind(sub);
    a.add(0, 1); // acc += n
    a.ret();
    differential(a.finish(), vec![0u8; 8], 500);
}

#[test]
fn dbdecode_runs_identically_under_nested_emulation() {
    use ule_compress::{compress, Scheme};
    use ule_dynarisc::layout;
    use ule_dynarisc::programs::dbdecode;

    let data = b"select * from lineitem; select * from orders; select * from lineitem;";
    let archive = compress(Scheme::Lzss, data);
    let (mem, out_base) = layout::build_memory(&archive, data.len(), &[]);
    let program = dbdecode::program();

    // Native reference.
    let mut native = Vm::new(program.clone(), mem.clone());
    native.run(10_000_000).unwrap();
    let native_out = layout::read_output(&native.mem, out_base);
    assert_eq!(native_out, data);

    // Nested (one engine is enough here; the cross-engine agreement is
    // covered above and this test is the expensive one).
    let mut nested = NestedEmulator::new(&program, &mem);
    nested.run(EngineKind::MatchBased, 2_000_000_000).unwrap();
    let nested_mem = nested.dyn_mem();
    let nested_out = layout::read_output(&nested_mem, out_base);
    assert_eq!(nested_out, data, "nested emulation decoded different bytes");
    assert_eq!(nested_mem, native.mem, "full guest memory differs");
}

#[test]
fn post_increment_word_stores_regression() {
    // Regression: STM.W Rx,[Dd]+ keeps the guest address live across the
    // emulator's shr8 subroutine; an early version clobbered the shared
    // scratch cell and corrupted the post-incremented pointer.
    let mut a = Asm::new();
    a.ldi_d(3, 0x14);
    a.ldi(4, 0x00A0); // value with a non-trivial high-byte split
    a.ldi(5, 0xBEEF);
    a.stm_word_inc(4, 3);
    a.stm_word_inc(5, 3);
    a.ldm_word(6, 3); // read back at the post-incremented address
    a.ret();
    differential(a.finish(), vec![0u8; 64], 100);
}

#[test]
fn ldm_word_postinc_differential() {
    let mut a = Asm::new();
    a.ldi_d(0, 8);
    a.ldm_word_inc(1, 0);
    a.ldm_word_inc(2, 0);
    a.ret();
    let mut mem = vec![0u8; 32];
    mem[8..12].copy_from_slice(&[0x11, 0x22, 0x33, 0x44]);
    differential(a.finish(), mem, 50);
}
