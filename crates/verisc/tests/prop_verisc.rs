//! Property tests for the VeRisc machine: the three engines agree on
//! arbitrary programs generated through the macro-assembler, and the
//! letter-encoded image format is loss-free.

use proptest::prelude::*;
use ule_verisc::masm::Masm;
use ule_verisc::vm::{Engine, EngineKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_arithmetic_programs(
        values in proptest::collection::vec(any::<u32>(), 2..8),
        ops in proptest::collection::vec(0u8..4, 1..12),
    ) {
        // Build a straight-line program over a handful of cells.
        let mut m = Masm::new();
        let cells: Vec<_> = values.iter().map(|&v| m.cell(v)).collect();
        let out = m.cell(0);
        m.name("out", out);
        let n = cells.len();
        for (i, &op) in ops.iter().enumerate() {
            let a = cells[i % n];
            let b = cells[(i + 1) % n];
            match op {
                0 => m.add(out, a, b),
                1 => m.sub(out, a, b),
                2 => m.band(out, a, b),
                _ => m.bnot(out, a),
            }
            // fold the result back so later ops depend on earlier ones
            m.mov(cells[i % n], out);
        }
        m.halt();
        let img = m.finish(0);
        let results: Vec<(u32, u64)> = EngineKind::ALL
            .iter()
            .map(|&k| {
                let mut e = Engine::new(k, img.mem.clone());
                e.run(100_000).unwrap();
                (e.mem[img.symbols["out"] as usize], e.steps())
            })
            .collect();
        prop_assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
    }

    #[test]
    fn conditional_jumps_match_u32_comparison(a in any::<u32>(), b in any::<u32>()) {
        let mut m = Masm::new();
        let ca = m.cell(a);
        let cb = m.cell(b);
        let out = m.cell(0);
        m.name("out", out);
        let lt = m.label();
        m.jlt(ca, cb, lt);
        m.movi(out, 2); // a >= b
        m.halt();
        m.bind(lt);
        m.movi(out, 1); // a < b
        m.halt();
        let img = m.finish(0);
        let mut e = Engine::new(EngineKind::MatchBased, img.mem);
        e.run(1000).unwrap();
        let expect = if a < b { 1 } else { 2 };
        prop_assert_eq!(e.mem[img.symbols["out"] as usize], expect);
    }

    #[test]
    fn subtraction_is_wrapping_u32(a in any::<u32>(), b in any::<u32>()) {
        let mut m = Masm::new();
        let ca = m.cell(a);
        let cb = m.cell(b);
        let out = m.cell(0);
        m.name("out", out);
        m.sub(out, ca, cb);
        m.halt();
        let img = m.finish(0);
        for kind in EngineKind::ALL {
            let mut e = Engine::new(kind, img.mem.clone());
            e.run(1000).unwrap();
            prop_assert_eq!(e.mem[img.symbols["out"] as usize], a.wrapping_sub(b));
        }
    }
}
