//! E2/E3 — §4 "Microfilm archive" and "Cinema film archive": the 102 KB
//! payload through the 16 mm (bitonal, 1.28× scan) and 35 mm (2K write,
//! 4K grayscale scan) pipelines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use ule_emblem::{decode_emblem, encode_emblem, EmblemHeader, EmblemKind};
use ule_media::Medium;

fn film(c: &mut Criterion, medium: &Medium, tag: &str) {
    let geom = medium.geometry;
    let payload = ule_bench::random_payload(geom.payload_capacity(), 3);
    let header = EmblemHeader::new(
        EmblemKind::Data,
        0,
        0,
        payload.len() as u32,
        payload.len() as u32,
    );
    let mut g = c.benchmark_group(tag);
    g.sample_size(10);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("write_frame", |b| {
        b.iter(|| black_box(medium.print(&encode_emblem(&geom, &header, black_box(&payload)))))
    });
    let frame = medium.print(&encode_emblem(&geom, &header, &payload));
    g.bench_function("scan_frame", |b| {
        b.iter(|| black_box(medium.scan(black_box(&frame), 9)))
    });
    let scan = medium.scan(&frame, 9);
    g.bench_function("decode_scan", |b| {
        b.iter(|| {
            let (_, p, _) = decode_emblem(&geom, black_box(&scan)).unwrap();
            black_box(p)
        })
    });
    g.finish();
}

fn film_media(c: &mut Criterion) {
    film(c, &Medium::microfilm_16mm(), "e2_microfilm_16mm");
    film(c, &Medium::cinema_35mm(), "e3_cinema_35mm");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = film_media
}
criterion_main!(benches);
