//! E11 — vectorized GF(256)/CRC kernel layer: scalar-vs-kernel A/B for
//! every rewritten hot-path primitive (`DESIGN.md` §12). The ratio gates
//! (RS encode ≥4×, CRC-32 ≥8×, clean decode faster than scalar) live in
//! the report's `[E11]` section; this target exposes the same pairs to
//! `cargo bench` for per-primitive numbers, and runs one-shot under
//! `cargo test` as the CI smoke (with a correctness cross-check so the A
//! and B sides can never drift apart silently).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ule_bench::scalar;
use ule_gf256::{crc16_ccitt, crc32, Gf256, GfKernels, RsCode};

/// 256 KiB is enough for the table/SWAR loops to hit steady state while
/// keeping the `cargo test` smoke run instant.
const CRC_BUF: usize = 256 * 1024;

fn crc_kernels(c: &mut Criterion) {
    let data = ule_bench::random_payload(CRC_BUF, 0xE11);
    assert_eq!(
        crc32(&data),
        scalar::crc32_bitwise(&data),
        "kernel CRC-32 must match the bitwise baseline"
    );
    assert_eq!(
        crc16_ccitt(&data[..4096]),
        scalar::crc16_ccitt_bitwise(&data[..4096]),
        "kernel CRC-16 must match the bitwise baseline"
    );

    let mut g = c.benchmark_group("e11_crc32");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_with_input(BenchmarkId::from_parameter("bitwise"), &data, |b, d| {
        b.iter(|| black_box(scalar::crc32_bitwise(black_box(d))))
    });
    g.bench_with_input(BenchmarkId::from_parameter("sliced"), &data, |b, d| {
        b.iter(|| black_box(crc32(black_box(d))))
    });
    g.finish();

    let small = &data[..64 * 1024];
    let mut g = c.benchmark_group("e11_crc16");
    g.throughput(Throughput::Bytes(small.len() as u64));
    g.bench_with_input(BenchmarkId::from_parameter("bitwise"), &small, |b, d| {
        b.iter(|| black_box(scalar::crc16_ccitt_bitwise(black_box(d))))
    });
    g.bench_with_input(BenchmarkId::from_parameter("table"), &small, |b, d| {
        b.iter(|| black_box(crc16_ccitt(black_box(d))))
    });
    g.finish();
}

fn gf_slice_kernels(c: &mut Criterion) {
    let gf = Gf256::new();
    let kernels = GfKernels::new(&gf);
    let src = ule_bench::random_payload(64 * 1024, 7);
    let mut dst = ule_bench::random_payload(64 * 1024, 8);

    let mut g = c.benchmark_group("e11_mul_add_slice");
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_with_input(BenchmarkId::from_parameter("scalar"), &src, |b, s| {
        b.iter(|| {
            for (x, d) in s.iter().zip(dst.iter_mut()) {
                *d ^= gf.mul(0xA7, *x);
            }
            black_box(dst[0])
        })
    });
    g.bench_with_input(BenchmarkId::from_parameter("swar"), &src, |b, s| {
        b.iter(|| {
            kernels.mul_add_slice(0xA7, s, &mut dst);
            black_box(dst[0])
        })
    });
    g.finish();
}

fn rs_kernels(c: &mut Criterion) {
    let rs = RsCode::new(255, 223);
    let srs = scalar::ScalarRs::new(255, 223);
    let msgs: Vec<Vec<u8>> = (0..32u64)
        .map(|s| ule_bench::random_payload(223, s + 1))
        .collect();
    let bytes: u64 = msgs.iter().map(|m| m.len() as u64).sum();
    for m in &msgs {
        assert_eq!(rs.encode(m), srs.encode(m), "encoders must agree");
    }

    let mut g = c.benchmark_group("e11_rs_encode");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_with_input(BenchmarkId::from_parameter("scalar"), &msgs, |b, ms| {
        b.iter(|| {
            for m in ms {
                black_box(srs.encode(black_box(m)));
            }
        })
    });
    g.bench_with_input(BenchmarkId::from_parameter("kernel"), &msgs, |b, ms| {
        b.iter(|| {
            for m in ms {
                black_box(rs.encode(black_box(m)));
            }
        })
    });
    g.finish();

    // The clean-frame fast path: decoding an undamaged codeword is exactly
    // one syndromes pass, so this pair is the per-block cost of scanning
    // clean media.
    let cws: Vec<Vec<u8>> = msgs.iter().map(|m| rs.encode(m)).collect();
    let cw_bytes: u64 = cws.iter().map(|c| c.len() as u64).sum();
    let mut g = c.benchmark_group("e11_clean_decode");
    g.throughput(Throughput::Bytes(cw_bytes));
    g.bench_with_input(BenchmarkId::from_parameter("scalar"), &cws, |b, cs| {
        b.iter(|| {
            for cw in cs {
                assert!(srs.is_clean(black_box(cw)));
            }
        })
    });
    g.bench_with_input(BenchmarkId::from_parameter("kernel"), &cws, |b, cs| {
        b.iter(|| {
            for cw in cs {
                let mut c = cw.clone();
                assert_eq!(rs.decode(&mut c, &[]).unwrap(), 0);
            }
        })
    });
    g.finish();

    // Column-batched parity (the vault's cross-reel shape): 17 streams in,
    // 3 parity streams out.
    let streams: Vec<Vec<u8>> = (0..17u64)
        .map(|s| ule_bench::random_payload(16 * 1024, s + 40))
        .collect();
    let refs: Vec<&[u8]> = streams.iter().map(|s| s.as_slice()).collect();
    let rs_outer = RsCode::new(20, 17);
    let mut g = c.benchmark_group("e11_parity_of");
    g.throughput(Throughput::Bytes((17 * 16 * 1024) as u64));
    g.bench_with_input(
        BenchmarkId::from_parameter("column-batched"),
        &refs,
        |b, r| b.iter(|| black_box(rs_outer.parity_of(black_box(r)))),
    );
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = crc_kernels, gf_slice_kernels, rs_kernels
}
criterion_main!(benches);
