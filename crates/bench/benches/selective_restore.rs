//! E10 — vault selective-restore economics: latency of restoring one
//! table vs the full dump, and the cost of rebuilding a lost reel from
//! cross-reel parity. The production gates (frames-scanned fraction,
//! byte-identity, lost-reel recovery) live in the `report` binary's
//! `[E10]` section; recorded results in `EXPERIMENTS.md` E10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ule_bench::E10Workload;
use ule_par::ThreadConfig;

fn selective_vs_full(c: &mut Criterion) {
    let w = E10Workload::new(0.0001, 11, ThreadConfig::Serial);
    let mut g = c.benchmark_group("e10_restore");
    g.sample_size(10);
    for table in ["nation", "orders", "lineitem"] {
        g.bench_with_input(BenchmarkId::new("table", table), &table, |b, table| {
            b.iter(|| {
                black_box(
                    w.vault
                        .restore_table(&w.archive.bootstrap, &w.scans, table)
                        .unwrap(),
                )
            })
        });
    }
    g.bench_function("full", |b| {
        b.iter(|| black_box(w.vault.restore_all(&w.archive.bootstrap, &w.scans).unwrap()))
    });
    g.finish();
}

fn lost_reel_reconstruction(c: &mut Criterion) {
    let w = E10Workload::new(0.0001, 12, ThreadConfig::Serial);
    let mut scans = w.scans.clone();
    scans[0] = None;
    let mut g = c.benchmark_group("e10_lost_reel");
    g.sample_size(10);
    g.bench_function("restore_all_one_reel_rebuilt", |b| {
        b.iter(|| black_box(w.vault.restore_all(&w.archive.bootstrap, &scans).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, selective_vs_full, lost_reel_reconstruction);
criterion_main!(benches);
