//! E8 — parallel archive/restore scaling: throughput of the Figure 2a/2b
//! hot paths at 1/2/4/8 worker threads. The absolute E1-workload numbers
//! (and the byte-identity guarantee the speedup rides on) are reported by
//! `cargo run -p ule_bench --bin report` and recorded in `EXPERIMENTS.md`;
//! `tests/parallel_identity.rs` holds the conformance proof.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ule_emblem::{decode_stream_with, encode_stream_with, EmblemGeometry, EmblemKind};
use ule_media::Medium;
use ule_par::ThreadConfig;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn cfg(threads: usize) -> ThreadConfig {
    if threads <= 1 {
        ThreadConfig::Serial
    } else {
        ThreadConfig::Fixed(threads)
    }
}

fn parallel_scaling(c: &mut Criterion) {
    // A multi-emblem stream on the fast test geometry: enough independent
    // work items (24 data + 6 parity emblems) for the pool to matter,
    // small enough for the one-shot `cargo test` smoke run.
    let geom = EmblemGeometry::test_small();
    let payload = ule_bench::random_payload(geom.payload_capacity() * 24, 88);

    let mut g = c.benchmark_group("e8_encode_stream");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for threads in THREAD_SWEEP {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(encode_stream_with(
                        &geom,
                        EmblemKind::Data,
                        black_box(&payload),
                        true,
                        cfg(threads),
                    ))
                })
            },
        );
    }
    g.finish();

    let images = encode_stream_with(&geom, EmblemKind::Data, &payload, true, ThreadConfig::Auto);
    let mut g = c.benchmark_group("e8_decode_stream");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for threads in THREAD_SWEEP {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(decode_stream_with(&geom, black_box(&images), cfg(threads)).unwrap())
                })
            },
        );
    }
    g.finish();

    // End-to-end archive (compress → RS → emblems → frames) through the
    // public MicrOlonys API, serial vs 4 threads.
    let dump = ule_tpch::dump_for_scale(0.0001, 42);
    let mut g = c.benchmark_group("e8_archive_end_to_end");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(dump.len() as u64));
    for threads in [1usize, 4] {
        let sys = micr_olonys::MicrOlonys {
            medium: Medium::test_tiny(),
            scheme: ule_compress::Scheme::Lzss,
            with_parity: true,
            threads: cfg(threads),
        };
        g.bench_with_input(BenchmarkId::from_parameter(threads), &sys, |b, sys| {
            b.iter(|| black_box(sys.archive(black_box(&dump))))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = parallel_scaling
}
criterion_main!(benches);
