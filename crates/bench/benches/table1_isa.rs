//! T1 — Table 1 (the DynaRisc ISA): execution cost per instruction class
//! on the native VM, plus a full-ISA coverage program. Regenerates the
//! table's row structure (arithmetic / logical / control-data) as bench
//! groups.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ule_dynarisc::{Asm, Vm};

/// A loop executing `body` 256 times (counter in R15).
fn looped(body: impl Fn(&mut Asm)) -> Vec<u16> {
    let mut a = Asm::new();
    a.ldi(15, 256);
    let top = a.here();
    body(&mut a);
    a.subi(15, 1);
    a.jnz(top);
    a.ret();
    a.finish()
}

fn bench_class(c: &mut Criterion, name: &str, program: Vec<u16>, mem: usize) {
    c.bench_function(name, |b| {
        b.iter(|| {
            let mut vm = Vm::new(black_box(program.clone()), vec![0u8; mem]);
            vm.run(1_000_000).unwrap();
            black_box(vm.steps())
        })
    });
}

fn table1(c: &mut Criterion) {
    bench_class(
        c,
        "table1/arithmetic(ADD,ADC,SUB,SBB,CMP,MUL)",
        looped(|a| {
            a.add(0, 1);
            a.adci(0, 3);
            a.sub(1, 2);
            a.sbbi(1, 1);
            a.cmp(0, 1);
            a.mul(2, 3);
        }),
        64,
    );
    bench_class(
        c,
        "table1/logical(AND,OR,XOR,LSL,LSR,ASR,ROR)",
        looped(|a| {
            a.and(0, 1);
            a.or(1, 2);
            a.xor(2, 3);
            a.lsl_i(0, 3);
            a.lsr_i(1, 2);
            a.asr_i(2, 1);
            a.ror_i(3, 4);
        }),
        64,
    );
    bench_class(
        c,
        "table1/control-data(MOVE,LDI,LDM,STM,JUMP)",
        looped(|a| {
            a.ldi(0, 0xAB);
            a.move_r(1, 0);
            a.ldi_d(0, 16);
            a.stm_byte(1, 0);
            a.ldm_byte(2, 0);
        }),
        64,
    );
    // Full coverage: every one of the 23 opcodes at least once.
    let mut a = Asm::new();
    let sub = a.label();
    a.ldi(0, 7);
    a.ldi(1, 9);
    a.add(0, 1);
    a.adci(0, 1);
    a.sub(0, 1);
    a.sbbi(0, 0);
    a.cmp(0, 1);
    a.mul(0, 1);
    a.and(0, 1);
    a.or(0, 1);
    a.xor(0, 1);
    a.lsl_i(0, 1);
    a.lsr_i(0, 1);
    a.asr_i(0, 1);
    a.ror_i(0, 1);
    a.move_r(2, 0);
    a.ldi_d(0, 8);
    a.ldm_byte(3, 0);
    a.stm_byte(3, 0);
    a.call(sub);
    let skip = a.label();
    a.jz(skip);
    a.jnz(skip);
    a.bind(skip);
    let end = a.label();
    a.jc(end);
    a.bind(end);
    let fin = a.label();
    a.jump(fin);
    a.bind(fin);
    a.ret();
    a.bind(sub);
    a.ret();
    bench_class(c, "table1/full-isa-coverage", a.finish(), 64);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = table1
}
criterion_main!(benches);
