//! E9 — recovery-envelope campaign: fault-injection throughput per model
//! and a bounded envelope campaign on the tiny test medium. The
//! production-media envelopes (and the §3.1 gate) are produced by
//! `cargo run -p ule_bench --bin report` and recorded in `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ule_bench::{e9_model_sweep, E9Workload};
use ule_fault::{FaultPlan, RecoveryEnvelope, ThreadConfig};
use ule_media::Medium;

fn fault_injection(c: &mut Criterion) {
    let w = E9Workload::new(Medium::test_tiny(), 11);
    let bytes: u64 = w.scans.iter().map(|s| s.as_bytes().len() as u64).sum();
    let mut g = c.benchmark_group("e9_fault_injection");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    for (model, _) in e9_model_sweep() {
        let name = model.name();
        let mut plan = FaultPlan::new();
        plan.push(model);
        g.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, plan| {
            b.iter(|| black_box(plan.apply(&w.scans, 0.3, 7)))
        });
    }
    g.finish();
}

fn envelope_campaign(c: &mut Criterion) {
    let w = E9Workload::new(Medium::test_tiny(), 12);
    let mut g = c.benchmark_group("e9_envelope_campaign");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let pool = if threads == 1 {
                    ThreadConfig::Serial
                } else {
                    ThreadConfig::Fixed(threads)
                };
                let env = RecoveryEnvelope::new(2).with_threads(pool);
                b.iter(|| black_box(env.run(&w.cases())))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, fault_injection, envelope_campaign);
criterion_main!(benches);
