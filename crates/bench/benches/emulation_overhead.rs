//! E7 — emulation-overhead ablation (motivated by §2: ULE restores
//! "without any overhead" at query time because only *decoding* is
//! emulated; this bench quantifies the decode-time cost ladder):
//!
//! * native Rust LZSS decode,
//! * the same decoder as DynaRisc instructions on the DynaRisc VM,
//! * the same binary under the nested VeRisc → DynaRisc emulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use ule_compress::{compress, Scheme};
use ule_dynarisc::{layout, programs::dbdecode, Vm};
use ule_verisc::vm::EngineKind;
use ule_verisc::NestedEmulator;

fn emulation_overhead(c: &mut Criterion) {
    // A 4 KB slice of the TPC-H dump keeps the nested tier measurable.
    let dump = ule_tpch::dump_for_scale(0.0002, 42);
    let data = &dump[..4096];
    let archive = compress(Scheme::Lzss, data);
    let (mem, out_base) = layout::build_memory(&archive, data.len(), &[]);
    let program = dbdecode::program();

    let mut g = c.benchmark_group("e7_decode_tiers");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(data.len() as u64));

    g.bench_function("tier0_native_rust", |b| {
        b.iter(|| black_box(ule_compress::decompress(black_box(&archive)).unwrap()))
    });

    g.bench_function("tier1_dynarisc_vm", |b| {
        b.iter(|| {
            let mut vm = Vm::new(program.clone(), mem.clone());
            vm.run(100_000_000).unwrap();
            black_box(layout::read_output(&vm.mem, out_base))
        })
    });

    for kind in EngineKind::ALL {
        g.bench_function(format!("tier2_nested_verisc({})", kind.name()), |b| {
            b.iter(|| {
                let mut emu = NestedEmulator::new(&program, &mem);
                emu.run(kind, 100_000_000_000).unwrap();
                black_box(emu.dyn_mem())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = emulation_overhead
}
criterion_main!(benches);
