//! E1 — §4 "Paper archive": TPC-H dump → A4 600 dpi emblems and back.
//! Criterion measures the per-stage throughput; the absolute emblem
//! counts and densities are reported by `cargo run -p ule-bench --bin
//! report` and recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use ule_emblem::{decode_emblem, encode_emblem, EmblemGeometry, EmblemHeader, EmblemKind};
use ule_media::Medium;

fn paper_archive(c: &mut Criterion) {
    let geom = EmblemGeometry::paper_a4_600dpi();
    let medium = Medium::paper_a4_600dpi();
    let payload = ule_bench::random_payload(geom.payload_capacity(), 17);
    let header = EmblemHeader::new(
        EmblemKind::Data,
        0,
        0,
        payload.len() as u32,
        payload.len() as u32,
    );

    let mut g = c.benchmark_group("e1_paper");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("encode_emblem(A4@600dpi, ~49KB)", |b| {
        b.iter(|| black_box(encode_emblem(&geom, &header, black_box(&payload))))
    });

    let emblem = encode_emblem(&geom, &header, &payload);
    g.bench_function("print+scan(A4 laser model)", |b| {
        b.iter(|| black_box(medium.scan(&medium.print(black_box(&emblem)), 5)))
    });

    let scan = medium.scan(&medium.print(&emblem), 5);
    g.bench_function("decode_emblem(degraded A4 scan)", |b| {
        b.iter(|| {
            let (_, p, _) = decode_emblem(&geom, black_box(&scan)).unwrap();
            black_box(p)
        })
    });
    g.finish();

    // DBCoder on the real TPC-H dump (the paper's input artifact).
    let dump = ule_tpch::dump_for_scale(0.0002, 42);
    let mut g = c.benchmark_group("e1_dbcoder");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(dump.len() as u64));
    g.bench_function("lzss_compress(tpch dump)", |b| {
        b.iter(|| {
            black_box(ule_compress::compress(
                ule_compress::Scheme::Lzss,
                black_box(&dump),
            ))
        })
    });
    let arc = ule_compress::compress(ule_compress::Scheme::Lzss, &dump);
    g.bench_function("lzss_decompress(tpch dump)", |b| {
        b.iter(|| black_box(ule_compress::decompress(black_box(&arc)).unwrap()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = paper_archive
}
criterion_main!(benches);
