//! Retained scalar baselines for the E11 kernel A/B.
//!
//! These are the pre-kernel implementations of the byte-loop hot paths —
//! the bitwise CRCs and the one-`Gf256::mul`-per-byte Reed–Solomon
//! parity/syndrome loops — kept in-tree so `benches/kernels.rs` and the
//! report's `[E11]` gate always measure the vectorized kernels against the
//! exact code they replaced, on the same host, in the same process. They
//! are reference implementations only: nothing in the pipeline calls them,
//! and they are bit-for-bit equivalent to the kernel paths (the `[E11]`
//! section asserts the equivalence on every run before timing anything).

use ule_gf256::{poly, Gf256};

/// The original bitwise CRC-32 (IEEE 802.3, reflected), one bit at a time.
pub fn crc32_bitwise(data: &[u8]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    for &b in data {
        state ^= b as u32;
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state ^ 0xFFFF_FFFF
}

/// The original bitwise CRC-16/CCITT-FALSE, one bit at a time.
pub fn crc16_ccitt_bitwise(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// The pre-kernel scalar RS(n, k) encoder/syndrome half: log/exp-table
/// multiplies in per-byte loops, exactly as `RsCode` ran before the
/// kernel layer (`DESIGN.md` §12).
pub struct ScalarRs {
    gf: Gf256,
    n: usize,
    k: usize,
    /// Generator polynomial, ascending coefficients, monic.
    gen: Vec<u8>,
}

impl ScalarRs {
    /// Build the scalar codec for RS(n, k) — same generator construction
    /// as [`ule_gf256::RsCode::new`].
    pub fn new(n: usize, k: usize) -> Self {
        let gf = Gf256::new();
        let mut gen = vec![1u8];
        for i in 0..(n - k) {
            gen = poly::mul(&gf, &gen, &[gf.exp(i), 1]);
        }
        Self { gf, n, k, gen }
    }

    /// Scalar synthetic division: one `Gf256::mul` per parity coefficient
    /// per message byte.
    pub fn fill_parity(&self, cw: &mut [u8]) {
        assert_eq!(cw.len(), self.n);
        let p = self.n - self.k;
        let mut rem = vec![0u8; p];
        for j in 0..self.k {
            let factor = cw[j] ^ rem[0];
            rem.copy_within(1.., 0);
            rem[p - 1] = 0;
            if factor != 0 {
                for (i, slot) in rem.iter_mut().enumerate() {
                    *slot ^= self.gf.mul(factor, self.gen[p - 1 - i]);
                }
            }
        }
        cw[self.k..].copy_from_slice(&rem);
    }

    /// Encode `msg` into a fresh codeword, scalar parity.
    pub fn encode(&self, msg: &[u8]) -> Vec<u8> {
        assert_eq!(msg.len(), self.k);
        let mut cw = vec![0u8; self.n];
        cw[..self.k].copy_from_slice(msg);
        self.fill_parity(&mut cw);
        cw
    }

    /// Scalar per-byte Horner syndromes.
    pub fn syndromes(&self, cw: &[u8]) -> Vec<u8> {
        (0..self.n - self.k)
            .map(|i| {
                let x = self.gf.exp(i);
                cw.iter().fold(0u8, |acc, &b| self.gf.mul(acc, x) ^ b)
            })
            .collect()
    }

    /// Scalar clean check — the cost a pre-kernel scan paid per clean
    /// codeword.
    pub fn is_clean(&self, cw: &[u8]) -> bool {
        self.syndromes(cw).iter().all(|&s| s == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_gf256::RsCode;

    #[test]
    fn scalar_baselines_match_kernel_implementations() {
        let data: Vec<u8> = (0..999u32).map(|i| (i * 31 % 251) as u8).collect();
        assert_eq!(crc32_bitwise(&data), ule_gf256::crc32(&data));
        assert_eq!(crc16_ccitt_bitwise(&data), ule_gf256::crc16_ccitt(&data));

        let rs = RsCode::new(255, 223);
        let srs = ScalarRs::new(255, 223);
        let msg: Vec<u8> = (0..223u32).map(|i| (i * 7 % 256) as u8).collect();
        let cw = rs.encode(&msg);
        assert_eq!(srs.encode(&msg), cw);
        assert!(srs.is_clean(&cw));
        let mut noisy = cw;
        noisy[17] ^= 0x42;
        assert_eq!(srs.syndromes(&noisy), rs.syndromes(&noisy));
    }
}
