//! `report` — regenerate every evaluation artifact of the paper in one
//! run, printing paper-reported vs. measured values side by side.
//!
//! ```sh
//! cargo run --release -p ule_bench --bin report            # quick (small TPC-H)
//! cargo run --release -p ule_bench --bin report -- --full  # paper-scale (~1.2 MB dump)
//! ```
//!
//! Results are recorded in `EXPERIMENTS.md`.
//!
//! The report is a CI gate, not just prose: every quantitative paper claim
//! it reproduces (E1 density, E4 damage boundaries, E8 byte-identity, ...)
//! is also asserted through [`Checks`], and the process exits non-zero if
//! any check fails — so a regression in a reproduced number breaks the
//! build instead of waiting for someone to eyeball the output.

use std::time::{Duration, Instant};
use ule_compress::Scheme;
use ule_emblem::stream::stream_crc32;
use ule_emblem::{decode_emblem, decode_stream, encode_stream, EmblemGeometry, EmblemKind};
use ule_media::Medium;
use ule_par::ThreadConfig;
use ule_verisc::vm::EngineKind;

/// Accumulated paper-claim checks; a failure turns into exit code 1.
/// Every check — pass or fail — is kept with its detail line, so
/// `BENCH_report.json` records the full pass/fail list instead of only
/// the failures.
#[derive(Default)]
struct Checks {
    passed: usize,
    failures: Vec<String>,
    results: Vec<(String, bool, String)>,
}

impl Checks {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        if ok {
            self.passed += 1;
            println!("  [check ok]   {name}: {detail}");
        } else {
            self.failures.push(format!("{name}: {detail}"));
            println!("  [CHECK FAIL] {name}: {detail}");
        }
        self.results.push((name.to_string(), ok, detail));
    }
}

/// Machine-readable sibling of the prose report: measured numbers keyed
/// by experiment, written to `BENCH_report.json` so runs can be diffed
/// and trended without scraping stdout. Hand-rolled flat JSON, same
/// convention as the fuzz campaign's `BENCH_fuzz.json` (no serde in the
/// workspace).
#[derive(Default)]
struct Recorder {
    mode: String,
    sections: Vec<(String, Vec<(String, String)>)>,
}

impl Recorder {
    fn put(&mut self, exp: &str, key: &str, value: String) {
        if !self.sections.iter().any(|(e, _)| e == exp) {
            self.sections.push((exp.to_string(), Vec::new()));
        }
        let sec = self.sections.iter_mut().find(|(e, _)| e == exp).unwrap();
        sec.1.push((key.to_string(), value));
    }
    fn num(&mut self, exp: &str, key: &str, v: f64) {
        self.put(exp, key, format!("{v:.4}"));
    }
    fn int(&mut self, exp: &str, key: &str, v: u64) {
        self.put(exp, key, v.to_string());
    }
    fn flag(&mut self, exp: &str, key: &str, v: bool) {
        self.put(exp, key, v.to_string());
    }
    fn ms(&mut self, exp: &str, key: &str, d: Duration) {
        self.num(exp, key, d.as_secs_f64() * 1e3);
    }
    fn write(&self, path: &str, checks: &Checks) {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        for (exp, kvs) in self.sections.iter() {
            json.push_str(&format!("  \"{exp}\": {{\n"));
            for (j, (k, v)) in kvs.iter().enumerate() {
                let comma = if j + 1 < kvs.len() { "," } else { "" };
                json.push_str(&format!("    \"{k}\": {v}{comma}\n"));
            }
            json.push_str("  },\n");
        }
        // The per-check pass/fail list — an array (not an object) because
        // some gates run once per configuration under the same name
        // (e.g. `e8_byte_identity` at 2/4/8 threads).
        json.push_str("  \"checks\": [\n");
        for (i, (name, ok, detail)) in checks.results.iter().enumerate() {
            let comma = if i + 1 < checks.results.len() {
                ","
            } else {
                ""
            };
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"ok\": {ok}, \"detail\": \"{}\"}}{comma}\n",
                ule_obs::json_escape(name),
                ule_obs::json_escape(detail)
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(path, &json).expect("write BENCH_report.json");
        println!("\nreport json: {path}");
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    // `--e11` / `--e12` run only that section (the CI `e11-kernels` and
    // `e12-emulated` legs gate them without re-deriving every other
    // experiment).
    let e11_only = std::env::args().any(|a| a == "--e11");
    let e12_only = std::env::args().any(|a| a == "--e12");
    let e13_only = std::env::args().any(|a| a == "--e13");
    let e14_only = std::env::args().any(|a| a == "--e14");
    let e15_only = std::env::args().any(|a| a == "--e15");
    println!(
        "ULE / Micr'Olonys evaluation report ({} mode{})",
        if full { "full" } else { "quick" },
        if e11_only {
            ", [E11] only"
        } else if e12_only {
            ", [E12] only"
        } else if e13_only {
            ", [E13] only"
        } else if e14_only {
            ", [E14] only"
        } else if e15_only {
            ", [E15] only"
        } else {
            ""
        }
    );
    println!("==========================================================");
    let mut checks = Checks::default();
    let mut rec = Recorder {
        mode: match (full, e11_only, e12_only, e13_only, e14_only, e15_only) {
            (_, true, _, _, _, _) => "e11".into(),
            (_, _, true, _, _, _) => "e12".into(),
            (_, _, _, true, _, _) => "e13".into(),
            (_, _, _, _, true, _) => "e14".into(),
            (_, _, _, _, _, true) => "e15".into(),
            (true, _, _, _, _, _) => "full".into(),
            _ => "quick".into(),
        },
        ..Recorder::default()
    };
    if e11_only {
        e11_kernels(&mut checks, &mut rec);
    } else if e12_only {
        // The dedicated leg also times the nested-VeRisc tier (the only
        // emulated path before the threaded engine), which is too slow
        // for the default gate run.
        e12_emulated_restore(true, &mut checks, &mut rec);
    } else if e13_only {
        e13_query(full, &mut checks, &mut rec);
    } else if e14_only {
        e14_obs(full, &mut checks, &mut rec);
    } else if e15_only {
        e15_repair(full, &mut checks, &mut rec);
    } else {
        t1_isa();
        e1_paper_archive(full, &mut checks);
        e2_microfilm();
        e3_cinema();
        e4_robustness(&mut checks);
        e5_portability();
        e6_compression(full);
        e7_emulation_overhead();
        e8_parallel_scaling(full, &mut checks, &mut rec);
        e9_recovery_envelope(full, &mut checks);
        e10_vault(full, &mut checks, &mut rec);
        e11_kernels(&mut checks, &mut rec);
        e12_emulated_restore(full, &mut checks, &mut rec);
        e13_query(full, &mut checks, &mut rec);
        e14_obs(full, &mut checks, &mut rec);
        e15_repair(full, &mut checks, &mut rec);
    }
    rec.write("BENCH_report.json", &checks);
    if checks.failures.is_empty() {
        println!(
            "\nreport complete: all {} paper-claim checks passed.",
            checks.passed
        );
    } else {
        println!(
            "\nreport FAILED: {} of {} paper-claim checks did not hold:",
            checks.failures.len(),
            checks.passed + checks.failures.len()
        );
        for f in &checks.failures {
            println!("  - {f}");
        }
        std::process::exit(1);
    }
}

fn t1_isa() {
    println!(
        "\n[T1] Table 1 — DynaRisc instruction set ({} opcodes)",
        ule_dynarisc::isa::OPCODE_COUNT
    );
    let mut last = "";
    for (class, mnemonic, operands) in ule_dynarisc::isa::table1() {
        if class != last {
            println!("  {class}:");
            last = class;
        }
        println!("    {mnemonic:<5} {operands}");
    }
}

fn e1_paper_archive(full: bool, checks: &mut Checks) {
    let scale = if full { 0.00115 } else { 0.0002 };
    println!("\n[E1] Paper archive (§4) — TPC-H SF {scale} on A4 @600dpi");
    let t0 = Instant::now();
    let dump = ule_tpch::dump_for_scale(scale, 42);
    println!(
        "  dump: {} bytes (paper: ~1.2 MB)          [gen {:?}]",
        dump.len(),
        t0.elapsed()
    );
    let medium = Medium::paper_a4_600dpi();
    let geom = medium.geometry;

    // Apples-to-apples with the paper's reported row: raw payload pages.
    let raw_pages = geom.emblems_for(dump.len());
    println!(
        "  raw-payload emblems: {} -> density {:.1} KB/page   (paper: 26 emblems, 50 KB/page)",
        raw_pages,
        dump.len() as f64 / raw_pages as f64 / 1000.0
    );
    // The paper's density row, checked on its own 1.23 MB archive size so
    // the gate is independent of the --full/quick workload scale.
    let paper_pages = geom.emblems_for(1_230_000);
    let paper_density = 1_230_000.0 / paper_pages as f64 / 1000.0;
    checks.check(
        "e1_pages",
        (25..=27).contains(&paper_pages),
        format!("1.23 MB -> {paper_pages} pages (paper: 26)"),
    );
    checks.check(
        "e1_density",
        (44.0..=53.0).contains(&paper_density),
        format!("{paper_density:.1} KB/page (paper: ~50 KB/page)"),
    );

    // With DBCoder compression (the design's actual pipeline).
    let t1 = Instant::now();
    let archive = ule_compress::compress(Scheme::Lzss, &dump);
    let lzss_pages = geom.emblems_for(archive.len());
    println!(
        "  lzss archive: {} bytes -> {} emblems -> effective density {:.1} KB/page",
        archive.len(),
        lzss_pages,
        dump.len() as f64 / lzss_pages as f64 / 1000.0
    );

    // End-to-end encode + print + scan + decode (compressed pipeline).
    let emblems = encode_stream(&geom, EmblemKind::Data, &archive, true);
    let frames = medium.print_all(&emblems);
    let encode_time = t1.elapsed();
    let t2 = Instant::now();
    let scans = medium.scan_all(&frames, 600);
    let (restored_arc, stats) = decode_stream(&geom, &scans).expect("decode stream");
    let restored = ule_compress::decompress(&restored_arc).expect("decompress");
    let decode_time = t2.elapsed();
    assert_eq!(restored, dump);
    println!(
        "  encode+print: {encode_time:?}   scan+decode: {decode_time:?}   (paper: 6 min / 3 min 20 s on 2016/2019 CPUs)"
    );
    println!(
        "  round trip: bit-exact over {} frames ({} bytes RS-corrected)",
        frames.len(),
        stats.rs_corrected
    );
}

fn film_roundtrip(medium: &Medium, paper_emblems: usize) {
    let payload = ule_bench::logo_payload();
    let geom = medium.geometry;
    let emblems = encode_stream(&geom, EmblemKind::Data, &payload, false);
    println!(
        "  payload 102400 B -> {} emblems (paper: {paper_emblems}) on {}x{} frames",
        emblems.len(),
        medium.frame_width,
        medium.frame_height
    );
    let t = Instant::now();
    let frames = medium.print_all(&emblems);
    let scans = medium.scan_all(&frames, 1964);
    let (restored, stats) = decode_stream(&geom, &scans).expect("decode");
    assert_eq!(restored, payload);
    println!(
        "  scan {}x{} -> bit-exact restore, {} B RS-corrected   [{:?}]",
        scans[0].width(),
        scans[0].height(),
        stats.rs_corrected,
        t.elapsed()
    );
}

fn e2_microfilm() {
    println!("\n[E2] Microfilm archive (§4) — 16mm, IMAGELINK-class frames");
    let medium = Medium::microfilm_16mm();
    film_roundtrip(&medium, 3);
    println!(
        "  reel capacity model: {:.2} GB / 66 m (paper: 1.3 GB); 1 TB ≈ {} reels (paper: ~800)",
        medium.capacity_bytes(66.0) as f64 / 1e9,
        (1.0e12 / medium.capacity_bytes(66.0) as f64).ceil()
    );
}

fn e3_cinema() {
    println!("\n[E3] Cinema film archive (§4) — 35mm 2K write, 4K grayscale scan");
    film_roundtrip(&Medium::cinema_35mm(), 3);
}

fn e4_robustness(checks: &mut Checks) {
    println!(
        "\n[E4] Robustness (§3.1) — inner code: 'up to 7.2% damaged data within a single emblem'"
    );
    let geom = EmblemGeometry::test_small();
    let (img, payload, _) = ule_bench::sample_emblem(&geom, 11);
    println!("  (theoretical per-block limit: 16/223 = 7.17%; area damage also clips");
    println!("   partial cells, so decodability ends just under the byte-level bound)");
    println!("  damage%  decoded  rs_corrected");
    let mut ok_below = true;
    let mut garbage_above = false;
    for pct in [0.0, 0.02, 0.04, 0.05, 0.06, 0.065, 0.07, 0.08, 0.10] {
        let damaged = ule_bench::damage_emblem(&img, &geom, pct, 23);
        match decode_emblem(&geom, &damaged) {
            Ok((_, p, stats)) if p == payload => {
                println!("  {:>6.1}%  yes      {}", pct * 100.0, stats.rs_corrected)
            }
            Ok(_) => {
                garbage_above = true;
                println!("  {:>6.1}%  WRONG    -", pct * 100.0)
            }
            Err(e) => {
                // EXPERIMENTS.md E4: area damage decodes through 6.0%; the
                // 7.17% byte-level bound is unreachable by area damage
                // because clipped partial cells also corrupt bytes.
                if pct <= 0.06 {
                    ok_below = false;
                }
                println!("  {:>6.1}%  no ({e})", pct * 100.0)
            }
        }
    }
    checks.check(
        "e4_inner_below_boundary",
        ok_below,
        "area damage <= 6.0% decodes bit-exact (paper: up to 7.2% of bytes)".into(),
    );
    checks.check(
        "e4_inner_no_garbage",
        !garbage_above,
        "beyond-boundary damage never yields silently wrong bytes".into(),
    );

    println!("  outer code: 'full restoration ... in which any three are missing'");
    let payload = ule_bench::random_payload(geom.payload_capacity() * 17, 9);
    let emblems = encode_stream(&geom, EmblemKind::Data, &payload, true);
    println!("  group: {} emblems (17 data + 3 parity)", emblems.len());
    println!("  missing  restored");
    let mut outer_ok = true;
    for missing in 0..=4usize {
        let kept: Vec<_> = emblems.iter().skip(missing).cloned().collect();
        match decode_stream(&geom, &kept) {
            Ok((p, stats)) if p == payload => {
                if missing > 3 {
                    outer_ok = false;
                }
                println!(
                    "  {missing:>7}  yes (recovered {} whole emblems)",
                    stats.emblems_recovered
                )
            }
            Ok(_) => {
                outer_ok = false;
                println!("  {missing:>7}  WRONG")
            }
            Err(e) => {
                if missing <= 3 {
                    outer_ok = false;
                }
                println!("  {missing:>7}  no ({e})")
            }
        }
    }
    checks.check(
        "e4_outer_any_three",
        outer_ok,
        "any 3 of 20 emblems recoverable, 4 fails cleanly".into(),
    );
}

fn e5_portability() {
    println!("\n[E5] Portability (§4) — independent VeRisc implementations");
    let lines = ule_verisc::spec::pseudocode_lines();
    println!("  bootstrap pseudocode: {lines} lines (paper: < 500 lines)");
    let sys = micr_olonys::MicrOlonys {
        medium: Medium::test_micro(),
        scheme: Scheme::Lzss,
        with_parity: false,
        threads: ThreadConfig::Serial,
    };
    let dump = b"COPY t (k) FROM stdin;\n1\n2\n3\n\\.\n".to_vec();
    let out = sys.archive(&dump);
    let text = out.bootstrap.to_text();
    let (prose, letters) = out.bootstrap.page_count();
    println!("  bootstrap document: {prose} prose pages + {letters} letter pages (paper: 4 + 3; see EXPERIMENTS.md note)");
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());
    for kind in EngineKind::ALL {
        let t = Instant::now();
        let (restored, stats) = micr_olonys::MicrOlonys::restore_emulated(
            &text,
            &scans,
            micr_olonys::EmulationTier::Nested(kind),
            ThreadConfig::Serial,
        )
        .expect("restore");
        assert_eq!(restored, dump);
        println!(
            "  {:<12} -> bit-exact, {:>11} VeRisc instrs, {:?}",
            kind.name(),
            stats.verisc_steps,
            t.elapsed()
        );
    }
    println!("  all implementations agree (the paper's JS/Python/C++/C# result, mechanised)");
}

fn e6_compression(full: bool) {
    let scale = if full { 0.00115 } else { 0.0002 };
    println!("\n[E6] DBCoder schemes (§3.1 'close to LZMA') — TPC-H SF {scale} dump");
    let dump = ule_tpch::dump_for_scale(scale, 42);
    println!(
        "  {:<14} {:>10} {:>8} {:>12} {:>12}",
        "scheme", "bytes", "ratio", "compress", "decompress"
    );
    for scheme in Scheme::ALL {
        let t0 = Instant::now();
        let arc = ule_compress::compress(scheme, &dump);
        let ct = t0.elapsed();
        let t1 = Instant::now();
        let back = ule_compress::decompress(&arc).unwrap();
        let dt = t1.elapsed();
        assert_eq!(back, dump);
        println!(
            "  {:<14} {:>10} {:>7.2}x {:>12?} {:>12?}",
            scheme.name(),
            arc.len(),
            dump.len() as f64 / arc.len() as f64,
            ct,
            dt
        );
    }
}

fn e7_emulation_overhead() {
    println!("\n[E7] Decode-tier ablation — the cost of universality (decode only; queries run at bare metal, §2)");
    let dump = ule_tpch::dump_for_scale(0.0002, 42);
    let data = &dump[..8192];
    let archive = ule_compress::compress(Scheme::Lzss, data);
    let (mem, out_base) = ule_dynarisc::layout::build_memory(&archive, data.len(), &[]);
    let program = ule_dynarisc::programs::dbdecode::program();

    let t = Instant::now();
    let native = ule_compress::decompress(&archive).unwrap();
    let t_native = t.elapsed();
    assert_eq!(native, data);

    let t = Instant::now();
    let mut vm = ule_dynarisc::Vm::new(program.clone(), mem.clone());
    vm.run(1_000_000_000).unwrap();
    let t_dyn = t.elapsed();
    let dyn_steps = vm.steps();
    assert_eq!(ule_dynarisc::layout::read_output(&vm.mem, out_base), data);

    let t = Instant::now();
    let mut emu = ule_verisc::NestedEmulator::new(&program, &mem);
    let v_steps = emu.run(EngineKind::MatchBased, 1_000_000_000_000).unwrap();
    let t_nested = t.elapsed();
    assert_eq!(
        ule_dynarisc::layout::read_output(&emu.dyn_mem(), out_base),
        data
    );

    println!("  tier                 time          vs native   instructions");
    println!("  native Rust          {t_native:>12?}  1.0x");
    println!(
        "  DynaRisc VM          {t_dyn:>12?}  {:.0}x        {dyn_steps} guest instrs",
        t_dyn.as_secs_f64() / t_native.as_secs_f64().max(1e-9)
    );
    println!(
        "  nested VeRisc        {t_nested:>12?}  {:.0}x        {v_steps} VeRisc instrs ({:.0} per guest instr)",
        t_nested.as_secs_f64() / t_native.as_secs_f64().max(1e-9),
        v_steps as f64 / dyn_steps as f64
    );
}

fn e8_parallel_scaling(full: bool, checks: &mut Checks, rec: &mut Recorder) {
    let scale = if full { 0.00115 } else { 0.0002 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n[E8] Parallel archive/restore scaling — E1 workload (TPC-H SF {scale}, A4 @600dpi), {cores} core(s) available"
    );
    let dump = ule_tpch::dump_for_scale(scale, 42);
    // Untimed warm-up so the serial baseline is not charged for first-run
    // costs (page faults, allocator growth) that later runs skip.
    let warmup = micr_olonys::MicrOlonys::paper_default().archive(&dump);
    drop(warmup);
    println!("  threads  archive                     restore                     frames");
    let mut serial: Option<(Duration, Duration, u32)> = None;
    let mut speedup4 = 1.0f64;
    for threads in [1usize, 2, 4, 8] {
        let sys = micr_olonys::MicrOlonys {
            medium: Medium::paper_a4_600dpi(),
            scheme: Scheme::Lzss,
            with_parity: true,
            threads: if threads == 1 {
                ThreadConfig::Serial
            } else {
                ThreadConfig::Fixed(threads)
            },
        };
        let t = Instant::now();
        let out = sys.archive(&dump);
        let t_arch = t.elapsed();
        // The same fingerprint the golden-vector suite pins, so E8 can hold
        // a u32 per run instead of hundreds of MB of A4 frames.
        let crc = stream_crc32(&out.data_frames) ^ stream_crc32(&out.system_frames);
        let t = Instant::now();
        let (restored, _) = sys.restore_native(&out.data_frames).expect("restore");
        let t_rest = t.elapsed();
        assert_eq!(restored, dump, "E8 restore must be bit-exact");
        let (s_arch, s_rest, s_crc) = *serial.get_or_insert((t_arch, t_rest, crc));
        let sp_a = s_arch.as_secs_f64() / t_arch.as_secs_f64().max(1e-9);
        let sp_r = s_rest.as_secs_f64() / t_rest.as_secs_f64().max(1e-9);
        if threads == 4 {
            speedup4 = sp_a;
        }
        let mbs = dump.len() as f64 / 1e6 / t_arch.as_secs_f64().max(1e-9);
        println!(
            "  {threads:>7}  {t_arch:>10.2?} ({mbs:>5.2} MB/s, {sp_a:>4.2}x)  {t_rest:>10.2?} ({sp_r:>4.2}x)         {}",
            if threads == 1 {
                "serial baseline"
            } else if crc == s_crc {
                "identical to serial"
            } else {
                "DIFFER FROM SERIAL"
            }
        );
        // threads == 1 *is* the baseline — comparing its CRC to itself
        // would be a vacuous check, so only the parallel runs are gated.
        if threads > 1 {
            checks.check(
                "e8_byte_identity",
                crc == s_crc,
                format!("frames at {threads} threads are byte-identical to serial"),
            );
            rec.flag("e8", &format!("byte_identical_{threads}t"), crc == s_crc);
        } else {
            rec.ms("e8", "archive_serial_ms", t_arch);
            rec.ms("e8", "restore_serial_ms", t_rest);
        }
    }
    rec.num("e8", "archive_speedup_4t", speedup4);
    // The scaling claim needs hardware the pool can actually use (>= 4
    // cores) AND a quiet machine — wall-clock speedup on a shared CI
    // runner is noise, not a regression signal. So the hard gate is
    // opt-in: set ULE_E8_STRICT=1 when measuring on dedicated multicore
    // hardware (EXPERIMENTS.md E8). Byte-identity, the deterministic half
    // of the E8 contract, is gated unconditionally above.
    let strict = std::env::var("ULE_E8_STRICT").is_ok_and(|v| v != "0");
    if strict && cores >= 4 {
        checks.check(
            "e8_speedup_4t",
            speedup4 > 1.5,
            format!("archive speedup at 4 threads = {speedup4:.2}x (target > 1.5x)"),
        );
    } else {
        println!(
            "  4-thread archive speedup {speedup4:.2}x (target > 1.5x on >= 4 dedicated cores; \
             hard gate via ULE_E8_STRICT=1, see EXPERIMENTS.md E8)"
        );
    }
}

fn e10_vault(full: bool, checks: &mut Checks, rec: &mut Recorder) {
    use ule_vault::{RestorePath, Vault, VaultError};
    let scale = if full { 0.00115 } else { 0.0002 };
    println!(
        "\n[E10] Vault: selective restore + cross-reel parity (S16) — TPC-H SF {scale}, \
         fine-grained tiny geometry"
    );
    let t0 = Instant::now();
    let w = ule_bench::E10Workload::new(scale, 42, ThreadConfig::Serial);
    println!(
        "  shelf: {} segments ({} tables), {} data + {} index + {} sys frames, \
         {} content reels + {} parity reels   [built in {:?}]",
        w.archive.stats.segments,
        w.archive.stats.tables,
        w.archive.stats.data_frames,
        w.archive.stats.index_frames,
        w.archive.stats.sys_frames,
        w.archive.stats.content_reels,
        w.archive.stats.parity_reels,
        t0.elapsed()
    );

    // Full restore: the baseline every selective figure is against.
    let t = Instant::now();
    let (full_dump, full_stats) = w
        .vault
        .restore_all(&w.archive.bootstrap, &w.scans)
        .expect("full restore");
    let t_full = t.elapsed();
    assert_eq!(full_dump, w.dump, "full restore must be bit-exact");
    println!(
        "  full restore: {} frames scanned, {:?}",
        full_stats.frames_decoded, t_full
    );

    // Selective restore per table: frames scanned and latency vs full.
    println!("  table      frames  of-full  latency   vs-full  identical");
    let mut orders_fraction = 1.0f64;
    for table in ["lineitem", "orders", "customer", "nation"] {
        let t = Instant::now();
        let (bytes, stats) = w
            .vault
            .restore_table(&w.archive.bootstrap, &w.scans, table)
            .expect("selective restore");
        let dt = t.elapsed();
        let identical = Some(bytes.as_slice()) == w.expected_table(table);
        let fraction = stats.frames_decoded as f64 / full_stats.frames_decoded as f64;
        if table == "orders" {
            orders_fraction = fraction;
        }
        println!(
            "  {table:<9} {:>6}  {:>6.1}%  {dt:>8.2?}  {:>6.2}x  {}",
            stats.frames_decoded,
            fraction * 100.0,
            t_full.as_secs_f64() / dt.as_secs_f64().max(1e-9),
            if identical { "yes" } else { "NO" }
        );
        checks.check(
            &format!("e10_selective_identity_{table}"),
            identical && stats.path == RestorePath::Selective,
            format!("selective {table} bytes == full-restore slice, no fallback"),
        );
    }
    checks.check(
        "e10_selective_scan_fraction",
        orders_fraction < 0.30,
        format!(
            "one table (orders) scans {:.1}% of the full-restore frames (target < 30%)",
            orders_fraction * 100.0
        ),
    );
    rec.ms("e10", "full_restore_ms", t_full);
    rec.num("e10", "orders_scan_fraction", orders_fraction);

    // Lost-reel recovery gate: drop each content reel in turn; a single
    // loss per parity group must restore byte-identically.
    let t = Instant::now();
    let mut lost_ok = true;
    for lost in 0..w.archive.stats.content_reels {
        let mut scans = w.scans.clone();
        scans[lost] = None;
        match w.vault.restore_all(&w.archive.bootstrap, &scans) {
            Ok((dump, stats)) => {
                lost_ok &= dump == w.dump && stats.reels_reconstructed == 1;
            }
            Err(e) => {
                println!("  lost reel {lost}: {e}");
                lost_ok = false;
            }
        }
    }
    println!(
        "  lost-reel sweep: every single content reel dropped and rebuilt from parity [{:?}]",
        t.elapsed()
    );
    checks.check(
        "e10_lost_reel_identity",
        lost_ok,
        "any single lost reel restores byte-identically via cross-reel parity".into(),
    );

    // Two reels down in one group must be the structured ReelLoss error.
    let mut scans = w.scans.clone();
    scans[0] = None;
    scans[1] = None;
    let clean = matches!(
        w.vault.restore_all(&w.archive.bootstrap, &scans),
        Err(VaultError::ReelLoss { group: 0, .. })
    );
    checks.check(
        "e10_reel_loss_structured",
        clean,
        "two lost reels in one group fail as VaultError::ReelLoss, no panic".into(),
    );

    // Pre-S16 compatibility: a classic archive (no vault line) restores
    // through the vault's fallback path.
    let classic = micr_olonys::MicrOlonys::test_tiny();
    let out = classic.archive(&w.dump);
    let scans: ule_vault::ReelScans = vec![Some(classic.medium.scan_all(&out.data_frames, 1964))];
    let vault = Vault::single_reel(classic);
    let ok = matches!(
        vault.restore_all(&out.bootstrap, &scans),
        Ok((dump, stats)) if dump == w.dump && stats.path == RestorePath::Classic
    );
    checks.check(
        "e10_pre_s16_fallback",
        ok,
        "a pre-S16 archive (no vault manifest) restores via the classic path".into(),
    );
}

fn e13_query(full: bool, checks: &mut Checks, rec: &mut Recorder) {
    use ule_tpch::archival::ShelfQuery;
    use ule_tpch::queries;
    use ule_vault::zones::ZonePredicate;
    let scale = if full { 0.00115 } else { 0.0002 };
    println!(
        "\n[E13] Archival query engine: TPC-H aggregation over cold media, no full restore — \
         SF {scale}, date-clustered dump, zone-mapped catalog"
    );
    let t0 = Instant::now();
    let w = ule_bench::E13Workload::new(scale, 42, ThreadConfig::Serial);
    println!(
        "  shelf: {} segments ({} tables), {} data frames, {} content + {} parity reels   \
         [built in {:?}]",
        w.archive.stats.segments,
        w.archive.stats.tables,
        w.archive.stats.data_frames,
        w.archive.stats.content_reels,
        w.archive.stats.parity_reels,
        t0.elapsed()
    );

    // Baselines: the monolithic restore (+ Database load) every query
    // figure is against, and E10's selective restore of the fact table.
    let t = Instant::now();
    let (full_dump, full_stats) = w
        .vault
        .restore_all(&w.archive.bootstrap, &w.scans)
        .expect("full restore");
    let t_full = t.elapsed();
    assert_eq!(full_dump, w.dump, "full restore must be bit-exact");
    let loaded = ule_tpch::parse_dump(&full_dump).expect("load restored dump");
    let (_, sel_li) = w
        .vault
        .restore_table(&w.archive.bootstrap, &w.scans, "lineitem")
        .expect("selective lineitem");
    println!(
        "  baselines: full restore {} frames ({t_full:?}), selective lineitem {} frames",
        full_stats.frames_decoded, sel_li.frames_decoded
    );

    // The three query shapes, streamed straight off the shelf.
    let shelf = w.shelf();
    const CUTOFF: &str = "1995-06-30";
    let t = Instant::now();
    let (q1, s1) = shelf.pricing_summary(CUTOFF).expect("q1");
    let t_q1 = t.elapsed();
    let t = Instant::now();
    let (q6, s6) = shelf.forecast_revenue("1994", 24).expect("q6");
    let t_q6 = t.elapsed();
    let t = Instant::now();
    let (q3, s3) = shelf.top_customers(10).expect("q3");
    let t_q3 = t.elapsed();

    let q1_oracle = queries::pricing_summary(&loaded, CUTOFF).expect("q1 oracle");
    let q6_oracle = queries::forecast_revenue(&loaded, "1994", 24).expect("q6 oracle");
    let q3_oracle = queries::top_customers(&loaded, 10);

    println!("  query                 frames  of-full   zones  latency   identical");
    for (name, stats, dt, same) in [
        ("Q1 pricing_summary", &s1, t_q1, q1 == q1_oracle),
        ("Q6 forecast_revenue", &s6, t_q6, q6 == q6_oracle),
        ("Q3 top_customers", &s3, t_q3, q3 == q3_oracle),
    ] {
        println!(
            "  {name:<21} {:>6}  {:>6.1}%  {:>3}/{:<3}  {dt:>8.2?}  {}",
            stats.frames_decoded,
            stats.frames_decoded as f64 / full_stats.frames_decoded as f64 * 100.0,
            stats.zones_selected,
            stats.zones_total,
            if same { "yes" } else { "NO" }
        );
    }
    checks.check(
        "e13_q1_answer_identity",
        q1 == q1_oracle,
        "streamed Q1 == full restore + load + query".into(),
    );
    checks.check(
        "e13_q6_answer_identity",
        q6 == q6_oracle,
        "streamed Q6 == full restore + load + query".into(),
    );
    checks.check(
        "e13_q3_answer_identity",
        q3 == q3_oracle,
        "streamed Q3 == full restore + load + query".into(),
    );
    for (name, stats) in [("q1", &s1), ("q6", &s6), ("q3", &s3)] {
        checks.check(
            &format!("e13_{name}_frames_below_full"),
            stats.frames_decoded < full_stats.frames_decoded,
            format!(
                "{} frames scanned, full restore scans {}",
                stats.frames_decoded, full_stats.frames_decoded
            ),
        );
    }
    // The headline pruning gate: the Q6 date window plus the quantity
    // bound must beat even E10's whole-table selective restore by 2x.
    let q6_fraction = s6.frames_decoded as f64 / sel_li.frames_decoded as f64;
    checks.check(
        "e13_q6_beats_selective_restore",
        q6_fraction < 0.50,
        format!(
            "Q6 scans {:.1}% of the selective lineitem restore (target < 50%)",
            q6_fraction * 100.0
        ),
    );

    // Streaming identity on every catalogued table: the unpruned scan's
    // pieces must concatenate to the exact dump slice.
    let mut stream_ok = true;
    for entry in &w.archive.index.entries {
        let (scan, _) = w
            .vault
            .query_table(
                &w.archive.bootstrap,
                &w.scans,
                &entry.name,
                &ZonePredicate::all(),
            )
            .expect("unpruned scan");
        let expect =
            &w.dump[entry.dump_start as usize..(entry.dump_start + entry.dump_len) as usize];
        if scan.concat() != expect {
            println!(
                "  [!] {}: unpruned scan differs from dump slice",
                entry.name
            );
            stream_ok = false;
        }
    }
    checks.check(
        "e13_streaming_identity_all_tables",
        stream_ok,
        format!(
            "unpruned streaming scans byte-identical to the dump on all {} segments",
            w.archive.index.entries.len()
        ),
    );

    // Pre-zone-map compatibility: the same dump archived with the PR-4
    // era composition (no zones) answers identically via the fallback.
    let (pvault, parc, pscans) = w.plain();
    let plain = ShelfQuery::new(&pvault, &parc.bootstrap, &pscans);
    let (p1, ps1) = plain.pricing_summary(CUTOFF).expect("plain q1");
    let (p6, _) = plain.forecast_revenue("1994", 24).expect("plain q6");
    let (p3, _) = plain.top_customers(10).expect("plain q3");
    checks.check(
        "e13_pre_zone_map_identity",
        p1 == q1_oracle && p6 == q6_oracle && p3 == q3_oracle && !ps1.pruned,
        "a no-zones (PR-4 era) archive answers identically through the fallback".into(),
    );

    rec.int(
        "e13",
        "full_restore_frames",
        full_stats.frames_decoded as u64,
    );
    rec.int(
        "e13",
        "selective_lineitem_frames",
        sel_li.frames_decoded as u64,
    );
    rec.int("e13", "q1_frames", s1.frames_decoded as u64);
    rec.int("e13", "q6_frames", s6.frames_decoded as u64);
    rec.int("e13", "q3_frames", s3.frames_decoded as u64);
    rec.num("e13", "q6_fraction_of_selective", q6_fraction);
    rec.int("e13", "q1_zones_selected", s1.zones_selected as u64);
    rec.int("e13", "q1_zones_total", s1.zones_total as u64);
    rec.int("e13", "q6_zones_selected", s6.zones_selected as u64);
    rec.int("e13", "q6_zones_total", s6.zones_total as u64);
    rec.ms("e13", "q1_ms", t_q1);
    rec.ms("e13", "q6_ms", t_q6);
    rec.ms("e13", "q3_ms", t_q3);
    rec.ms("e13", "full_restore_ms", t_full);
}

fn e14_obs(full: bool, checks: &mut Checks, rec: &mut Recorder) {
    use micr_olonys::MicrOlonys;
    use ule_obs::Telemetry;
    use ule_vault::zones::{ColumnRange, ZonePredicate};
    let scale = if full { 0.00115 } else { 0.0002 };
    println!(
        "\n[E14] Pipeline observability (ule_obs) — span-tree profile, decode-health counters, \
         machine-readable trace"
    );

    // Identity + overhead subject: the classic pipeline on the tiny
    // medium, scanned through the channel so decode does real RS work.
    let sys = MicrOlonys::test_tiny();
    let dump = ule_tpch::dump_for_scale(scale, 42);
    let out = sys.archive(&dump);
    let scans = sys.medium.scan_all(&out.data_frames, 0xE14);

    // Gate 1: the recorder only observes — restored bytes (and the RS
    // work done to get them) are identical with telemetry on and off.
    let (bytes_off, stats_off) = sys.restore_native(&scans).expect("restore, telemetry off");
    let tel_probe = Telemetry::enabled();
    let (bytes_on, stats_on) = sys
        .restore_native_traced(&scans, &tel_probe)
        .expect("restore, telemetry on");
    checks.check(
        "e14_identity",
        bytes_on == bytes_off
            && bytes_off == dump
            && stats_on.rs_corrected == stats_off.rs_corrected,
        "enabled-mode restore bytes are identical to disabled-mode (and bit-exact)".into(),
    );

    // Gate 2: enabled-mode restore overhead. Median-of-3 same-process
    // A/B, like every other ratio in this report.
    let t_off = time_med3(|| {
        std::hint::black_box(sys.restore_native(&scans).expect("restore"));
    });
    let t_on = time_med3(|| {
        let tel = Telemetry::enabled();
        std::hint::black_box(sys.restore_native_traced(&scans, &tel).expect("restore"));
    });
    let overhead = t_on.as_secs_f64() / t_off.as_secs_f64().max(1e-9) - 1.0;
    println!(
        "  restore wall-clock: telemetry off {t_off:.2?}, on {t_on:.2?} -> overhead {:+.2}%",
        overhead * 100.0
    );
    checks.check(
        "e14_overhead",
        overhead <= 0.05,
        format!(
            "enabled-mode restore overhead {:+.2}% (target <= 5%)",
            overhead * 100.0
        ),
    );

    // The combined pipeline trace: ONE recorder across an archive, a
    // fault-injected scan/decode, a selective restore and an E13 query —
    // the whole Figure-2 loop in a single span tree.
    let tel = Telemetry::enabled();
    let traced = sys.archive_traced(&dump, &tel);
    assert_eq!(traced.stats.archive_bytes, out.stats.archive_bytes);
    // `ule_fault` damage: blotches at 3% area on every data frame — inside
    // the inner code's E4 budget, so the restore succeeds *by correcting*
    // and the RS-health counters must light up.
    let plan = ule_fault::FaultPlan::single(ule_fault::Blotch);
    let severity = [0.02, 0.01, 0.005, 0.002, 0.001]
        .into_iter()
        .find(|&sev| {
            let probe = plan.apply(&scans, sev, 0xE14C0DE);
            sys.restore_native(&probe).is_ok()
        })
        .expect("some blotch severity decodes on the tiny medium");
    let damaged = plan.apply(&scans, severity, 0xE14C0DE);
    let (dbytes, dstats) = sys
        .restore_native_traced(&damaged, &tel)
        .expect("damaged restore");
    checks.check(
        "e14_damage_bit_exact",
        dbytes == dump,
        "fault-injected restore is still bit-exact".into(),
    );
    let corrected = tel.counter("decode.corrected_symbols");
    println!(
        "  damage run (blotch {severity}): {} corrected symbols across {} frames ({} clean)",
        corrected,
        tel.counter("decode.frames_total"),
        tel.counter("decode.clean_frames"),
    );
    checks.check(
        "e14_rs_counters_nonzero",
        corrected > 0 && dstats.corrected_symbols > 0,
        format!("damage run surfaces RS work: {corrected} corrected symbols (> 0)"),
    );

    // Selective restore + one E13 query through a telemetry-attached
    // vault, sharing the same recorder.
    let w = ule_bench::E13Workload::new(scale, 42, ThreadConfig::Serial);
    let vault = w.vault.clone().with_telemetry(tel.clone());
    let (sel_bytes, _) = vault
        .restore_table(&w.archive.bootstrap, &w.scans, "orders")
        .expect("selective restore");
    let entry = w.archive.index.find("orders").expect("orders catalogued");
    assert_eq!(
        sel_bytes.as_slice(),
        &w.dump[entry.dump_start as usize..(entry.dump_start + entry.dump_len) as usize]
    );
    let pred = ZonePredicate::all().with(ColumnRange::between(
        "l_shipdate",
        "1994-01-01",
        "1994-12-31",
    ));
    let (_, qs) = vault
        .query_table(&w.archive.bootstrap, &w.scans, "lineitem", &pred)
        .expect("query");
    checks.check(
        "e14_query_counters",
        qs.zones_pruned > 0 && tel.counter("query.zones_pruned") == qs.zones_pruned as u64,
        format!(
            "query telemetry matches engine stats ({}/{} zones pruned)",
            qs.zones_pruned, qs.zones_total
        ),
    );

    // The trace must hold per-stage spans for every pipeline leg E14
    // exercises: archive, scan/decode, selective restore, the query.
    let trace = tel.snapshot();
    let wanted = [
        "archive",
        "archive.compress",
        "archive.print",
        "scan.decode.frame",
        "restore.selective",
        "vault.query_table",
    ];
    let missing: Vec<&str> = wanted
        .iter()
        .copied()
        .filter(|s| !trace.spans.contains_key(*s))
        .collect();
    checks.check(
        "e14_trace_spans",
        missing.is_empty(),
        if missing.is_empty() {
            "per-stage spans present for archive, scan/decode, selective restore and query".into()
        } else {
            format!("missing spans: {missing:?}")
        },
    );

    // Both export surfaces: the machine-readable trace and the profile.
    let json = trace.to_json();
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    println!(
        "  trace json: BENCH_trace.json ({} spans, {} counters, {} gauges)",
        trace.spans.len(),
        trace.counters.len(),
        trace.gauges.len()
    );
    println!("  span-tree profile:");
    for line in trace.render().lines() {
        println!("    {line}");
    }

    rec.num("e14", "restore_overhead_pct", overhead * 100.0);
    rec.int("e14", "corrected_symbols", corrected);
    rec.int(
        "e14",
        "erasure_frames",
        tel.counter("decode.erasure_frames"),
    );
    rec.int("e14", "clean_frames", tel.counter("decode.clean_frames"));
    rec.int("e14", "query_zones_pruned", qs.zones_pruned as u64);
    rec.int("e14", "trace_spans", trace.spans.len() as u64);
    rec.int("e14", "trace_counters", trace.counters.len() as u64);
}

fn e15_repair(full: bool, checks: &mut Checks, rec: &mut Recorder) {
    use ule_vault::layout::StreamId;
    use ule_vault::{RestorePath, ShardPlan, Vault, VaultError};
    let scale = if full { 0.00115 } else { 0.0002 };
    println!(
        "\n[E15] Multi-parity reel groups + scrub-and-repair (§16) — RS(5, 3) shelf, \
         TPC-H SF {scale}"
    );
    let t0 = Instant::now();
    let w = ule_bench::E15Workload::new(scale, 42, ThreadConfig::Serial);
    let layout = &w.archive.layout;
    let m = layout.group_parity;
    println!(
        "  shelf: {} content reels in {} groups x {} parity reels each   [built in {:?}]",
        w.archive.stats.content_reels,
        layout.groups(),
        m,
        t0.elapsed()
    );
    rec.int("e15", "content_reels", w.archive.stats.content_reels as u64);
    rec.int("e15", "parity_reels", w.archive.stats.parity_reels as u64);
    rec.int("e15", "group_parity", m as u64);

    // Loss sweep: 0..=m lost reels in group 0 must restore byte-identically;
    // m+1 must fail as a structured ReelLoss naming every lost reel. Each
    // loss count also runs under scratch+blotch damage on the survivors.
    let damage = ule_fault::FaultPlan::single(ule_fault::BurstScratch {
        orientation: ule_fault::Orientation::Vertical,
    })
    .with(ule_fault::Blotch);
    let severity = [0.01, 0.005, 0.002, 0.001, 0.0005]
        .into_iter()
        .find(|&sev| {
            let probe: ule_vault::ReelScans = w
                .scans
                .iter()
                .map(|r| r.as_ref().map(|f| damage.apply(f, sev, 0xE15)))
                .collect();
            matches!(
                w.vault.restore_all(&w.archive.bootstrap, &probe),
                Ok((dump, _)) if dump == w.dump
            )
        })
        .expect("some scratch+blotch severity restores on the tiny medium");
    rec.num("e15", "damage_severity", severity);
    let group0: Vec<usize> = layout
        .group_members(0)
        .chain(layout.parity_reels_of(0))
        .collect();
    for lost_n in 0..=m + 1 {
        let lost = &group0[..lost_n];
        for (damaged, label) in [(false, "pristine"), (true, "scratch+blotch")] {
            let mut scans: ule_vault::ReelScans = if damaged {
                w.scans
                    .iter()
                    .map(|r| r.as_ref().map(|f| damage.apply(f, severity, 0xE15)))
                    .collect()
            } else {
                w.scans.clone()
            };
            for &r in lost {
                scans[r] = None;
            }
            let t = Instant::now();
            let res = w.vault.restore_all(&w.archive.bootstrap, &scans);
            let dt = t.elapsed();
            if lost_n <= m {
                let ok = matches!(
                    &res,
                    Ok((dump, stats)) if *dump == w.dump && stats.reels_reconstructed == lost_n
                );
                println!(
                    "  {lost_n} lost reel(s), {label:<14}: byte-identical={} [{dt:?}]",
                    if ok { "yes" } else { "NO" }
                );
                checks.check(
                    &format!(
                        "e15_identity_{lost_n}_lost_{}",
                        if damaged { "damaged" } else { "clean" }
                    ),
                    ok,
                    format!("{lost_n} lost reel(s) under {label} scans restore byte-identically"),
                );
                if !damaged {
                    rec.ms("e15", &format!("restore_{lost_n}_lost_ms"), dt);
                }
            } else {
                let ok = matches!(
                    &res,
                    Err(VaultError::ReelLoss { group: 0, lost: l, recoverable })
                        if *recoverable == m && *l == lost
                );
                println!(
                    "  {lost_n} lost reel(s), {label:<14}: structured ReelLoss={} [{dt:?}]",
                    if ok { "yes" } else { "NO" }
                );
                checks.check(
                    &format!("e15_reel_loss_structured_{}", if damaged { "damaged" } else { "clean" }),
                    ok,
                    format!(
                        "{lost_n} losses (m+1) fail as ReelLoss naming all {lost_n} reels of group 0, \
                         recoverable={m}"
                    ),
                );
            }
        }
    }

    // Degraded-mode selective read: a lost data reel must be rebuilt
    // per-frame — only the offsets the table touches, never the whole reel.
    let data_start = layout.sys_frames() + layout.index_frames();
    let mut picked = None;
    'outer: for table in ["lineitem", "orders", "customer", "partsupp"] {
        let Some(entry) = w.archive.index.find(table) else {
            continue;
        };
        let positions: Vec<usize> = w
            .archive
            .index
            .chunk_range(entry)
            .map(|c| layout.chunk_position(StreamId::Data, c))
            .collect();
        for r in 0..layout.content_reels() {
            if r * layout.reel_capacity < data_start {
                continue;
            }
            let needed = positions
                .iter()
                .filter(|&&p| layout.reel_of(p).0 == r)
                .count();
            if needed > 0 && needed < layout.reel_frames(r) {
                picked = Some((table, r, needed));
                break 'outer;
            }
        }
    }
    let (table, lost, needed) = picked.expect("some table partially covers a data reel");
    let mut scans = w.scans.clone();
    scans[lost] = None;
    let t = Instant::now();
    let (bytes, stats) = w
        .vault
        .restore_table(&w.archive.bootstrap, &scans, table)
        .expect("degraded selective restore");
    let dt = t.elapsed();
    let identical = Some(bytes.as_slice()) == w.expected_table(table);
    println!(
        "  degraded selective ({table}, reel {lost} lost): {} of {} reel frames rebuilt [{dt:?}]",
        stats.frames_reconstructed,
        layout.reel_frames(lost)
    );
    checks.check(
        "e15_degraded_selective",
        identical
            && stats.path == RestorePath::Selective
            && stats.frames_reconstructed == needed
            && stats.frames_reconstructed < layout.reel_frames(lost),
        format!(
            "selective {table} under a lost reel rebuilds exactly {needed} of {} frames",
            layout.reel_frames(lost)
        ),
    );
    rec.int(
        "e15",
        "degraded_frames_rebuilt",
        stats.frames_reconstructed as u64,
    );
    rec.int(
        "e15",
        "degraded_reel_frames",
        layout.reel_frames(lost) as u64,
    );
    rec.ms("e15", "degraded_selective_ms", dt);

    // Scrub -> repair -> scrub convergence: one reel missing, one frame
    // blanked in another; repair rebuilds both as pristine emblems, the
    // second scrub is clean and a second repair is a no-op.
    let mut scans = w.scans.clone();
    scans[0] = None;
    let blank = {
        let f = &scans[1].as_ref().unwrap()[3];
        ule_raster::GrayImage::new(f.width(), f.height(), 255)
    };
    scans[1].as_mut().unwrap()[3] = blank;
    let t = Instant::now();
    let scrub1 = w.vault.scrub(&w.archive.bootstrap, &scans).expect("scrub");
    let (clean, correctable, scrub_lost) = scrub1.counts();
    println!(
        "  scrub: {clean} clean / {correctable} correctable / {scrub_lost} lost reels, \
         {} damaged frames [{:?}]",
        scrub1.damaged_frames(),
        t.elapsed()
    );
    checks.check(
        "e15_scrub_classifies",
        scrub_lost == 1 && correctable == 1 && !scrub1.is_clean(),
        "scrub reports the missing reel lost and the blanked-frame reel correctable".into(),
    );
    let t = Instant::now();
    let repair = w
        .vault
        .repair(&w.archive.bootstrap, &mut scans)
        .expect("repair");
    let t_repair = t.elapsed();
    println!(
        "  repair: {} reels rebuilt, {} frames re-encoded, {} recovery frames decoded [{t_repair:?}]",
        repair.reels_rebuilt.len(),
        repair.frames_reencoded,
        repair.recovery_frames_decoded
    );
    let scrub2 = w
        .vault
        .scrub(&w.archive.bootstrap, &scans)
        .expect("re-scrub");
    let repair2 = w
        .vault
        .repair(&w.archive.bootstrap, &mut scans)
        .expect("re-repair");
    let restored = matches!(
        w.vault.restore_all(&w.archive.bootstrap, &scans),
        Ok((dump, stats)) if dump == w.dump && stats.reels_reconstructed == 0
    );
    checks.check(
        "e15_repair_convergence",
        repair.unrepairable.is_empty() && scrub2.is_clean() && restored,
        "scrub-after-repair is clean and the repaired shelf restores with no reconstruction".into(),
    );
    checks.check(
        "e15_repair_idempotent",
        repair2.is_noop(),
        "a second repair on the repaired shelf is a no-op".into(),
    );
    rec.int(
        "e15",
        "repair_reels_rebuilt",
        repair.reels_rebuilt.len() as u64,
    );
    rec.int(
        "e15",
        "repair_frames_reencoded",
        repair.frames_reencoded as u64,
    );
    rec.ms("e15", "repair_ms", t_repair);

    // Single-parity compatibility: the pre-§16 RS(k+1, k) shape still
    // archives, survives one loss and fails structured at two.
    let classic = Vault::sharded(
        micr_olonys::MicrOlonys::test_tiny(),
        ShardPlan::single_parity(12, 2),
    );
    let dump = ule_tpch::dump_for_scale(0.0001, 7);
    let arc = classic.archive(&dump);
    let pristine = classic.scan_reels(&arc, 7);
    let mut one = pristine.clone();
    one[0] = None;
    let one_ok = matches!(
        classic.restore_all(&arc.bootstrap, &one),
        Ok((d, _)) if d == dump
    );
    let mut two = pristine;
    two[0] = None;
    two[1] = None;
    let two_ok = matches!(
        classic.restore_all(&arc.bootstrap, &two),
        Err(VaultError::ReelLoss {
            group: 0,
            recoverable: 1,
            ..
        })
    );
    checks.check(
        "e15_single_parity_compat",
        one_ok && two_ok,
        "single-parity shelves keep their pre-§16 behaviour (1 loss ok, 2 structured)".into(),
    );
}

/// Median-of-3 wall-clock of `f` — the same-process A/B ratios below are
/// robust to shared-runner noise because both sides slow down together,
/// and the median discards one-off scheduling hiccups.
fn time_med3<F: FnMut()>(mut f: F) -> Duration {
    let mut runs: Vec<Duration> = (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    runs.sort();
    runs[1]
}

fn e11_kernels(checks: &mut Checks, rec: &mut Recorder) {
    use ule_bench::scalar;
    use ule_emblem::{inner_decode_with, inner_encode};
    use ule_gf256::RsCode;

    println!(
        "\n[E11] Vectorized GF(256)/CRC kernel layer (DESIGN.md §12) — \
         scalar-vs-kernel A/B, retained baselines from ule_bench::scalar"
    );

    // Correctness cross-checks before any timing: the two sides of every
    // A/B must be bit-identical or the ratios are meaningless.
    let buf = ule_bench::random_payload(4 << 20, 0xE11);
    assert_eq!(ule_gf256::crc32(&buf), scalar::crc32_bitwise(&buf));
    assert_eq!(
        ule_gf256::crc16_ccitt(&buf[..65536]),
        scalar::crc16_ccitt_bitwise(&buf[..65536])
    );
    let rs = RsCode::new(255, 223);
    let srs = scalar::ScalarRs::new(255, 223);
    let msgs: Vec<Vec<u8>> = (0..64u64)
        .map(|s| ule_bench::random_payload(223, s + 1))
        .collect();
    for m in &msgs {
        assert_eq!(rs.encode(m), srs.encode(m), "encoders must agree");
    }

    // CRC-32: slice-by-8 vs the original bitwise loop, 4 MiB.
    let t_bit = time_med3(|| {
        std::hint::black_box(scalar::crc32_bitwise(std::hint::black_box(&buf)));
    });
    let t_tab = time_med3(|| {
        std::hint::black_box(ule_gf256::crc32(std::hint::black_box(&buf)));
    });
    let mbs = |len: usize, d: Duration| len as f64 / 1e6 / d.as_secs_f64().max(1e-9);
    let crc_speedup = t_bit.as_secs_f64() / t_tab.as_secs_f64().max(1e-9);
    println!("  primitive        scalar           kernel           speedup");
    println!(
        "  crc32 (4 MiB)    {:>7.1} MB/s    {:>8.1} MB/s    {crc_speedup:>5.2}x",
        mbs(buf.len(), t_bit),
        mbs(buf.len(), t_tab)
    );

    // RS(255,223) encode: kernel long division vs scalar LFSR. 64
    // messages per pass, enough passes for a stable median.
    let passes = 24usize;
    let enc_bytes = passes * msgs.len() * 223;
    let t_senc = time_med3(|| {
        for _ in 0..passes {
            for m in &msgs {
                std::hint::black_box(srs.encode(std::hint::black_box(m)));
            }
        }
    });
    let t_kenc = time_med3(|| {
        for _ in 0..passes {
            for m in &msgs {
                std::hint::black_box(rs.encode(std::hint::black_box(m)));
            }
        }
    });
    let enc_speedup = t_senc.as_secs_f64() / t_kenc.as_secs_f64().max(1e-9);
    println!(
        "  rs encode        {:>7.1} MB/s    {:>8.1} MB/s    {enc_speedup:>5.2}x",
        mbs(enc_bytes, t_senc),
        mbs(enc_bytes, t_kenc)
    );

    // Clean-frame scan cost on the production medium's geometry: the
    // inner-decode of an undamaged emblem byte stream is a pure syndromes
    // pass (the decode fast path), so this pair is exactly what
    // `Medium::scan_all` + decode pays in RS work per clean frame —
    // kernel `inner_decode_with` vs a faithful replica of the pre-kernel
    // clean path (de-interleave + scalar syndromes per block).
    let geom = ule_media::Medium::microfilm_16mm().geometry;
    let payload = ule_bench::random_payload(geom.payload_capacity(), 0xC1EA);
    let coded = inner_encode(&geom, &payload);
    let nblocks = geom.rs_blocks();
    let t_sscan = time_med3(|| {
        // Pre-kernel clean inner-decode, reproduced byte for byte.
        let mut out = Vec::with_capacity(nblocks * 223);
        for b in 0..nblocks {
            let cw: Vec<u8> = (0..255).map(|i| coded[i * nblocks + b]).collect();
            assert!(srs.is_clean(&cw), "clean stream must have zero syndromes");
            out.extend_from_slice(&cw[..223]);
        }
        std::hint::black_box(out);
    });
    let t_kscan = time_med3(|| {
        let (out, fixed) =
            inner_decode_with(&geom, &coded, ThreadConfig::Serial).expect("clean decode");
        assert_eq!(fixed, 0);
        std::hint::black_box(out);
    });
    let scan_speedup = t_sscan.as_secs_f64() / t_kscan.as_secs_f64().max(1e-9);
    println!(
        "  clean decode     {:>7.1} MB/s    {:>8.1} MB/s    {scan_speedup:>5.2}x   \
         ({} frame of 16mm microfilm, {nblocks} blocks, syndromes only)",
        mbs(coded.len(), t_sscan),
        mbs(coded.len(), t_kscan),
        1
    );

    rec.num("e11", "crc32_speedup", crc_speedup);
    rec.num("e11", "rs_encode_speedup", enc_speedup);
    rec.num("e11", "clean_scan_speedup", scan_speedup);
    checks.check(
        "e11_crc32_speedup",
        crc_speedup >= 8.0,
        format!("sliced-table CRC-32 is {crc_speedup:.2}x the bitwise baseline (target >= 8x)"),
    );
    checks.check(
        "e11_rs_encode_speedup",
        enc_speedup >= 4.0,
        format!("kernel RS(255,223) encode is {enc_speedup:.2}x the scalar LFSR (target >= 4x)"),
    );
    checks.check(
        "e11_clean_scan_speedup",
        scan_speedup >= 1.5,
        format!(
            "clean-frame inner decode is {scan_speedup:.2}x the pre-kernel scalar path \
             (target >= 1.5x; EXPERIMENTS.md E11 records the measured figure)"
        ),
    );
}

fn e12_emulated_restore(measure_nested: bool, checks: &mut Checks, rec: &mut Recorder) {
    use micr_olonys::{EmulationTier, MicrOlonys};
    println!(
        "\n[E12] Parallel emulated restore — threaded-code DynaRisc dispatch (DESIGN.md §9) \
         vs native, tiny medium"
    );
    // Same workload as `tests/parallel_identity.rs`'s emulated matrix:
    // pristine frames on the tiny medium, several data emblems.
    let sys = MicrOlonys {
        medium: Medium::test_tiny(),
        scheme: Scheme::Lzss,
        with_parity: false,
        threads: ThreadConfig::Serial,
    };
    let dump = ule_tpch::dump_for_scale(0.0001, 2026);
    let out = sys.archive(&dump);
    let text = out.bootstrap.to_text();
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());
    println!(
        "  workload: {} byte dump, {} frames ({} system + {} data)",
        dump.len(),
        scans.len(),
        out.system_frames.len(),
        out.data_frames.len()
    );

    let t_native = time_med3(|| {
        let (r, _) = sys
            .restore_native(&out.data_frames)
            .expect("native restore");
        std::hint::black_box(r);
    });
    let vsn = |t: Duration| t.as_secs_f64() / t_native.as_secs_f64().max(1e-9);

    let run_tier = |tier: EmulationTier, threads: ThreadConfig| {
        let mut last = None;
        let t = time_med3(|| {
            last = Some(
                MicrOlonys::restore_emulated(&text, &scans, tier, threads)
                    .expect("emulated restore"),
            );
        });
        let (bytes, stats) = last.unwrap();
        (t, bytes, stats)
    };
    let (t_ser, b_ser, s_ser) = run_tier(EmulationTier::Threaded, ThreadConfig::Serial);
    let (t_par, b_par, s_par) = run_tier(EmulationTier::Threaded, ThreadConfig::Fixed(4));
    let (t_int, b_int, s_int) = run_tier(EmulationTier::Interpreter, ThreadConfig::Serial);

    println!("  tier                      time          vs native");
    println!("  native Rust               {t_native:>12.2?}  1.00x");
    println!(
        "  threaded, serial          {t_ser:>12.2?}  {:.2}x     ({} guest instrs)",
        vsn(t_ser),
        s_ser.guest_steps
    );
    println!(
        "  threaded, 4 threads       {t_par:>12.2?}  {:.2}x",
        vsn(t_par)
    );
    println!(
        "  interpreter, serial       {t_int:>12.2?}  {:.2}x",
        vsn(t_int)
    );

    rec.ms("e12", "native_ms", t_native);
    rec.ms("e12", "threaded_serial_ms", t_ser);
    rec.ms("e12", "threaded_4t_ms", t_par);
    rec.ms("e12", "interpreter_serial_ms", t_int);
    rec.num("e12", "threaded_overhead_vs_native", vsn(t_ser));
    rec.int("e12", "guest_steps", s_ser.guest_steps);
    rec.put(
        "e12",
        "frame_crc32",
        format!("\"{:08x}\"", s_ser.frame_crc32),
    );

    checks.check(
        "e12_threaded_bytes",
        b_ser == dump,
        "threaded-tier emulated restore is bit-exact".into(),
    );
    checks.check(
        "e12_thread_count_identity",
        b_par == b_ser
            && s_par.frame_crc32 == s_ser.frame_crc32
            && s_par.guest_steps == s_ser.guest_steps,
        format!(
            "4-thread run matches serial (bytes, frame crc {:08x}, {} guest instrs)",
            s_ser.frame_crc32, s_ser.guest_steps
        ),
    );
    checks.check(
        "e12_engine_identity",
        b_int == b_ser
            && s_int.frame_crc32 == s_ser.frame_crc32
            && s_int.guest_steps == s_ser.guest_steps,
        "interpreter tier matches threaded tier bit for bit (bytes, crc, fuel)".into(),
    );
    // The throughput claim: a fully emulated restore within one order of
    // the native decoder. Gated unconditionally — the threaded engine's
    // measured overhead (~1.3x) leaves room for runner noise.
    checks.check(
        "e12_overhead",
        vsn(t_ser) <= 8.0,
        format!(
            "threaded emulated restore is {:.2}x native (target <= 8x)",
            vsn(t_ser)
        ),
    );

    if measure_nested {
        // PR-6 baseline: before the threaded engine, the only emulated
        // path ran MODecode inside the DynaRisc-in-VeRisc emulator.
        // One timed run — at ~500x native, a median of three buys nothing.
        let t = Instant::now();
        let (b_nested, s_nested) = MicrOlonys::restore_emulated(
            &text,
            &scans,
            EmulationTier::Nested(EngineKind::MatchBased),
            ThreadConfig::Serial,
        )
        .expect("nested restore");
        let t_nested = t.elapsed();
        println!(
            "  nested VeRisc, serial     {t_nested:>12.2?}  {:.0}x      ({} VeRisc instrs)",
            vsn(t_nested),
            s_nested.verisc_steps
        );
        let speedup = t_nested.as_secs_f64() / t_ser.as_secs_f64().max(1e-9);
        println!("  threaded speedup over the nested baseline: {speedup:.0}x");
        rec.ms("e12", "nested_serial_ms", t_nested);
        rec.num("e12", "speedup_vs_nested_baseline", speedup);
        checks.check(
            "e12_nested_identity",
            b_nested == b_ser && s_nested.frame_crc32 == s_ser.frame_crc32,
            "nested tier restores the same bytes and frame crc".into(),
        );
    } else {
        println!(
            "  (nested-VeRisc baseline skipped in the gate run — `--e12` or `--full` times it; \
             EXPERIMENTS.md E12 records the figure)"
        );
    }
}

fn e9_recovery_envelope(full: bool, checks: &mut Checks) {
    // Severity semantics per model: damaged area fraction (scratches,
    // blotches, tears, spotting), dynamic range lost (fade), fraction of
    // frames lost/displaced (frame-set models) — `ule_fault::models`.
    // Targets sit under the §3.1 7.2% boundary the way E4 calibrated it
    // (area damage decodes bit-exact through 6.0%), at the outer code's
    // any-3-per-group budget for frame loss, and at the full axis for
    // reordering. `DESIGN.md` §10 holds the method.
    println!(
        "\n[E9] Recovery envelope (§3.1 'up to 7.2% damaged data', 'any three missing') — \
         physical fault injection"
    );
    // Quick mode is gate-only (one trial per case, bisect_steps = 0);
    // --full buys the real envelope brackets recorded in EXPERIMENTS.md.
    let bisect = if full { 5 } else { 0 };
    let campaign = ule_fault::RecoveryEnvelope::new(bisect).with_threads(ThreadConfig::Auto);
    for (slug, medium) in [
        ("paper", Medium::paper_a4_600dpi()),
        ("microfilm", Medium::microfilm_16mm()),
        ("cinema", Medium::cinema_35mm()),
    ] {
        let t = Instant::now();
        let workload = ule_bench::E9Workload::new(medium, 0xE900 + slug.len() as u64);
        let results = campaign.run(&workload.cases());
        println!(
            "  {} — {} scans (2 data + 3 parity), campaign {:?}",
            workload.medium.name,
            workload.scans.len(),
            t.elapsed()
        );
        println!("    model          target  gate  max-ok  min-fail  trials");
        for r in &results {
            let model = r.label.split('/').next_back().unwrap_or(&r.label);
            println!(
                "    {model:<14} {:>5.2}  {}  {:>6.2}  {:>8}  {:>6}",
                r.target,
                if r.target_ok { "ok  " } else { "FAIL" },
                r.max_ok,
                if !r.full_axis() {
                    format!("{:.2}", r.min_fail)
                } else if r.trials > 1 || r.target >= 1.0 {
                    // Genuinely probed across the axis and nothing failed.
                    "none".to_string()
                } else {
                    // Gate-only mode: severities above the target were
                    // never probed, so no failure bound is known.
                    "-".to_string()
                },
                r.trials
            );
        }
        let all_ok = results.iter().all(|r| r.target_ok);
        let failed: Vec<&str> = results
            .iter()
            .filter(|r| !r.target_ok)
            .map(|r| r.label.as_str())
            .collect();
        checks.check(
            &format!("e9_envelope_{slug}"),
            all_ok,
            if all_ok {
                format!(
                    "all {} fault models survive their §3.1-anchored target severities",
                    results.len()
                )
            } else {
                format!("failed targets: {failed:?}")
            },
        );
    }
}
