//! `report` — regenerate every evaluation artifact of the paper in one
//! run, printing paper-reported vs. measured values side by side.
//!
//! ```sh
//! cargo run --release -p ule-bench --bin report            # quick (small TPC-H)
//! cargo run --release -p ule-bench --bin report -- --full  # paper-scale (~1.2 MB dump)
//! ```
//!
//! Results are recorded in `EXPERIMENTS.md`.

use std::time::Instant;
use ule_compress::Scheme;
use ule_emblem::{decode_emblem, decode_stream, encode_stream, EmblemGeometry, EmblemKind};
use ule_media::Medium;
use ule_verisc::vm::EngineKind;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    println!(
        "ULE / Micr'Olonys evaluation report ({} mode)",
        if full { "full" } else { "quick" }
    );
    println!("==========================================================");
    t1_isa();
    e1_paper_archive(full);
    e2_microfilm();
    e3_cinema();
    e4_robustness();
    e5_portability();
    e6_compression(full);
    e7_emulation_overhead();
    println!("\nreport complete.");
}

fn t1_isa() {
    println!(
        "\n[T1] Table 1 — DynaRisc instruction set ({} opcodes)",
        ule_dynarisc::isa::OPCODE_COUNT
    );
    let mut last = "";
    for (class, mnemonic, operands) in ule_dynarisc::isa::table1() {
        if class != last {
            println!("  {class}:");
            last = class;
        }
        println!("    {mnemonic:<5} {operands}");
    }
}

fn e1_paper_archive(full: bool) {
    let scale = if full { 0.00115 } else { 0.0002 };
    println!("\n[E1] Paper archive (§4) — TPC-H SF {scale} on A4 @600dpi");
    let t0 = Instant::now();
    let dump = ule_tpch::dump_for_scale(scale, 42);
    println!(
        "  dump: {} bytes (paper: ~1.2 MB)          [gen {:?}]",
        dump.len(),
        t0.elapsed()
    );
    let medium = Medium::paper_a4_600dpi();
    let geom = medium.geometry;

    // Apples-to-apples with the paper's reported row: raw payload pages.
    let raw_pages = geom.emblems_for(dump.len());
    println!(
        "  raw-payload emblems: {} -> density {:.1} KB/page   (paper: 26 emblems, 50 KB/page)",
        raw_pages,
        dump.len() as f64 / raw_pages as f64 / 1000.0
    );

    // With DBCoder compression (the design's actual pipeline).
    let t1 = Instant::now();
    let archive = ule_compress::compress(Scheme::Lzss, &dump);
    let lzss_pages = geom.emblems_for(archive.len());
    println!(
        "  lzss archive: {} bytes -> {} emblems -> effective density {:.1} KB/page",
        archive.len(),
        lzss_pages,
        dump.len() as f64 / lzss_pages as f64 / 1000.0
    );

    // End-to-end encode + print + scan + decode (compressed pipeline).
    let emblems = encode_stream(&geom, EmblemKind::Data, &archive, true);
    let frames = medium.print_all(&emblems);
    let encode_time = t1.elapsed();
    let t2 = Instant::now();
    let scans = medium.scan_all(&frames, 600);
    let (restored_arc, stats) = decode_stream(&geom, &scans).expect("decode stream");
    let restored = ule_compress::decompress(&restored_arc).expect("decompress");
    let decode_time = t2.elapsed();
    assert_eq!(restored, dump);
    println!(
        "  encode+print: {encode_time:?}   scan+decode: {decode_time:?}   (paper: 6 min / 3 min 20 s on 2016/2019 CPUs)"
    );
    println!(
        "  round trip: bit-exact over {} frames ({} bytes RS-corrected)",
        frames.len(),
        stats.rs_corrected
    );
}

fn film_roundtrip(medium: &Medium, paper_emblems: usize) {
    let payload = ule_bench::logo_payload();
    let geom = medium.geometry;
    let emblems = encode_stream(&geom, EmblemKind::Data, &payload, false);
    println!(
        "  payload 102400 B -> {} emblems (paper: {paper_emblems}) on {}x{} frames",
        emblems.len(),
        medium.frame_width,
        medium.frame_height
    );
    let t = Instant::now();
    let frames = medium.print_all(&emblems);
    let scans = medium.scan_all(&frames, 1964);
    let (restored, stats) = decode_stream(&geom, &scans).expect("decode");
    assert_eq!(restored, payload);
    println!(
        "  scan {}x{} -> bit-exact restore, {} B RS-corrected   [{:?}]",
        scans[0].width(),
        scans[0].height(),
        stats.rs_corrected,
        t.elapsed()
    );
}

fn e2_microfilm() {
    println!("\n[E2] Microfilm archive (§4) — 16mm, IMAGELINK-class frames");
    let medium = Medium::microfilm_16mm();
    film_roundtrip(&medium, 3);
    println!(
        "  reel capacity model: {:.2} GB / 66 m (paper: 1.3 GB); 1 TB ≈ {} reels (paper: ~800)",
        medium.capacity_bytes(66.0) as f64 / 1e9,
        (1.0e12 / medium.capacity_bytes(66.0) as f64).ceil()
    );
}

fn e3_cinema() {
    println!("\n[E3] Cinema film archive (§4) — 35mm 2K write, 4K grayscale scan");
    film_roundtrip(&Medium::cinema_35mm(), 3);
}

fn e4_robustness() {
    println!(
        "\n[E4] Robustness (§3.1) — inner code: 'up to 7.2% damaged data within a single emblem'"
    );
    let geom = EmblemGeometry::test_small();
    let (img, payload, _) = ule_bench::sample_emblem(&geom, 11);
    println!("  (theoretical per-block limit: 16/223 = 7.17%; area damage also clips");
    println!("   partial cells, so decodability ends just under the byte-level bound)");
    println!("  damage%  decoded  rs_corrected");
    for pct in [0.0, 0.02, 0.04, 0.05, 0.06, 0.065, 0.07, 0.08, 0.10] {
        let damaged = ule_bench::damage_emblem(&img, &geom, pct, 23);
        match decode_emblem(&geom, &damaged) {
            Ok((_, p, stats)) if p == payload => {
                println!("  {:>6.1}%  yes      {}", pct * 100.0, stats.rs_corrected)
            }
            Ok(_) => println!("  {:>6.1}%  WRONG    -", pct * 100.0),
            Err(e) => println!("  {:>6.1}%  no ({e})", pct * 100.0),
        }
    }

    println!("  outer code: 'full restoration ... in which any three are missing'");
    let payload = ule_bench::random_payload(geom.payload_capacity() * 17, 9);
    let emblems = encode_stream(&geom, EmblemKind::Data, &payload, true);
    println!("  group: {} emblems (17 data + 3 parity)", emblems.len());
    println!("  missing  restored");
    for missing in 0..=4usize {
        let kept: Vec<_> = emblems.iter().skip(missing).cloned().collect();
        match decode_stream(&geom, &kept) {
            Ok((p, stats)) if p == payload => {
                println!(
                    "  {missing:>7}  yes (recovered {} whole emblems)",
                    stats.emblems_recovered
                )
            }
            Ok(_) => println!("  {missing:>7}  WRONG"),
            Err(e) => println!("  {missing:>7}  no ({e})"),
        }
    }
}

fn e5_portability() {
    println!("\n[E5] Portability (§4) — independent VeRisc implementations");
    let lines = ule_verisc::spec::pseudocode_lines();
    println!("  bootstrap pseudocode: {lines} lines (paper: < 500 lines)");
    let sys = micr_olonys::MicrOlonys {
        medium: Medium::test_micro(),
        scheme: Scheme::Lzss,
        with_parity: false,
    };
    let dump = b"COPY t (k) FROM stdin;\n1\n2\n3\n\\.\n".to_vec();
    let out = sys.archive(&dump);
    let text = out.bootstrap.to_text();
    let (prose, letters) = out.bootstrap.page_count();
    println!("  bootstrap document: {prose} prose pages + {letters} letter pages (paper: 4 + 3; see EXPERIMENTS.md note)");
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());
    for kind in EngineKind::ALL {
        let t = Instant::now();
        let (restored, stats) =
            micr_olonys::MicrOlonys::restore_emulated(&text, &scans, kind).expect("restore");
        assert_eq!(restored, dump);
        println!(
            "  {:<12} -> bit-exact, {:>11} VeRisc instrs, {:?}",
            kind.name(),
            stats.verisc_steps,
            t.elapsed()
        );
    }
    println!("  all implementations agree (the paper's JS/Python/C++/C# result, mechanised)");
}

fn e6_compression(full: bool) {
    let scale = if full { 0.00115 } else { 0.0002 };
    println!("\n[E6] DBCoder schemes (§3.1 'close to LZMA') — TPC-H SF {scale} dump");
    let dump = ule_tpch::dump_for_scale(scale, 42);
    println!(
        "  {:<14} {:>10} {:>8} {:>12} {:>12}",
        "scheme", "bytes", "ratio", "compress", "decompress"
    );
    for scheme in Scheme::ALL {
        let t0 = Instant::now();
        let arc = ule_compress::compress(scheme, &dump);
        let ct = t0.elapsed();
        let t1 = Instant::now();
        let back = ule_compress::decompress(&arc).unwrap();
        let dt = t1.elapsed();
        assert_eq!(back, dump);
        println!(
            "  {:<14} {:>10} {:>7.2}x {:>12?} {:>12?}",
            scheme.name(),
            arc.len(),
            dump.len() as f64 / arc.len() as f64,
            ct,
            dt
        );
    }
}

fn e7_emulation_overhead() {
    println!("\n[E7] Decode-tier ablation — the cost of universality (decode only; queries run at bare metal, §2)");
    let dump = ule_tpch::dump_for_scale(0.0002, 42);
    let data = &dump[..8192];
    let archive = ule_compress::compress(Scheme::Lzss, data);
    let (mem, out_base) = ule_dynarisc::layout::build_memory(&archive, data.len(), &[]);
    let program = ule_dynarisc::programs::dbdecode::program();

    let t = Instant::now();
    let native = ule_compress::decompress(&archive).unwrap();
    let t_native = t.elapsed();
    assert_eq!(native, data);

    let t = Instant::now();
    let mut vm = ule_dynarisc::Vm::new(program.clone(), mem.clone());
    vm.run(1_000_000_000).unwrap();
    let t_dyn = t.elapsed();
    let dyn_steps = vm.steps();
    assert_eq!(ule_dynarisc::layout::read_output(&vm.mem, out_base), data);

    let t = Instant::now();
    let mut emu = ule_verisc::NestedEmulator::new(&program, &mem);
    let v_steps = emu.run(EngineKind::MatchBased, 1_000_000_000_000).unwrap();
    let t_nested = t.elapsed();
    assert_eq!(
        ule_dynarisc::layout::read_output(&emu.dyn_mem(), out_base),
        data
    );

    println!("  tier                 time          vs native   instructions");
    println!("  native Rust          {t_native:>12?}  1.0x");
    println!(
        "  DynaRisc VM          {t_dyn:>12?}  {:.0}x        {dyn_steps} guest instrs",
        t_dyn.as_secs_f64() / t_native.as_secs_f64().max(1e-9)
    );
    println!(
        "  nested VeRisc        {t_nested:>12?}  {:.0}x        {v_steps} VeRisc instrs ({:.0} per guest instr)",
        t_nested.as_secs_f64() / t_native.as_secs_f64().max(1e-9),
        v_steps as f64 / dyn_steps as f64
    );
}
