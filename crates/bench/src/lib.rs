//! Shared workload builders for the benchmark harness (system **S13**).
//!
//! Every table and figure in the paper's evaluation (§4) maps to one bench
//! target plus a section of the `report` binary — see the experiment index
//! in `DESIGN.md` and the recorded results in `EXPERIMENTS.md`.

use ule_emblem::{encode_emblem, EmblemGeometry, EmblemHeader, EmblemKind};
use ule_raster::GrayImage;

/// Deterministic pseudo-random payload of `n` bytes (incompressible-ish).
pub fn random_payload(n: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}

/// The synthetic 102 400-byte stand-in for the paper's logo TIFF (E2/E3).
pub fn logo_payload() -> Vec<u8> {
    let mut img = GrayImage::new(320, 320, 255);
    for y in 0..320usize {
        for x in 0..320usize {
            let dx = x as f64 - 160.0;
            let dy = y as f64 - 160.0;
            let r = (dx * dx + dy * dy).sqrt();
            if (60.0..90.0).contains(&r) || (110.0..130.0).contains(&r) {
                img.set(x, y, 0);
            }
        }
    }
    img.into_raw()
}

/// One filled emblem image for a geometry (max payload).
pub fn sample_emblem(geom: &EmblemGeometry, seed: u64) -> (GrayImage, Vec<u8>, EmblemHeader) {
    let payload = random_payload(geom.payload_capacity(), seed);
    let header = EmblemHeader::new(
        EmblemKind::Data,
        0,
        0,
        payload.len() as u32,
        payload.len() as u32,
    );
    (encode_emblem(geom, &header, &payload), payload, header)
}

/// Paint a fraction of an emblem's *data region* with a corrupting pattern
/// (localised damage), mimicking §3.1's "damaged data within a single
/// emblem" figure. Returns the damaged copy.
pub fn damage_emblem(
    img: &GrayImage,
    geom: &EmblemGeometry,
    fraction: f64,
    seed: u64,
) -> GrayImage {
    use ule_emblem::geometry::{EDGE_CELLS, OVERHEAD_ROWS, QUIET_CELLS};
    let mut out = img.clone();
    let cp = geom.cell_px;
    let origin = (QUIET_CELLS + EDGE_CELLS) * cp;
    let data_rows = geom.rows - OVERHEAD_ROWS;
    let region_h = data_rows * cp;
    let region_w = geom.cols * cp;
    let band_h = ((region_h as f64) * fraction) as usize;
    let y0 = origin + OVERHEAD_ROWS * cp + (seed as usize % (region_h.saturating_sub(band_h) + 1));
    for y in y0..(y0 + band_h).min(img.height()) {
        for x in origin..(origin + region_w).min(img.width()) {
            out.set(x, y, if (x / cp + y / cp) % 2 == 0 { 0 } else { 255 });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logo_payload_is_102kb() {
        assert_eq!(logo_payload().len(), 102_400);
    }

    #[test]
    fn damage_is_bounded_to_data_region() {
        let geom = EmblemGeometry::test_small();
        let (img, _, _) = sample_emblem(&geom, 1);
        let damaged = damage_emblem(&img, &geom, 0.05, 3);
        let changed = img.diff_fraction(&damaged);
        assert!(changed > 0.0 && changed < 0.10, "changed {changed}");
    }

    #[test]
    fn random_payload_deterministic() {
        assert_eq!(random_payload(64, 5), random_payload(64, 5));
        assert_ne!(random_payload(64, 5), random_payload(64, 6));
    }
}
