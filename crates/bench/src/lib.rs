//! Shared workload builders for the benchmark harness (system **S13**).
//!
//! Every table and figure in the paper's evaluation (§4) maps to one bench
//! target plus a section of the `report` binary — see the experiment index
//! in `DESIGN.md` and the recorded results in `EXPERIMENTS.md`.

use std::sync::Arc;
use ule_emblem::{
    decode_stream, encode_emblem, encode_stream, EmblemGeometry, EmblemHeader, EmblemKind,
};
use ule_fault::{
    Blotch, BurstScratch, ContrastFade, EdgeTear, EnvelopeCase, FaultModel, FaultPlan,
    FrameLossFault, FrameReorderFault, Orientation, SaltPepper,
};
use ule_media::Medium;
use ule_raster::GrayImage;

pub mod scalar;

/// Deterministic pseudo-random payload of `n` bytes (incompressible-ish).
pub fn random_payload(n: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}

/// The synthetic 102 400-byte stand-in for the paper's logo TIFF (E2/E3).
pub fn logo_payload() -> Vec<u8> {
    let mut img = GrayImage::new(320, 320, 255);
    for y in 0..320usize {
        for x in 0..320usize {
            let dx = x as f64 - 160.0;
            let dy = y as f64 - 160.0;
            let r = (dx * dx + dy * dy).sqrt();
            if (60.0..90.0).contains(&r) || (110.0..130.0).contains(&r) {
                img.set(x, y, 0);
            }
        }
    }
    img.into_raw()
}

/// One filled emblem image for a geometry (max payload).
pub fn sample_emblem(geom: &EmblemGeometry, seed: u64) -> (GrayImage, Vec<u8>, EmblemHeader) {
    let payload = random_payload(geom.payload_capacity(), seed);
    let header = EmblemHeader::new(
        EmblemKind::Data,
        0,
        0,
        payload.len() as u32,
        payload.len() as u32,
    );
    (encode_emblem(geom, &header, &payload), payload, header)
}

/// Paint a fraction of an emblem's *data region* with a corrupting pattern
/// (localised damage), mimicking §3.1's "damaged data within a single
/// emblem" figure. Returns the damaged copy.
pub fn damage_emblem(
    img: &GrayImage,
    geom: &EmblemGeometry,
    fraction: f64,
    seed: u64,
) -> GrayImage {
    use ule_emblem::geometry::{EDGE_CELLS, OVERHEAD_ROWS, QUIET_CELLS};
    let mut out = img.clone();
    let cp = geom.cell_px;
    let origin = (QUIET_CELLS + EDGE_CELLS) * cp;
    let data_rows = geom.rows - OVERHEAD_ROWS;
    let region_h = data_rows * cp;
    let region_w = geom.cols * cp;
    let band_h = ((region_h as f64) * fraction) as usize;
    let y0 = origin + OVERHEAD_ROWS * cp + (seed as usize % (region_h.saturating_sub(band_h) + 1));
    for y in y0..(y0 + band_h).min(img.height()) {
        for x in origin..(origin + region_w).min(img.width()) {
            out.set(x, y, if (x / cp + y / cp) % 2 == 0 { 0 } else { 255 });
        }
    }
    out
}

/// The E9 fault-model sweep: every model in the standard zoo paired with
/// the severity its §3.1-anchored gate must survive.
///
/// Area-fraction models (horizontal scratches, blotches) target 4% — under
/// the paper's 7.2% intra-emblem byte boundary with the margin E4 measured
/// for area damage (bit-exact through 6.0%). Vertical scratches target 2%:
/// a narrow band clips every 16-cell byte it crosses, amplifying area into
/// byte damage by roughly `(w + byte_width) / w`, and the measured
/// boundary on the finest-pitch medium (cinema 2K) sits at ~2.5–3%.
/// Salt-and-pepper targets 3% of *pixels* flipped (cell means absorb most
/// specks; the fine-pitch boundary is ~3–4%). [`ContrastFade`]'s axis is
/// dynamic range lost (Otsu thresholding keeps decoding past 50%; 30% is
/// the conservative gate). [`EdgeTear`] and [`FrameLossFault`] kill whole
/// frames, so the outer code's any-3-per-group budget gates them: on the
/// 5-frame E9 workload (2 data + 3 parity) that is severity 0.6 for loss
/// and 0.4 (2 torn frames) for tears. Reordering alone must never break a
/// restorer — a full axis. `EXPERIMENTS.md` E9 records the measured
/// brackets behind these numbers.
pub fn e9_model_sweep() -> Vec<(Box<dyn FaultModel>, f64)> {
    vec![
        (
            Box::new(BurstScratch {
                orientation: Orientation::Vertical,
            }),
            0.02,
        ),
        (
            Box::new(BurstScratch {
                orientation: Orientation::Horizontal,
            }),
            0.04,
        ),
        (Box::new(Blotch), 0.04),
        (Box::new(EdgeTear), 0.40),
        (Box::new(SaltPepper), 0.03),
        (Box::new(ContrastFade), 0.30),
        (Box::new(FrameLossFault), 0.60),
        (Box::new(FrameReorderFault), 1.0),
    ]
}

/// The scans and payload of one E9 workload: a 2-data + 3-parity emblem
/// group printed and scanned on `medium`. Scans are computed once and
/// shared (`Arc`) across every envelope trial — physical decay varies per
/// trial, the scanner pass does not.
pub struct E9Workload {
    pub medium: Medium,
    pub payload: Arc<Vec<u8>>,
    pub scans: Arc<Vec<GrayImage>>,
}

impl E9Workload {
    pub fn new(medium: Medium, seed: u64) -> Self {
        let geom = medium.geometry;
        let payload = random_payload(geom.payload_capacity() + 500, seed);
        let emblems = encode_stream(&geom, EmblemKind::Data, &payload, true);
        let frames = medium.print_all(&emblems);
        let scans = medium.scan_all(&frames, seed ^ 0xE9);
        Self {
            medium,
            payload: Arc::new(payload),
            scans: Arc::new(scans),
        }
    }

    /// One [`EnvelopeCase`] per model in [`e9_model_sweep`]: inject the
    /// fault into the cached scans at the probed severity, run the full
    /// native restore, demand bit-exact payload recovery. Each trial is
    /// deterministic in `(model, severity)` — the campaign is replayable.
    pub fn cases(&self) -> Vec<EnvelopeCase> {
        e9_model_sweep()
            .into_iter()
            .map(|(model, target)| {
                let label = format!("{}/{}", self.medium.name, model.name());
                let mut plan = FaultPlan::new();
                plan.push(model);
                let geom = self.medium.geometry;
                let scans = Arc::clone(&self.scans);
                let payload = Arc::clone(&self.payload);
                EnvelopeCase::new(label, target, move |severity| {
                    let faulted = plan.apply(&scans, severity, 0xE9C0_FFEE);
                    match decode_stream(&geom, &faulted) {
                        Ok((restored, _)) => restored == **payload,
                        Err(_) => false,
                    }
                })
            })
            .collect()
    }
}

/// The E10 workload: a TPC-H dump archived as a parity-sharded vault on
/// the fine-grained tiny medium (so the archive spans enough frames for
/// frames-scanned fractions to be meaningful), with pristine reel scans
/// cached for the selective-restore / lost-reel measurements.
pub struct E10Workload {
    pub vault: ule_vault::Vault,
    pub dump: Vec<u8>,
    pub archive: ule_vault::VaultArchive,
    pub scans: ule_vault::ReelScans,
}

impl E10Workload {
    /// Build the workload at TPC-H `scale`. Reel capacity is chosen so
    /// the shelf holds ~6 content reels in 3-reel parity groups.
    pub fn new(scale: f64, seed: u64, threads: ule_par::ThreadConfig) -> Self {
        let dump = ule_tpch::dump_for_scale(scale, seed);
        let system = micr_olonys::MicrOlonys::test_tiny().with_threads(threads);
        // Size the shelf from the byte-level plan (no frames rendered) to
        // pick a capacity giving ~6 content reels (min 8 frames so tiny
        // dumps still shard).
        let total = ule_vault::Vault::single_reel(system.clone())
            .plan_layout(&dump)
            .total_frames();
        let vault = ule_vault::Vault::sharded(
            system,
            ule_vault::ShardPlan::single_parity(total.div_ceil(6).max(8), 3),
        );
        let archive = vault.archive(&dump);
        let scans = vault.scan_reels(&archive, seed ^ 0xE10);
        Self {
            vault,
            dump,
            archive,
            scans,
        }
    }

    /// The dump slice the catalog maps `table` to — what a selective
    /// restore must reproduce byte for byte.
    pub fn expected_table(&self, table: &str) -> Option<&[u8]> {
        let e = self.archive.index.find(table)?;
        Some(&self.dump[e.dump_start as usize..(e.dump_start + e.dump_len) as usize])
    }
}

/// Cluster the fact tables on their date predicate columns before
/// dumping. TPC-H dates are uniform per row, so in generation order every
/// zone spans the whole 1992–1998 window and a date range prunes nothing;
/// `COPY` row order is semantically irrelevant, so an archival dump is
/// free to choose the order that makes its zone maps selective — the
/// archival analogue of clustering a table on its partition key.
pub fn cluster_on_dates(db: &mut ule_tpch::Database) {
    for (name, col) in [("lineitem", "l_shipdate"), ("orders", "o_orderdate")] {
        if let Some(t) = db.tables.iter_mut().find(|t| t.name == name) {
            if let Some(ci) = t.columns.iter().position(|c| *c == col) {
                t.rows
                    .sort_by(|a, b| a[ci].cmp(&b[ci]).then_with(|| a.cmp(b)));
            }
        }
    }
}

/// The E13 workload: a date-clustered TPC-H dump archived as a zone-mapped
/// vault, with the generating [`ule_tpch::Database`] kept around as the
/// answer-identity oracle for the streaming queries.
pub struct E13Workload {
    pub vault: ule_vault::Vault,
    pub db: ule_tpch::Database,
    pub dump: Vec<u8>,
    pub archive: ule_vault::VaultArchive,
    pub scans: ule_vault::ReelScans,
}

impl E13Workload {
    pub fn new(scale: f64, seed: u64, threads: ule_par::ThreadConfig) -> Self {
        let mut db = ule_tpch::Database::generate(scale, seed);
        cluster_on_dates(&mut db);
        let dump = ule_tpch::sql_dump(&db);
        let system = micr_olonys::MicrOlonys::test_tiny().with_threads(threads);
        let total = ule_vault::Vault::single_reel(system.clone())
            .plan_layout(&dump)
            .total_frames();
        let vault = ule_vault::Vault::sharded(
            system,
            ule_vault::ShardPlan::single_parity(total.div_ceil(6).max(8), 3),
        );
        let archive = vault.archive(&dump);
        let scans = vault.scan_reels(&archive, seed ^ 0xE13);
        Self {
            vault,
            db,
            dump,
            archive,
            scans,
        }
    }

    /// The queryable shelf over the cached scans.
    pub fn shelf(&self) -> ule_tpch::archival::ShelfQuery<'_> {
        ule_tpch::archival::ShelfQuery::new(&self.vault, &self.archive.bootstrap, &self.scans)
    }

    /// The same dump archived *without* zone maps — the PR-4-era
    /// composition the no-zones fallback must answer identically on.
    pub fn plain(
        &self,
    ) -> (
        ule_vault::Vault,
        ule_vault::VaultArchive,
        ule_vault::ReelScans,
    ) {
        let vault =
            ule_vault::Vault::sharded(self.vault.system.clone(), self.vault.plan).without_zones();
        let archive = vault.archive(&self.dump);
        let scans = vault.scan_reels(&archive, 0x13E);
        (vault, archive, scans)
    }
}

/// The E15 workload: the E10 shelf re-sharded as RS(5, 3) reel groups —
/// three content reels plus **two** parity reels per group — so the
/// repair gate can sweep 0..=m+1 simultaneous reel losses and exercise
/// `Vault::scrub` / `Vault::repair` (`DESIGN.md` §16).
pub struct E15Workload {
    pub vault: ule_vault::Vault,
    pub dump: Vec<u8>,
    pub archive: ule_vault::VaultArchive,
    pub scans: ule_vault::ReelScans,
}

impl E15Workload {
    /// Build the workload at TPC-H `scale` with m = 2 parity reels per
    /// 3-reel group. Capacity sizing mirrors [`E10Workload::new`].
    pub fn new(scale: f64, seed: u64, threads: ule_par::ThreadConfig) -> Self {
        let dump = ule_tpch::dump_for_scale(scale, seed);
        let system = micr_olonys::MicrOlonys::test_tiny().with_threads(threads);
        let total = ule_vault::Vault::single_reel(system.clone())
            .plan_layout(&dump)
            .total_frames();
        let vault = ule_vault::Vault::sharded(
            system,
            ule_vault::ShardPlan::with_parity(total.div_ceil(6).max(8), 3, 2),
        );
        let archive = vault.archive(&dump);
        let scans = vault.scan_reels(&archive, seed ^ 0xE15);
        Self {
            vault,
            dump,
            archive,
            scans,
        }
    }

    /// The dump slice the catalog maps `table` to.
    pub fn expected_table(&self, table: &str) -> Option<&[u8]> {
        let e = self.archive.index.find(table)?;
        Some(&self.dump[e.dump_start as usize..(e.dump_start + e.dump_len) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logo_payload_is_102kb() {
        assert_eq!(logo_payload().len(), 102_400);
    }

    #[test]
    fn damage_is_bounded_to_data_region() {
        let geom = EmblemGeometry::test_small();
        let (img, _, _) = sample_emblem(&geom, 1);
        let damaged = damage_emblem(&img, &geom, 0.05, 3);
        let changed = img.diff_fraction(&damaged);
        assert!(changed > 0.0 && changed < 0.10, "changed {changed}");
    }

    #[test]
    fn random_payload_deterministic() {
        assert_eq!(random_payload(64, 5), random_payload(64, 5));
        assert_ne!(random_payload(64, 5), random_payload(64, 6));
    }

    #[test]
    fn e10_workload_is_sharded_and_selective_restore_is_cheap() {
        let w = E10Workload::new(0.0001, 7, ule_par::ThreadConfig::Serial);
        assert!(w.archive.stats.content_reels >= 2);
        assert!(w.archive.stats.parity_reels >= 1);
        let (bytes, stats) = w
            .vault
            .restore_table(&w.archive.bootstrap, &w.scans, "orders")
            .unwrap();
        assert_eq!(bytes.as_slice(), w.expected_table("orders").unwrap());
        assert!(stats.frames_decoded < stats.data_frames_total);
    }

    #[test]
    fn e15_workload_survives_two_losses_per_group() {
        let w = E15Workload::new(0.0001, 7, ule_par::ThreadConfig::Serial);
        assert_eq!(w.vault.plan.parity_reels, 2);
        let mut scans = w.scans.clone();
        scans[0] = None;
        scans[1] = None;
        let (dump, stats) = w.vault.restore_all(&w.archive.bootstrap, &scans).unwrap();
        assert_eq!(dump, w.dump);
        assert_eq!(stats.reels_reconstructed, 2);
    }

    #[test]
    fn e13_workload_is_clustered_and_prunes() {
        let w = E13Workload::new(0.0001, 7, ule_par::ThreadConfig::Serial);
        // Clustering: lineitem rows arrive in shipdate order.
        let li = w.db.tables.iter().find(|t| t.name == "lineitem").unwrap();
        let ship = li.columns.iter().position(|c| *c == "l_shipdate").unwrap();
        assert!(li.rows.windows(2).all(|p| p[0][ship] <= p[1][ship]));
        // A narrow query beats the whole-table selective restore.
        let (_, stats) = w.shelf().forecast_revenue("1994", 24).unwrap();
        let (_, sel) = w
            .vault
            .restore_table(&w.archive.bootstrap, &w.scans, "lineitem")
            .unwrap();
        assert!(stats.frames_decoded <= sel.frames_decoded);
        // The plain variant carries no zones at all.
        let (_, parc, _) = w.plain();
        assert!(parc.index.entries.iter().all(|e| e.zones.is_empty()));
    }

    #[test]
    fn e9_workload_covers_the_model_zoo_and_survives_severity_zero() {
        let w = E9Workload::new(Medium::test_tiny(), 7);
        assert_eq!(w.scans.len(), 5, "2 data + 3 parity frames");
        let cases = w.cases();
        assert_eq!(cases.len(), e9_model_sweep().len());
        for case in &cases {
            assert!(
                (case.survives)(0.0),
                "{}: severity 0 must survive",
                case.label
            );
        }
    }
}
