//! The `ULEA` archive container shared by every DBCoder scheme.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0   4  magic "ULEA"
//! 4   1  format version (1)
//! 5   1  scheme id
//! 6   8  original (uncompressed) length
//! 14  4  CRC-32 of the original data
//! 18  …  scheme payload
//! ```
//!
//! The header is what the DynaRisc `DBDecode` program parses during
//! emulated restoration, so its layout is frozen.

use crate::{columnar, lza, lzss, rle};
use std::fmt;

/// Magic bytes at the start of every archive.
pub const MAGIC: [u8; 4] = *b"ULEA";
/// Current container version.
pub const VERSION: u8 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 18;

/// Compression scheme identifiers (frozen: they are archived on media).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Scheme {
    /// No compression; payload is the raw data.
    Store = 0,
    /// Run-length baseline.
    Rle = 1,
    /// LZSS(4096) — archival default; decoder exists in DynaRisc assembly.
    Lzss = 2,
    /// LZ77 + adaptive arithmetic coding (the paper's headline scheme).
    Lza = 3,
    /// Columnar SQL-dump re-layout over LZA (paper §5 future work).
    ColumnarSql = 4,
}

impl Scheme {
    /// All supported schemes, in id order.
    pub const ALL: [Scheme; 5] = [
        Scheme::Store,
        Scheme::Rle,
        Scheme::Lzss,
        Scheme::Lza,
        Scheme::ColumnarSql,
    ];

    pub fn from_id(id: u8) -> Option<Scheme> {
        Scheme::ALL.get(id as usize).copied()
    }

    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Store => "store",
            Scheme::Rle => "rle",
            Scheme::Lzss => "lzss",
            Scheme::Lza => "lza",
            Scheme::ColumnarSql => "columnar-sql",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from [`decompress`].
#[derive(Debug, PartialEq, Eq)]
pub enum ArchiveError {
    /// Too short or wrong magic.
    NotAnArchive,
    /// Unknown version byte.
    UnsupportedVersion(u8),
    /// Unknown scheme id.
    UnknownScheme(u8),
    /// Scheme payload failed to decode.
    Corrupt(String),
    /// Decoded data does not match the stored CRC-32.
    ChecksumMismatch { stored: u32, computed: u32 },
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::NotAnArchive => write!(f, "not a ULEA archive"),
            ArchiveError::UnsupportedVersion(v) => write!(f, "unsupported archive version {v}"),
            ArchiveError::UnknownScheme(s) => write!(f, "unknown scheme id {s}"),
            ArchiveError::Corrupt(msg) => write!(f, "corrupt payload: {msg}"),
            ArchiveError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for ArchiveError {}

/// CRC-32 used by the container (same polynomial as `ule_gf256::crc::crc32`;
/// duplicated here so the compression substrate stays dependency-free).
fn crc32(data: &[u8]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    for &b in data {
        state ^= b as u32;
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state ^ 0xFFFF_FFFF
}

/// Compress `data` under `scheme` into a self-describing archive.
pub fn compress(scheme: Scheme, data: &[u8]) -> Vec<u8> {
    let payload = match scheme {
        Scheme::Store => data.to_vec(),
        Scheme::Rle => rle::compress(data),
        Scheme::Lzss => lzss::compress(data),
        Scheme::Lza => lza::compress(data),
        Scheme::ColumnarSql => columnar::compress(data),
    };
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(scheme as u8);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parse header fields without decoding the payload.
pub fn inspect(archive: &[u8]) -> Result<(Scheme, u64, u32), ArchiveError> {
    if archive.len() < HEADER_LEN || archive[..4] != MAGIC {
        return Err(ArchiveError::NotAnArchive);
    }
    if archive[4] != VERSION {
        return Err(ArchiveError::UnsupportedVersion(archive[4]));
    }
    let scheme = Scheme::from_id(archive[5]).ok_or(ArchiveError::UnknownScheme(archive[5]))?;
    let len = u64::from_le_bytes(archive[6..14].try_into().unwrap());
    let crc = u32::from_le_bytes(archive[14..18].try_into().unwrap());
    Ok((scheme, len, crc))
}

/// Decompress a `ULEA` archive, verifying the CRC.
pub fn decompress(archive: &[u8]) -> Result<Vec<u8>, ArchiveError> {
    let (scheme, len, stored_crc) = inspect(archive)?;
    let len = len as usize;
    let payload = &archive[HEADER_LEN..];
    let data = match scheme {
        Scheme::Store => {
            if payload.len() < len {
                return Err(ArchiveError::Corrupt(
                    "store payload shorter than length".into(),
                ));
            }
            payload[..len].to_vec()
        }
        Scheme::Rle => {
            rle::decompress(payload, len).map_err(|e| ArchiveError::Corrupt(e.to_string()))?
        }
        Scheme::Lzss => {
            lzss::decompress(payload, len).map_err(|e| ArchiveError::Corrupt(e.to_string()))?
        }
        Scheme::Lza => {
            lza::decompress(payload, len).map_err(|e| ArchiveError::Corrupt(e.to_string()))?
        }
        Scheme::ColumnarSql => columnar::decompress(payload, len).map_err(ArchiveError::Corrupt)?,
    };
    let computed = crc32(&data);
    if computed != stored_crc {
        return Err(ArchiveError::ChecksumMismatch {
            stored: stored_crc,
            computed,
        });
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut data = Vec::new();
        for i in 0..300 {
            data.extend_from_slice(format!("row {i}: value {}\n", i * 17 % 97).as_bytes());
        }
        data
    }

    #[test]
    fn every_scheme_roundtrips() {
        let data = sample();
        for scheme in Scheme::ALL {
            let arc = compress(scheme, &data);
            let back = decompress(&arc).unwrap();
            assert_eq!(back, data, "scheme {scheme}");
        }
    }

    #[test]
    fn inspect_reads_header() {
        let data = sample();
        let arc = compress(Scheme::Lza, &data);
        let (scheme, len, _) = inspect(&arc).unwrap();
        assert_eq!(scheme, Scheme::Lza);
        assert_eq!(len as usize, data.len());
    }

    #[test]
    fn wrong_magic_rejected() {
        assert_eq!(decompress(b"NOPE").unwrap_err(), ArchiveError::NotAnArchive);
        assert_eq!(decompress(b"").unwrap_err(), ArchiveError::NotAnArchive);
    }

    #[test]
    fn unknown_scheme_rejected() {
        let mut arc = compress(Scheme::Store, b"x");
        arc[5] = 99;
        assert_eq!(
            decompress(&arc).unwrap_err(),
            ArchiveError::UnknownScheme(99)
        );
    }

    #[test]
    fn corrupt_payload_fails_checksum_or_decode() {
        let data = sample();
        let mut arc = compress(Scheme::Lzss, &data);
        let n = arc.len();
        arc[n / 2] ^= 0xFF;
        assert!(decompress(&arc).is_err());
    }

    #[test]
    fn version_check() {
        let mut arc = compress(Scheme::Store, b"y");
        arc[4] = 9;
        assert_eq!(
            decompress(&arc).unwrap_err(),
            ArchiveError::UnsupportedVersion(9)
        );
    }

    #[test]
    fn empty_data_all_schemes() {
        for scheme in Scheme::ALL {
            let arc = compress(scheme, b"");
            assert_eq!(decompress(&arc).unwrap(), b"");
        }
    }
}
