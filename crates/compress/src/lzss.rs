//! LZSS — the archival-default DBCoder scheme.
//!
//! Deliberately 16-bit-machine-friendly so the decoder can be (and is)
//! ported to DynaRisc assembly (`ule_dynarisc::programs::dbdecode`):
//!
//! * window 4096 bytes, match length 3..=18;
//! * stream = repeated groups of one flag byte followed by 8 items;
//! * flag bit i (LSB first) set ⇒ item i is a literal byte;
//!   clear ⇒ item i is a 16-bit little-endian token `[len-3:4 | dist-1:12]`
//!   (low 12 bits = distance-1, high 4 bits = length-3).
//!
//! The format has no end marker; the decoder stops after producing the
//! number of bytes recorded in the archive container.

use crate::matchfinder::MatchFinder;

/// Sliding-window size (must match the DynaRisc decoder).
pub const WINDOW: usize = 4096;
/// Minimum back-reference length.
pub const MIN_MATCH: usize = 3;
/// Maximum back-reference length.
pub const MAX_MATCH: usize = 18;

/// Compress `input` into the LZSS stream format.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut mf = MatchFinder::new(input, WINDOW, 64, MIN_MATCH, MAX_MATCH);
    let mut pos = 0usize;
    // Group buffer: flag byte position + items.
    let mut flag_pos = 0usize;
    let mut flag = 0u8;
    let mut nitems = 0u8;
    let mut group_open = false;
    while pos < input.len() {
        if !group_open {
            flag_pos = out.len();
            out.push(0);
            flag = 0;
            nitems = 0;
            group_open = true;
        }
        mf.advance_to(pos);
        match mf.best_match(pos) {
            Some(m) => {
                let token: u16 = ((m.len as u16 - MIN_MATCH as u16) << 12) | (m.dist as u16 - 1);
                out.extend_from_slice(&token.to_le_bytes());
                pos += m.len as usize;
            }
            None => {
                flag |= 1 << nitems;
                out.push(input[pos]);
                pos += 1;
            }
        }
        nitems += 1;
        if nitems == 8 {
            out[flag_pos] = flag;
            group_open = false;
        }
    }
    if group_open {
        out[flag_pos] = flag;
    }
    out
}

/// Errors from [`decompress`].
#[derive(Debug, PartialEq, Eq)]
pub enum LzssError {
    /// Stream ended before `expected_len` bytes were produced.
    Truncated,
    /// A token referenced data before the start of the output.
    BadDistance { at: usize, dist: usize },
}

impl std::fmt::Display for LzssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzssError::Truncated => write!(f, "lzss stream truncated"),
            LzssError::BadDistance { at, dist } => {
                write!(f, "lzss distance {dist} underflows output at byte {at}")
            }
        }
    }
}

impl std::error::Error for LzssError {}

/// Decompress an LZSS stream, producing exactly `expected_len` bytes.
pub fn decompress(stream: &[u8], expected_len: usize) -> Result<Vec<u8>, LzssError> {
    let mut out = Vec::with_capacity(expected_len.min(crate::MAX_PREALLOC));
    let mut i = 0usize;
    while out.len() < expected_len {
        if i >= stream.len() {
            return Err(LzssError::Truncated);
        }
        let flag = stream[i];
        i += 1;
        for bit in 0..8 {
            if out.len() >= expected_len {
                break;
            }
            if flag & (1 << bit) != 0 {
                let b = *stream.get(i).ok_or(LzssError::Truncated)?;
                i += 1;
                out.push(b);
            } else {
                if i + 1 >= stream.len() {
                    return Err(LzssError::Truncated);
                }
                let token = u16::from_le_bytes([stream[i], stream[i + 1]]);
                i += 2;
                let dist = (token & 0x0FFF) as usize + 1;
                let len = (token >> 12) as usize + MIN_MATCH;
                if dist > out.len() {
                    return Err(LzssError::BadDistance {
                        at: out.len(),
                        dist,
                    });
                }
                let start = out.len() - dist;
                for j in 0..len {
                    // Byte-by-byte copy: overlapping matches replicate runs.
                    let b = out[start + j];
                    out.push(b);
                }
            }
        }
    }
    out.truncate(expected_len);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_input() {
        roundtrip(b"");
    }

    #[test]
    fn short_literal_only() {
        roundtrip(b"abc");
        roundtrip(b"a");
    }

    #[test]
    fn repetitive_text_compresses() {
        let data = b"SELECT * FROM lineitem; SELECT * FROM lineitem; SELECT * FROM lineitem;";
        let c = compress(data);
        assert!(c.len() < data.len(), "{} !< {}", c.len(), data.len());
        roundtrip(data);
    }

    #[test]
    fn long_runs_use_overlapping_matches() {
        let data = vec![b'x'; 10_000];
        let c = compress(&data);
        assert!(c.len() < 2000);
        roundtrip(&data);
    }

    #[test]
    fn sql_like_payload() {
        let mut data = Vec::new();
        for i in 0..500 {
            data.extend_from_slice(
                format!("{}\t{}\tCustomer#{:09}\t{}\n", i, i * 31 % 25, i, 1000 - i).as_bytes(),
            );
        }
        let c = compress(&data);
        assert!(c.len() < data.len() * 3 / 4);
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_detected() {
        let c = compress(b"hello hello hello hello");
        assert_eq!(
            decompress(&c[..c.len() - 1], 24).unwrap_err(),
            LzssError::Truncated
        );
    }

    #[test]
    fn bad_distance_detected() {
        // Hand-craft: flag byte 0 (first item is a match), token dist=5 at pos 0.
        let stream = [0u8, 0x04, 0x00]; // dist-1=4, len-3=0
        assert!(matches!(
            decompress(&stream, 3),
            Err(LzssError::BadDistance { at: 0, dist: 5 })
        ));
    }

    #[test]
    fn binary_data_roundtrip() {
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn window_boundary_matches() {
        // Repeat a phrase exactly WINDOW bytes apart: still reachable (dist 4096).
        let mut data = b"needle".to_vec();
        data.extend(std::iter::repeat(b'.').take(WINDOW - 6));
        data.extend_from_slice(b"needle");
        roundtrip(&data);
    }
}
