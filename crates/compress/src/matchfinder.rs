//! Hash-chain LZ77 match finder shared by the LZSS and LZA front ends.

/// A back-reference candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Distance back from the current position (1 = previous byte).
    pub dist: u32,
    /// Match length in bytes.
    pub len: u32,
}

/// Hash-chain match finder over a sliding window.
///
/// Positions are absolute indices into the input buffer; the window limit
/// only constrains how far back candidates may lie. Chains are truncated at
/// `max_depth` candidates per query, trading ratio for bounded work.
pub struct MatchFinder<'a> {
    data: &'a [u8],
    window: usize,
    max_depth: usize,
    min_len: usize,
    max_len: usize,
    head: Vec<i64>,
    prev: Vec<i64>,
    next_insert: usize,
}

const HASH_BITS: u32 = 16;

#[inline]
fn hash3(a: u8, b: u8, c: u8) -> usize {
    let v = u32::from_le_bytes([a, b, c, 0]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

impl<'a> MatchFinder<'a> {
    pub fn new(
        data: &'a [u8],
        window: usize,
        max_depth: usize,
        min_len: usize,
        max_len: usize,
    ) -> Self {
        assert!(min_len >= 3, "hash covers 3 bytes");
        Self {
            data,
            window,
            max_depth,
            min_len,
            max_len,
            head: vec![-1; 1 << HASH_BITS],
            prev: vec![-1; data.len()],
            next_insert: 0,
        }
    }

    /// Insert positions `..pos` into the dictionary (idempotent, in order).
    pub fn advance_to(&mut self, pos: usize) {
        while self.next_insert < pos {
            let i = self.next_insert;
            if i + 2 < self.data.len() {
                let h = hash3(self.data[i], self.data[i + 1], self.data[i + 2]);
                self.prev[i] = self.head[h];
                self.head[h] = i as i64;
            }
            self.next_insert += 1;
        }
    }

    /// Best match at `pos` (dictionary must already cover `..pos`).
    pub fn best_match(&self, pos: usize) -> Option<Match> {
        let data = self.data;
        if pos + self.min_len > data.len() || pos + 2 >= data.len() {
            return None;
        }
        let h = hash3(data[pos], data[pos + 1], data[pos + 2]);
        let lowest = pos.saturating_sub(self.window);
        let max_here = self.max_len.min(data.len() - pos);
        let mut best: Option<Match> = None;
        let mut cand = self.head[h];
        let mut depth = 0;
        while cand >= 0 && depth < self.max_depth {
            let c = cand as usize;
            if c < lowest {
                break;
            }
            // Quick reject using the byte just past the current best length.
            let best_len = best.map_or(self.min_len - 1, |m| m.len as usize);
            if pos + best_len < data.len()
                && best_len < max_here
                && data[c + best_len] == data[pos + best_len]
            {
                let mut l = 0usize;
                while l < max_here && data[c + l] == data[pos + l] {
                    l += 1;
                }
                if l >= self.min_len && l > best_len {
                    best = Some(Match {
                        dist: (pos - c) as u32,
                        len: l as u32,
                    });
                    if l == max_here {
                        break;
                    }
                }
            }
            cand = self.prev[c];
            depth += 1;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_repeat() {
        let data = b"abcdefabcdef";
        let mut mf = MatchFinder::new(data, 4096, 32, 3, 18);
        mf.advance_to(6);
        let m = mf.best_match(6).unwrap();
        assert_eq!(m.dist, 6);
        assert_eq!(m.len, 6);
    }

    #[test]
    fn respects_window_limit() {
        let mut data = b"xyz".to_vec();
        data.extend(std::iter::repeat(b'-').take(100));
        data.extend_from_slice(b"xyz");
        let mut mf = MatchFinder::new(&data, 50, 32, 3, 18);
        mf.advance_to(103);
        // The only "xyz" is 103 bytes back, beyond the 50-byte window.
        assert!(mf.best_match(103).is_none());
    }

    #[test]
    fn overlapping_match_supported() {
        // "aaaaaaaa": at pos 1 the best match is dist 1, long run.
        let data = b"aaaaaaaaaa";
        let mut mf = MatchFinder::new(data, 4096, 32, 3, 18);
        mf.advance_to(1);
        let m = mf.best_match(1).unwrap();
        assert_eq!(m.dist, 1);
        assert_eq!(m.len, 9);
    }

    #[test]
    fn no_match_in_random_prefix() {
        let data = b"abcdefgh";
        let mut mf = MatchFinder::new(data, 4096, 32, 3, 18);
        mf.advance_to(3);
        assert!(mf.best_match(3).is_none());
    }

    #[test]
    fn max_len_is_honored() {
        let data = vec![b'q'; 100];
        let mut mf = MatchFinder::new(&data, 4096, 32, 3, 18);
        mf.advance_to(1);
        let m = mf.best_match(1).unwrap();
        assert_eq!(m.len, 18);
    }
}
