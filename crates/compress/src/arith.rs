//! Adaptive binary arithmetic coding (LZMA-style range coder).
//!
//! The paper's DBCoder pairs LZ77 with arithmetic coding. We implement the
//! carry-propagating 32-bit range coder with 11-bit adaptive probabilities
//! and the usual composite models:
//!
//! * [`BitModel`] — one adaptive binary probability;
//! * [`BitTree`] — an N-bit symbol coded bit-by-bit down a context tree;
//! * direct (uniform) bits for incompressible fields.

/// Probability scale: 2^11, matching the classic LZMA coder.
const PROB_BITS: u32 = 11;
const PROB_ONE: u16 = 1 << PROB_BITS;
const PROB_INIT: u16 = PROB_ONE / 2;
/// Adaptation rate.
const MOVE_BITS: u32 = 5;
const TOP: u32 = 1 << 24;

/// One adaptive binary probability state.
#[derive(Clone, Copy)]
pub struct BitModel(u16);

impl Default for BitModel {
    fn default() -> Self {
        BitModel(PROB_INIT)
    }
}

impl BitModel {
    #[inline]
    fn update(&mut self, bit: bool) {
        if bit {
            self.0 -= self.0 >> MOVE_BITS;
        } else {
            self.0 += (PROB_ONE - self.0) >> MOVE_BITS;
        }
    }
}

/// Range encoder producing a self-terminating byte stream.
pub struct Encoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut temp = self.cache;
            loop {
                self.out.push(temp.wrapping_add(carry));
                temp = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        // Keep only the low 24 bits: the top byte either went to `cache`
        // or joins the pending-0xFF run tracked by `cache_size`.
        self.low = (self.low & 0x00FF_FFFF) << 8;
    }

    /// Encode one bit under an adaptive model.
    #[inline]
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: bool) {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        if !bit {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode `n` uniform bits (MSB first).
    pub fn encode_direct(&mut self, value: u32, n: u32) {
        for i in (0..n).rev() {
            self.range >>= 1;
            if (value >> i) & 1 != 0 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flush and return the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder over a byte slice.
pub struct Decoder<'a> {
    range: u32,
    code: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(input: &'a [u8]) -> Self {
        let mut d = Self {
            range: u32::MAX,
            code: 0,
            input,
            pos: 0,
        };
        // First output byte of the encoder is always 0; skip then prime.
        d.pos = 1;
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Reads past the end return 0: the encoder's flush pads with the
        // final low bytes, and a well-formed stream never *depends* on
        // bytes past `finish()`'s output.
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// How many bytes past the end of the input have been consumed. A valid
    /// stream never drifts more than a handful of flush bytes past the end;
    /// callers decoding an untrusted length use this to detect runaway
    /// decodes of corrupted streams.
    pub fn overrun(&self) -> usize {
        self.pos.saturating_sub(self.input.len())
    }

    /// Decode one bit under an adaptive model.
    #[inline]
    pub fn decode_bit(&mut self, model: &mut BitModel) -> bool {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        let bit = if self.code < bound {
            self.range = bound;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            true
        };
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        bit
    }

    /// Decode `n` uniform bits (MSB first).
    pub fn decode_direct(&mut self, n: u32) -> u32 {
        let mut res = 0u32;
        for _ in 0..n {
            self.range >>= 1;
            self.code = self.code.wrapping_sub(self.range);
            let t = 0u32.wrapping_sub(self.code >> 31);
            self.code = self.code.wrapping_add(self.range & t);
            res = (res << 1) | (t.wrapping_add(1) & 1);
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | self.next_byte() as u32;
            }
        }
        res
    }
}

/// An `N`-bit symbol coded through a binary context tree of `2^N - 1`
/// adaptive probabilities (plus one unused slot 0).
#[derive(Clone)]
pub struct BitTree {
    bits: u32,
    probs: Vec<BitModel>,
}

impl BitTree {
    pub fn new(bits: u32) -> Self {
        assert!((1..=16).contains(&bits));
        Self {
            bits,
            probs: vec![BitModel::default(); 1 << bits],
        }
    }

    pub fn encode(&mut self, enc: &mut Encoder, symbol: u32) {
        debug_assert!(symbol < (1 << self.bits));
        let mut m = 1usize;
        for i in (0..self.bits).rev() {
            let bit = (symbol >> i) & 1 != 0;
            enc.encode_bit(&mut self.probs[m], bit);
            m = (m << 1) | bit as usize;
        }
    }

    pub fn decode(&mut self, dec: &mut Decoder) -> u32 {
        let mut m = 1usize;
        for _ in 0..self.bits {
            let bit = dec.decode_bit(&mut self.probs[m]);
            m = (m << 1) | bit as usize;
        }
        (m as u32) - (1 << self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_model_roundtrip() {
        let bits = [
            true, false, false, true, true, true, false, true, false, false,
        ];
        let mut enc = Encoder::new();
        let mut m = BitModel::default();
        for &b in &bits {
            enc.encode_bit(&mut m, b);
        }
        let data = enc.finish();
        let mut dec = Decoder::new(&data);
        let mut m = BitModel::default();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut m), b);
        }
    }

    #[test]
    fn direct_bits_roundtrip() {
        let mut enc = Encoder::new();
        enc.encode_direct(0xDEAD, 16);
        enc.encode_direct(0b101, 3);
        enc.encode_direct(0, 1);
        let data = enc.finish();
        let mut dec = Decoder::new(&data);
        assert_eq!(dec.decode_direct(16), 0xDEAD);
        assert_eq!(dec.decode_direct(3), 0b101);
        assert_eq!(dec.decode_direct(1), 0);
    }

    #[test]
    fn bit_tree_roundtrip_bytes() {
        let symbols: Vec<u32> = (0..1000).map(|i| (i * 37 % 256) as u32).collect();
        let mut enc = Encoder::new();
        let mut tree = BitTree::new(8);
        for &s in &symbols {
            tree.encode(&mut enc, s);
        }
        let data = enc.finish();
        let mut dec = Decoder::new(&data);
        let mut tree = BitTree::new(8);
        for &s in &symbols {
            assert_eq!(tree.decode(&mut dec), s);
        }
    }

    #[test]
    fn skewed_source_compresses_below_entropy_bound_of_uniform() {
        // 95% zeros through one adaptive model: ~0.3 bits/symbol expected,
        // far below 1 bit/symbol.
        let n = 20_000;
        let bits: Vec<bool> = (0..n).map(|i| i % 20 == 0).collect();
        let mut enc = Encoder::new();
        let mut m = BitModel::default();
        for &b in &bits {
            enc.encode_bit(&mut m, b);
        }
        let data = enc.finish();
        assert!(
            data.len() * 8 < n / 2,
            "got {} bits for {} symbols",
            data.len() * 8,
            n
        );
    }

    #[test]
    fn mixed_models_interleaved() {
        let mut enc = Encoder::new();
        let mut t4 = BitTree::new(4);
        let mut t8 = BitTree::new(8);
        let mut flag = BitModel::default();
        for i in 0..500u32 {
            enc.encode_bit(&mut flag, i % 3 == 0);
            t4.encode(&mut enc, i % 16);
            t8.encode(&mut enc, (i * 7) % 256);
            enc.encode_direct(i % 32, 5);
        }
        let data = enc.finish();
        let mut dec = Decoder::new(&data);
        let mut t4 = BitTree::new(4);
        let mut t8 = BitTree::new(8);
        let mut flag = BitModel::default();
        for i in 0..500u32 {
            assert_eq!(dec.decode_bit(&mut flag), i % 3 == 0);
            assert_eq!(t4.decode(&mut dec), i % 16);
            assert_eq!(t8.decode(&mut dec), (i * 7) % 256);
            assert_eq!(dec.decode_direct(5), i % 32);
        }
    }

    #[test]
    fn empty_stream_is_five_bytes() {
        assert_eq!(Encoder::new().finish().len(), 5);
    }
}
