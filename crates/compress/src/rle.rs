//! Byte-oriented run-length encoding — the naive baseline the benches
//! compare richer schemes against.
//!
//! Format: repeated `(count: u8, byte: u8)` pairs for runs of 2 or more,
//! and `(0, literal_count: u8, literals...)` packets for non-repeating
//! stretches (count 0 is the literal escape; literal_count >= 1).

/// Compress with RLE.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 8);
    let mut i = 0usize;
    let mut lit_start = 0usize;
    let flush_literals = |out: &mut Vec<u8>, lits: &[u8]| {
        for chunk in lits.chunks(255) {
            out.push(0);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
    };
    while i < input.len() {
        let b = input[i];
        let mut run = 1usize;
        while i + run < input.len() && input[i + run] == b && run < 255 {
            run += 1;
        }
        if run >= 3 {
            flush_literals(&mut out, &input[lit_start..i]);
            out.push(run as u8);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, &input[lit_start..]);
    out
}

/// Errors from [`decompress`].
#[derive(Debug, PartialEq, Eq)]
pub enum RleError {
    Truncated,
}

impl std::fmt::Display for RleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rle stream truncated")
    }
}

impl std::error::Error for RleError {}

/// Decompress an RLE stream; `expected_len` bounds the output.
pub fn decompress(stream: &[u8], expected_len: usize) -> Result<Vec<u8>, RleError> {
    let mut out = Vec::with_capacity(expected_len.min(crate::MAX_PREALLOC));
    let mut i = 0usize;
    while out.len() < expected_len {
        let count = *stream.get(i).ok_or(RleError::Truncated)?;
        i += 1;
        if count == 0 {
            let n = *stream.get(i).ok_or(RleError::Truncated)? as usize;
            i += 1;
            if i + n > stream.len() {
                return Err(RleError::Truncated);
            }
            out.extend_from_slice(&stream[i..i + n]);
            i += n;
        } else {
            let b = *stream.get(i).ok_or(RleError::Truncated)?;
            i += 1;
            out.extend(std::iter::repeat(b).take(count as usize));
        }
    }
    out.truncate(expected_len);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn empty() {
        roundtrip(b"");
    }

    #[test]
    fn all_literals() {
        roundtrip(b"abcdefg");
    }

    #[test]
    fn long_run() {
        let data = vec![7u8; 1000];
        let c = compress(&data);
        assert!(c.len() <= 10);
        roundtrip(&data);
    }

    #[test]
    fn mixed_runs_and_literals() {
        let mut data = Vec::new();
        data.extend_from_slice(b"ab");
        data.extend(std::iter::repeat(b'x').take(50));
        data.extend_from_slice(b"yz");
        data.extend(std::iter::repeat(0u8).take(300));
        roundtrip(&data);
    }

    #[test]
    fn two_byte_runs_stay_literal() {
        // Runs of 2 are cheaper as literals; just verify correctness.
        roundtrip(b"aabbccddee");
    }

    #[test]
    fn truncated_detected() {
        let c = compress(&vec![9u8; 100]);
        assert_eq!(decompress(&c[..1], 100).unwrap_err(), RleError::Truncated);
    }
}
