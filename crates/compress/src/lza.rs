//! LZA — LZ77 with adaptive arithmetic coding, the paper's high-ratio
//! DBCoder scheme ("a generic compression scheme based on LZ77 and
//! arithmetic coding that can achieve compression performance close to
//! 7-Zip's LZMA", §3.1).
//!
//! Model structure (a simplified LZMA):
//!
//! * `is_match` flag — adaptive bit, conditioned on the previous flag;
//! * literals — 8-bit bit-tree contexted on the top 3 bits of the previous
//!   byte (8 contexts);
//! * match length — 8-bit bit-tree over `len - MIN_MATCH` (3..=258);
//! * match distance — 6-bit slot bit-tree (LZMA-style log bucketing) plus
//!   direct extra bits.

use crate::arith::{BitModel, BitTree, Decoder, Encoder};
use crate::matchfinder::MatchFinder;

/// Sliding window (1 MiB) — comfortably covers the paper's ~1.2 MB archive.
pub const WINDOW: usize = 1 << 20;
/// Minimum/maximum match lengths.
pub const MIN_MATCH: usize = 3;
pub const MAX_MATCH: usize = MIN_MATCH + 255;

const NUM_LIT_CTX: usize = 8;

struct Models {
    is_match: [BitModel; 2],
    literals: Vec<BitTree>,
    length: BitTree,
    dist_slot: BitTree,
}

impl Models {
    fn new() -> Self {
        Self {
            is_match: [BitModel::default(); 2],
            literals: (0..NUM_LIT_CTX).map(|_| BitTree::new(8)).collect(),
            length: BitTree::new(8),
            dist_slot: BitTree::new(6),
        }
    }
}

#[inline]
fn lit_ctx(prev_byte: u8) -> usize {
    (prev_byte >> 5) as usize
}

/// Distance slot: 0..=3 encode distances 1..=4 directly; above that, the
/// slot packs the bit length and the bit below the MSB, LZMA-style.
#[inline]
fn dist_slot(dist_minus_1: u32) -> (u32, u32, u32) {
    // returns (slot, extra_bits_count, extra_bits_value)
    if dist_minus_1 < 4 {
        (dist_minus_1, 0, 0)
    } else {
        let log = 31 - dist_minus_1.leading_zeros();
        let slot = (log << 1) | ((dist_minus_1 >> (log - 1)) & 1);
        let extra = log - 1;
        let value = dist_minus_1 & ((1 << extra) - 1);
        (slot, extra, value)
    }
}

#[inline]
fn slot_base(slot: u32) -> (u32, u32) {
    // returns (base_value, extra_bits_count)
    if slot < 4 {
        (slot, 0)
    } else {
        let log = slot >> 1;
        let extra = log - 1;
        let base = (2 | (slot & 1)) << extra;
        (base, extra)
    }
}

/// Compress `input` with the LZA scheme.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut enc = Encoder::new();
    let mut models = Models::new();
    let mut mf = MatchFinder::new(input, WINDOW, 96, MIN_MATCH, MAX_MATCH);
    let mut pos = 0usize;
    let mut prev_flag = 0usize;
    let mut prev_byte = 0u8;
    while pos < input.len() {
        mf.advance_to(pos);
        let mut m = mf.best_match(pos);
        // One-step lazy matching: prefer a longer match at pos+1.
        if let Some(cur) = m {
            if (cur.len as usize) < MAX_MATCH && pos + 1 < input.len() {
                mf.advance_to(pos + 1);
                if let Some(next) = mf.best_match(pos + 1) {
                    if next.len > cur.len + 1 {
                        m = None; // emit a literal, take the better match next turn
                    }
                }
            }
        }
        match m {
            Some(m) => {
                enc.encode_bit(&mut models.is_match[prev_flag], true);
                prev_flag = 1;
                models.length.encode(&mut enc, m.len - MIN_MATCH as u32);
                let (slot, extra, value) = dist_slot(m.dist - 1);
                models.dist_slot.encode(&mut enc, slot);
                if extra > 0 {
                    enc.encode_direct(value, extra);
                }
                pos += m.len as usize;
                prev_byte = input[pos - 1];
            }
            None => {
                enc.encode_bit(&mut models.is_match[prev_flag], false);
                prev_flag = 0;
                models.literals[lit_ctx(prev_byte)].encode(&mut enc, input[pos] as u32);
                prev_byte = input[pos];
                pos += 1;
            }
        }
    }
    enc.finish()
}

/// Errors from [`decompress`].
#[derive(Debug, PartialEq, Eq)]
pub enum LzaError {
    /// A distance referenced data before the start of the output.
    BadDistance { at: usize, dist: usize },
    /// The stream ran out long before producing `expected_len` bytes — the
    /// length field or the stream itself is corrupt.
    Truncated { at: usize },
}

impl std::fmt::Display for LzaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzaError::BadDistance { at, dist } => {
                write!(f, "lza distance {dist} underflows output at byte {at}")
            }
            LzaError::Truncated { at } => {
                write!(f, "lza stream exhausted at output byte {at}")
            }
        }
    }
}

impl std::error::Error for LzaError {}

/// Decompress an LZA stream into exactly `expected_len` bytes.
pub fn decompress(stream: &[u8], expected_len: usize) -> Result<Vec<u8>, LzaError> {
    // The encoder's flush appends 5 low bytes and the decoder may shift in a
    // few padding zeros while normalizing around the final symbol; past that
    // margin the "stream" is pure zeros and the length field must be lying.
    // Without this check a corrupted length decodes garbage forever.
    const OVERRUN_MARGIN: usize = 32;
    let mut dec = Decoder::new(stream);
    let mut models = Models::new();
    let mut out = Vec::with_capacity(expected_len.min(crate::MAX_PREALLOC));
    let mut prev_flag = 0usize;
    let mut prev_byte = 0u8;
    while out.len() < expected_len {
        if dec.overrun() > OVERRUN_MARGIN {
            return Err(LzaError::Truncated { at: out.len() });
        }
        if dec.decode_bit(&mut models.is_match[prev_flag]) {
            prev_flag = 1;
            let len = models.length.decode(&mut dec) as usize + MIN_MATCH;
            let slot = models.dist_slot.decode(&mut dec);
            let (base, extra) = slot_base(slot);
            let dist_minus_1 = if extra > 0 {
                base + dec.decode_direct(extra)
            } else {
                base
            };
            let dist = dist_minus_1 as usize + 1;
            if dist > out.len() {
                return Err(LzaError::BadDistance {
                    at: out.len(),
                    dist,
                });
            }
            let start = out.len() - dist;
            for j in 0..len {
                let b = out[start + j];
                out.push(b);
            }
            prev_byte = *out.last().unwrap();
        } else {
            prev_flag = 0;
            let b = models.literals[lit_ctx(prev_byte)].decode(&mut dec) as u8;
            out.push(b);
            prev_byte = b;
        }
    }
    out.truncate(expected_len);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        let d = decompress(&c, data.len()).unwrap();
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"z");
        roundtrip(b"ab");
    }

    #[test]
    fn slot_math_is_self_inverse() {
        for d in [0u32, 1, 2, 3, 4, 5, 7, 8, 100, 4095, 4096, 65535, 1 << 19] {
            let (slot, extra, value) = dist_slot(d);
            let (base, extra2) = slot_base(slot);
            assert_eq!(extra, extra2, "d={d}");
            assert_eq!(base + value, d, "d={d}");
        }
    }

    #[test]
    fn repetitive_sql_beats_lzss() {
        let mut data = Vec::new();
        for i in 0..2000 {
            data.extend_from_slice(
                format!(
                    "INSERT INTO orders VALUES ({i}, 'Clerk#{:09}', {});\n",
                    i % 1000,
                    i * 7
                )
                .as_bytes(),
            );
        }
        let lza_len = roundtrip(&data);
        let lzss_len = crate::lzss::compress(&data).len();
        assert!(lza_len < lzss_len, "lza {lza_len} !< lzss {lzss_len}");
    }

    #[test]
    fn long_run_roundtrip() {
        let data = vec![0xABu8; 100_000];
        let n = roundtrip(&data);
        assert!(n < 2000, "run of 100k compressed to {n}");
    }

    #[test]
    fn pseudo_random_binary_roundtrip() {
        let data: Vec<u8> = (0..50_000u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn distances_beyond_64k_work() {
        // A phrase recurring ~200 KB apart exercises large dist slots.
        let mut data = Vec::new();
        data.extend_from_slice(b"the archived decoder travels with the data");
        data.extend((0..200_000u32).map(|i| (i % 251) as u8));
        data.extend_from_slice(b"the archived decoder travels with the data");
        roundtrip(&data);
    }

    #[test]
    fn bad_stream_reports_distance_error_or_garbage_not_panic() {
        // Arbitrary bytes must never panic; they either decode to garbage
        // (possible: the format has no checksum at this layer) or report a
        // bad distance.
        let junk: Vec<u8> = (0..64).map(|i| (i * 41 + 7) as u8).collect();
        let _ = decompress(&junk, 128);
    }
}
