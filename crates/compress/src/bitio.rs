//! MSB-first bit streams used by the emblem payload path and tests.

/// Writes bits most-significant-first into a byte vector.
#[derive(Default)]
pub struct BitWriter {
    out: Vec<u8>,
    cur: u8,
    nbits: u8,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | bit as u8;
        self.nbits += 1;
        if self.nbits == 8 {
            self.out.push(self.cur);
            self.cur = 0;
            self.nbits = 0;
        }
    }

    /// Append the low `n` bits of `v`, most significant of those first.
    pub fn put_bits(&mut self, v: u32, n: u8) {
        assert!(n <= 32);
        for i in (0..n).rev() {
            self.put_bit((v >> i) & 1 != 0);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Pad the final partial byte with zeros and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.cur <<= 8 - self.nbits;
            self.out.push(self.cur);
        }
        self.out
    }
}

/// Reads bits most-significant-first from a byte slice.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Next bit, or `None` past the end.
    #[inline]
    pub fn get_bit(&mut self) -> Option<bool> {
        let byte = *self.data.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 != 0;
        self.pos += 1;
        Some(bit)
    }

    /// Next `n` bits as an integer (MSB-first), or `None` if exhausted.
    pub fn get_bits(&mut self, n: u8) -> Option<u32> {
        assert!(n <= 32);
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.get_bit()? as u32;
        }
        Some(v)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Remaining whole bits.
    pub fn remaining(&self) -> usize {
        self.data.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [
            true, false, true, true, false, false, true, false, true, true,
        ];
        for &b in &pattern {
            w.put_bit(b);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit(), Some(b));
        }
    }

    #[test]
    fn roundtrip_multi_bit_values() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0xBEEF, 16);
        w.put_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3), Some(0b101));
        assert_eq!(r.get_bits(16), Some(0xBEEF));
        assert_eq!(r.get_bits(1), Some(1));
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        w.put_bits(0, 11);
        assert_eq!(w.bit_len(), 11);
        assert_eq!(w.finish().len(), 2);
    }

    #[test]
    fn reader_stops_at_end() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.get_bits(8), Some(0xFF));
        assert_eq!(r.get_bit(), None);
        assert_eq!(r.get_bits(4), None);
    }

    #[test]
    fn msb_first_byte_layout() {
        let mut w = BitWriter::new();
        w.put_bit(true); // becomes bit 7
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x80]);
    }
}
