//! Columnar SQL-dump re-layout — the paper's §5 future-work extension
//! ("compressed, columnar layout encoding schemes in DBCoder").
//!
//! The input is a pg_dump-style text archive. `COPY … FROM stdin;` blocks
//! are parsed into rows and pivoted into columns; each column picks the
//! cheapest of three encodings:
//!
//! * **delta-varint** — when every value round-trips as an `i64` (keys,
//!   quantities): zig-zag varints of successive differences;
//! * **dictionary** — when few distinct values exist (flags, status codes,
//!   enum-ish text): dictionary plus per-row indices;
//! * **plain** — newline-joined values otherwise.
//!
//! The pivoted intermediate is then LZA-compressed. Reconstruction is
//! byte-exact: non-COPY text passes through verbatim and rows are re-joined
//! with the original separators.

use crate::lza;

const TAG_TEXT: u8 = 0;
const TAG_COPY: u8 = 1;

const ENC_PLAIN: u8 = 0;
const ENC_DELTA: u8 = 1;
const ENC_DICT: u8 = 2;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, String> {
        let b = *self.data.get(self.pos).ok_or("truncated")?;
        self.pos += 1;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.data.len() {
            return Err("truncated".into());
        }
        let v = u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }
    fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.u32()? as usize;
        if self.pos + n > self.data.len() {
            return Err("truncated".into());
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err("varint overflow".into());
            }
        }
    }
    fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        if v < 0x80 {
            out.push(v as u8);
            return;
        }
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A parsed segment of the dump.
enum Segment<'a> {
    Text(&'a str),
    Copy {
        header: &'a str,
        rows: Vec<Vec<&'a str>>,
        ncols: usize,
    },
}

/// Split the dump into passthrough text and COPY blocks. Returns `None`
/// (fall back to whole-file LZA) when the input is not valid UTF-8.
fn parse_dump(input: &[u8]) -> Option<Vec<Segment<'_>>> {
    let text = std::str::from_utf8(input).ok()?;
    let mut segments = Vec::new();
    let mut text_start = 0usize;
    let mut pos = 0usize;
    while pos < text.len() {
        let line_end = text[pos..]
            .find('\n')
            .map(|i| pos + i + 1)
            .unwrap_or(text.len());
        let line = &text[pos..line_end];
        let trimmed = line.trim_end();
        if trimmed.starts_with("COPY ") && trimmed.ends_with("FROM stdin;") {
            // Collect rows until the \. terminator.
            let mut rows: Vec<Vec<&str>> = Vec::new();
            let mut ncols = 0usize;
            let mut rp = line_end;
            let mut terminated = false;
            while rp < text.len() {
                let re = text[rp..]
                    .find('\n')
                    .map(|i| rp + i + 1)
                    .unwrap_or(text.len());
                let rline = &text[rp..re];
                if rline == "\\.\n" || rline == "\\." {
                    terminated = true;
                    rp = re;
                    break;
                }
                let body = rline.strip_suffix('\n')?;
                let cols: Vec<&str> = body.split('\t').collect();
                if rows.is_empty() {
                    ncols = cols.len();
                } else if cols.len() != ncols {
                    return None; // ragged rows: bail out to plain LZA
                }
                rows.push(cols);
                rp = re;
            }
            if !terminated {
                return None;
            }
            if text_start < pos {
                segments.push(Segment::Text(&text[text_start..pos]));
            }
            segments.push(Segment::Copy {
                header: line,
                rows,
                ncols,
            });
            pos = rp;
            text_start = rp;
        } else {
            pos = line_end;
        }
    }
    if text_start < text.len() {
        segments.push(Segment::Text(&text[text_start..]));
    }
    Some(segments)
}

/// Encode one column with the cheapest applicable scheme.
fn encode_column(out: &mut Vec<u8>, values: &[&str]) {
    // delta-varint if every value round-trips as i64 text.
    let as_ints: Option<Vec<i64>> = values
        .iter()
        .map(|v| v.parse::<i64>().ok().filter(|n| n.to_string() == **v))
        .collect();
    if let Some(ints) = as_ints {
        out.push(ENC_DELTA);
        let mut prev = 0i64;
        let mut buf = Vec::with_capacity(values.len() * 2);
        for &v in &ints {
            put_varint(&mut buf, zigzag(v.wrapping_sub(prev)));
            prev = v;
        }
        put_bytes(out, &buf);
        return;
    }
    // dictionary if distinct count is small relative to rows.
    let mut dict: Vec<&str> = Vec::new();
    let mut indices = Vec::with_capacity(values.len());
    let mut dict_ok = true;
    for &v in values {
        match dict.iter().position(|&d| d == v) {
            Some(i) => indices.push(i as u32),
            None => {
                if dict.len() >= 4096 {
                    dict_ok = false;
                    break;
                }
                dict.push(v);
                indices.push(dict.len() as u32 - 1);
            }
        }
    }
    if dict_ok && dict.len() * 4 < values.len().max(8) {
        out.push(ENC_DICT);
        put_u32(out, dict.len() as u32);
        for d in &dict {
            put_bytes(out, d.as_bytes());
        }
        let mut buf = Vec::with_capacity(values.len() * 2);
        for &i in &indices {
            put_varint(&mut buf, i as u64);
        }
        put_bytes(out, &buf);
        return;
    }
    out.push(ENC_PLAIN);
    let joined = values.join("\n");
    put_bytes(out, joined.as_bytes());
}

fn decode_column(r: &mut Reader<'_>, nrows: usize) -> Result<Vec<String>, String> {
    match r.u8()? {
        ENC_DELTA => {
            let buf = r.bytes()?;
            let mut br = Reader { data: buf, pos: 0 };
            let mut prev = 0i64;
            let mut vals = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                prev = prev.wrapping_add(unzigzag(br.varint()?));
                vals.push(prev.to_string());
            }
            Ok(vals)
        }
        ENC_DICT => {
            let n = r.u32()? as usize;
            // Each dictionary entry carries a 4-byte length prefix, so a
            // valid count can never exceed a quarter of the bytes left.
            if n > r.remaining() / 4 + 1 {
                return Err(format!("implausible dict size {n}"));
            }
            let mut dict = Vec::with_capacity(n);
            for _ in 0..n {
                dict.push(String::from_utf8(r.bytes()?.to_vec()).map_err(|e| e.to_string())?);
            }
            let buf = r.bytes()?;
            let mut br = Reader { data: buf, pos: 0 };
            let mut vals = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let i = br.varint()? as usize;
                vals.push(dict.get(i).ok_or("dict index out of range")?.clone());
            }
            Ok(vals)
        }
        ENC_PLAIN => {
            let joined = std::str::from_utf8(r.bytes()?).map_err(|e| e.to_string())?;
            if nrows == 0 {
                return Ok(Vec::new());
            }
            let vals: Vec<String> = joined.split('\n').map(str::to_owned).collect();
            if vals.len() != nrows {
                return Err(format!(
                    "plain column has {} values, want {nrows}",
                    vals.len()
                ));
            }
            Ok(vals)
        }
        t => Err(format!("unknown column encoding {t}")),
    }
}

/// Compress a SQL dump with columnar re-layout + LZA. The payload starts
/// with the 8-byte pivot length, then the LZA stream of the pivot. Falls
/// back to tagged plain LZA when the input is not a parseable dump.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut pivot = Vec::with_capacity(input.len() / 2);
    match parse_dump(input) {
        Some(segments) => {
            pivot.push(1u8);
            put_u32(&mut pivot, segments.len() as u32);
            for seg in &segments {
                match seg {
                    Segment::Text(t) => {
                        pivot.push(TAG_TEXT);
                        put_bytes(&mut pivot, t.as_bytes());
                    }
                    Segment::Copy {
                        header,
                        rows,
                        ncols,
                    } => {
                        pivot.push(TAG_COPY);
                        put_bytes(&mut pivot, header.as_bytes());
                        put_u32(&mut pivot, rows.len() as u32);
                        put_u32(&mut pivot, *ncols as u32);
                        let mut col_vals = Vec::with_capacity(rows.len());
                        for c in 0..*ncols {
                            col_vals.clear();
                            col_vals.extend(rows.iter().map(|r| r[c]));
                            encode_column(&mut pivot, &col_vals);
                        }
                    }
                }
            }
        }
        None => {
            pivot.push(0u8);
            pivot.extend_from_slice(input);
        }
    }
    let mut out = (pivot.len() as u64).to_le_bytes().to_vec();
    out.extend(lza::compress(&pivot));
    out
}

/// Reverse of [`compress`]; `expected_len` is used as a sanity bound.
pub fn decompress(stream: &[u8], expected_len: usize) -> Result<Vec<u8>, String> {
    if stream.len() < 8 {
        return Err("truncated columnar payload".into());
    }
    let pivot_len = u64::from_le_bytes(stream[..8].try_into().unwrap()) as usize;
    // The pivot is a re-encoding of the original text; per value it spends at
    // most a 4-byte length prefix where the text spent a 1-byte separator, so
    // it can never legitimately blow up past a few times `expected_len`. A
    // corrupted length field, by contrast, can claim anything up to 2^64 and
    // would otherwise drive a multi-gigabyte garbage decode below.
    if pivot_len > expected_len.saturating_mul(8).saturating_add(64) {
        return Err(format!(
            "implausible pivot length {pivot_len} for {expected_len} bytes"
        ));
    }
    let pivot = lza::decompress(&stream[8..], pivot_len).map_err(|e| e.to_string())?;
    let mut r = Reader {
        data: &pivot,
        pos: 0,
    };
    match r.u8()? {
        0 => Ok(pivot[1..].to_vec()),
        1 => {
            let nseg = r.u32()? as usize;
            let mut out = Vec::new();
            for _ in 0..nseg {
                match r.u8()? {
                    TAG_TEXT => out.extend_from_slice(r.bytes()?),
                    TAG_COPY => {
                        let header = r.bytes()?.to_vec();
                        out.extend_from_slice(&header);
                        let nrows = r.u32()? as usize;
                        let ncols = r.u32()? as usize;
                        // Every row and column costs at least one pivot byte
                        // in any encoding; anything larger is corruption, and
                        // must be rejected before `with_capacity` below turns
                        // it into a giant allocation.
                        if nrows > pivot.len() || ncols > pivot.len() {
                            return Err(format!("implausible table shape {nrows}x{ncols}"));
                        }
                        let mut cols = Vec::with_capacity(ncols);
                        for _ in 0..ncols {
                            cols.push(decode_column(&mut r, nrows)?);
                        }
                        for row in 0..nrows {
                            for (c, col) in cols.iter().enumerate() {
                                if c > 0 {
                                    out.push(b'\t');
                                }
                                out.extend_from_slice(col[row].as_bytes());
                            }
                            out.push(b'\n');
                        }
                        out.extend_from_slice(b"\\.\n");
                    }
                    t => return Err(format!("unknown segment tag {t}")),
                }
            }
            if !r.at_end() {
                return Err("trailing bytes in pivot".into());
            }
            Ok(out)
        }
        t => Err(format!("unknown pivot mode {t}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dump() -> Vec<u8> {
        let mut s = String::new();
        s.push_str("-- PostgreSQL database dump\nSET client_encoding = 'UTF8';\n\n");
        s.push_str(
            "CREATE TABLE nation (n_nationkey integer, n_name text, n_regionkey integer);\n\n",
        );
        s.push_str("COPY nation (n_nationkey, n_name, n_regionkey) FROM stdin;\n");
        for i in 0..25 {
            s.push_str(&format!("{}\tNATION {}\t{}\n", i, i % 5, i % 5));
        }
        s.push_str("\\.\n");
        s.push_str("\nCOPY orders (o_orderkey, o_status, o_total) FROM stdin;\n");
        for i in 0..500 {
            s.push_str(&format!(
                "{}\t{}\t{}\n",
                i * 4 + 1,
                ["O", "F", "P"][i % 3],
                10000 - i
            ));
        }
        s.push_str("\\.\n");
        s.push_str("\n-- dump complete\n");
        s.into_bytes()
    }

    #[test]
    fn framed_roundtrip_exact() {
        let dump = sample_dump();
        let c = compress(&dump);
        let d = decompress(&c, 1 << 24).unwrap();
        assert_eq!(d, dump);
    }

    #[test]
    fn columnar_beats_plain_lza_on_dump() {
        let dump = sample_dump();
        let col = compress(&dump).len();
        let plain = lza::compress(&dump).len();
        assert!(col < plain + plain / 10, "columnar {col} vs lza {plain}");
    }

    #[test]
    fn non_dump_falls_back() {
        let data = b"\xFF\xFEnot text at all\x00\x01";
        let c = compress(data);
        assert_eq!(decompress(&c, 1 << 24).unwrap(), data);
    }

    #[test]
    fn ragged_copy_block_falls_back() {
        let text = b"COPY t (a, b) FROM stdin;\n1\t2\n3\n\\.\n";
        let c = compress(text);
        assert_eq!(decompress(&c, 1 << 24).unwrap(), text);
    }

    #[test]
    fn unterminated_copy_falls_back() {
        let text = b"COPY t (a) FROM stdin;\n1\n2\n";
        let c = compress(text);
        assert_eq!(decompress(&c, 1 << 24).unwrap(), text);
    }

    #[test]
    fn delta_column_with_negatives() {
        let mut s = String::from("COPY t (v) FROM stdin;\n");
        for i in -50i64..50 {
            s.push_str(&format!("{}\n", i * 1000));
        }
        s.push_str("\\.\n");
        let c = compress(s.as_bytes());
        assert_eq!(decompress(&c, 1 << 24).unwrap(), s.as_bytes());
    }

    #[test]
    fn values_with_leading_zeros_stay_plain_and_exact() {
        let text = b"COPY t (v) FROM stdin;\n007\n008\n009\n\\.\n";
        let c = compress(text);
        assert_eq!(decompress(&c, 1 << 24).unwrap(), text);
    }

    #[test]
    fn empty_copy_block() {
        let text = b"COPY t (a) FROM stdin;\n\\.\n";
        let c = compress(text);
        assert_eq!(decompress(&c, 1 << 24).unwrap(), text);
    }

    #[test]
    fn zigzag_is_bijective() {
        for v in [
            0i64,
            1,
            -1,
            2,
            -2,
            i64::MAX,
            i64::MIN,
            123456789,
            -987654321,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
