//! DBCoder — database layout encoder/decoder (system **S2** in `DESIGN.md`).
//!
//! The paper's DBCoder converts the textual database archive (a pg_dump-style
//! SQL file) into a compact binary layout before media encoding. Its stated
//! scheme is "LZ77 and arithmetic coding … close to 7-Zip's LZMA"; columnar
//! layouts are listed as future work (§5). This crate implements:
//!
//! * [`lzss`] — byte-oriented LZ77 with flag bits (window 4096, len 3–18).
//!   This is the **archival default**: its decoder is small enough to be
//!   ported to DynaRisc assembly (`ule-dynarisc`'s `DBDecode` program), which
//!   is the whole point of ULE — the decoder travels with the data.
//! * [`lza`] — LZ77 (1 MiB window, lazy matching) + adaptive binary
//!   arithmetic coding (LZMA-style range coder, bit-tree models). This is
//!   the paper's "LZ77 + arithmetic coding" high-ratio scheme.
//! * [`rle`] — run-length baseline.
//! * [`columnar`] — the future-work extension: SQL-dump-aware columnar
//!   re-layout (per-column dictionary / delta-varint) with an LZA backend.
//! * [`container`] — the `ULEA` archive container: scheme id, original
//!   length, CRC-32, payload. [`compress`]/[`decompress`] are the public
//!   entry points used by Micr'Olonys.

pub mod arith;
pub mod bitio;
pub mod columnar;
pub mod container;
pub mod lza;
pub mod lzss;
pub mod matchfinder;
pub mod rle;

pub use container::{compress, decompress, ArchiveError, Scheme};

/// [`compress`] with codec telemetry: a span per compressor stage plus
/// bytes-in/bytes-out counters, both overall and per scheme. The bytes
/// produced are identical to [`compress`] — the recorder only observes.
pub fn compress_traced(scheme: Scheme, data: &[u8], tel: &ule_obs::Telemetry) -> Vec<u8> {
    let out = {
        let _span = tel.span("archive.compress");
        compress(scheme, data)
    };
    tel.add("codec.bytes_in", data.len() as u64);
    tel.add("codec.bytes_out", out.len() as u64);
    tel.add(
        &format!("codec.{}.bytes_in", scheme.name()),
        data.len() as u64,
    );
    tel.add(
        &format!("codec.{}.bytes_out", scheme.name()),
        out.len() as u64,
    );
    out
}

/// [`decompress`] with codec telemetry (the restore-side mirror of
/// [`compress_traced`]).
pub fn decompress_traced(
    archive: &[u8],
    tel: &ule_obs::Telemetry,
) -> Result<Vec<u8>, ArchiveError> {
    let out = {
        let _span = tel.span("restore.decompress");
        decompress(archive)?
    };
    tel.add("codec.restore.bytes_in", archive.len() as u64);
    tel.add("codec.restore.bytes_out", out.len() as u64);
    Ok(out)
}

/// Upper bound on what a decoder pre-allocates for its output buffer.
/// `expected_len` comes from an archive header that may be corrupted, so
/// decoders start no larger than this and let the vector grow naturally —
/// their truncation checks stop a lying length long before it matters.
pub(crate) const MAX_PREALLOC: usize = 1 << 20;
