//! Property tests: every DBCoder scheme must round-trip arbitrary inputs,
//! and the container must reject tampered archives rather than return
//! silently wrong data.

use proptest::prelude::*;
use ule_compress::{compress, decompress, Scheme};

fn schemes() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Store),
        Just(Scheme::Rle),
        Just(Scheme::Lzss),
        Just(Scheme::Lza),
        Just(Scheme::ColumnarSql),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_bytes_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        scheme in schemes(),
    ) {
        let arc = compress(scheme, &data);
        prop_assert_eq!(decompress(&arc).unwrap(), data);
    }

    #[test]
    fn repetitive_bytes_roundtrip(
        byte in any::<u8>(),
        run in 1usize..8192,
        scheme in schemes(),
    ) {
        let data = vec![byte; run];
        let arc = compress(scheme, &data);
        prop_assert_eq!(decompress(&arc).unwrap(), data);
    }

    #[test]
    fn textish_roundtrip(
        words in proptest::collection::vec("[a-z]{1,12}", 0..300),
        scheme in schemes(),
    ) {
        let data = words.join(" ").into_bytes();
        let arc = compress(scheme, &data);
        prop_assert_eq!(decompress(&arc).unwrap(), data);
    }

    #[test]
    fn sql_dumps_roundtrip_columnar(
        nrows in 0usize..200,
        seed in any::<u32>(),
    ) {
        let mut s = String::from("CREATE TABLE t (a int, b text);\nCOPY t (a, b) FROM stdin;\n");
        for i in 0..nrows {
            let v = seed.wrapping_mul(i as u32 + 1);
            s.push_str(&format!("{}\tlabel_{}\n", v as i32, v % 7));
        }
        s.push_str("\\.\n");
        let arc = compress(Scheme::ColumnarSql, s.as_bytes());
        prop_assert_eq!(decompress(&arc).unwrap(), s.into_bytes());
    }

    #[test]
    fn single_byte_flip_never_passes_silently(
        data in proptest::collection::vec(any::<u8>(), 64..512),
        flip_at_frac in 0.0f64..1.0,
        scheme in schemes(),
    ) {
        let mut arc = compress(scheme, &data);
        // Flip a payload byte (past the 18-byte header) and require either
        // a decode error or a checksum error — never a silent wrong answer.
        let lo = 18usize;
        if arc.len() > lo {
            let idx = lo + ((arc.len() - lo - 1) as f64 * flip_at_frac) as usize;
            arc[idx] ^= 0x01;
            match decompress(&arc) {
                Err(_) => {}
                Ok(out) => prop_assert_eq!(out, data, "tampering produced different data without an error"),
            }
        }
    }
}
