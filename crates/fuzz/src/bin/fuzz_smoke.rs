//! CI fuzz smoke campaign: every registered target for its suggested
//! iteration budget, one JSON report, non-zero exit on any failure.
//!
//! ```text
//! fuzz_smoke [--seed N] [--scale PERCENT] [--out BENCH_fuzz.json]
//! ```
//!
//! `--scale 10` runs 10% of each target's budget (fast local sanity);
//! CI runs the full budget. The per-target wall-clock ceiling turns a
//! hang into a failed leg instead of a stuck runner.

use std::time::Duration;
use ule_fuzz::{all_targets, fuzz_target, FuzzOutcome};

/// Per-target wall-clock ceiling. Generous for the image-decode targets;
/// a clean campaign finishes far below it.
const TARGET_BUDGET: Duration = Duration::from_secs(120);

fn main() {
    let mut seed: u64 = 0x001E_2026;
    let mut scale: u64 = 100;
    let mut out_path = String::from("BENCH_fuzz.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => seed = value("--seed").parse().expect("--seed: u64"),
            "--scale" => scale = value("--scale").parse().expect("--scale: percent"),
            "--out" => out_path = value("--out"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let targets = all_targets();
    let mut reports = Vec::new();
    let mut failed = false;
    for target in &targets {
        let iterations = (target.suggested_iterations() * scale / 100).max(1);
        let report = fuzz_target(target.as_ref(), seed, iterations, TARGET_BUDGET);
        let status = match report.outcome {
            FuzzOutcome::Clean => "clean",
            FuzzOutcome::Panicked => "PANIC",
            FuzzOutcome::TimedOut => "TIMEOUT",
        };
        eprintln!(
            "{:<18} {:>8} iters  {:>10.0} iters/s  {}",
            report.name,
            report.iterations,
            report.iters_per_sec(),
            status
        );
        if let Some(f) = &report.failure {
            failed = true;
            eprintln!(
                "  seed {} iteration {}: {}\n  minimized input ({} bytes): {:02x?}",
                report.seed,
                f.iteration,
                f.message,
                f.input.len(),
                f.input
            );
        }
        if report.outcome == FuzzOutcome::TimedOut {
            failed = true;
        }
        reports.push(report);
    }

    let total: u64 = reports.iter().map(|r| r.iterations).sum();
    eprintln!("total: {total} iterations across {} targets", reports.len());

    // Hand-rolled JSON (no serde in the workspace): flat and line-oriented
    // so the report gate can parse it with a few string finds.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"total_iterations\": {total},\n"));
    json.push_str("  \"targets\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let outcome = match r.outcome {
            FuzzOutcome::Clean => "clean",
            FuzzOutcome::Panicked => "panic",
            FuzzOutcome::TimedOut => "timeout",
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"iterations\": {}, \"elapsed_s\": {:.3}, \"iters_per_s\": {:.1}, \"outcome\": \"{}\"}}{}\n",
            r.name,
            r.iterations,
            r.elapsed.as_secs_f64(),
            r.iters_per_sec(),
            outcome,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("report: {out_path}");

    if failed {
        std::process::exit(1);
    }
}
