//! The [`FuzzTarget`] trait and the budgeted campaign driver.

use crate::mutate::Mutator;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// One untrusted-input parser under test.
///
/// The contract a target asserts by existing: for *any* byte string,
/// [`FuzzTarget::run`] returns — no panic, no unbounded loop, no
/// input-controlled allocation blow-up. Targets wrap their parser with
/// whatever fuel / length bounds the real call sites use (VM step budgets,
/// `expected_len` caps), because that is the trusted part of the contract;
/// the bytes are the untrusted part.
pub trait FuzzTarget: Sync {
    /// Stable name (used in reports, JSON and replay instructions).
    fn name(&self) -> &'static str;

    /// Structurally valid seed inputs mutation starts from. Must be
    /// non-empty and deterministic.
    fn corpus(&self) -> Vec<Vec<u8>>;

    /// Magic bytes the mutator re-stamps on half the mutants, so deep
    /// parser states stay reachable after corruption.
    fn magic(&self) -> Option<&'static [u8]> {
        None
    }

    /// Per-target iteration budget for the CI smoke campaign, scaled to
    /// per-iteration cost (image decodes get hundreds, byte parsers get
    /// tens of thousands).
    fn suggested_iterations(&self) -> u64 {
        8_000
    }

    /// Feed one input to the parser. Errors are expected; panics are not.
    fn run(&self, input: &[u8]);
}

/// Why a campaign stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FuzzOutcome {
    /// Ran the full iteration budget without a failure.
    Clean,
    /// A panic was caught; the minimised input and replay data are in
    /// [`TargetReport::failure`].
    Panicked,
    /// The wall-clock budget expired before the iteration budget — the
    /// hang-detection path (a stalled parser fails instead of stalling
    /// the harness forever).
    TimedOut,
}

/// A caught failure, minimised.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Iteration index at which the panic fired (replay: same seed, same
    /// target, same iteration).
    pub iteration: u64,
    /// The minimised failing input.
    pub input: Vec<u8>,
    /// The panic payload, if it was a string.
    pub message: String,
}

/// Campaign result for one target.
#[derive(Clone, Debug)]
pub struct TargetReport {
    pub name: &'static str,
    pub seed: u64,
    pub iterations: u64,
    pub elapsed: Duration,
    pub outcome: FuzzOutcome,
    pub failure: Option<Failure>,
}

impl TargetReport {
    pub fn iters_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.iterations as f64 / s
        } else {
            0.0
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Does `input` still make the target panic?
fn still_fails(target: &dyn FuzzTarget, input: &[u8]) -> bool {
    panic::catch_unwind(AssertUnwindSafe(|| target.run(input))).is_err()
}

/// Greedy structural minimisation: alternately try chopping spans out and
/// zeroing bytes while the panic persists. Not ddmin-complete, but turns
/// kilobyte mutants into fixture-sized reproducers.
pub fn minimize(target: &dyn FuzzTarget, input: &[u8]) -> Vec<u8> {
    let mut cur = input.to_vec();
    // Pass 1: remove halves/quarters/… from anywhere.
    let mut chunk = (cur.len() / 2).max(1);
    while chunk >= 1 {
        let mut at = 0;
        while at + chunk <= cur.len() {
            let mut candidate = cur.clone();
            candidate.drain(at..at + chunk);
            if still_fails(target, &candidate) {
                cur = candidate;
            } else {
                at += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    // Pass 2: canonicalise surviving bytes to zero where possible.
    for i in 0..cur.len() {
        if cur[i] == 0 {
            continue;
        }
        let saved = cur[i];
        cur[i] = 0;
        if !still_fails(target, &cur) {
            cur[i] = saved;
        }
    }
    cur
}

/// Run one target for `iterations` mutants (cycling over its corpus) under
/// a wall-clock budget. Deterministic for (`target`, `seed`, `iterations`).
///
/// Panics inside the target are caught (with the default panic hook
/// silenced for the duration, so a million-iteration campaign does not
/// spray backtraces), minimised, and returned as a [`Failure`].
pub fn fuzz_target(
    target: &dyn FuzzTarget,
    seed: u64,
    iterations: u64,
    budget: Duration,
) -> TargetReport {
    let corpus = target.corpus();
    assert!(!corpus.is_empty(), "{}: empty corpus", target.name());
    let magic = target.magic();
    let mut mutator = Mutator::new(seed ^ 0x5eed_f0cc_5eed_f0cc);
    let start = Instant::now();

    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut outcome = FuzzOutcome::Clean;
    let mut failure = None;
    let mut done = 0u64;
    for i in 0..iterations {
        // A deep corpus entry every 16th iteration keeps the happy path
        // covered; everything else is a mutant of a corpus entry.
        let base = &corpus[mutator.below(corpus.len())];
        let input = if i % 16 == 0 {
            base.clone()
        } else {
            mutator.mutate(base, magic)
        };
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| target.run(&input))) {
            let message = panic_message(payload.as_ref());
            let minimized = minimize(target, &input);
            failure = Some(Failure {
                iteration: i,
                input: minimized,
                message,
            });
            outcome = FuzzOutcome::Panicked;
            done = i + 1;
            break;
        }
        done = i + 1;
        // Check the clock in batches: Instant::now() per iteration would
        // dominate the cheap targets.
        if i % 64 == 0 && start.elapsed() > budget {
            outcome = FuzzOutcome::TimedOut;
            break;
        }
    }
    panic::set_hook(prev_hook);

    TargetReport {
        name: target.name(),
        seed,
        iterations: done,
        elapsed: start.elapsed(),
        outcome,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct PanicsOnFF;
    impl FuzzTarget for PanicsOnFF {
        fn name(&self) -> &'static str {
            "panics-on-ff"
        }
        fn corpus(&self) -> Vec<Vec<u8>> {
            vec![vec![0u8; 32]]
        }
        fn run(&self, input: &[u8]) {
            if input.contains(&0xFF) {
                panic!("found the bad byte");
            }
        }
    }

    struct AlwaysFine;
    impl FuzzTarget for AlwaysFine {
        fn name(&self) -> &'static str {
            "always-fine"
        }
        fn corpus(&self) -> Vec<Vec<u8>> {
            vec![b"seed".to_vec()]
        }
        fn run(&self, _input: &[u8]) {}
    }

    #[test]
    fn clean_target_completes_budget() {
        let r = fuzz_target(&AlwaysFine, 1, 500, Duration::from_secs(30));
        assert_eq!(r.outcome, FuzzOutcome::Clean);
        assert_eq!(r.iterations, 500);
        assert!(r.failure.is_none());
    }

    #[test]
    fn panic_is_caught_and_minimized() {
        let r = fuzz_target(&PanicsOnFF, 2, 100_000, Duration::from_secs(60));
        assert_eq!(r.outcome, FuzzOutcome::Panicked);
        let f = r.failure.expect("failure recorded");
        assert!(f.message.contains("bad byte"));
        // Minimisation should shrink to exactly the one offending byte.
        assert_eq!(f.input, vec![0xFF]);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = fuzz_target(&PanicsOnFF, 9, 100_000, Duration::from_secs(60));
        let b = fuzz_target(&PanicsOnFF, 9, 100_000, Duration::from_secs(60));
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.failure.map(|f| f.input), b.failure.map(|f| f.input));
    }

    #[test]
    fn timeout_fails_instead_of_stalling() {
        struct Slow;
        impl FuzzTarget for Slow {
            fn name(&self) -> &'static str {
                "slow"
            }
            fn corpus(&self) -> Vec<Vec<u8>> {
                vec![vec![0u8]]
            }
            fn run(&self, _input: &[u8]) {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let r = fuzz_target(&Slow, 3, u64::MAX, Duration::from_millis(50));
        assert_eq!(r.outcome, FuzzOutcome::TimedOut);
        assert!(r.iterations < 1_000_000);
    }
}
