//! Structured fuzzing for every untrusted-input parser (`DESIGN.md` §13).
//!
//! An archive that outlives its writing era will be decoded from scans and
//! documents the decoder has no reason to trust: a vault serving such
//! archives at scale must return structured errors on crafted bytes, never
//! panic, hang or balloon. PR 1's LZA decompressor hang proved this bug
//! class is live in this tree; this crate makes it a *tested* property.
//!
//! Like the vendored proptest stand-in, the harness is fully offline — no
//! cargo-fuzz, no libFuzzer, no network. Three pieces:
//!
//! * [`mutate`] — a seeded ([`ule_raster::rng::SplitMix64`]) byte-mutation
//!   engine: truncation, splicing, bit flips, length-field corruption,
//!   magic preservation;
//! * [`runner`] — the [`FuzzTarget`] trait plus a budgeted driver:
//!   every target runs for a fixed iteration count under a wall-clock
//!   budget, so a hang *fails* the run instead of stalling it, and every
//!   panic is caught, minimised and reported with its replay seed;
//! * [`targets`] — one adapter per untrusted parser: the `ULEA` container
//!   and its four codecs, emblem header / Manchester / frame / stream
//!   decode, the vault content index and record framing, the Bootstrap
//!   document, and the DynaRisc / VeRisc assemblers and fuel-bounded VMs.
//!
//! Reproducibility contract: `fuzz_target(t, seed, …)` visits exactly the
//! same inputs for the same seed, so any failure in CI replays locally
//! from the printed seed, and minimised failures are frozen into
//! `tests/fixtures/regressions/` as plain unit tests.

pub mod mutate;
pub mod runner;
pub mod targets;

pub use mutate::Mutator;
pub use runner::{fuzz_target, FuzzOutcome, FuzzTarget, TargetReport};
pub use targets::all_targets;
