//! One [`FuzzTarget`] adapter per untrusted-input parser in the workspace.
//!
//! Each target wraps its parser exactly the way trusted call sites do:
//! VM runs carry a fuel budget, raw codec streams carry the caller-derived
//! `expected_len` cap, images are sized to the geometry. Only the *bytes*
//! are hostile; the harness never hands a parser an unbounded resource.

use crate::runner::FuzzTarget;
use ule_compress::container::Scheme;
use ule_dynarisc::{ThreadedImage, Vm};
use ule_emblem::{EmblemGeometry, EmblemHeader, EmblemKind};
use ule_raster::image::GrayImage;
use ule_raster::rng::SplitMix64;
use ule_verisc::{Engine, EngineKind};

/// Deterministic compressible sample data (repeated dictionary words), the
/// structurally-valid substrate every codec corpus starts from.
fn sample_text(len: usize) -> Vec<u8> {
    const WORDS: [&str; 6] = [
        "layout",
        "emulation",
        "archive",
        "reel",
        "emblem",
        "0123456789",
    ];
    let mut rng = SplitMix64::new(0xC0FF_EE00);
    let mut out = Vec::with_capacity(len + 16);
    while out.len() < len {
        out.extend_from_slice(WORDS[rng.next_below(WORDS.len())].as_bytes());
        out.push(b' ');
    }
    out.truncate(len);
    out
}

/// Cap on `expected_len` handed to the raw codec decoders — mirrors the
/// container layer, which derives it from a validated header field and
/// clamps preallocation.
const CODEC_EXPECTED_LEN: usize = 1 << 12;

/// Fuel budget for VM targets: enough to run real corpus programs to
/// completion, small enough that a mutant cannot stall the campaign.
const VM_FUEL: u64 = 4096;

// ---------------------------------------------------------------------------
// ule_compress
// ---------------------------------------------------------------------------

/// The `ULEA` container: `inspect` + `decompress` on arbitrary bytes.
struct UleaContainer;

impl FuzzTarget for UleaContainer {
    fn name(&self) -> &'static str {
        "ulea-container"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        let data = sample_text(2048);
        [
            Scheme::Store,
            Scheme::Rle,
            Scheme::Lzss,
            Scheme::Lza,
            Scheme::ColumnarSql,
        ]
        .iter()
        .map(|&s| ule_compress::compress(s, &data))
        .collect()
    }
    fn magic(&self) -> Option<&'static [u8]> {
        Some(b"ULEA")
    }
    fn suggested_iterations(&self) -> u64 {
        12_000
    }
    fn run(&self, input: &[u8]) {
        let _ = ule_compress::container::inspect(input);
        let _ = ule_compress::decompress(input);
    }
}

/// Raw LZA stream decode below the container (caller-supplied length cap).
struct LzaStream;

impl FuzzTarget for LzaStream {
    fn name(&self) -> &'static str {
        "lza-stream"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        vec![ule_compress::lza::compress(&sample_text(
            CODEC_EXPECTED_LEN,
        ))]
    }
    fn suggested_iterations(&self) -> u64 {
        6_000
    }
    fn run(&self, input: &[u8]) {
        let _ = ule_compress::lza::decompress(input, CODEC_EXPECTED_LEN);
    }
}

/// Raw LZSS stream decode.
struct LzssStream;

impl FuzzTarget for LzssStream {
    fn name(&self) -> &'static str {
        "lzss-stream"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        vec![ule_compress::lzss::compress(&sample_text(
            CODEC_EXPECTED_LEN,
        ))]
    }
    fn suggested_iterations(&self) -> u64 {
        10_000
    }
    fn run(&self, input: &[u8]) {
        let _ = ule_compress::lzss::decompress(input, CODEC_EXPECTED_LEN);
    }
}

/// Raw RLE stream decode.
struct RleStream;

impl FuzzTarget for RleStream {
    fn name(&self) -> &'static str {
        "rle-stream"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        vec![ule_compress::rle::compress(&sample_text(
            CODEC_EXPECTED_LEN,
        ))]
    }
    fn suggested_iterations(&self) -> u64 {
        12_000
    }
    fn run(&self, input: &[u8]) {
        let _ = ule_compress::rle::decompress(input, CODEC_EXPECTED_LEN);
    }
}

/// The adaptive arithmetic decoder primitive: a bounded bit-pull loop plus
/// the `overrun` accounting the higher layers rely on.
struct ArithStream;

impl FuzzTarget for ArithStream {
    fn name(&self) -> &'static str {
        "arith-stream"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        let mut enc = ule_compress::arith::Encoder::new();
        let mut model = ule_compress::arith::BitModel::default();
        for (i, b) in sample_text(512).iter().enumerate() {
            enc.encode_bit(&mut model, b & 1 == 1);
            if i % 7 == 0 {
                enc.encode_direct(*b as u32, 8);
            }
        }
        vec![enc.finish()]
    }
    fn suggested_iterations(&self) -> u64 {
        8_000
    }
    fn run(&self, input: &[u8]) {
        let mut dec = ule_compress::arith::Decoder::new(input);
        let mut model = ule_compress::arith::BitModel::default();
        for i in 0..2048u32 {
            let _ = dec.decode_bit(&mut model);
            if i % 7 == 0 {
                let _ = dec.decode_direct(8);
            }
        }
        let _ = dec.overrun();
    }
}

// ---------------------------------------------------------------------------
// ule_emblem
// ---------------------------------------------------------------------------

/// The 16-byte emblem frame header.
struct EmblemHeaderBytes;

impl FuzzTarget for EmblemHeaderBytes {
    fn name(&self) -> &'static str {
        "emblem-header"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        vec![
            EmblemHeader::new(EmblemKind::Data, 3, 1, 100, 1000)
                .to_bytes()
                .to_vec(),
            EmblemHeader::new(EmblemKind::Parity, 0, 0, 64, 64)
                .to_bytes()
                .to_vec(),
        ]
    }
    fn suggested_iterations(&self) -> u64 {
        25_000
    }
    fn run(&self, input: &[u8]) {
        let _ = EmblemHeader::from_bytes(input);
    }
}

/// Manchester cell decode on arbitrary-length cell slices (a scanner that
/// loses a half-period hands the decoder an odd run).
struct ManchesterCells;

impl FuzzTarget for ManchesterCells {
    fn name(&self) -> &'static str {
        "manchester-cells"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        vec![sample_text(256)]
    }
    fn suggested_iterations(&self) -> u64 {
        8_000
    }
    fn run(&self, input: &[u8]) {
        let cells = ule_emblem::manchester::bytes_to_bits(input);
        // Clip to an input-chosen length so odd (torn) cell runs are
        // exercised, not just the byte-aligned even case.
        let cut = input.first().map(|b| *b as usize % 3).unwrap_or(0);
        let cells = &cells[..cells.len().saturating_sub(cut)];
        let start = input.last().map(|b| b & 1 == 1).unwrap_or(false);
        let dec = ule_emblem::manchester::decode_cells(cells, start);
        let _ = ule_emblem::manchester::bits_to_bytes(&dec.bits);
    }
}

fn fuzz_geometry() -> EmblemGeometry {
    EmblemGeometry::test_small()
}

fn frame_pixels(geom: &EmblemGeometry) -> (usize, usize) {
    (geom.image_width(), geom.image_height())
}

/// Deterministic valid frames for the image-level targets.
fn encoded_frames(geom: &EmblemGeometry, n: usize) -> Vec<GrayImage> {
    let cap = geom.payload_capacity();
    (0..n)
        .map(|i| {
            let payload = sample_text(cap);
            let header =
                EmblemHeader::new(EmblemKind::Data, i as u16, 0, cap as u32, (cap * n) as u32);
            ule_emblem::encode_emblem(geom, &header, &payload)
        })
        .collect()
}

fn pixels_of(geom: &EmblemGeometry, img: &GrayImage) -> Vec<u8> {
    let (w, h) = frame_pixels(geom);
    let mut px = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            px.push(img.get(x, y));
        }
    }
    px
}

/// Whole-frame decode: mutated pixel rasters through `decode_emblem`.
struct EmblemFrame;

impl FuzzTarget for EmblemFrame {
    fn name(&self) -> &'static str {
        "emblem-frame"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        let geom = fuzz_geometry();
        encoded_frames(&geom, 2)
            .iter()
            .map(|f| pixels_of(&geom, f))
            .collect()
    }
    fn suggested_iterations(&self) -> u64 {
        400
    }
    fn run(&self, input: &[u8]) {
        let geom = fuzz_geometry();
        let (w, h) = frame_pixels(&geom);
        let mut px = input.to_vec();
        px.resize(w * h, 0);
        let img = GrayImage::from_raw(w, h, px);
        let _ = ule_emblem::decode_emblem(&geom, &img);
    }
}

/// Multi-frame stream reassembly: mutants of a full encoded stream.
struct EmblemStream;

impl FuzzTarget for EmblemStream {
    fn name(&self) -> &'static str {
        "emblem-stream"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        let geom = fuzz_geometry();
        let frames = encoded_frames(&geom, 3);
        let mut all = Vec::new();
        for f in &frames {
            all.extend(pixels_of(&geom, f));
        }
        vec![all]
    }
    fn suggested_iterations(&self) -> u64 {
        200
    }
    fn run(&self, input: &[u8]) {
        let geom = fuzz_geometry();
        let (w, h) = frame_pixels(&geom);
        let frame_len = w * h;
        let frames: Vec<GrayImage> = input
            .chunks(frame_len)
            .take(4)
            .map(|c| {
                let mut px = c.to_vec();
                px.resize(frame_len, 0);
                GrayImage::from_raw(w, h, px)
            })
            .collect();
        if frames.is_empty() {
            return;
        }
        let _ = ule_emblem::decode_stream(&geom, &frames);
    }
}

// ---------------------------------------------------------------------------
// ule_vault
// ---------------------------------------------------------------------------

/// The vault content-index text format.
struct CatalogIndex;

impl FuzzTarget for CatalogIndex {
    fn name(&self) -> &'static str {
        "catalog-index"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        let index = ule_vault::catalog::ContentIndex {
            chunk_cap: 512,
            entries: vec![
                ule_vault::catalog::IndexEntry {
                    name: "customer".into(),
                    archive_start: 0,
                    archive_len: 64,
                    dump_start: 0,
                    dump_len: 123,
                    crc32: 0xDEAD_BEEF,
                    zone_columns: Vec::new(),
                    zones: Vec::new(),
                },
                ule_vault::catalog::IndexEntry {
                    name: "orders".into(),
                    archive_start: 64,
                    archive_len: 100,
                    dump_start: 123,
                    dump_len: 456,
                    crc32: 0x0BAD_F00D,
                    zone_columns: vec!["o_orderdate".into()],
                    zones: vec![
                        ule_vault::catalog::ZoneInfo {
                            archive_len: 40,
                            dump_len: 200,
                            rows: 0,
                            stats: Vec::new(),
                        },
                        ule_vault::catalog::ZoneInfo {
                            archive_len: 60,
                            dump_len: 256,
                            rows: 7,
                            stats: vec![("1994-01-01".into(), "1995-06-30".into())],
                        },
                    ],
                },
            ],
        };
        vec![index.to_bytes()]
    }
    fn magic(&self) -> Option<&'static [u8]> {
        Some(b"ULE VAULT INDEX 1")
    }
    fn suggested_iterations(&self) -> u64 {
        8_000
    }
    fn run(&self, input: &[u8]) {
        // Parsing must never panic; on success the planner arithmetic
        // fed by the parsed numbers (chunk spans, zone-span walks) must
        // not panic either — that is exactly the surface a hostile
        // catalog reaches during a selective restore.
        if let Ok(index) = ule_vault::catalog::ContentIndex::parse(input) {
            for entry in &index.entries {
                let _ = index.chunk_range(entry);
                let _ = index.chunk_span(entry.archive_start, entry.archive_len);
                let _ = entry.zone_spans();
            }
        }
    }
}

/// The length-prefixed record framing of the vault data stream.
struct VaultRecords;

impl FuzzTarget for VaultRecords {
    fn name(&self) -> &'static str {
        "vault-records"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        let mut stream = Vec::new();
        for (scheme, len) in [(Scheme::Store, 300), (Scheme::Lzss, 900)] {
            let container = ule_compress::compress(scheme, &sample_text(len));
            stream.extend((container.len() as u32).to_le_bytes());
            stream.extend(container);
        }
        vec![stream]
    }
    fn suggested_iterations(&self) -> u64 {
        8_000
    }
    fn run(&self, input: &[u8]) {
        if let Ok(records) = ule_vault::split_records(input) {
            for record in records {
                let _ = ule_compress::decompress(record);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// micr_olonys
// ---------------------------------------------------------------------------

/// The human-readable Bootstrap document.
struct BootstrapDoc;

impl FuzzTarget for BootstrapDoc {
    fn name(&self) -> &'static str {
        "bootstrap-doc"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        let text = micr_olonys::MicrOlonys::test_tiny()
            .make_bootstrap()
            .to_text();
        vec![text.into_bytes()]
    }
    fn suggested_iterations(&self) -> u64 {
        5_000
    }
    fn run(&self, input: &[u8]) {
        let text = String::from_utf8_lossy(input);
        let _ = micr_olonys::Bootstrap::parse(&text);
    }
}

// ---------------------------------------------------------------------------
// ule_dynarisc
// ---------------------------------------------------------------------------

const DYNARISC_SAMPLE: &str = r#"
    ; sum 1..=10, then touch memory and pointer modes
    LDI R0, #0
    LDI R1, #10
    LDI D1, #0x00000040
top:
    ADD R0, R1
    SUB R1, #1
    JNZ top
    STM R0, [D1]+
    LDM.W R2, [D1]
    MOVE D2, R0:R1
    MOVE R4, D2.LO
    RET
"#;

/// The text assembler on mutated (possibly non-UTF-8) source.
struct DynaRiscAsm;

impl FuzzTarget for DynaRiscAsm {
    fn name(&self) -> &'static str {
        "dynarisc-asm"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        vec![DYNARISC_SAMPLE.as_bytes().to_vec()]
    }
    fn suggested_iterations(&self) -> u64 {
        5_000
    }
    fn run(&self, input: &[u8]) {
        let src = String::from_utf8_lossy(input);
        let _ = ule_dynarisc::text_asm::assemble(&src);
    }
}

/// The fuel-bounded DynaRisc VM on arbitrary code words.
struct DynaRiscVm;

impl FuzzTarget for DynaRiscVm {
    fn name(&self) -> &'static str {
        "dynarisc-vm"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        let words = ule_dynarisc::text_asm::assemble(DYNARISC_SAMPLE).expect("sample assembles");
        vec![words.iter().flat_map(|w| w.to_le_bytes()).collect()]
    }
    fn suggested_iterations(&self) -> u64 {
        8_000
    }
    fn run(&self, input: &[u8]) {
        let words: Vec<u16> = input
            .chunks_exact(2)
            .take(4096)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        if words.is_empty() {
            return;
        }
        let mut vm = Vm::new(words, vec![0u8; 1024]);
        let _ = vm.run(VM_FUEL);
    }
}

/// Differential harness for the two DynaRisc engines: every mutated
/// program image runs on the reference interpreter AND the threaded-code
/// engine under the same fuel bound, and any divergence — run result
/// (including the fault variant), registers, pointers, flags, memory, pc,
/// or fuel consumed — is a finding. This is the fuzz leg of the
/// conformance net that lets the threaded engine serve as the production
/// tier of `restore_emulated`.
struct DynaRiscDiff;

impl FuzzTarget for DynaRiscDiff {
    fn name(&self) -> &'static str {
        "dynarisc-diff"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        // Seed with real archived decoders plus the hand-written sample so
        // mutants start from dense, structurally valid instruction
        // streams (jump targets, immediates, memory traffic).
        let sample = ule_dynarisc::text_asm::assemble(DYNARISC_SAMPLE).expect("sample assembles");
        [
            sample,
            ule_dynarisc::programs::dbdecode::program(),
            ule_dynarisc::programs::modecode::program(),
        ]
        .iter()
        .map(|words| words.iter().flat_map(|w| w.to_le_bytes()).collect())
        .collect()
    }
    fn suggested_iterations(&self) -> u64 {
        100_000
    }
    fn run(&self, input: &[u8]) {
        let words: Vec<u16> = input
            .chunks_exact(2)
            .take(4096)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        if words.is_empty() {
            return;
        }
        let mut vm = Vm::new(words.clone(), vec![0u8; 1024]);
        let res = vm.run(VM_FUEL);
        let image = ThreadedImage::compile(&words);
        let mut tvm = image.instantiate(vec![0u8; 1024]);
        let tres = tvm.run(VM_FUEL);
        assert_eq!(tres, res, "engines disagree on run result");
        assert_eq!(
            tvm.state(),
            vm.state(),
            "engines disagree on post-state (registers/memory/fuel)"
        );
    }
}

/// Differential *codec* harness (the cross-layer sibling of
/// [`DynaRiscDiff`]): every mutated `ULEA` container the native decoder
/// accepts as LZSS must decode to exactly the same bytes through the
/// archived DynaRisc `dbdecode` program. The paper's whole bet is that
/// the decoder printed on the medium and the one in the lab agree
/// forever — a mutant container that splits them is a finding even when
/// both "succeed".
struct CodecDiff;

impl FuzzTarget for CodecDiff {
    fn name(&self) -> &'static str {
        "codec-diff"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        // LZSS containers only: dbdecode rejects other schemes by status,
        // so the interesting mutants are near-valid LZSS streams (runs,
        // overlaps, empty payload, binary).
        let binary: Vec<u8> = (0..3000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
            .collect();
        [
            sample_text(2048),
            Vec::new(),
            vec![b'z'; CODEC_EXPECTED_LEN],
            binary,
        ]
        .iter()
        .map(|d| ule_compress::compress(Scheme::Lzss, d))
        .collect()
    }
    fn magic(&self) -> Option<&'static [u8]> {
        Some(b"ULEA")
    }
    fn suggested_iterations(&self) -> u64 {
        8_000
    }
    fn run(&self, input: &[u8]) {
        // Invariant: native acceptance of an LZSS container implies the
        // archived decoder reproduces the exact bytes. (Native rejection
        // implies nothing — dbdecode skips the container CRC, so a laxer
        // success there is fine; wrong *bytes* never are.)
        let Ok(expected) = ule_compress::decompress(input) else {
            return;
        };
        if input.len() < ule_compress::container::HEADER_LEN
            || input[5] != Scheme::Lzss as u8
            || expected.len() > CODEC_EXPECTED_LEN
        {
            return;
        }
        match ule_dynarisc::programs::dbdecode::run(input) {
            Ok(out) => assert!(
                out == expected,
                "archived dbdecode diverges from the native decoder: {} vs {} bytes",
                out.len(),
                expected.len()
            ),
            Err(e) => panic!("native decode succeeded, archived dbdecode failed: {e:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// ule_verisc
// ---------------------------------------------------------------------------

/// Deterministic VeRisc memory image (a small counting loop) for the VM
/// corpus, built with the macro assembler.
fn verisc_sample_image() -> Vec<u32> {
    let mut m = ule_verisc::masm::Masm::new();
    let counter = m.cell(5);
    let one = m.konst(1);
    let top = m.here();
    let done = m.label();
    m.subi(counter, counter, 1);
    m.jz_cell(counter, done);
    m.jmp(top);
    m.bind(done);
    m.movi(counter, 0xAA);
    let _ = one;
    m.halt();
    m.finish(4).mem
}

/// All three VeRisc engine implementations on arbitrary memory images,
/// cross-checked: hostile bytes must fail identically everywhere.
struct VeriscVm;

impl FuzzTarget for VeriscVm {
    fn name(&self) -> &'static str {
        "verisc-vm"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        vec![verisc_sample_image()
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect()]
    }
    fn suggested_iterations(&self) -> u64 {
        4_000
    }
    fn run(&self, input: &[u8]) {
        let mem: Vec<u32> = input
            .chunks_exact(4)
            .take(4096)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let mut results = Vec::new();
        for kind in EngineKind::ALL {
            let mut engine = Engine::new(kind, mem.clone());
            let res = engine.run(VM_FUEL);
            results.push((res, engine.acc, engine.mem));
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "engines disagree on hostile memory image"
        );
    }
}

/// The VeRisc macro assembler driven as a builder: arbitrary op sequences
/// must surface contract violations through `try_finish`, never panic.
struct MasmBuilder;

impl FuzzTarget for MasmBuilder {
    fn name(&self) -> &'static str {
        "verisc-masm"
    }
    fn corpus(&self) -> Vec<Vec<u8>> {
        // Op-stream encoding: pairs of (op selector, operand).
        vec![vec![0, 5, 1, 1, 4, 0, 2, 0, 6, 0, 3, 0, 9, 0]]
    }
    fn suggested_iterations(&self) -> u64 {
        5_000
    }
    fn run(&self, input: &[u8]) {
        let mut m = ule_verisc::masm::Masm::new();
        let mut cells = Vec::new();
        let mut labels = Vec::new();
        for pair in input.chunks_exact(2).take(64) {
            let (op, arg) = (pair[0], pair[1]);
            match op % 10 {
                0 => cells.push(m.cell(arg as u32)),
                1 => cells.push(m.konst(arg as u32)),
                2 => labels.push(m.label()),
                3 => {
                    if !labels.is_empty() {
                        m.bind(labels[arg as usize % labels.len()]);
                    }
                }
                4 => labels.push(m.here()),
                5 => {
                    if !cells.is_empty() {
                        let c = cells[arg as usize % cells.len()];
                        m.movi(c, arg as u32);
                    }
                }
                6 => {
                    if !labels.is_empty() {
                        m.jmp(labels[arg as usize % labels.len()]);
                    }
                }
                7 => {
                    if cells.len() >= 2 {
                        let a = cells[arg as usize % cells.len()];
                        let b = cells[(arg as usize / 7) % cells.len()];
                        m.sub(a, a, b);
                    }
                }
                8 => {
                    if !cells.is_empty() && !labels.is_empty() {
                        let c = cells[arg as usize % cells.len()];
                        let l = labels[arg as usize % labels.len()];
                        m.jnz_cell(c, l);
                    }
                }
                _ => m.halt(),
            }
        }
        match m.try_finish(2) {
            Ok(image) => {
                let mut engine = Engine::new(EngineKind::MatchBased, image.mem);
                let _ = engine.run(VM_FUEL);
            }
            Err(_) => {}
        }
    }
}

/// Every target, in a stable order (reports, CI and the smoke binary all
/// iterate this list).
pub fn all_targets() -> Vec<Box<dyn FuzzTarget>> {
    vec![
        Box::new(UleaContainer),
        Box::new(LzaStream),
        Box::new(LzssStream),
        Box::new(RleStream),
        Box::new(ArithStream),
        Box::new(EmblemHeaderBytes),
        Box::new(ManchesterCells),
        Box::new(EmblemFrame),
        Box::new(EmblemStream),
        Box::new(CatalogIndex),
        Box::new(VaultRecords),
        Box::new(BootstrapDoc),
        Box::new(DynaRiscAsm),
        Box::new(DynaRiscVm),
        Box::new(DynaRiscDiff),
        Box::new(CodecDiff),
        Box::new(VeriscVm),
        Box::new(MasmBuilder),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_nonempty_and_deterministic() {
        for t in all_targets() {
            let a = t.corpus();
            let b = t.corpus();
            assert!(!a.is_empty(), "{}: empty corpus", t.name());
            assert_eq!(a, b, "{}: corpus not deterministic", t.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_targets().iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all_targets().len());
    }

    #[test]
    fn corpus_entries_run_clean() {
        // The unmutated corpus must never trip a target: corpus bugs would
        // otherwise masquerade as parser findings.
        for t in all_targets() {
            for entry in t.corpus() {
                t.run(&entry);
            }
        }
    }

    #[test]
    fn suggested_iterations_meet_the_ci_floor() {
        let total: u64 = all_targets().iter().map(|t| t.suggested_iterations()).sum();
        assert!(total >= 100_000, "CI budget floor: {total} < 100k");
    }
}
