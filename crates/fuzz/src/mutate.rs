//! Seeded byte-mutation engine.
//!
//! Mutations are cheap, structural and deterministic for a seed: the goal
//! is not coverage-guided search (there is no instrumentation offline) but
//! a dense sweep of the corruption classes analog media and hostile
//! curators actually produce — truncated tails, spliced regions, flipped
//! bits, lying length fields — applied to *structurally valid* corpus
//! inputs so mutants reach deep parser states instead of dying on the
//! magic check.

use ule_raster::rng::SplitMix64;

/// Maximum bytes a single mutation may insert — keeps mutant growth (and
/// therefore per-iteration cost) bounded over long campaigns.
const MAX_INSERT: usize = 64;

/// A deterministic mutator. Every mutant is a pure function of the seed
/// and the call sequence, so campaigns replay exactly.
pub struct Mutator {
    rng: SplitMix64,
}

impl Mutator {
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }

    /// Next raw 64 bits (exposed so targets can derive auxiliary choices —
    /// scheme ids, start levels — from the same deterministic stream).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.next_below(n)
    }

    /// Produce one mutant of `base`: 1–3 stacked mutations, optionally
    /// re-stamping `magic` at offset 0 afterwards (half the time, so both
    /// the "valid magic, corrupt body" and "corrupt magic" spaces are
    /// explored).
    pub fn mutate(&mut self, base: &[u8], magic: Option<&[u8]>) -> Vec<u8> {
        let mut out = base.to_vec();
        let rounds = 1 + self.below(3);
        for _ in 0..rounds {
            self.mutate_once(&mut out);
        }
        if let Some(magic) = magic {
            if self.below(2) == 0 {
                if out.len() < magic.len() {
                    out.resize(magic.len(), 0);
                }
                out[..magic.len()].copy_from_slice(magic);
            }
        }
        out
    }

    fn mutate_once(&mut self, buf: &mut Vec<u8>) {
        if buf.is_empty() {
            buf.extend((0..1 + self.below(MAX_INSERT)).map(|_| self.rng.next_u64() as u8));
            return;
        }
        match self.below(8) {
            // Bit flip.
            0 => {
                let i = self.below(buf.len());
                buf[i] ^= 1 << self.below(8);
            }
            // Overwrite one byte with an interesting value.
            1 => {
                let i = self.below(buf.len());
                const INTERESTING: [u8; 8] = [0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF, b'\n', b' '];
                buf[i] = INTERESTING[self.below(INTERESTING.len())];
            }
            // Truncate the tail.
            2 => {
                let keep = self.below(buf.len());
                buf.truncate(keep);
            }
            // Drop a prefix (shifts every offset the parser relies on).
            3 => {
                let drop = 1 + self.below(buf.len());
                buf.drain(..drop);
            }
            // Splice: copy a random span over another random position.
            4 => {
                let len = 1 + self.below(buf.len().min(MAX_INSERT));
                let src = self.below(buf.len() - len + 1);
                let dst = self.below(buf.len() - len + 1);
                let span = buf[src..src + len].to_vec();
                buf[dst..dst + len].copy_from_slice(&span);
            }
            // Insert random bytes.
            5 => {
                let at = self.below(buf.len() + 1);
                let n = 1 + self.below(MAX_INSERT);
                let bytes: Vec<u8> = (0..n).map(|_| self.rng.next_u64() as u8).collect();
                buf.splice(at..at, bytes);
            }
            // Corrupt a little-endian length field: overwrite 2/4/8 bytes
            // at a random offset with an extreme value — the classic
            // "length field points past the stream" attack.
            6 => {
                let width = [2usize, 4, 8][self.below(3)];
                if buf.len() >= width {
                    let at = self.below(buf.len() - width + 1);
                    let v: u64 = match self.below(4) {
                        0 => 0,
                        1 => u64::MAX,
                        2 => buf.len() as u64 + 1 + self.below(1 << 16) as u64,
                        _ => self.rng.next_u64(),
                    };
                    buf[at..at + width].copy_from_slice(&v.to_le_bytes()[..width]);
                }
            }
            // Zero a span (simulates a blanked region of medium).
            _ => {
                let len = 1 + self.below(buf.len().min(MAX_INSERT));
                let at = self.below(buf.len() - len + 1);
                buf[at..at + len].fill(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let a: Vec<Vec<u8>> = {
            let mut m = Mutator::new(7);
            (0..50).map(|_| m.mutate(&base, None)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut m = Mutator::new(7);
            (0..50).map(|_| m.mutate(&base, None)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn magic_is_restamped_sometimes_but_not_always() {
        let base = b"ULEAxxxxxxxxxxxxxxxxxxxxxxxx".to_vec();
        let mut m = Mutator::new(11);
        let mutants: Vec<Vec<u8>> = (0..200).map(|_| m.mutate(&base, Some(b"ULEA"))).collect();
        let with_magic = mutants.iter().filter(|b| b.starts_with(b"ULEA")).count();
        assert!(with_magic > 40, "magic preserved on ~half: {with_magic}");
        assert!(with_magic < 200, "magic also corrupted: {with_magic}");
    }

    #[test]
    fn mutants_stay_bounded() {
        let base = vec![0u8; 256];
        let mut m = Mutator::new(3);
        let mut cur = base;
        for _ in 0..1000 {
            cur = m.mutate(&cur, None);
            assert!(cur.len() <= 256 + 1000 * MAX_INSERT);
        }
    }

    #[test]
    fn empty_base_grows() {
        let mut m = Mutator::new(1);
        let out = m.mutate(&[], None);
        assert!(!out.is_empty());
    }
}
