//! Polynomials over GF(2^8), coefficient order: index i = coefficient of x^i.

use crate::gf::Gf256;

/// Evaluate `p(x)` by Horner's rule.
#[inline]
pub fn eval(gf: &Gf256, p: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in p.iter().rev() {
        acc = gf.mul(acc, x) ^ c;
    }
    acc
}

/// Multiply two polynomials (allocates the product).
pub fn mul(gf: &Gf256, a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u8; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] ^= gf.mul(ai, bj);
        }
    }
    out
}

/// Add two polynomials.
pub fn add(a: &[u8], b: &[u8]) -> Vec<u8> {
    let n = a.len().max(b.len());
    let mut out = vec![0u8; n];
    for (i, slot) in out.iter_mut().enumerate() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        *slot = x ^ y;
    }
    out
}

/// Scale a polynomial by a field element, in place.
pub fn scale_in_place(gf: &Gf256, p: &mut [u8], k: u8) {
    for c in p {
        *c = gf.mul(*c, k);
    }
}

/// Formal derivative. In characteristic 2 the even-power terms vanish:
/// d/dx sum c_i x^i = sum over odd i of c_i x^(i-1).
pub fn derivative(p: &[u8]) -> Vec<u8> {
    if p.len() <= 1 {
        return Vec::new();
    }
    let mut out = vec![0u8; p.len() - 1];
    for i in (1..p.len()).step_by(2) {
        out[i - 1] = p[i];
    }
    out
}

/// Degree, treating trailing zeros as absent. Returns `None` for the zero
/// polynomial.
pub fn degree(p: &[u8]) -> Option<usize> {
    p.iter().rposition(|&c| c != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_constant_and_linear() {
        let gf = Gf256::new();
        assert_eq!(eval(&gf, &[7], 99), 7);
        // p(x) = 3 + 2x at x=5 -> 3 ^ mul(2,5)
        assert_eq!(eval(&gf, &[3, 2], 5), 3 ^ gf.mul(2, 5));
    }

    #[test]
    fn mul_by_one_is_identity() {
        let gf = Gf256::new();
        let p = [1u8, 2, 3, 4];
        assert_eq!(mul(&gf, &p, &[1]), p.to_vec());
    }

    #[test]
    fn mul_evaluates_consistently() {
        let gf = Gf256::new();
        let a = [5u8, 0, 9];
        let b = [1u8, 7];
        let ab = mul(&gf, &a, &b);
        for x in [0u8, 1, 2, 50, 200] {
            assert_eq!(
                eval(&gf, &ab, x),
                gf.mul(eval(&gf, &a, x), eval(&gf, &b, x))
            );
        }
    }

    #[test]
    fn derivative_in_char2() {
        // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2
        let p = [10u8, 20, 30, 40];
        assert_eq!(derivative(&p), vec![20, 0, 40]);
    }

    #[test]
    fn degree_ignores_trailing_zeros() {
        assert_eq!(degree(&[0, 0, 0]), None);
        assert_eq!(degree(&[1]), Some(0));
        assert_eq!(degree(&[0, 5, 0]), Some(1));
    }
}
