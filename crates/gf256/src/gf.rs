//! GF(2^8) arithmetic with log/antilog tables.

/// The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 used to construct
/// the field. This is the polynomial of the CCSDS RS(255,223) code that the
/// paper's inner code mirrors.
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Number of non-zero field elements (order of the multiplicative group).
pub const GROUP_ORDER: usize = 255;

/// Arithmetic in GF(2^8).
///
/// Construction builds exp/log tables once; all operations afterwards are
/// table lookups and XORs. The tables are 768 bytes total, so cloning or
/// sharing a single instance are both cheap.
///
/// ```
/// use ule_gf256::Gf256;
/// let gf = Gf256::new();
/// let a = 0x57;
/// let b = 0x83;
/// let p = gf.mul(a, b);
/// assert_eq!(gf.div(p, b), a);
/// assert_eq!(gf.mul(a, gf.inv(a)), 1);
/// ```
#[derive(Clone)]
pub struct Gf256 {
    /// exp[i] = alpha^i for i in 0..510 (doubled to avoid a mod in mul).
    exp: [u8; 512],
    /// log[x] = i such that alpha^i = x, for x in 1..=255. log[0] unused.
    log: [u16; 256],
}

impl Default for Gf256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Gf256 {
    /// Build the field tables for [`PRIMITIVE_POLY`].
    pub fn new() -> Self {
        Self::with_poly(PRIMITIVE_POLY)
    }

    /// Build the field tables for a caller-chosen degree-8 primitive
    /// polynomial (bit 8 must be set).
    ///
    /// # Panics
    /// Panics if the polynomial does not generate the full multiplicative
    /// group (i.e. is not primitive).
    pub fn with_poly(poly: u16) -> Self {
        assert!(poly & 0x100 != 0, "polynomial must have degree 8");
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, slot) in exp.iter_mut().enumerate().take(GROUP_ORDER) {
            *slot = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= poly;
            }
            assert!(
                !(i < GROUP_ORDER - 1 && x == 1),
                "polynomial is not primitive"
            );
        }
        // Duplicate so mul can index exp[log a + log b] without reduction.
        for i in GROUP_ORDER..512 {
            exp[i] = exp[i - GROUP_ORDER];
        }
        Self { exp, log }
    }

    /// Field addition (== subtraction): bitwise XOR.
    #[inline(always)]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication.
    #[inline(always)]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    /// Panics on division by zero.
    #[inline(always)]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            let la = self.log[a as usize] as usize;
            let lb = self.log[b as usize] as usize;
            self.exp[la + GROUP_ORDER - lb]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    #[inline(always)]
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no inverse in GF(256)");
        self.exp[GROUP_ORDER - self.log[a as usize] as usize]
    }

    /// alpha^i (the generator raised to any non-negative power).
    #[inline(always)]
    pub fn exp(&self, i: usize) -> u8 {
        self.exp[i % GROUP_ORDER]
    }

    /// Discrete log of a non-zero element.
    ///
    /// # Panics
    /// Panics on zero.
    #[inline(always)]
    pub fn log(&self, a: u8) -> usize {
        assert!(a != 0, "zero has no discrete log");
        self.log[a as usize] as usize
    }

    /// `a^n` by log-space multiplication.
    #[inline]
    pub fn pow(&self, a: u8, n: usize) -> u8 {
        if a == 0 {
            return if n == 0 { 1 } else { 0 };
        }
        let l = (self.log[a as usize] as usize * n) % GROUP_ORDER;
        self.exp[l]
    }

    /// Borrow the raw exp table (first 256 entries). Used to embed GF tables
    /// into DynaRisc program memory for the emulated decoders.
    pub fn exp_table(&self) -> &[u8] {
        &self.exp[..256]
    }

    /// Raw log table (entry 0 is 0 and must not be used as a log).
    pub fn log_table(&self) -> [u8; 256] {
        let mut t = [0u8; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            *slot = self.log[i] as u8;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_roundtrip() {
        let gf = Gf256::new();
        for x in 1..=255u8 {
            assert_eq!(gf.exp(gf.log(x)), x);
        }
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less multiply + reduction, bit by bit.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut acc: u16 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                b >>= 1;
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= PRIMITIVE_POLY;
                }
            }
            acc as u8
        }
        let gf = Gf256::new();
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 3, 0x53, 0xCA, 0xFF] {
                assert_eq!(gf.mul(a, b), slow_mul(a as u16, b as u16), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        let gf = Gf256::new();
        for a in 1..=255u8 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1);
        }
    }

    #[test]
    fn div_is_mul_by_inverse() {
        let gf = Gf256::new();
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                assert_eq!(gf.div(a, b), gf.mul(a, gf.inv(b)));
            }
        }
    }

    #[test]
    fn pow_basics() {
        let gf = Gf256::new();
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 5), 0);
        assert_eq!(gf.pow(7, 0), 1);
        let mut acc = 1u8;
        for n in 1..20 {
            acc = gf.mul(acc, 7);
            assert_eq!(gf.pow(7, n), acc);
        }
    }

    #[test]
    fn addition_is_xor_and_self_inverse() {
        let gf = Gf256::new();
        assert_eq!(gf.add(0xAA, 0xAA), 0);
        assert_eq!(gf.add(0x12, 0x34), 0x26);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        Gf256::new().div(1, 0);
    }

    #[test]
    fn distributivity_spot_checks() {
        let gf = Gf256::new();
        for a in [3u8, 77, 190, 254] {
            for b in [1u8, 9, 130] {
                for c in [5u8, 88, 201] {
                    assert_eq!(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
                }
            }
        }
    }
}
