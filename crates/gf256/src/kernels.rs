//! Vectorized GF(2^8) slice kernels (the S1 kernel layer, `DESIGN.md` §12).
//!
//! Every byte the archive pipeline touches flows through constant-times-
//! slice products in GF(2^8): Reed–Solomon parity (`RsCode::fill_parity`),
//! syndrome evaluation (`RsCode::syndromes`), stream-level column parity
//! (`RsCode::parity_of`). The scalar form — one [`Gf256::mul`] log/exp
//! lookup pair per byte — leaves the CPU, not the medium, as the
//! bottleneck. This module provides the slice-oriented primitives the hot
//! paths are rewritten on:
//!
//! * [`GfKernels::mul_slice`] — `dst[i] = c · src[i]`
//! * [`GfKernels::mul_add_slice`] — `dst[i] ^= c · src[i]`
//! * [`GfKernels::eval_desc`] — Horner evaluation over 8-byte slices
//!   (the syndrome shape)
//!
//! The technique is the portable cousin of Plank-style split-table Galois
//! kernels ("Screaming Fast Galois Field Arithmetic", the ISA-L approach):
//! for each constant `c` the kernel holds two 16-entry tables
//!
//! ```text
//! lo[v] = c · v          (v = 0..15, the low nibble)
//! hi[v] = c · (v << 4)   (v = 0..15, the high nibble)
//! ```
//!
//! so `c · x = lo[x & 15] ^ hi[x >> 4]` — multiplication distributes over
//! the nibble split because GF(2^8) addition is XOR. SIMD ISAs gather 16
//! such lookups with one shuffle; plain Rust cannot, so the inner loop uses
//! a u64-SWAR equivalent built from the same tables: for each bit `j` of
//! the source bytes, the mask `((s >> j) & 0x0101..01) * (c · 2^j)` places
//! `c · 2^j` in exactly the lanes whose bit `j` is set (lane products fit a
//! byte, so the integer multiply cannot carry across lanes), and XORing the
//! eight partials reconstructs `c · x` in all eight lanes at once. The
//! eight per-bit constants `c · 2^j` are rows 1, 2, 4, 8 of the two split
//! tables. No `unsafe`, no new dependencies, byte-identical to the scalar
//! path — `tests/prop_kernels.rs` pins the equivalence under the pinned
//! `PROPTEST_SEED`, and the golden-format suite pins the absolute archive
//! bytes.
//!
//! Throughput on the E11 harness (`benches/kernels.rs`, report `[E11]`):
//! ≥4× on RS(255,223) encode and ≥8× on CRC32 over the retained scalar
//! baselines.

use crate::gf::Gf256;

/// Broadcast mask: one set bit per 8-bit lane of a `u64`.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;

/// Split-table multiply kernels for every GF(2^8) constant.
///
/// Construction builds 256 × 32 bytes of tables (8 KB) from a [`Gf256`]
/// field — microseconds, so codecs build one per instance. All slice
/// operations are branch-free in the steady state and process eight bytes
/// per SWAR step.
///
/// ```
/// use ule_gf256::{Gf256, GfKernels};
/// let gf = Gf256::new();
/// let k = GfKernels::new(&gf);
/// let src = [1u8, 2, 3, 250, 0, 90];
/// let mut dst = [0u8; 6];
/// k.mul_slice(0x57, &src, &mut dst);
/// for (s, d) in src.iter().zip(&dst) {
///     assert_eq!(*d, gf.mul(0x57, *s));
/// }
/// ```
#[derive(Clone)]
pub struct GfKernels {
    /// `split[c][v]     = c · v` (low-nibble table),
    /// `split[c][16+v]  = c · (v << 4)` (high-nibble table).
    split: Box<[[u8; 32]]>,
}

impl GfKernels {
    /// Build the split tables for every constant of `gf`.
    pub fn new(gf: &Gf256) -> Self {
        let mut split = vec![[0u8; 32]; 256].into_boxed_slice();
        for (c, row) in split.iter_mut().enumerate() {
            for v in 0..16u8 {
                row[v as usize] = gf.mul(c as u8, v);
                row[16 + v as usize] = gf.mul(c as u8, v << 4);
            }
        }
        Self { split }
    }

    /// The eight per-bit SWAR constants `c · 2^j` (rows 1/2/4/8 of the two
    /// split tables), widened for the lane-broadcast multiply.
    #[inline(always)]
    fn bit_consts(&self, c: u8) -> [u64; 8] {
        let t = &self.split[c as usize];
        [
            t[1] as u64,
            t[2] as u64,
            t[4] as u64,
            t[8] as u64,
            t[17] as u64,
            t[18] as u64,
            t[20] as u64,
            t[24] as u64,
        ]
    }

    /// `c · x` via the two 16-entry tables (the scalar-tail form).
    #[inline(always)]
    fn mul_one(&self, c: u8, x: u8) -> u8 {
        let t = &self.split[c as usize];
        t[(x & 0x0F) as usize] ^ t[16 + (x >> 4) as usize]
    }

    /// Eight lanes of `c · x` at once from the per-bit constants.
    #[inline(always)]
    fn mul_word(ct: &[u64; 8], s: u64) -> u64 {
        let mut acc = (s & LANE_LSB) * ct[0];
        acc ^= ((s >> 1) & LANE_LSB) * ct[1];
        acc ^= ((s >> 2) & LANE_LSB) * ct[2];
        acc ^= ((s >> 3) & LANE_LSB) * ct[3];
        acc ^= ((s >> 4) & LANE_LSB) * ct[4];
        acc ^= ((s >> 5) & LANE_LSB) * ct[5];
        acc ^= ((s >> 6) & LANE_LSB) * ct[6];
        acc ^= ((s >> 7) & LANE_LSB) * ct[7];
        acc
    }

    /// `dst[i] = c · src[i]` for every byte.
    ///
    /// # Panics
    /// Panics unless `src` and `dst` have equal lengths.
    pub fn mul_slice(&self, c: u8, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
        match c {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => {
                let ct = self.bit_consts(c);
                let mut s8 = src.chunks_exact(8);
                let mut d8 = dst.chunks_exact_mut(8);
                for (s, d) in (&mut s8).zip(&mut d8) {
                    let w = u64::from_le_bytes(s.try_into().unwrap());
                    d.copy_from_slice(&Self::mul_word(&ct, w).to_le_bytes());
                }
                for (s, d) in s8.remainder().iter().zip(d8.into_remainder()) {
                    *d = self.mul_one(c, *s);
                }
            }
        }
    }

    /// `dst[i] ^= c · src[i]` for every byte (fused multiply-accumulate,
    /// the Reed–Solomon inner step).
    ///
    /// # Panics
    /// Panics unless `src` and `dst` have equal lengths.
    pub fn mul_add_slice(&self, c: u8, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_add_slice length mismatch");
        match c {
            0 => {}
            1 => xor_slice(src, dst),
            _ => {
                let ct = self.bit_consts(c);
                let mut s8 = src.chunks_exact(8);
                let mut d8 = dst.chunks_exact_mut(8);
                for (s, d) in (&mut s8).zip(&mut d8) {
                    let sw = u64::from_le_bytes(s.try_into().unwrap());
                    let dw = u64::from_le_bytes(d.as_ref().try_into().unwrap());
                    d.copy_from_slice(&(dw ^ Self::mul_word(&ct, sw)).to_le_bytes());
                }
                for (s, d) in s8.remainder().iter().zip(d8.into_remainder()) {
                    *d ^= self.mul_one(c, *s);
                }
            }
        }
    }

    /// Evaluate `Σ_j data[j] · x^(len-1-j)` — the polynomial a codeword
    /// spells with byte 0 as the highest-weight coefficient, i.e. exactly
    /// the syndrome shape `S_i = c(α^i)`.
    ///
    /// Plain Horner is a chain of dependent multiplies (one per byte); this
    /// form runs Horner *over 8-byte slices*: each chunk contributes
    /// `b0·x^7 ^ b1·x^6 ^ … ^ b7` through eight independent split-table
    /// lookups, and only the per-chunk fold `acc·x^8` stays on the
    /// dependency chain — an 8× shorter critical path.
    pub fn eval_desc(&self, gf: &Gf256, x: u8, data: &[u8]) -> u8 {
        if x == 0 {
            return data.last().copied().unwrap_or(0);
        }
        // x^1 .. x^8 as split-table rows; xp[k] = x^(k+1).
        let mut xp = [0u8; 8];
        let mut p = 1u8;
        for slot in xp.iter_mut() {
            p = gf.mul(p, x);
            *slot = p;
        }
        let head = data.len() % 8;
        let mut acc = 0u8;
        for &b in &data[..head] {
            acc = self.mul_one(x, acc) ^ b;
        }
        let x8 = xp[7];
        for chunk in data[head..].chunks_exact(8) {
            let mut term = chunk[7];
            term ^= self.mul_one(xp[0], chunk[6]);
            term ^= self.mul_one(xp[1], chunk[5]);
            term ^= self.mul_one(xp[2], chunk[4]);
            term ^= self.mul_one(xp[3], chunk[3]);
            term ^= self.mul_one(xp[4], chunk[2]);
            term ^= self.mul_one(xp[5], chunk[1]);
            term ^= self.mul_one(xp[6], chunk[0]);
            acc = self.mul_one(x8, acc) ^ term;
        }
        acc
    }
}

/// `dst[i] ^= src[i]`, eight bytes per step — GF(2^8) slice addition (and
/// the `c = 1` case of [`GfKernels::mul_add_slice`]).
///
/// The 32-byte case is fully unrolled: that is the RS(255,223) parity
/// window, folded once per message byte by `RsCode::fill_parity`, so it is
/// the single hottest slice length in the archive pipeline.
///
/// # Panics
/// Panics unless `src` and `dst` have equal lengths.
pub fn xor_slice(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "xor_slice length mismatch");
    if src.len() == 32 {
        let mut w = [0u64; 4];
        for (i, slot) in w.iter_mut().enumerate() {
            let s = u64::from_le_bytes(src[i * 8..i * 8 + 8].try_into().unwrap());
            let d = u64::from_le_bytes(dst[i * 8..i * 8 + 8].try_into().unwrap());
            *slot = s ^ d;
        }
        for (i, slot) in w.iter().enumerate() {
            dst[i * 8..i * 8 + 8].copy_from_slice(&slot.to_le_bytes());
        }
        return;
    }
    let mut s8 = src.chunks_exact(8);
    let mut d8 = dst.chunks_exact_mut(8);
    for (s, d) in (&mut s8).zip(&mut d8) {
        let sw = u64::from_le_bytes(s.try_into().unwrap());
        let dw = u64::from_le_bytes(d.as_ref().try_into().unwrap());
        d.copy_from_slice(&(sw ^ dw).to_le_bytes());
    }
    for (s, d) in s8.remainder().iter().zip(d8.into_remainder()) {
        *d ^= *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(167).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn mul_slice_matches_scalar_for_every_constant() {
        let gf = Gf256::new();
        let k = GfKernels::new(&gf);
        let src = sample(37, 5); // odd length exercises the SWAR tail
        let mut dst = vec![0u8; 37];
        for c in 0..=255u8 {
            k.mul_slice(c, &src, &mut dst);
            for (s, d) in src.iter().zip(&dst) {
                assert_eq!(*d, gf.mul(c, *s), "c={c} s={s}");
            }
        }
    }

    #[test]
    fn mul_add_slice_accumulates() {
        let gf = Gf256::new();
        let k = GfKernels::new(&gf);
        let src = sample(41, 9);
        let base = sample(41, 77);
        for c in [0u8, 1, 2, 0x1D, 0x80, 0xFF] {
            let mut dst = base.clone();
            k.mul_add_slice(c, &src, &mut dst);
            for i in 0..src.len() {
                assert_eq!(dst[i], base[i] ^ gf.mul(c, src[i]), "c={c} i={i}");
            }
        }
    }

    #[test]
    fn eval_desc_matches_naive_horner() {
        let gf = Gf256::new();
        let k = GfKernels::new(&gf);
        for len in [0usize, 1, 7, 8, 9, 16, 63, 255] {
            let data = sample(len, len as u8);
            for x in [0u8, 1, 2, 3, 0x53, 0xFF] {
                let mut naive = 0u8;
                for &b in &data {
                    naive = gf.mul(naive, x) ^ b;
                }
                assert_eq!(k.eval_desc(&gf, x, &data), naive, "len={len} x={x}");
            }
        }
    }

    #[test]
    fn xor_slice_is_gf_addition() {
        let a = sample(19, 1);
        let mut b = sample(19, 2);
        let expect: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        xor_slice(&a, &mut b);
        assert_eq!(b, expect);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let gf = Gf256::new();
        let k = GfKernels::new(&gf);
        let mut dst = [0u8; 3];
        k.mul_slice(2, &[1, 2], &mut dst);
    }
}
