//! Finite-field arithmetic and Reed–Solomon coding for Micr'Olonys.
//!
//! This crate is the coding-theory substrate of the ULE reproduction
//! (system **S1** in `DESIGN.md`). It provides:
//!
//! * [`Gf256`] — arithmetic in GF(2^8) with the primitive polynomial
//!   `x^8 + x^4 + x^3 + x^2 + 1` (0x11D), the field used by the paper's
//!   RS(255,223) inner code (the CCSDS/MOCoder parameterisation).
//! * [`poly`] — polynomials over GF(2^8) used by the codec internals.
//! * [`rs`] — a systematic Reed–Solomon encoder/decoder supporting both
//!   unknown-error correction (Berlekamp–Massey + Chien + Forney) and
//!   erasure / mixed errors-and-erasures decoding. MOCoder uses
//!   `RsCode::new(255, 223)` intra-emblem (corrects up to 16 byte errors,
//!   16/223 ≈ 7.2% of user data, matching §3.1 of the paper) and
//!   `RsCode::new(20, 17)` across emblem groups (any 3 missing emblems of
//!   20 are recovered by erasure decoding). `RsCode::encode_batch` /
//!   `RsCode::decode_batch` fan independent codewords out across an
//!   [`ule_par::ThreadConfig`] worker pool with byte-identical results.
//! * [`crc`] — CRC-16/CCITT and CRC-32 (IEEE) used for header and archive
//!   integrity checks.
//!
//! Everything is implemented from scratch (no external coding crates), is
//! deterministic, and allocates only at codec construction time.

pub mod crc;
pub mod gf;
pub mod poly;
pub mod rs;

pub use gf::Gf256;
pub use rs::{RsCode, RsError};
