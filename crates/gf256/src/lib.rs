//! Finite-field arithmetic and Reed–Solomon coding for Micr'Olonys.
//!
//! This crate is the coding-theory substrate of the ULE reproduction
//! (system **S1** in `DESIGN.md`). It provides:
//!
//! * [`Gf256`] — arithmetic in GF(2^8) with the primitive polynomial
//!   `x^8 + x^4 + x^3 + x^2 + 1` (0x11D), the field used by the paper's
//!   RS(255,223) inner code (the CCSDS/MOCoder parameterisation).
//! * [`poly`] — polynomials over GF(2^8) used by the codec internals.
//! * [`rs`] — a systematic Reed–Solomon encoder/decoder supporting both
//!   unknown-error correction (Berlekamp–Massey + Chien + Forney) and
//!   erasure / mixed errors-and-erasures decoding. MOCoder uses
//!   `RsCode::new(255, 223)` intra-emblem (corrects up to 16 byte errors,
//!   16/223 ≈ 7.2% of user data, matching §3.1 of the paper) and
//!   `RsCode::new(20, 17)` across emblem groups (any 3 missing emblems of
//!   20 are recovered by erasure decoding). `RsCode::encode_batch` /
//!   `RsCode::decode_batch` fan independent codewords out across an
//!   [`ule_par::ThreadConfig`] worker pool with byte-identical results.
//! * [`kernels`] — the vectorized slice layer (`DESIGN.md` §12): per-
//!   constant 4-bit split tables driving u64-SWAR [`GfKernels::mul_slice`]
//!   / [`GfKernels::mul_add_slice`] primitives plus slice-Horner
//!   evaluation; every `RsCode` hot path (parity, syndromes, column
//!   parity) is rewritten on them, and [`RsCode::decode`] takes a
//!   clean-frame fast path (syndromes-only when nothing is damaged).
//! * [`crc`] — CRC-16/CCITT and CRC-32 (IEEE) used for header and archive
//!   integrity checks, table-driven: [`crc32`] folds sixteen bytes per
//!   step over sliced tables (slice-by-8, doubled), [`crc16_ccitt`] one
//!   byte per lookup. [`crc32_update`] is the streaming form callers use
//!   to fingerprint frame sequences without concatenating them.
//!
//! Everything is implemented from scratch (no external coding crates), is
//! deterministic, and allocates only at codec construction time. The
//! report's `[E11]` section gates the kernel speedups (≥4× RS encode,
//! ≥8× CRC-32 over the retained scalar baselines).

pub mod crc;
pub mod gf;
pub mod kernels;
pub mod poly;
pub mod rs;

pub use crc::{crc16_ccitt, crc32, crc32_update};
pub use gf::Gf256;
pub use kernels::GfKernels;
pub use rs::{RsCode, RsError};
