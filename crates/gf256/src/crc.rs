//! Cyclic redundancy checks used across the archive formats.
//!
//! * [`crc16_ccitt`] protects emblem headers (small, 2-byte overhead).
//! * [`crc32`] protects whole DBCoder archives and decoder payloads; the
//!   DynaRisc `DBDecode` program re-computes it during emulated restoration.
//!
//! Both are table-driven (the S1 kernel layer, `DESIGN.md` §12): CRC-32
//! uses sliced tables in the slice-by-8 family — 256-entry tables where
//! row `k` advances a byte through `k` further zero bytes, folded sixteen
//! input bytes per step (the 8-byte fold doubled, since only the first
//! word depends on the running state) — and CRC-16 uses a single
//! 256-entry table (one lookup per byte). The tables are built at compile time from the same bitwise
//! recurrences the original loops implemented, which are retained below as
//! `*_bitwise` reference functions; the in-file property tests pin
//! table ≡ bitwise equivalence under the pinned `PROPTEST_SEED`, and the
//! report's `[E11]` gate holds the ≥8× CRC-32 speedup over the bitwise
//! baseline. Public signatures (and every produced checksum) are unchanged.

/// One bitwise step of CRC-16/CCITT-FALSE: fold 8 message bits already
/// XORed into the top byte of `crc`.
const fn crc16_fold_bitwise(mut crc: u16) -> u16 {
    let mut i = 0;
    while i < 8 {
        if crc & 0x8000 != 0 {
            crc = (crc << 1) ^ 0x1021;
        } else {
            crc <<= 1;
        }
        i += 1;
    }
    crc
}

/// One bitwise step of reflected CRC-32: fold the low byte of `state`.
const fn crc32_fold_bitwise(mut state: u32) -> u32 {
    let mut i = 0;
    while i < 8 {
        let mask = (state & 1).wrapping_neg();
        state = (state >> 1) ^ (0xEDB8_8320 & mask);
        i += 1;
    }
    state
}

/// The original per-byte bitwise CRC-16 loop, kept as the reference the
/// table implementation is property-tested against (and the scalar side of
/// the E11 A/B).
#[cfg(test)]
fn crc16_ccitt_bitwise(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc = crc16_fold_bitwise(crc ^ ((b as u16) << 8));
    }
    crc
}

/// The original per-byte bitwise CRC-32 loop (streaming form), kept as the
/// reference the slice-by-8 implementation is property-tested against.
#[cfg(test)]
fn crc32_update_bitwise(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = crc32_fold_bitwise(state ^ b as u32);
    }
    state
}

/// CRC-16 lookup table: `CRC16_TABLE[b]` folds one whole message byte.
static CRC16_TABLE: [u16; 256] = {
    let mut t = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        t[b] = crc16_fold_bitwise((b as u16) << 8);
        b += 1;
    }
    t
};

/// Sliced CRC-32 tables: `CRC32_TABLES[0]` is the classic one-byte table;
/// `CRC32_TABLES[k][b]` advances byte `b` through `k` further zero bytes.
/// Eight rows fold an 8-byte word per step (slice-by-8); the main loop
/// uses all sixteen rows to fold a 16-byte block per step (slice-by-16),
/// which halves the loop-carried dependency chain again.
static CRC32_TABLES: [[u32; 256]; 16] = {
    let mut t = [[0u32; 256]; 16];
    let mut b = 0usize;
    while b < 256 {
        t[0][b] = crc32_fold_bitwise(b as u32);
        b += 1;
    }
    let mut k = 1usize;
    while k < 16 {
        let mut b = 0usize;
        while b < 256 {
            let prev = t[k - 1][b];
            t[k][b] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            b += 1;
        }
        k += 1;
    }
    t
};

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection).
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc = (crc << 8) ^ CRC16_TABLE[((crc >> 8) as u8 ^ b) as usize];
    }
    crc
}

/// CRC-32 (IEEE 802.3: poly 0xEDB88320 reflected, init/final 0xFFFFFFFF).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form: feed `state` = 0xFFFFFFFF initially, XOR with 0xFFFFFFFF
/// at the end.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    #[inline(always)]
    fn fold8(t: &[[u32; 256]; 16], state: u32, ch: &[u8]) -> u32 {
        let w = u64::from_le_bytes(ch.try_into().unwrap()) ^ state as u64;
        t[7][(w & 0xFF) as usize]
            ^ t[6][((w >> 8) & 0xFF) as usize]
            ^ t[5][((w >> 16) & 0xFF) as usize]
            ^ t[4][((w >> 24) & 0xFF) as usize]
            ^ t[3][((w >> 32) & 0xFF) as usize]
            ^ t[2][((w >> 40) & 0xFF) as usize]
            ^ t[1][((w >> 48) & 0xFF) as usize]
            ^ t[0][(w >> 56) as usize]
    }
    // Main loop: one 16-byte fold per iteration. Only the first word
    // depends on the running state, so the second word's eight lookups
    // issue in parallel with the first's — the dependency chain advances
    // 16 bytes per L1 round trip instead of 8.
    let mut chunks = data.chunks_exact(16);
    for ch in &mut chunks {
        let w0 = u64::from_le_bytes(ch[..8].try_into().unwrap()) ^ state as u64;
        let w1 = u64::from_le_bytes(ch[8..].try_into().unwrap());
        state = t[15][(w0 & 0xFF) as usize]
            ^ t[14][((w0 >> 8) & 0xFF) as usize]
            ^ t[13][((w0 >> 16) & 0xFF) as usize]
            ^ t[12][((w0 >> 24) & 0xFF) as usize]
            ^ t[11][((w0 >> 32) & 0xFF) as usize]
            ^ t[10][((w0 >> 40) & 0xFF) as usize]
            ^ t[9][((w0 >> 48) & 0xFF) as usize]
            ^ t[8][(w0 >> 56) as usize]
            ^ t[7][(w1 & 0xFF) as usize]
            ^ t[6][((w1 >> 8) & 0xFF) as usize]
            ^ t[5][((w1 >> 16) & 0xFF) as usize]
            ^ t[4][((w1 >> 24) & 0xFF) as usize]
            ^ t[3][((w1 >> 32) & 0xFF) as usize]
            ^ t[2][((w1 >> 40) & 0xFF) as usize]
            ^ t[1][((w1 >> 48) & 0xFF) as usize]
            ^ t[0][(w1 >> 56) as usize];
    }
    let rem = chunks.remainder();
    let mut chunks = rem.chunks_exact(8);
    for ch in &mut chunks {
        state = fold8(t, state, ch);
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ t[0][((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc16_known_vector() {
        // "123456789" -> 0x29B1 for CRC-16/CCITT-FALSE.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" -> 0xCBF43926 for CRC-32 IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = crc32(data);
        let mut st = 0xFFFF_FFFFu32;
        for chunk in data.chunks(7) {
            st = crc32_update(st, chunk);
        }
        assert_eq!(st ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn crc_detects_single_bit_flip() {
        let mut data = b"emblem header".to_vec();
        let c0 = crc16_ccitt(&data);
        data[3] ^= 0x40;
        assert_ne!(crc16_ccitt(&data), c0);
    }

    #[test]
    fn crc32_empty_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bitwise_references_agree_on_known_vectors() {
        assert_eq!(crc16_ccitt_bitwise(b"123456789"), 0x29B1);
        assert_eq!(
            crc32_update_bitwise(0xFFFF_FFFF, b"123456789") ^ 0xFFFF_FFFF,
            0xCBF4_3926
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn crc32_table_matches_bitwise(
            data in proptest::collection::vec(any::<u8>(), 0..200),
            state in any::<u32>(),
        ) {
            prop_assert_eq!(
                crc32_update(state, &data),
                crc32_update_bitwise(state, &data)
            );
        }

        #[test]
        fn crc16_table_matches_bitwise(
            data in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            prop_assert_eq!(crc16_ccitt(&data), crc16_ccitt_bitwise(&data));
        }
    }
}
