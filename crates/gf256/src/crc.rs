//! Cyclic redundancy checks used across the archive formats.
//!
//! * [`crc16_ccitt`] protects emblem headers (small, 2-byte overhead).
//! * [`crc32`] protects whole DBCoder archives and decoder payloads; the
//!   DynaRisc `DBDecode` program re-computes it during emulated restoration.

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection).
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// CRC-32 (IEEE 802.3: poly 0xEDB88320 reflected, init/final 0xFFFFFFFF).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form: feed `state` = 0xFFFFFFFF initially, XOR with 0xFFFFFFFF
/// at the end.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state ^= b as u32;
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // "123456789" -> 0x29B1 for CRC-16/CCITT-FALSE.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" -> 0xCBF43926 for CRC-32 IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = crc32(data);
        let mut st = 0xFFFF_FFFFu32;
        for chunk in data.chunks(7) {
            st = crc32_update(st, chunk);
        }
        assert_eq!(st ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn crc_detects_single_bit_flip() {
        let mut data = b"emblem header".to_vec();
        let c0 = crc16_ccitt(&data);
        data[3] ^= 0x40;
        assert_ne!(crc16_ccitt(&data), c0);
    }

    #[test]
    fn crc32_empty_is_zero() {
        assert_eq!(crc32(b""), 0);
    }
}
