//! Systematic Reed–Solomon codec with errors-and-erasures decoding.
//!
//! The code is defined over GF(2^8) with generator roots `alpha^0 ..
//! alpha^(n-k-1)` (first consecutive root = 0). Codewords are laid out
//! `[message | parity]`; byte `j` carries the coefficient of
//! `x^(n-1-j)`, which makes shortened codes (n < 255) work transparently:
//! a shortened codeword is the tail of a full-length codeword whose leading
//! message bytes are zero.
//!
//! Decoding uses Berlekamp–Massey (with Blahut's erasure initialisation),
//! Chien search and Forney's formula, so both the paper's intra-emblem
//! RS(255,223) code (16 unknown byte errors per block) and the inter-emblem
//! RS(20,17) code (3 known-missing emblems per group of 20) are served by
//! the same implementation.
//!
//! The hot paths run on the slice kernels of [`crate::kernels`]
//! (`DESIGN.md` §12): encoding is one [`GfKernels::mul_add_slice`] per
//! message coefficient over the parity window, syndromes are Horner over
//! 8-byte slices ([`GfKernels::eval_desc`]), [`RsCode::parity_of`] batches
//! whole byte columns per slice call, and [`RsCode::decode`] takes a
//! **clean-frame fast path**: syndromes are computed first and an all-zero
//! vector returns immediately, so scanning undamaged media never runs
//! Berlekamp–Massey/Chien/Forney at all.

use crate::gf::{Gf256, GROUP_ORDER};
use crate::kernels::{xor_slice, GfKernels};
use crate::poly;
use ule_par::ThreadConfig;

/// Decoding failure reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// More errors/erasures than the code can correct, or an inconsistent
    /// received word (locator degree does not match its root count, or the
    /// corrected word still has non-zero syndromes).
    TooManyErrors,
    /// An erasure index lies outside the codeword.
    BadErasure { index: usize, codeword_len: usize },
    /// Input slice length does not match the code parameters.
    LengthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::TooManyErrors => write!(f, "uncorrectable codeword"),
            RsError::BadErasure {
                index,
                codeword_len,
            } => {
                write!(
                    f,
                    "erasure index {index} out of range for codeword of {codeword_len}"
                )
            }
            RsError::LengthMismatch { expected, got } => {
                write!(f, "expected slice of length {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic RS(n, k) code over GF(2^8).
///
/// ```
/// use ule_gf256::RsCode;
/// let rs = RsCode::new(255, 223); // MOCoder's inner code
/// let msg: Vec<u8> = (0..223).map(|i| (i * 7) as u8).collect();
/// let mut cw = rs.encode(&msg);
/// for i in [0, 50, 100, 200] { cw[i] ^= 0xA5; } // 4 byte errors
/// let fixed = rs.decode(&mut cw, &[]).unwrap();
/// assert_eq!(fixed, 4);
/// assert_eq!(&cw[..223], &msg[..]);
/// ```
#[derive(Clone)]
pub struct RsCode {
    gf: Gf256,
    kernels: GfKernels,
    n: usize,
    k: usize,
    /// Generator polynomial, ascending coefficients, degree n-k (monic).
    gen: Vec<u8>,
    /// The generator tail in descending coefficient order without the
    /// monic head: `gen_window[i] = gen[p - 1 - i]` for `i < p`. This is
    /// the constant slice every long-division step folds into the parity
    /// window.
    gen_window: Vec<u8>,
    /// Per-factor product rows of the generator window: row `f` (at
    /// `[f * p .. (f + 1) * p]`) is `f · gen_window`, materialised at
    /// construction with [`GfKernels::mul_slice`]. `fill_parity` folds one
    /// whole row per message coefficient with a word-wide XOR — the split
    /// tables fully precomputed for the only constant slice the encoder
    /// ever multiplies (≤ 8 KB per code).
    enc_rows: Vec<u8>,
}

impl RsCode {
    /// Construct an RS(n, k) code. `n` ≤ 255, `0 < k < n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n <= GROUP_ORDER, "n must be <= 255");
        assert!(k > 0 && k < n, "need 0 < k < n");
        let gf = Gf256::new();
        // g(x) = prod_{i=0}^{n-k-1} (x + alpha^i)
        let mut gen = vec![1u8];
        for i in 0..(n - k) {
            gen = poly::mul(&gf, &gen, &[gf.exp(i), 1]);
        }
        let p = n - k;
        let gen_window: Vec<u8> = (0..p).map(|i| gen[p - 1 - i]).collect();
        let kernels = GfKernels::new(&gf);
        let mut enc_rows = vec![0u8; 256 * p];
        for (f, row) in enc_rows.chunks_exact_mut(p).enumerate() {
            kernels.mul_slice(f as u8, &gen_window, row);
        }
        Self {
            gf,
            kernels,
            n,
            k,
            gen,
            gen_window,
            enc_rows,
        }
    }

    /// Codeword length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity bytes (2t).
    pub fn parity_len(&self) -> usize {
        self.n - self.k
    }

    /// Maximum number of correctable unknown errors (t).
    pub fn max_errors(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Borrow the field (used by callers embedding GF tables elsewhere).
    pub fn field(&self) -> &Gf256 {
        &self.gf
    }

    /// Borrow the slice kernels this code runs its hot paths on.
    pub fn kernels(&self) -> &GfKernels {
        &self.kernels
    }

    /// The generator polynomial, ascending coefficients (monic, degree
    /// `parity_len()`).
    pub fn generator(&self) -> &[u8] {
        &self.gen
    }

    /// Encode `msg` (length k) into a fresh n-byte codeword `[msg | parity]`.
    pub fn encode(&self, msg: &[u8]) -> Vec<u8> {
        assert_eq!(msg.len(), self.k, "message must be exactly k bytes");
        let mut cw = vec![0u8; self.n];
        cw[..self.k].copy_from_slice(msg);
        self.fill_parity(&mut cw);
        cw
    }

    /// Column-wise parity over `k` equal-length message streams: byte `j`
    /// of stream `i` sits at codeword position `i` of column `j`. Returns
    /// the `parity_len()` parity streams, each of the shared stream
    /// length. This is the shape both stream-level RS uses share — the
    /// inter-emblem outer code (three parity emblems per group of 17) and
    /// the cross-reel parity reels of the vault (S16, one parity reel per
    /// reel group): any `parity_len()` whole streams may be lost and
    /// recovered per column via [`RsCode::decode`] with their positions
    /// given as erasures.
    ///
    /// # Panics
    /// Panics unless exactly `k` streams of one common length are given.
    pub fn parity_of(&self, msgs: &[&[u8]]) -> Vec<Vec<u8>> {
        assert_eq!(msgs.len(), self.k, "need exactly k message streams");
        let len = msgs.first().map_or(0, |m| m.len());
        assert!(
            msgs.iter().all(|m| m.len() == len),
            "message streams must share one length"
        );
        let p = self.parity_len();
        // Column-batched LFSR: run the same synthetic division
        // `fill_parity` performs, but with whole byte *streams* in each
        // register slot — every column advances one step per
        // `mul_add_slice`, instead of re-running the division column by
        // column. The per-column arithmetic is identical, so the parity
        // bytes match `fill_parity` exactly (pinned by unit test below).
        let mut rem: Vec<Vec<u8>> = vec![vec![0u8; len]; p];
        let mut factor = vec![0u8; len];
        for m in msgs {
            factor.copy_from_slice(m);
            xor_slice(&rem[0], &mut factor);
            rem.rotate_left(1);
            rem[p - 1].fill(0);
            for (i, r) in rem.iter_mut().enumerate() {
                self.kernels.mul_add_slice(self.gen_window[i], &factor, r);
            }
        }
        rem
    }

    /// Compute parity over `cw[..k]` and write it into `cw[k..]`.
    ///
    /// Polynomial long division of `msg(x) · x^p` by `g(x)`, shift-free:
    /// the dividend sits in a `k + p` scratch buffer and each step folds
    /// `factor · gen_window` — a precomputed kernel row — into the sliding
    /// parity window with one word-wide XOR. Same remainder as the classic
    /// LFSR form byte for byte (the scalar reference in the test module
    /// and `ule_bench::scalar` pin it), ≥4× its throughput (report `[E11]`).
    pub fn fill_parity(&self, cw: &mut [u8]) {
        assert_eq!(cw.len(), self.n);
        let p = self.parity_len();
        // n <= 255 always (asserted at construction), so the dividend
        // scratch lives on the stack.
        let mut scratch = [0u8; 255];
        let buf = &mut scratch[..self.n];
        buf[..self.k].copy_from_slice(&cw[..self.k]);
        buf[self.k..].fill(0);
        for j in 0..self.k {
            let factor = buf[j];
            if factor != 0 {
                let row = &self.enc_rows[factor as usize * p..(factor as usize + 1) * p];
                xor_slice(row, &mut buf[j + 1..j + 1 + p]);
            }
        }
        cw[self.k..].copy_from_slice(&buf[self.k..]);
    }

    /// Syndromes S_i = c(alpha^i), i = 0..2t-1. All-zero means clean.
    ///
    /// Each syndrome is a Horner evaluation over 8-byte slices
    /// ([`GfKernels::eval_desc`]): byte 0 has weight `alpha^(i*(n-1))`.
    /// This is the whole cost of scanning a clean codeword — see
    /// [`RsCode::decode`]'s clean-frame fast path and `DESIGN.md` §12.
    ///
    /// ```
    /// use ule_gf256::RsCode;
    /// let rs = RsCode::new(20, 17);
    /// let mut cw = rs.encode(&[7u8; 17]);
    /// assert!(rs.syndromes(&cw).iter().all(|&s| s == 0));
    /// cw[3] ^= 0x10; // any corruption leaves a non-zero syndrome
    /// assert!(rs.syndromes(&cw).iter().any(|&s| s != 0));
    /// ```
    pub fn syndromes(&self, cw: &[u8]) -> Vec<u8> {
        let p = self.parity_len();
        let mut syn = vec![0u8; p];
        for (i, s) in syn.iter_mut().enumerate() {
            *s = self.kernels.eval_desc(&self.gf, self.gf.exp(i), cw);
        }
        syn
    }

    /// True if the codeword has no detectable errors.
    ///
    /// This is the syndromes-only check the scan pipeline leans on: for
    /// undamaged media it is the *entire* decode cost (`DESIGN.md` §12).
    ///
    /// ```
    /// use ule_gf256::RsCode;
    /// let rs = RsCode::new(255, 223);
    /// let msg: Vec<u8> = (0..223).map(|i| i as u8).collect();
    /// let mut cw = rs.encode(&msg);
    /// assert!(rs.is_clean(&cw));
    /// cw[100] ^= 1;
    /// assert!(!rs.is_clean(&cw));
    /// ```
    pub fn is_clean(&self, cw: &[u8]) -> bool {
        self.syndromes(cw).iter().all(|&s| s == 0)
    }

    /// Correct `cw` in place. `erasures` lists byte indices known to be
    /// unreliable (their current contents are ignored). Returns the number
    /// of corrected byte positions.
    ///
    /// Capacity: `2 * errors + erasures <= n - k`.
    ///
    /// **Clean-frame fast path**: syndromes are computed first and an
    /// all-zero vector returns `Ok(0)` immediately, so a clean codeword
    /// costs exactly one [`RsCode::syndromes`] pass — Berlekamp–Massey,
    /// Chien search and Forney never run. Scanning undamaged media (the
    /// overwhelmingly common archival case) is therefore syndromes-bound;
    /// `DESIGN.md` §12 and the report's `[E11]` section quantify it.
    pub fn decode(&self, cw: &mut [u8], erasures: &[usize]) -> Result<usize, RsError> {
        self.decode_positions(cw, erasures).map(|p| p.len())
    }

    /// Like [`RsCode::decode`], but returns the corrected byte *positions*
    /// rather than just their count. This is the decode-health surface the
    /// telemetry layer records (`RestoreStats::corrected_symbols` and the
    /// E14 counters): the Chien search already finds these indices, so
    /// exposing them costs nothing the count-only path was not paying.
    ///
    /// ```
    /// use ule_gf256::RsCode;
    /// let rs = RsCode::new(20, 17);
    /// let mut cw = rs.encode(&[9u8; 17]);
    /// cw[4] ^= 0x21;
    /// let fixed = rs.decode_positions(&mut cw, &[]).unwrap();
    /// assert_eq!(fixed, vec![4]);
    /// ```
    pub fn decode_positions(
        &self,
        cw: &mut [u8],
        erasures: &[usize],
    ) -> Result<Vec<usize>, RsError> {
        if cw.len() != self.n {
            return Err(RsError::LengthMismatch {
                expected: self.n,
                got: cw.len(),
            });
        }
        for &e in erasures {
            if e >= self.n {
                return Err(RsError::BadErasure {
                    index: e,
                    codeword_len: self.n,
                });
            }
        }
        let p = self.parity_len();
        if erasures.len() > p {
            return Err(RsError::TooManyErrors);
        }
        // Clean-frame fast path: an all-zero syndrome vector proves the
        // received word is already a codeword (and erasure positions hold
        // correct values), so the algebraic machinery below never runs.
        let syn = self.syndromes(cw);
        if syn.iter().all(|&s| s == 0) {
            return Ok(Vec::new());
        }
        let gf = &self.gf;

        // Erasure locator Γ(x) = prod (1 + X_j x), X_j = alpha^(n-1-pos).
        let mut gamma = vec![1u8];
        for &e in erasures {
            let xj = gf.exp(self.n - 1 - e);
            gamma = poly::mul(gf, &gamma, &[1, xj]);
        }

        // Berlekamp–Massey with erasure initialisation (Blahut):
        // start from Λ = B = Γ, L = e, iterate r = e .. 2t-1.
        let e_count = erasures.len();
        let mut lambda = gamma.clone();
        let mut b = gamma.clone();
        let mut l = e_count;
        let mut m = 1usize;
        let mut bden = 1u8;
        for r in e_count..p {
            // Discrepancy Δ = Σ_j Λ_j S_{r-j}.
            let mut delta = 0u8;
            for (j, &lj) in lambda.iter().enumerate() {
                if j <= r {
                    delta ^= gf.mul(lj, syn[r - j]);
                }
            }
            if delta == 0 {
                m += 1;
            } else if 2 * l <= r + e_count {
                let t_poly = lambda.clone();
                lambda = self.bm_update(&lambda, &b, delta, bden, m);
                l = r + 1 - l + e_count;
                b = t_poly;
                bden = delta;
                m = 1;
            } else {
                lambda = self.bm_update(&lambda, &b, delta, bden, m);
                m += 1;
            }
        }

        let deg = poly::degree(&lambda).ok_or(RsError::TooManyErrors)?;
        if deg > p {
            return Err(RsError::TooManyErrors);
        }

        // Chien search over the n valid positions.
        let mut positions = Vec::with_capacity(deg);
        for j in 0..self.n {
            let weight = self.n - 1 - j;
            // Test Λ(X^-1) where X = alpha^weight.
            let xinv = gf.exp(GROUP_ORDER - weight % GROUP_ORDER);
            if poly::eval(gf, &lambda, xinv) == 0 {
                positions.push(j);
            }
        }
        if positions.len() != deg {
            return Err(RsError::TooManyErrors);
        }

        // Ω(x) = S(x)Λ(x) mod x^2t, then Forney.
        let mut omega = poly::mul(gf, &syn, &lambda);
        omega.truncate(p);
        let lambda_d = poly::derivative(&lambda);
        for &j in &positions {
            let weight = self.n - 1 - j;
            let x = gf.exp(weight);
            let xinv = gf.exp(GROUP_ORDER - weight % GROUP_ORDER);
            let num = poly::eval(gf, &omega, xinv);
            let den = poly::eval(gf, &lambda_d, xinv);
            if den == 0 {
                return Err(RsError::TooManyErrors);
            }
            let magnitude = gf.mul(x, gf.div(num, den));
            cw[j] ^= magnitude;
        }

        // Final consistency check: corrected word must be a codeword.
        if !self.is_clean(cw) {
            return Err(RsError::TooManyErrors);
        }
        Ok(positions)
    }

    /// Encode a batch of k-byte messages, fanning the independent codewords
    /// out across `threads` workers. Output order (and bytes) is identical
    /// to mapping [`RsCode::encode`] serially — the batch helpers exist so
    /// MOCoder's inner code can saturate the hardware without ever changing
    /// what lands on the medium.
    pub fn encode_batch(&self, msgs: &[&[u8]], threads: ThreadConfig) -> Vec<Vec<u8>> {
        ule_par::map(threads, msgs, |m| self.encode(m))
    }

    /// Decode a batch of n-byte codewords (no erasures) in parallel. Each
    /// entry yields the corrected codeword plus the number of corrected
    /// positions, or the per-codeword error; one bad block does not poison
    /// its neighbours. Clean codewords ride [`RsCode::decode`]'s fast path
    /// — a batch from undamaged media costs one syndromes pass per block.
    ///
    /// Note: the emblem hot path (`ule_emblem`'s `inner_decode_with`)
    /// de-interleaves and corrects each block inside its own worker job
    /// rather than materialising a codeword table for this helper — this
    /// is the general-purpose batch surface for callers that already hold
    /// codewords (it clones each input to leave the originals intact).
    pub fn decode_batch(
        &self,
        cws: &[Vec<u8>],
        threads: ThreadConfig,
    ) -> Vec<Result<(Vec<u8>, usize), RsError>> {
        ule_par::map(threads, cws, |cw| {
            let mut c = cw.clone();
            self.decode(&mut c, &[]).map(|fixed| (c, fixed))
        })
    }

    /// Λ ← Λ + (Δ / b) · x^m · B
    fn bm_update(&self, lambda: &[u8], b: &[u8], delta: u8, bden: u8, m: usize) -> Vec<u8> {
        let gf = &self.gf;
        let coef = gf.div(delta, bden);
        let mut shifted = vec![0u8; m + b.len()];
        for (i, &bi) in b.iter().enumerate() {
            shifted[m + i] = gf.mul(coef, bi);
        }
        poly::add(lambda, &shifted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msg(k: usize, seed: u8) -> Vec<u8> {
        (0..k)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn decode_positions_names_the_injected_error_sites() {
        let rs = RsCode::new(255, 223);
        let msg = sample_msg(223, 5);
        let mut cw = rs.encode(&msg);
        // Mixed case: two random errors plus one declared erasure.
        cw[10] ^= 0x5a;
        cw[200] ^= 0x01;
        cw[77] = 0xff;
        let mut fixed = rs.decode_positions(&mut cw, &[77]).unwrap();
        fixed.sort_unstable();
        assert_eq!(fixed, vec![10, 77, 200]);
        assert_eq!(&cw[..223], msg.as_slice());
        // Clean codeword: the fast path reports no positions.
        let mut clean = rs.encode(&msg);
        assert!(rs.decode_positions(&mut clean, &[]).unwrap().is_empty());
    }

    #[test]
    fn parity_of_recovers_any_lost_stream() {
        // The cross-reel shape: 3 content streams + 1 parity stream under
        // RS(4,3); dropping any one stream must be recoverable per column.
        let rs = RsCode::new(4, 3);
        let streams: Vec<Vec<u8>> = (0..3u8).map(|s| sample_msg(40, s * 7 + 1)).collect();
        let refs: Vec<&[u8]> = streams.iter().map(|s| s.as_slice()).collect();
        let parity = rs.parity_of(&refs);
        assert_eq!(parity.len(), 1);
        assert_eq!(parity[0].len(), 40);
        for lost in 0..3usize {
            let mut recovered = vec![0u8; 40];
            for j in 0..40 {
                let mut cw = [0u8; 4];
                for (i, s) in streams.iter().enumerate() {
                    cw[i] = if i == lost { 0 } else { s[j] };
                }
                cw[3] = parity[0][j];
                rs.decode(&mut cw, &[lost]).unwrap();
                recovered[j] = cw[lost];
            }
            assert_eq!(recovered, streams[lost], "lost stream {lost}");
        }
    }

    #[test]
    fn parity_of_matches_fill_parity_per_column() {
        let rs = RsCode::new(20, 17);
        let streams: Vec<Vec<u8>> = (0..17u8).map(|s| sample_msg(9, s)).collect();
        let refs: Vec<&[u8]> = streams.iter().map(|s| s.as_slice()).collect();
        let parity = rs.parity_of(&refs);
        assert_eq!(parity.len(), 3);
        for j in 0..9 {
            let mut cw = vec![0u8; 20];
            for (i, s) in streams.iter().enumerate() {
                cw[i] = s[j];
            }
            rs.fill_parity(&mut cw);
            for (pi, ps) in parity.iter().enumerate() {
                assert_eq!(ps[j], cw[17 + pi]);
            }
        }
    }

    #[test]
    fn clean_roundtrip_255_223() {
        let rs = RsCode::new(255, 223);
        let msg = sample_msg(223, 3);
        let cw = rs.encode(&msg);
        assert!(rs.is_clean(&cw));
        assert_eq!(&cw[..223], &msg[..]);
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let rs = RsCode::new(255, 223);
        let msg = sample_msg(223, 9);
        for nerr in [1usize, 2, 8, 16] {
            let mut cw = rs.encode(&msg);
            for e in 0..nerr {
                cw[e * 14 + 3] ^= (e as u8) | 1;
            }
            let fixed = rs.decode(&mut cw, &[]).unwrap();
            assert_eq!(fixed, nerr, "nerr={nerr}");
            assert_eq!(&cw[..223], &msg[..]);
        }
    }

    #[test]
    fn rejects_t_plus_one_errors() {
        let rs = RsCode::new(255, 223);
        let msg = sample_msg(223, 1);
        let mut cw = rs.encode(&msg);
        for e in 0..17 {
            cw[e * 9 + 2] ^= 0x5A;
        }
        // Either detected as uncorrectable, or (rarely for RS) miscorrected;
        // with 17 errors > t the decoder must not claim success with the
        // original message intact.
        match rs.decode(&mut cw, &[]) {
            Err(RsError::TooManyErrors) => {}
            Ok(_) => assert_ne!(&cw[..223], &msg[..], "cannot genuinely fix t+1 errors"),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn corrects_2t_erasures() {
        let rs = RsCode::new(255, 223);
        let msg = sample_msg(223, 77);
        let mut cw = rs.encode(&msg);
        let erasures: Vec<usize> = (0..32).map(|i| i * 7 + 1).collect();
        for &e in &erasures {
            cw[e] = 0xEE;
        }
        let fixed = rs.decode(&mut cw, &erasures).unwrap();
        assert!(fixed <= 32);
        assert_eq!(&cw[..223], &msg[..]);
    }

    #[test]
    fn mixed_errors_and_erasures_within_budget() {
        // 2*errors + erasures <= 32 : use 10 errors + 12 erasures.
        let rs = RsCode::new(255, 223);
        let msg = sample_msg(223, 42);
        let mut cw = rs.encode(&msg);
        let erasures: Vec<usize> = (0..12).map(|i| i * 3).collect();
        for &e in &erasures {
            cw[e] = !cw[e];
        }
        for i in 0..10 {
            cw[100 + i * 5] ^= 0x80 | i as u8 | 1;
        }
        rs.decode(&mut cw, &erasures).unwrap();
        assert_eq!(&cw[..223], &msg[..]);
    }

    #[test]
    fn outer_code_20_17_restores_three_missing() {
        // The paper's inter-emblem configuration: 17 data + 3 parity,
        // any 3 whole emblems may vanish.
        let rs = RsCode::new(20, 17);
        let msg = sample_msg(17, 5);
        let mut cw = rs.encode(&msg);
        let gone = [2usize, 9, 19];
        for &g in &gone {
            cw[g] = 0;
        }
        rs.decode(&mut cw, &gone).unwrap();
        assert_eq!(&cw[..17], &msg[..]);
    }

    #[test]
    fn outer_code_rejects_four_missing() {
        let rs = RsCode::new(20, 17);
        let msg = sample_msg(17, 5);
        let mut cw = rs.encode(&msg);
        let gone = [2usize, 9, 13, 19];
        for &g in &gone {
            cw[g] = 1;
        }
        assert!(rs.decode(&mut cw, &gone).is_err());
    }

    #[test]
    fn erasure_value_is_ignored_not_trusted() {
        let rs = RsCode::new(20, 17);
        let msg = sample_msg(17, 8);
        let mut cw = rs.encode(&msg);
        // Erased byte happens to still hold the right value: must still work.
        rs.decode(&mut cw.clone(), &[4]).unwrap();
        cw[4] = 0xFF;
        rs.decode(&mut cw, &[4]).unwrap();
        assert_eq!(&cw[..17], &msg[..]);
    }

    #[test]
    fn error_in_parity_region_is_corrected() {
        let rs = RsCode::new(255, 223);
        let msg = sample_msg(223, 10);
        let mut cw = rs.encode(&msg);
        cw[240] ^= 0x31;
        cw[254] ^= 0x02;
        assert_eq!(rs.decode(&mut cw, &[]).unwrap(), 2);
        assert_eq!(&cw[..223], &msg[..]);
    }

    #[test]
    fn shortened_code_roundtrip() {
        let rs = RsCode::new(60, 40);
        let msg = sample_msg(40, 21);
        let mut cw = rs.encode(&msg);
        for i in 0..10 {
            cw[i * 6 + 1] ^= 0x11 + i as u8;
        }
        rs.decode(&mut cw, &[]).unwrap();
        assert_eq!(&cw[..40], &msg[..]);
    }

    #[test]
    fn decode_reports_length_mismatch() {
        let rs = RsCode::new(20, 17);
        let mut short = vec![0u8; 10];
        assert!(matches!(
            rs.decode(&mut short, &[]),
            Err(RsError::LengthMismatch {
                expected: 20,
                got: 10
            })
        ));
    }

    #[test]
    fn decode_reports_bad_erasure_index() {
        let rs = RsCode::new(20, 17);
        let mut cw = rs.encode(&sample_msg(17, 0));
        assert!(matches!(
            rs.decode(&mut cw, &[25]),
            Err(RsError::BadErasure { .. })
        ));
    }

    #[test]
    fn zero_message_is_zero_codeword() {
        let rs = RsCode::new(255, 223);
        let cw = rs.encode(&vec![0u8; 223]);
        assert!(cw.iter().all(|&b| b == 0));
    }

    #[test]
    fn encode_batch_matches_serial_at_any_thread_count() {
        let rs = RsCode::new(255, 223);
        let msgs: Vec<Vec<u8>> = (0..23u8).map(|s| sample_msg(223, s)).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let serial = rs.encode_batch(&refs, ThreadConfig::Serial);
        assert_eq!(serial.len(), msgs.len());
        for threads in [2usize, 4, 8] {
            let par = rs.encode_batch(&refs, ThreadConfig::Fixed(threads));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn decode_batch_isolates_the_bad_block() {
        let rs = RsCode::new(255, 223);
        let mut cws: Vec<Vec<u8>> = (0..4u8).map(|s| rs.encode(&sample_msg(223, s))).collect();
        cws[0][7] ^= 0x55; // 1 correctable error
        for i in 0..33 {
            cws[2][i * 7] ^= 0xA5; // far beyond capacity
        }
        let out = rs.decode_batch(&cws, ThreadConfig::Fixed(3));
        assert_eq!(out[0].as_ref().unwrap().1, 1);
        assert_eq!(out[1].as_ref().unwrap().1, 0);
        assert!(out[2].is_err(), "block 2 must fail alone");
        assert!(out[3].is_ok());
        assert_eq!(&out[0].as_ref().unwrap().0[..223], &sample_msg(223, 0)[..]);
    }

    /// The pre-kernel scalar parity loop, retained as the reference the
    /// SWAR rewrite is pinned against (and mirrored by the E11 baseline in
    /// `ule_bench::scalar`).
    fn fill_parity_scalar(rs: &RsCode, cw: &mut [u8]) {
        let p = rs.parity_len();
        let mut rem = vec![0u8; p];
        for j in 0..rs.k() {
            let factor = cw[j] ^ rem[0];
            rem.copy_within(1.., 0);
            rem[p - 1] = 0;
            if factor != 0 {
                for (i, slot) in rem.iter_mut().enumerate() {
                    *slot ^= rs.gf.mul(factor, rs.gen[p - 1 - i]);
                }
            }
        }
        cw[rs.k()..].copy_from_slice(&rem);
    }

    /// The pre-kernel per-byte Horner syndrome loop, same role.
    fn syndromes_scalar(rs: &RsCode, cw: &[u8]) -> Vec<u8> {
        (0..rs.parity_len())
            .map(|i| {
                let x = rs.gf.exp(i);
                cw.iter().fold(0u8, |acc, &b| rs.gf.mul(acc, x) ^ b)
            })
            .collect()
    }

    #[test]
    fn kernel_parity_and_syndromes_match_scalar_references() {
        for (n, k) in [(255usize, 223usize), (20, 17), (60, 40), (4, 3)] {
            let rs = RsCode::new(n, k);
            for seed in 0..4u8 {
                let msg = sample_msg(k, seed.wrapping_mul(91));
                let mut kernel_cw = vec![0u8; n];
                kernel_cw[..k].copy_from_slice(&msg);
                let mut scalar_cw = kernel_cw.clone();
                rs.fill_parity(&mut kernel_cw);
                fill_parity_scalar(&rs, &mut scalar_cw);
                assert_eq!(kernel_cw, scalar_cw, "n={n} k={k} seed={seed}");
                let mut noisy = kernel_cw.clone();
                noisy[seed as usize % n] ^= 0x5A;
                assert_eq!(
                    rs.syndromes(&noisy),
                    syndromes_scalar(&rs, &noisy),
                    "n={n} k={k} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn max_errors_matches_paper_ratio() {
        let rs = RsCode::new(255, 223);
        assert_eq!(rs.max_errors(), 16);
        // 16 correctable bytes per 223 data bytes = 7.17% ≈ the paper's 7.2%.
        let pct = 100.0 * rs.max_errors() as f64 / rs.k() as f64;
        assert!((pct - 7.2).abs() < 0.1, "got {pct}");
    }
}
