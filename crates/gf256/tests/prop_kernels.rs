//! Property tests for the vectorized kernel layer (`DESIGN.md` §12): the
//! SWAR slice primitives must agree with a scalar [`Gf256::mul`] loop on
//! every constant, length and alignment, and the Reed–Solomon hot paths
//! rebuilt on them must match their pre-kernel scalar forms byte for byte.
//! (The CRC table ≡ bitwise properties live inside `src/crc.rs`, where the
//! private bitwise references are visible.) Replayable from the pinned
//! `PROPTEST_SEED` alone, like every property suite in the workspace.

use proptest::prelude::*;
use ule_gf256::{Gf256, GfKernels, RsCode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mul_slice_matches_scalar_mul_loop(
        c in any::<u8>(),
        src in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let gf = Gf256::new();
        let k = GfKernels::new(&gf);
        let mut dst = vec![0xEEu8; src.len()];
        k.mul_slice(c, &src, &mut dst);
        let scalar: Vec<u8> = src.iter().map(|&s| gf.mul(c, s)).collect();
        prop_assert_eq!(dst, scalar);
    }

    #[test]
    fn mul_add_slice_matches_scalar_mul_xor_loop(
        c in any::<u8>(),
        src in proptest::collection::vec(any::<u8>(), 0..100),
        seed in any::<u8>(),
    ) {
        let gf = Gf256::new();
        let k = GfKernels::new(&gf);
        let base: Vec<u8> = (0..src.len())
            .map(|i| (i as u8).wrapping_mul(59).wrapping_add(seed))
            .collect();
        let mut dst = base.clone();
        k.mul_add_slice(c, &src, &mut dst);
        let scalar: Vec<u8> = src
            .iter()
            .zip(&base)
            .map(|(&s, &d)| d ^ gf.mul(c, s))
            .collect();
        prop_assert_eq!(dst, scalar);
    }

    #[test]
    fn unaligned_windows_agree_with_scalar(
        c in 1u8..=255,
        data in proptest::collection::vec(any::<u8>(), 24..80),
        off in 0usize..8,
    ) {
        // The encoder slides its parity window one byte per step, so the
        // SWAR loop constantly runs at every alignment; pin that the
        // offset never changes the bytes.
        let gf = Gf256::new();
        let k = GfKernels::new(&gf);
        let src = &data[off..data.len() - (8 - off)];
        let mut dst = vec![0u8; src.len()];
        k.mul_slice(c, src, &mut dst);
        for (s, d) in src.iter().zip(&dst) {
            prop_assert_eq!(*d, gf.mul(c, *s));
        }
    }

    #[test]
    fn kernel_encode_matches_scalar_division(
        msg in proptest::collection::vec(any::<u8>(), 17),
    ) {
        // Scalar LFSR re-implementation from public parts: one gf.mul per
        // parity coefficient per message byte, exactly the pre-kernel
        // encoder.
        let rs = RsCode::new(20, 17);
        let gf = rs.field();
        let gen = rs.generator();
        let p = rs.parity_len();
        let mut rem = vec![0u8; p];
        for j in 0..rs.k() {
            let factor = msg[j] ^ rem[0];
            rem.copy_within(1.., 0);
            rem[p - 1] = 0;
            if factor != 0 {
                for (i, slot) in rem.iter_mut().enumerate() {
                    *slot ^= gf.mul(factor, gen[p - 1 - i]);
                }
            }
        }
        let cw = rs.encode(&msg);
        prop_assert_eq!(&cw[..17], &msg[..]);
        prop_assert_eq!(&cw[17..], &rem[..]);
    }

    #[test]
    fn eval_desc_matches_scalar_horner(
        x in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let gf = Gf256::new();
        let k = GfKernels::new(&gf);
        let naive = data.iter().fold(0u8, |acc, &b| gf.mul(acc, x) ^ b);
        prop_assert_eq!(k.eval_desc(&gf, x, &data), naive);
    }
}
