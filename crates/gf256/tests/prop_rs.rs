//! Property-based tests for the Reed–Solomon codec: for any message and any
//! error/erasure pattern within capacity, decoding restores the message.

use proptest::prelude::*;
use ule_gf256::RsCode;

fn inject_errors(cw: &mut [u8], positions: &[usize], xor: u8) {
    for &p in positions {
        cw[p] ^= xor;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rs255_223_corrects_random_errors(
        msg in proptest::collection::vec(any::<u8>(), 223),
        err_pos in proptest::collection::hash_set(0usize..255, 0..=16),
        xor in 1u8..=255,
    ) {
        let rs = RsCode::new(255, 223);
        let mut cw = rs.encode(&msg);
        let positions: Vec<usize> = err_pos.into_iter().collect();
        inject_errors(&mut cw, &positions, xor);
        let fixed = rs.decode(&mut cw, &[]).unwrap();
        prop_assert_eq!(fixed, positions.len());
        prop_assert_eq!(&cw[..223], &msg[..]);
    }

    #[test]
    fn rs255_223_corrects_random_erasures(
        msg in proptest::collection::vec(any::<u8>(), 223),
        era in proptest::collection::hash_set(0usize..255, 0..=32),
    ) {
        let rs = RsCode::new(255, 223);
        let mut cw = rs.encode(&msg);
        let erasures: Vec<usize> = era.into_iter().collect();
        for &e in &erasures {
            cw[e] = cw[e].wrapping_add(101);
        }
        rs.decode(&mut cw, &erasures).unwrap();
        prop_assert_eq!(&cw[..223], &msg[..]);
    }

    #[test]
    fn rs20_17_any_three_erasures(
        msg in proptest::collection::vec(any::<u8>(), 17),
        era in proptest::collection::hash_set(0usize..20, 0..=3),
        fill in any::<u8>(),
    ) {
        let rs = RsCode::new(20, 17);
        let mut cw = rs.encode(&msg);
        let erasures: Vec<usize> = era.into_iter().collect();
        for &e in &erasures {
            cw[e] = fill;
        }
        rs.decode(&mut cw, &erasures).unwrap();
        prop_assert_eq!(&cw[..17], &msg[..]);
    }

    #[test]
    fn mixed_budget_honored(
        msg in proptest::collection::vec(any::<u8>(), 100),
        seed in any::<u64>(),
    ) {
        // RS(140,100): 40 parity. Use e erasures + v errors with 2v+e <= 40.
        let rs = RsCode::new(140, 100);
        let mut cw = rs.encode(&msg);
        let e = (seed % 20) as usize;          // 0..19 erasures
        let v = ((40 - e) / 2).min(10);        // errors within budget
        let mut erasures = Vec::new();
        for i in 0..e {
            let p = (seed as usize + i * 13) % 140;
            if !erasures.contains(&p) {
                erasures.push(p);
            }
        }
        for &p in &erasures {
            cw[p] = !cw[p];
        }
        let mut injected = 0;
        let mut p = (seed as usize).wrapping_mul(7) % 140;
        while injected < v {
            if !erasures.contains(&p) {
                cw[p] ^= 0x3C;
                injected += 1;
            }
            p = (p + 11) % 140;
        }
        rs.decode(&mut cw, &erasures).unwrap();
        prop_assert_eq!(&cw[..100], &msg[..]);
    }

    #[test]
    fn encode_is_systematic(msg in proptest::collection::vec(any::<u8>(), 50)) {
        let rs = RsCode::new(80, 50);
        let cw = rs.encode(&msg);
        prop_assert_eq!(&cw[..50], &msg[..]);
        prop_assert!(rs.is_clean(&cw));
    }

    #[test]
    fn parity_of_multi_column_survives_any_m_erased_columns(
        k in 2usize..=5,
        m in 1usize..=3,
        len in 1usize..=48,
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        // The vault's RS(k+m, k) reel groups (DESIGN.md §16): `parity_of`
        // hands back m parity streams over k data streams in one
        // column-batched pass, and erasing ANY m of the k+m columns must
        // reconstruct every stream byte-identically through a column-wise
        // erasure decode. This is exactly the multi-parity math
        // `Vault::archive` encodes with and `reconstruct_group_frames`
        // decodes with.
        let n = k + m;
        let streams: Vec<Vec<u8>> = (0..k)
            .map(|s| {
                (0..len)
                    .map(|i| {
                        (seed >> ((i + s) % 8)) as u8 ^ (i as u8).wrapping_mul(37 + s as u8)
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = streams.iter().map(|s| s.as_slice()).collect();
        let rs = RsCode::new(n, k);
        let parity = rs.parity_of(&refs);
        prop_assert_eq!(parity.len(), m);
        for p in &parity {
            prop_assert_eq!(p.len(), len);
        }

        // Erase m distinct columns chosen from `pick`, anywhere in the
        // codeword (data and parity positions alike).
        let mut erased: Vec<usize> = Vec::new();
        let mut c = pick as usize;
        while erased.len() < m {
            let cand = c % n;
            if !erased.contains(&cand) {
                erased.push(cand);
            }
            c = c / n + 1 + c % 7;
        }

        // Column-wise erasure decode over the surviving streams.
        let column = |col: usize, i: usize| -> u8 {
            if col < k { streams[col][i] } else { parity[col - k][i] }
        };
        for i in 0..len {
            let mut cw: Vec<u8> = (0..n)
                .map(|col| if erased.contains(&col) { 0 } else { column(col, i) })
                .collect();
            rs.decode(&mut cw, &erased).unwrap();
            for col in 0..n {
                prop_assert_eq!(cw[col], column(col, i), "column {} byte {}", col, i);
            }
        }
    }
}
