//! Zone maps: row-aligned sub-records with per-column min/max
//! statistics, written into the catalog at archive time so a predicate
//! query can skip chunks it provably does not need (`DESIGN.md` §14).
//!
//! A table segment is normally one compressed record, and LZSS/arith
//! decompression is sequential from the record's first byte — a chunk
//! subset of it cannot be decoded independently. Zone maps therefore
//! change *composition*, not decoding: [`split_segment`] cuts the `COPY`
//! block into row-aligned pieces (header line, row groups of roughly
//! `target_bytes` of dump text, the `\.` terminator), each of which the
//! vault compresses into its own length-prefixed record. The full-restore
//! path already walks every record in the data stream, so a multi-record
//! table restores byte-identically through unchanged code; the pruned
//! query path decodes only the records whose `[min, max]` interval
//! intersects the predicate.
//!
//! Pruning is strictly a *performance hint*: zone selection is
//! conservative (a zone is skipped only when the predicate provably
//! excludes every row in it), and the query layer re-applies the exact
//! predicate row by row, so pruned and unpruned answers are identical by
//! construction.

use std::cmp::Ordering;

use crate::catalog::ZoneInfo;

/// Which columns to zone-map per table, and how coarse the zones are.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneSpec {
    /// `(table name, columns to record min/max for)`. Tables not listed
    /// here — and tables whose `COPY` header lacks a listed column — are
    /// composed as a single opaque record, exactly as before.
    pub tables: Vec<(String, Vec<String>)>,
    /// Target dump bytes per row-group zone (`0` = auto: six chunk
    /// payloads, so each zone spans a handful of frames).
    pub target_bytes: usize,
}

impl ZoneSpec {
    /// The default spec for the TPC-H workload this reproduction
    /// archives: the predicate columns of the Q1/Q6/Q3-shaped queries.
    pub fn tpch_default() -> Self {
        ZoneSpec {
            tables: vec![
                (
                    "lineitem".to_string(),
                    vec!["l_shipdate".to_string(), "l_quantity".to_string()],
                ),
                ("orders".to_string(), vec!["o_orderdate".to_string()]),
            ],
            target_bytes: 0,
        }
    }

    /// Zone columns configured for `table`, if any.
    pub fn columns_for(&self, table: &str) -> Option<&[String]> {
        self.tables
            .iter()
            .find(|(t, _)| t == table)
            .map(|(_, c)| c.as_slice())
    }
}

/// Ordering used for zone min/max statistics and predicate bounds:
/// numeric when both sides parse as numbers (so `9 < 10` and `0.05 <
/// 0.5`), byte-lexicographic otherwise (correct for `YYYY-MM-DD` dates).
pub fn zone_value_cmp(a: &str, b: &str) -> Ordering {
    match (a.parse::<f64>(), b.parse::<f64>()) {
        (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => a.as_bytes().cmp(b.as_bytes()),
    }
}

/// An inclusive range predicate on one column (`None` = unbounded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRange {
    pub column: String,
    pub lo: Option<String>,
    pub hi: Option<String>,
}

impl ColumnRange {
    pub fn at_most(column: &str, hi: &str) -> Self {
        ColumnRange {
            column: column.to_string(),
            lo: None,
            hi: Some(hi.to_string()),
        }
    }

    pub fn between(column: &str, lo: &str, hi: &str) -> Self {
        ColumnRange {
            column: column.to_string(),
            lo: Some(lo.to_string()),
            hi: Some(hi.to_string()),
        }
    }
}

/// A conjunction of column ranges — the prunable part of a query's
/// predicate. An empty predicate selects every zone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ZonePredicate {
    pub ranges: Vec<ColumnRange>,
}

impl ZonePredicate {
    /// The match-everything predicate (unpruned streaming scan).
    pub fn all() -> Self {
        ZonePredicate { ranges: Vec::new() }
    }

    /// Add one column range (builder-style, chains off [`Self::all`]).
    pub fn with(mut self, range: ColumnRange) -> Self {
        self.ranges.push(range);
        self
    }

    /// Conservative zone test: `false` only when the zone's `[min, max]`
    /// provably excludes every row. Structural zones (`rows == 0`) and
    /// zones lacking statistics for a referenced column always match.
    pub fn may_match(&self, zone_columns: &[String], zone: &ZoneInfo) -> bool {
        if zone.rows == 0 {
            return true;
        }
        for r in &self.ranges {
            let Some(ci) = zone_columns.iter().position(|c| c == &r.column) else {
                continue;
            };
            let Some((min, max)) = zone.stats.get(ci) else {
                continue;
            };
            if let Some(lo) = &r.lo {
                if zone_value_cmp(max, lo) == Ordering::Less {
                    return false;
                }
            }
            if let Some(hi) = &r.hi {
                if zone_value_cmp(min, hi) == Ordering::Greater {
                    return false;
                }
            }
        }
        true
    }
}

/// One planned piece of a segment (offsets relative to the segment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZonePiece {
    pub start: usize,
    pub len: usize,
    pub rows: u64,
    /// `(min, max)` per zone column; empty for structural pieces.
    pub stats: Vec<(String, String)>,
}

/// Split a `COPY` block into row-aligned pieces with min/max statistics:
/// the header line, row groups of roughly `target_bytes` dump text, and
/// the `\.` terminator. Returns `None` when the segment is not a
/// well-formed `COPY` block, a requested column is missing from its
/// header, or any row lacks a zoned field — the caller then composes the
/// segment as a single record with no zones, which is always correct.
pub fn split_segment(
    bytes: &[u8],
    columns: &[String],
    target_bytes: usize,
) -> Option<Vec<ZonePiece>> {
    // Header line: `COPY name (col1, col2, ...) FROM stdin;`.
    let header_end = bytes.iter().position(|&b| b == b'\n')? + 1;
    let header = std::str::from_utf8(&bytes[..header_end]).ok()?;
    if !header.starts_with("COPY ") {
        return None;
    }
    let cols_part = header.split_once('(')?.1.split_once(')')?.0;
    let header_cols: Vec<&str> = cols_part.split(',').map(|c| c.trim()).collect();
    let col_idx: Vec<usize> = columns
        .iter()
        .map(|c| header_cols.iter().position(|h| h == c))
        .collect::<Option<Vec<_>>>()?;

    // Don't let a huge table explode the catalog: at most 64 row groups.
    let body_len = bytes.len().saturating_sub(header_end);
    let target = target_bytes.max(1).max(body_len / 64);

    let mut pieces = vec![ZonePiece {
        start: 0,
        len: header_end,
        rows: 0,
        stats: Vec::new(),
    }];
    let mut group_start = header_end;
    let mut group_rows = 0u64;
    let mut group_stats: Vec<Option<(String, String)>> = vec![None; columns.len()];
    let mut pos = header_end;
    let mut terminator = None;
    while pos < bytes.len() {
        let line_end = bytes[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(bytes.len(), |i| pos + i + 1);
        let line = &bytes[pos..line_end];
        if line == b"\\.\n" || line == b"\\." {
            terminator = Some(pos);
            break;
        }
        let text = std::str::from_utf8(line).ok()?;
        let row = text.strip_suffix('\n').unwrap_or(text);
        let fields: Vec<&str> = row.split('\t').collect();
        for (slot, &ci) in group_stats.iter_mut().zip(&col_idx) {
            let v = *fields.get(ci)?;
            match slot {
                None => *slot = Some((v.to_string(), v.to_string())),
                Some((min, max)) => {
                    if zone_value_cmp(v, min) == Ordering::Less {
                        *min = v.to_string();
                    }
                    if zone_value_cmp(v, max) == Ordering::Greater {
                        *max = v.to_string();
                    }
                }
            }
        }
        group_rows += 1;
        pos = line_end;
        if pos - group_start >= target {
            pieces.push(ZonePiece {
                start: group_start,
                len: pos - group_start,
                rows: group_rows,
                stats: group_stats.drain(..).map(|s| s.unwrap()).collect(),
            });
            group_start = pos;
            group_rows = 0;
            group_stats = vec![None; columns.len()];
        }
    }
    let term_start = terminator?;
    if group_rows > 0 {
        pieces.push(ZonePiece {
            start: group_start,
            len: term_start - group_start,
            rows: group_rows,
            stats: group_stats.drain(..).map(|s| s.unwrap()).collect(),
        });
    } else if term_start != group_start {
        // Bytes between the last closed group and the terminator that
        // are not rows — not a shape split_segment understands.
        return None;
    }
    pieces.push(ZonePiece {
        start: term_start,
        len: bytes.len() - term_start,
        rows: 0,
        stats: Vec::new(),
    });
    debug_assert_eq!(pieces.iter().map(|p| p.len).sum::<usize>(), bytes.len());
    Some(pieces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn sample_block() -> Vec<u8> {
        let mut b = b"COPY t (a, b, c) FROM stdin;\n".to_vec();
        for i in 0..20 {
            b.extend_from_slice(format!("{i}\tv{i}\t{}\n", 100 - i).as_bytes());
        }
        b.extend_from_slice(b"\\.\n");
        b
    }

    #[test]
    fn pieces_tile_the_block_and_are_row_aligned() {
        let block = sample_block();
        let pieces = split_segment(&block, &cols(&["a", "c"]), 40).unwrap();
        let mut pos = 0;
        for p in &pieces {
            assert_eq!(p.start, pos);
            pos += p.len;
        }
        assert_eq!(pos, block.len());
        assert_eq!(pieces.first().unwrap().rows, 0); // header
        assert_eq!(pieces.last().unwrap().rows, 0); // terminator
        let rows: u64 = pieces.iter().map(|p| p.rows).sum();
        assert_eq!(rows, 20);
        assert!(pieces.len() > 3, "target 40 must split 20 rows");
        // Every row piece starts at a line boundary.
        for p in &pieces[1..pieces.len() - 1] {
            assert_eq!(block[p.start + p.len - 1], b'\n');
        }
    }

    #[test]
    fn stats_are_numeric_aware() {
        let block = sample_block();
        let pieces = split_segment(&block, &cols(&["a"]), usize::MAX).unwrap();
        assert_eq!(pieces.len(), 3);
        // Numeric compare: max of 0..20 is "19", and "9" must not win by
        // lexicographic accident.
        assert_eq!(pieces[1].stats[0], ("0".to_string(), "19".to_string()));
    }

    #[test]
    fn missing_column_means_no_zones() {
        let block = sample_block();
        assert!(split_segment(&block, &cols(&["nope"]), 40).is_none());
        assert!(split_segment(b"not a copy block\n", &cols(&["a"]), 40).is_none());
        // Unterminated block: no terminator piece, no zones.
        let mut trunc = sample_block();
        trunc.truncate(trunc.len() - 3);
        assert!(split_segment(&trunc, &cols(&["a"]), 40).is_none());
    }

    #[test]
    fn predicate_pruning_is_conservative() {
        let block = sample_block();
        let pieces = split_segment(&block, &cols(&["a"]), 40).unwrap();
        let zone_columns = cols(&["a"]);
        let zones: Vec<ZoneInfo> = pieces
            .iter()
            .map(|p| ZoneInfo {
                archive_len: 1,
                dump_len: p.len as u64,
                rows: p.rows,
                stats: p.stats.clone(),
            })
            .collect();
        let pred = ZonePredicate::all().with(ColumnRange::between("a", "6", "8"));
        let selected: Vec<bool> = zones
            .iter()
            .map(|z| pred.may_match(&zone_columns, z))
            .collect();
        // Structural zones always selected.
        assert!(selected[0] && selected[zones.len() - 1]);
        // Rows 6..=8 live somewhere: at least one row zone selected, and
        // at least one pruned (20 rows split into several groups).
        let row_sel: Vec<bool> = selected[1..selected.len() - 1].to_vec();
        assert!(row_sel.iter().any(|&s| s));
        assert!(row_sel.iter().any(|&s| !s));
        // A predicate on an unknown column prunes nothing.
        let open = ZonePredicate::all().with(ColumnRange::at_most("zzz", "0"));
        assert!(zones.iter().all(|z| open.may_match(&zone_columns, z)));
        // The match-all predicate selects everything.
        assert!(zones
            .iter()
            .all(|z| ZonePredicate::all().may_match(&zone_columns, z)));
    }
}
