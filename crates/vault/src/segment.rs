//! Dump segmentation: split a pg_dump-style SQL archive into contiguous,
//! named byte segments — one per `COPY` block, with filler segments for
//! the prose/DDL between them.
//!
//! The segment list is the unit of the vault catalog: each segment is
//! compressed independently, so a reader can decompress one table without
//! touching the rest of the medium. Segmentation is *exactly covering*:
//! the segments tile `[0, dump.len())` with no gaps and no overlaps, so
//! concatenating them (or their independently restored bytes) reproduces
//! the dump bit for bit.
//!
//! The scanner is line-aware, not substring-based: a `COPY` block opens
//! only at a line starting with `COPY ` and closes only at the `\.`
//! terminator line, so row *data* containing the word COPY cannot open a
//! phantom segment. A dump with no `COPY` blocks at all (any non-SQL
//! payload) becomes a single segment named `_all` — the vault works, it
//! just cannot offer table-level selectivity.

/// One contiguous byte range of the dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Table name for `COPY` blocks; `_preamble`, `_text<n>`, or `_all`
    /// for filler segments (leading underscore = not a table).
    pub name: String,
    /// Byte offset in the dump.
    pub start: usize,
    /// Byte length.
    pub len: usize,
}

impl Segment {
    /// Whether this segment is a `COPY` block (a queryable table) rather
    /// than filler prose/DDL.
    pub fn is_table(&self) -> bool {
        !self.name.starts_with('_')
    }
}

/// Table name out of a `COPY name (cols) FROM stdin;` line.
fn copy_table_name(line: &[u8]) -> Option<String> {
    let rest = line.strip_prefix(b"COPY ")?;
    let end = rest
        .iter()
        .position(|&b| b == b' ' || b == b'(' || b == b'\n')?;
    if end == 0 {
        return None;
    }
    Some(String::from_utf8_lossy(&rest[..end]).into_owned())
}

/// Split `dump` into an exactly-covering segment list (see module docs).
pub fn segment_dump(dump: &[u8]) -> Vec<Segment> {
    let mut segments = Vec::new();
    let mut filler_start = 0usize; // start of the pending filler segment
    let mut fillers = 0usize;
    let mut in_copy: Option<(String, usize)> = None; // (table, block start)
    let mut pos = 0usize;
    let push_filler = |segments: &mut Vec<Segment>, fillers: &mut usize, start, end| {
        if end > start {
            let name = if *fillers == 0 {
                "_preamble".to_string()
            } else {
                format!("_text{fillers}")
            };
            *fillers += 1;
            segments.push(Segment {
                name,
                start,
                len: end - start,
            });
        }
    };
    while pos < dump.len() {
        let line_end = dump[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(dump.len(), |i| pos + i + 1);
        let line = &dump[pos..line_end];
        match &in_copy {
            None => {
                if let Some(table) = copy_table_name(line) {
                    push_filler(&mut segments, &mut fillers, filler_start, pos);
                    filler_start = pos;
                    in_copy = Some((table, pos));
                }
            }
            Some((table, block_start)) => {
                if line == b"\\.\n" || line == b"\\." {
                    segments.push(Segment {
                        name: table.clone(),
                        start: *block_start,
                        len: line_end - block_start,
                    });
                    filler_start = line_end;
                    in_copy = None;
                }
            }
        }
        pos = line_end;
    }
    // An unterminated COPY block (truncated dump) falls through as filler
    // so the cover stays exact; `filler_start` already sits at its open.
    push_filler(&mut segments, &mut fillers, filler_start, dump.len());
    if segments.is_empty() || (segments.len() == 1 && !segments[0].is_table()) {
        return vec![Segment {
            name: "_all".to_string(),
            start: 0,
            len: dump.len(),
        }];
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dump() -> Vec<u8> {
        b"-- preamble\nSET x = 1;\n\nCREATE TABLE t (a integer);\n\n\
COPY t (a) FROM stdin;\n1\n2\n\\.\n\n\
COPY u (b, c) FROM stdin;\nhello\tworld\nCOPY not a header\n\\.\n\n\
-- done\n"
            .to_vec()
    }

    fn assert_exact_cover(dump: &[u8], segs: &[Segment]) {
        let mut pos = 0;
        for s in segs {
            assert_eq!(s.start, pos, "gap before {}", s.name);
            pos += s.len;
        }
        assert_eq!(pos, dump.len(), "cover falls short");
        let glued: Vec<u8> = segs
            .iter()
            .flat_map(|s| dump[s.start..s.start + s.len].to_vec())
            .collect();
        assert_eq!(glued, dump);
    }

    #[test]
    fn copy_blocks_become_named_segments() {
        let dump = sample_dump();
        let segs = segment_dump(&dump);
        assert_exact_cover(&dump, &segs);
        let tables: Vec<&str> = segs
            .iter()
            .filter(|s| s.is_table())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(tables, vec!["t", "u"]);
        let t = segs.iter().find(|s| s.name == "t").unwrap();
        assert!(dump[t.start..].starts_with(b"COPY t (a) FROM stdin;"));
        assert!(dump[..t.start + t.len].ends_with(b"\\.\n"));
    }

    #[test]
    fn copy_inside_row_data_does_not_open_a_segment() {
        let dump = sample_dump();
        let segs = segment_dump(&dump);
        // "COPY not a header" is a data row of u, not a third table.
        assert_eq!(segs.iter().filter(|s| s.is_table()).count(), 2);
    }

    #[test]
    fn dump_without_copy_is_one_segment() {
        let dump = b"just some text\nwith lines\n".to_vec();
        let segs = segment_dump(&dump);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].name, "_all");
        assert_exact_cover(&dump, &segs);
    }

    #[test]
    fn empty_dump_is_one_empty_segment() {
        let segs = segment_dump(b"");
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 0);
    }

    #[test]
    fn truncated_copy_block_stays_covered() {
        let dump = b"COPY t (a) FROM stdin;\n1\n2\n".to_vec(); // no terminator
        let segs = segment_dump(&dump);
        assert_exact_cover(&dump, &segs);
        assert!(segs.iter().all(|s| !s.is_table()));
    }

    #[test]
    fn real_tpch_dump_covers_all_eight_tables() {
        let dump = ule_tpch::dump_for_scale(0.0002, 7);
        let segs = segment_dump(&dump);
        assert_exact_cover(&dump, &segs);
        let tables: Vec<&str> = segs
            .iter()
            .filter(|s| s.is_table())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(
            tables,
            vec![
                "region", "nation", "supplier", "customer", "part", "partsupp", "orders",
                "lineitem"
            ]
        );
    }
}
