//! Vault — the multi-reel archive catalog layer (system **S16**,
//! `DESIGN.md` §11).
//!
//! The paper's restore path (Figure 2b) is monolithic: decode every
//! frame, rebuild the whole database, then query it. A shelf-scale
//! archive needs three things the base pipeline does not provide:
//!
//! 1. a **content index** — each dump segment (one `COPY` block per
//!    table) is compressed *independently* into a length-prefixed record,
//!    and a plain-text catalog mapping `table → record byte range →
//!    chunk/frame range` is written on the medium as its own emblem
//!    stream ([`ule_emblem::EmblemKind::Index`]);
//! 2. **selective restore** — [`Vault::restore_table`] decodes only the
//!    frames the index names (via [`MicrOlonys::restore_frames`], fanned
//!    over `ule_par`) and returns bytes identical to the corresponding
//!    slice of a full restore. A damaged index degrades to the full-scan
//!    path, never to wrong bytes;
//! 3. **multi-reel sharding with cross-reel parity** — the frame
//!    sequence is split into reels of `reel_capacity` frames, and every
//!    group of `data_reels` content reels gets `parity_reels` RS parity
//!    reels (shortened `RS(k+m, k)` over the reels' padded chunk bytes,
//!    built on [`ule_gf256::RsCode::parity_of`] — since the kernel layer
//!    of `DESIGN.md` §12 that is a column-batched slice operation, so
//!    parity for megabytes of reel stream costs a handful of
//!    `mul_add_slice` passes rather than a per-byte-column division), so
//!    any `m` lost reels per group are reconstructed bit for bit; an
//!    `m+1`-th loss in the same group fails as the structured
//!    [`VaultError::ReelLoss`]. The topology is a [`ShardPlan`]; a
//!    single-parity plan reproduces the pre-multi-parity shelf and
//!    manifest byte for byte.
//!
//! On top of the parity machinery sit the shelf-maintenance surfaces of
//! `DESIGN.md` §16: [`Vault::scrub`] (walk every reel, verify frame CRCs
//! and parity-group consistency, classify clean/correctable/lost),
//! [`Vault::repair`] (re-encode damaged or missing reels as pristine
//! emblems in place), and degraded-mode reads — [`Vault::restore_table`]
//! and [`Vault::query_table`] reconstruct only the frames they need from
//! surviving group columns instead of bailing to a full scan.
//!
//! Verification sweeps over intact shelves ride the same kernel layer
//! twice more: every catalog and segment check is the sliced
//! [`ule_gf256::crc32`], and every clean frame decodes through the
//! syndromes-only fast path of [`ule_gf256::RsCode::decode`].
//!
//! The vault is a *layer over* Micr'Olonys, not a fork of it: emblem
//! framing, inner/outer RS and the scanner channel are untouched, and
//! the Bootstrap document grows exactly one manifest line (`vault:`)
//! that pre-S16 parsers never see and the S16 parser tolerates missing —
//! classic archives restore through [`Vault::restore_all`] unchanged.

pub mod catalog;
pub mod layout;
pub mod scrub;
pub mod segment;
pub mod zones;

pub use scrub::{GroupScrub, ReelHealth, ReelScrub, RepairReport, ScrubReport};

use std::collections::{BTreeMap, HashMap, HashSet};

use catalog::{ContentIndex, IndexEntry, IndexError, ZoneInfo};
use layout::{ReelLayout, StreamId};
use micr_olonys::{Bootstrap, MicrOlonys, RestoreError, VaultManifest};
use segment::{segment_dump, Segment};
use ule_compress::ArchiveError;
use ule_emblem::stream::{chunk_global_index, StreamError, GROUP_DATA, GROUP_PARITY};
use ule_emblem::{
    decode_emblem, decode_stream_traced, encode_emblem, encode_stream_with, EmblemKind,
};
use ule_gf256::crc::crc32;
use ule_gf256::RsCode;
use ule_obs::Telemetry;
use ule_raster::GrayImage;
use zones::{split_segment, ZonePredicate, ZoneSpec};

/// Scanned reels, aligned with [`VaultArchive::reels`]: `None` marks a
/// reel that is physically gone (lost, burned, unreadable end to end).
pub type ReelScans = Vec<Option<Vec<GrayImage>>>;

/// A reel's role on the shelf.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReelRole {
    /// Carries a slice of the content frame sequence.
    Content,
    /// Carries one cross-reel parity stream (`slot` of `m`) of one reel
    /// group.
    Parity { group: usize, slot: usize },
}

/// The reel topology of a sharded vault: `reel_capacity` frames per
/// content reel, groups of `data_reels` content reels protected by
/// `parity_reels` cross-reel parity reels — the shortened
/// `RS(k+m, k)` with `k = data_reels` and `m = parity_reels`, so any
/// `m` lost reels per group reconstruct bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Frames per content reel; `0` = everything on one reel.
    pub reel_capacity: usize,
    /// Content reels per parity group; `0` = no parity reels.
    pub data_reels: usize,
    /// Parity reels per group (the `m` of `RS(k+m, k)`).
    pub parity_reels: usize,
}

impl ShardPlan {
    /// Single-parity plan (`m = 1`): byte-identical shelves and
    /// manifests to the pre-multi-parity layout.
    pub fn single_parity(reel_capacity: usize, data_reels: usize) -> Self {
        Self {
            reel_capacity,
            data_reels,
            parity_reels: usize::from(data_reels > 0),
        }
    }

    /// Multi-parity plan: `RS(data_reels + parity_reels, data_reels)`
    /// per group.
    pub fn with_parity(reel_capacity: usize, data_reels: usize, parity_reels: usize) -> Self {
        Self {
            reel_capacity,
            data_reels,
            parity_reels,
        }
    }

    /// The unsharded plan [`Vault::single_reel`] uses.
    fn unsharded() -> Self {
        Self {
            reel_capacity: 0,
            data_reels: 0,
            parity_reels: 0,
        }
    }
}

/// One physical reel: an ordered run of printed frames.
pub struct Reel {
    pub id: usize,
    pub role: ReelRole,
    pub frames: Vec<GrayImage>,
}

/// Everything [`Vault::archive`] produces.
pub struct VaultArchive {
    /// Content reels in shelf order, then parity reels in group order.
    pub reels: Vec<Reel>,
    /// Bootstrap document with the `vault:` manifest line stamped in.
    pub bootstrap: Bootstrap,
    /// The catalog (also on the medium as the index stream).
    pub index: ContentIndex,
    /// The frozen position math for this archive.
    pub layout: ReelLayout,
    pub stats: VaultStats,
}

/// Headline numbers of one vault archival run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VaultStats {
    pub dump_bytes: usize,
    /// Data stream length (length-prefixed records).
    pub archive_bytes: usize,
    /// Catalogued segments (tables + filler).
    pub segments: usize,
    /// Queryable tables among them.
    pub tables: usize,
    pub sys_frames: usize,
    pub index_frames: usize,
    pub data_frames: usize,
    pub content_reels: usize,
    pub parity_reels: usize,
}

/// Which path a restore ended up taking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestorePath {
    /// Index consulted, only the named frames decoded.
    Selective,
    /// Selective decode hit damage and escalated to a full scan.
    SelectiveFallback,
    /// Full scan (requested, or index unusable).
    Full,
    /// Pre-S16 archive: classic single-container restore.
    Classic,
}

/// Diagnostics of one vault restore. `frames_decoded` counts the frames
/// pushed through the emblem decoder *to serve the restore itself* (the
/// E10 "frames scanned" metric); sibling/parity frames decoded while
/// rebuilding a lost reel are counted separately in
/// `recovery_frames_decoded`, so selective-restore economics stay
/// visible — and honest — even when a reel was rebuilt.
#[derive(Clone, Copy, Debug)]
pub struct VaultRestoreStats {
    pub frames_decoded: usize,
    /// Sibling + parity frames decoded during cross-reel reconstruction.
    pub recovery_frames_decoded: usize,
    pub frames_reconstructed: usize,
    pub reels_reconstructed: usize,
    /// Data frames a full restore would decode (the E10 denominator).
    pub data_frames_total: usize,
    /// Inner-RS symbols corrected across every frame this restore
    /// decoded — index, data and reconstruction frames alike. Zero on a
    /// pristine shelf; the decode-health headline when it is not.
    pub corrected_symbols: usize,
    /// Outer-code codeword slots (data *and* parity) declared as
    /// erasures during stream-level recovery.
    pub erasure_frames: usize,
    pub path: RestorePath,
    /// True when the index stream was unusable and the restore fell back
    /// to a full scan.
    pub index_fallback: bool,
}

impl VaultRestoreStats {
    fn new(path: RestorePath, data_frames_total: usize) -> Self {
        Self {
            frames_decoded: 0,
            recovery_frames_decoded: 0,
            frames_reconstructed: 0,
            reels_reconstructed: 0,
            data_frames_total,
            corrected_symbols: 0,
            erasure_frames: 0,
            path,
            index_fallback: false,
        }
    }
}

/// One table's dump bytes as a stream of pieces, the unit
/// [`Vault::query_table`] hands to streaming aggregators. Each piece is
/// `(dump offset, bytes)` in dump order; an unpruned scan's pieces
/// concatenate to exactly the table's dump segment.
#[derive(Clone, Debug)]
pub struct TableScan {
    pub pieces: Vec<(u64, Vec<u8>)>,
    /// Zones the catalog holds for this table (1 when zone-less).
    pub zones_total: usize,
    /// Zones the predicate could not exclude (= decoded).
    pub zones_selected: usize,
    /// True when at least one zone was skipped.
    pub pruned: bool,
}

impl TableScan {
    fn whole(dump_start: u64, bytes: Vec<u8>) -> Self {
        Self {
            pieces: vec![(dump_start, bytes)],
            zones_total: 1,
            zones_selected: 1,
            pruned: false,
        }
    }

    /// The scan's bytes, concatenated in dump order.
    pub fn concat(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pieces.iter().map(|(_, b)| b.len()).sum());
        for (_, b) in &self.pieces {
            out.extend_from_slice(b);
        }
        out
    }
}

/// Cost accounting of one [`Vault::query_table`] call — the engine-side
/// E13 numbers, so report tables and tests read them from the scan that
/// actually ran instead of re-deriving them.
#[derive(Clone, Copy, Debug)]
pub struct QueryStats {
    /// Zones the catalog holds for the scanned table (1 when zone-less).
    pub zones_total: usize,
    /// Zones the predicate could not exclude (= decoded).
    pub zones_scanned: usize,
    /// Zones the predicate excluded without touching their frames.
    pub zones_pruned: usize,
    /// Pieces handed to the streaming aggregator, in dump order.
    pub pieces_streamed: usize,
    /// Dump bytes across those pieces.
    pub bytes_touched: usize,
    /// The restore-side diagnostics of the same call (frames decoded,
    /// path taken, RS corrections, reel reconstruction).
    pub restore: VaultRestoreStats,
}

impl QueryStats {
    fn from_scan(scan: &TableScan, restore: VaultRestoreStats) -> Self {
        Self {
            zones_total: scan.zones_total,
            zones_scanned: scan.zones_selected,
            zones_pruned: scan.zones_total - scan.zones_selected,
            pieces_streamed: scan.pieces.len(),
            bytes_touched: scan.pieces.iter().map(|(_, b)| b.len()).sum(),
            restore,
        }
    }
}

/// Vault failures. Reel-level loss beyond the parity budget is the
/// structured [`VaultError::ReelLoss`] naming the group and the lost
/// reel ids — never a panic, never silent garbage.
#[derive(Debug)]
pub enum VaultError {
    Restore(RestoreError),
    Stream(StreamError),
    Archive(ArchiveError),
    Index(IndexError),
    /// The named table is not in the catalog.
    UnknownTable(String),
    /// More reels lost in one parity group than the parity reel covers.
    ReelLoss {
        group: usize,
        lost: Vec<usize>,
        recoverable: usize,
    },
    /// Scans disagree with the manifest (reel count, frame count, record
    /// framing) — the shelf does not match the document.
    ShapeMismatch(String),
}

impl std::fmt::Display for VaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VaultError::Restore(e) => write!(f, "restore: {e}"),
            VaultError::Stream(e) => write!(f, "stream: {e}"),
            VaultError::Archive(e) => write!(f, "archive: {e}"),
            VaultError::Index(e) => write!(f, "index: {e}"),
            VaultError::UnknownTable(t) => write!(f, "table {t:?} is not in the catalog"),
            VaultError::ReelLoss {
                group,
                lost,
                recoverable,
            } => write!(
                f,
                "group {group}: reels {lost:?} lost, parity recovers at most {recoverable}"
            ),
            VaultError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for VaultError {}

impl From<RestoreError> for VaultError {
    fn from(e: RestoreError) -> Self {
        VaultError::Restore(e)
    }
}
impl From<StreamError> for VaultError {
    fn from(e: StreamError) -> Self {
        VaultError::Stream(e)
    }
}
impl From<ArchiveError> for VaultError {
    fn from(e: ArchiveError) -> Self {
        VaultError::Archive(e)
    }
}
impl From<IndexError> for VaultError {
    fn from(e: IndexError) -> Self {
        VaultError::Index(e)
    }
}

/// The vault configuration: a base [`MicrOlonys`] system (medium, DBCoder
/// scheme, worker pool) plus the reel topology.
#[derive(Clone)]
pub struct Vault {
    pub system: MicrOlonys,
    /// Reel topology: capacity, group size, parity depth.
    pub plan: ShardPlan,
    /// Zone-map spec applied at archive time (`None` = every segment is
    /// one opaque record — byte-identical to pre-zone-map composition).
    pub zone_spec: Option<ZoneSpec>,
    /// Pipeline telemetry handle. Off by default; the recorder only
    /// observes (spans, counters) — restored bytes are identical either
    /// way.
    pub telemetry: Telemetry,
}

impl Vault {
    /// A single-reel vault (catalog + selective restore, no sharding).
    pub fn single_reel(system: MicrOlonys) -> Self {
        Self {
            system,
            plan: ShardPlan::unsharded(),
            zone_spec: Some(ZoneSpec::tpch_default()),
            telemetry: Telemetry::off(),
        }
    }

    /// A sharded vault laid out by `plan`: `plan.reel_capacity` frames
    /// per reel, `plan.parity_reels` parity reels per `plan.data_reels`
    /// content reels.
    pub fn sharded(system: MicrOlonys, plan: ShardPlan) -> Self {
        assert!(
            plan.reel_capacity > 0,
            "sharding needs a positive reel capacity"
        );
        assert!(
            plan.data_reels == 0 || plan.parity_reels >= 1,
            "parity groups need at least one parity reel"
        );
        Self {
            system,
            plan,
            zone_spec: Some(ZoneSpec::tpch_default()),
            telemetry: Telemetry::off(),
        }
    }

    /// This vault with a telemetry recorder attached (builder style).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Compose archives without zone maps — byte-identical to the PR-4
    /// era single-record-per-segment layout (the no-zones fallback the
    /// query path must keep serving).
    pub fn without_zones(mut self) -> Self {
        self.zone_spec = None;
        self
    }

    /// Replace the zone-map spec.
    pub fn with_zone_spec(mut self, spec: ZoneSpec) -> Self {
        self.zone_spec = Some(spec);
        self
    }

    /// Segmentation + per-segment compression + catalog serialization:
    /// the byte-level composition of a vault archive, shared by
    /// [`Vault::archive`] and [`Vault::plan_layout`]. Returns the data
    /// stream (length-prefixed records), the catalog, and its serialized
    /// bytes.
    fn compose(&self, dump: &[u8]) -> (Vec<u8>, ContentIndex, Vec<u8>) {
        let cap = self.system.medium.geometry.payload_capacity();
        let segments = segment_dump(dump);

        // Plan each segment's pieces: zone-mapped tables split into
        // row-aligned sub-records (header / row groups / terminator),
        // everything else stays one opaque record. Dump-byte spans are
        // absolute; per-segment piece metadata rides along for the
        // catalog entry.
        struct SegPlan {
            zone_columns: Vec<String>,
            // (absolute dump start, len, rows, stats) per piece.
            pieces: Vec<(usize, usize, u64, Vec<(String, String)>)>,
        }
        let plans: Vec<SegPlan> = segments
            .iter()
            .map(|s| {
                let bytes = &dump[s.start..s.start + s.len];
                if let Some(spec) = self.zone_spec.as_ref().filter(|_| s.is_table()) {
                    if let Some(cols) = spec.columns_for(&s.name) {
                        let target = if spec.target_bytes > 0 {
                            spec.target_bytes
                        } else {
                            6 * cap.max(1)
                        };
                        if let Some(pieces) = split_segment(bytes, cols, target) {
                            return SegPlan {
                                zone_columns: cols.to_vec(),
                                pieces: pieces
                                    .into_iter()
                                    .map(|p| (s.start + p.start, p.len, p.rows, p.stats))
                                    .collect(),
                            };
                        }
                    }
                }
                SegPlan {
                    zone_columns: Vec::new(),
                    pieces: vec![(s.start, s.len, 0, Vec::new())],
                }
            })
            .collect();

        // Compress every piece (across all segments) in one parallel
        // fan-out into length-prefixed records.
        let flat: Vec<(usize, usize)> = plans
            .iter()
            .flat_map(|p| p.pieces.iter().map(|&(start, len, _, _)| (start, len)))
            .collect();
        let records: Vec<Vec<u8>> = ule_par::map(self.system.threads, &flat, |&(start, len)| {
            let container = ule_compress::compress(self.system.scheme, &dump[start..start + len]);
            let mut rec = Vec::with_capacity(4 + container.len());
            rec.extend_from_slice(&(container.len() as u32).to_le_bytes());
            rec.extend_from_slice(&container);
            rec
        });

        let mut data_bytes = Vec::new();
        let mut entries = Vec::with_capacity(segments.len());
        let mut rec_it = records.into_iter();
        for (s, plan) in segments.iter().zip(&plans) {
            let archive_start = data_bytes.len() as u64;
            let mut zones = Vec::with_capacity(plan.pieces.len());
            for &(_, piece_len, rows, ref stats) in &plan.pieces {
                let rec = rec_it.next().expect("one record per piece");
                zones.push(ZoneInfo {
                    archive_len: rec.len() as u64,
                    dump_len: piece_len as u64,
                    rows,
                    stats: stats.clone(),
                });
                data_bytes.extend_from_slice(&rec);
            }
            // Single-piece segments carry no zones: the entry line stays
            // byte-identical to the pre-zone-map catalog format.
            let (zone_columns, zones) = if zones.len() > 1 {
                (plan.zone_columns.clone(), zones)
            } else {
                (Vec::new(), Vec::new())
            };
            entries.push(IndexEntry {
                name: s.name.clone(),
                archive_start,
                archive_len: data_bytes.len() as u64 - archive_start,
                dump_start: s.start as u64,
                dump_len: s.len as u64,
                crc32: crc32(&dump[s.start..s.start + s.len]),
                zone_columns,
                zones,
            });
        }
        let index = ContentIndex {
            chunk_cap: cap as u32,
            entries,
        };
        let index_bytes = index.to_bytes();
        (data_bytes, index, index_bytes)
    }

    /// Archive a dump as a catalogued, (optionally) sharded vault.
    pub fn archive(&self, dump: &[u8]) -> VaultArchive {
        let geom = self.system.medium.geometry;
        let threads = self.system.threads;
        let (data_bytes, index, index_bytes) = self.compose(dump);
        let sys_bytes = MicrOlonys::system_stream_bytes();

        let layout = ReelLayout {
            chunk_cap: geom.payload_capacity(),
            sys_len: sys_bytes.len(),
            index_len: index_bytes.len(),
            data_len: data_bytes.len(),
            outer_parity: self.system.with_parity,
            reel_capacity: self.plan.reel_capacity,
            group_reels: self.plan.data_reels,
            group_parity: self.plan.parity_reels,
        };
        assert!(
            layout.sys_frames() <= u16::MAX as usize
                && layout.index_frames() <= u16::MAX as usize
                && layout.data_frames() <= u16::MAX as usize,
            "stream exceeds the u16 emblem index space"
        );

        // Encode + print the three content streams in shelf order.
        let parity = self.system.with_parity;
        let mut frames = Vec::with_capacity(layout.total_frames());
        for (kind, bytes) in [
            (EmblemKind::System, &sys_bytes),
            (EmblemKind::Index, &index_bytes),
            (EmblemKind::Data, &data_bytes),
        ] {
            let emblems = encode_stream_with(&geom, kind, bytes, parity, threads);
            frames.extend(self.system.medium.print_all_with(&emblems, threads));
        }
        debug_assert_eq!(frames.len(), layout.total_frames());

        // Split into content reels.
        let mut reels: Vec<Reel> = Vec::with_capacity(layout.total_reels());
        let mut it = frames.into_iter();
        for r in 0..layout.content_reels() {
            reels.push(Reel {
                id: r,
                role: ReelRole::Content,
                frames: it.by_ref().take(layout.reel_frames(r)).collect(),
            });
        }

        // Cross-reel parity reels: RS(k+m, k) column parity over the
        // group members' padded chunk bytes (DESIGN.md §11/§16 for the
        // math; with one parity reel this degenerates to GF(2^8) XOR).
        // `parity_of` hands back all m parity streams of a group from one
        // column-batched pass; each becomes its own reel, slot-major.
        if layout.parity_reels() > 0 {
            let payloads = self.emission_payloads(&layout, &sys_bytes, &index_bytes, &data_bytes);
            let m = layout.group_parity;
            for g in 0..layout.groups() {
                let members: Vec<usize> = layout.group_members(g).collect();
                let plen = layout.parity_stream_len(g);
                let streams: Vec<Vec<u8>> = members
                    .iter()
                    .map(|&r| {
                        let mut bytes = Vec::with_capacity(plen);
                        let base = r * layout.reel_capacity;
                        for j in 0..layout.reel_frames(r) {
                            bytes.extend_from_slice(&payloads[base + j]);
                        }
                        bytes.resize(plen, 0);
                        bytes
                    })
                    .collect();
                let refs: Vec<&[u8]> = streams.iter().map(|s| s.as_slice()).collect();
                let rs = RsCode::new(members.len() + m, members.len());
                for (slot, parity_bytes) in rs.parity_of(&refs).into_iter().enumerate() {
                    let emblems = encode_stream_with(
                        &geom,
                        EmblemKind::ReelParity,
                        &parity_bytes,
                        false,
                        threads,
                    );
                    reels.push(Reel {
                        id: layout.parity_reel_of(g, slot),
                        role: ReelRole::Parity { group: g, slot },
                        frames: self.system.medium.print_all_with(&emblems, threads),
                    });
                }
            }
        }

        let mut bootstrap = self.system.make_bootstrap();
        bootstrap.vault = Some(VaultManifest {
            tables: index.entries.len(),
            sys_len: sys_bytes.len(),
            index_len: index_bytes.len(),
            data_len: data_bytes.len(),
            index_crc32: crc32(&index_bytes),
            reel_capacity: self.plan.reel_capacity,
            group_reels: self.plan.data_reels,
            parity_reels: self.plan.parity_reels,
        });

        let stats = VaultStats {
            dump_bytes: dump.len(),
            archive_bytes: data_bytes.len(),
            segments: index.entries.len(),
            tables: index.tables().len(),
            sys_frames: layout.sys_frames(),
            index_frames: layout.index_frames(),
            data_frames: layout.data_frames(),
            content_reels: layout.content_reels(),
            parity_reels: layout.parity_reels(),
        };
        VaultArchive {
            reels,
            bootstrap,
            index,
            layout,
            stats,
        }
    }

    /// Padded chunk payload (exactly `chunk_cap` bytes) of every global
    /// frame position, in shelf order — the byte streams cross-reel
    /// parity is computed over. Outer-parity chunks are recomputed with
    /// the same column code the emblem encoder uses, so these bytes match
    /// the medium bit for bit.
    fn emission_payloads(
        &self,
        layout: &ReelLayout,
        sys: &[u8],
        index: &[u8],
        data: &[u8],
    ) -> Vec<Vec<u8>> {
        let cap = layout.chunk_cap;
        let mut out = Vec::with_capacity(layout.total_frames());
        for payload in [sys, index, data] {
            let n_chunks = payload.len().div_ceil(cap.max(1)).max(1);
            let chunk = |c: usize| -> Vec<u8> {
                let start = (c * cap).min(payload.len());
                let end = ((c + 1) * cap).min(payload.len());
                let mut v = payload[start..end].to_vec();
                v.resize(cap, 0);
                v
            };
            if !layout.outer_parity {
                out.extend((0..n_chunks).map(chunk));
                continue;
            }
            for g in 0..n_chunks.div_ceil(GROUP_DATA) {
                let base = g * GROUP_DATA;
                let in_group = (n_chunks - base).min(GROUP_DATA);
                let chunks: Vec<Vec<u8>> = (0..in_group).map(|i| chunk(base + i)).collect();
                let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
                let rs = RsCode::new(in_group + GROUP_PARITY, in_group);
                let parity = rs.parity_of(&refs);
                out.extend(chunks);
                out.extend(parity);
            }
        }
        out
    }

    /// Scan every present reel of `archive` through the medium's channel
    /// (per-frame seeds perturbed per reel) — the test/bench convenience
    /// for producing a [`ReelScans`] shelf.
    pub fn scan_reels(&self, archive: &VaultArchive, seed: u64) -> ReelScans {
        archive
            .reels
            .iter()
            .map(|r| {
                Some(self.system.medium.scan_all_with(
                    &r.frames,
                    seed ^ ((r.id as u64 + 1) << 32),
                    self.system.threads,
                ))
            })
            .collect()
    }

    /// Full restore: the entire dump, bit-identical to what was archived.
    ///
    /// Works on vault archives (manifest present: records are split and
    /// decompressed per segment, lost reels reconstructed from parity)
    /// *and* on pre-S16 classic archives (no manifest: the scans are
    /// treated as one classic data stream and restored through
    /// [`MicrOlonys::restore_native`]).
    pub fn restore_all(
        &self,
        bootstrap: &Bootstrap,
        reels: &ReelScans,
    ) -> Result<(Vec<u8>, VaultRestoreStats), VaultError> {
        let _span = self.telemetry.span("vault.restore_all");
        let Some(manifest) = &bootstrap.vault else {
            // Pre-S16 archive: no catalog, no reel map — concatenate
            // whatever survives and lean on the outer code.
            let scans: Vec<GrayImage> = reels
                .iter()
                .flatten()
                .flat_map(|r| r.iter().cloned())
                .collect();
            let mut stats = VaultRestoreStats::new(RestorePath::Classic, scans.len());
            stats.frames_decoded = scans.len();
            let (dump, r) = self.system.restore_native_traced(&scans, &self.telemetry)?;
            stats.corrected_symbols = r.corrected_symbols;
            stats.erasure_frames = r.erasure_frames;
            return Ok((dump, stats));
        };
        let layout = self.layout_of(bootstrap, manifest);
        let mut stats = VaultRestoreStats::new(RestorePath::Full, layout.data_frames());
        let mut source = FrameSource::new(layout, reels)?;
        let dump = self.full_restore(&mut source, &mut stats)?;
        Ok((dump, stats))
    }

    /// Selective restore: the named table's dump segment, decoded from
    /// only the frames the content index maps it to. The returned bytes
    /// are identical to the same slice of [`Vault::restore_all`]'s dump —
    /// a damaged index or damaged data frames degrade to the full-scan
    /// fallback, never to different bytes.
    pub fn restore_table(
        &self,
        bootstrap: &Bootstrap,
        reels: &ReelScans,
        table: &str,
    ) -> Result<(Vec<u8>, VaultRestoreStats), VaultError> {
        let _span = self.telemetry.span("vault.restore_table");
        let Some(manifest) = &bootstrap.vault else {
            // Classic archive: restore everything, then segment the dump
            // to find the table.
            let (dump, mut stats) = self.restore_all(bootstrap, reels)?;
            let seg = find_segment(&dump, table)
                .ok_or_else(|| VaultError::UnknownTable(table.to_string()))?;
            stats.path = RestorePath::Classic;
            return Ok((dump[seg.start..seg.start + seg.len].to_vec(), stats));
        };
        let layout = self.layout_of(bootstrap, manifest);
        let mut stats = VaultRestoreStats::new(RestorePath::Selective, layout.data_frames());
        let mut source = FrameSource::new(layout, reels)?;

        // Step 1: the catalog. Unusable index (beyond its own RS budget,
        // CRC mismatch, parse failure) falls back to the full scan.
        let index = match self.read_index(manifest, &mut source, &mut stats) {
            Ok(index) => index,
            Err(VaultError::ReelLoss {
                group,
                lost,
                recoverable,
            }) => {
                // Reel-level loss beyond parity is not an index problem;
                // a full scan cannot help either.
                return Err(VaultError::ReelLoss {
                    group,
                    lost,
                    recoverable,
                });
            }
            Err(_) => {
                stats.index_fallback = true;
                stats.path = RestorePath::Full;
                let dump = self.full_restore(&mut source, &mut stats)?;
                let seg = find_segment(&dump, table)
                    .ok_or_else(|| VaultError::UnknownTable(table.to_string()))?;
                return Ok((dump[seg.start..seg.start + seg.len].to_vec(), stats));
            }
        };
        let entry = index
            .find(table)
            .ok_or_else(|| VaultError::UnknownTable(table.to_string()))?
            .clone();

        // Step 2: decode exactly the chunks the catalog names.
        match self.restore_record(&index, &entry, &mut source, &mut stats) {
            Ok(bytes) => Ok((bytes, stats)),
            Err(e @ VaultError::ReelLoss { .. }) => Err(e),
            Err(_) => {
                // Damaged frames inside the range: escalate to the full
                // scan, which brings the outer code to bear.
                stats.path = RestorePath::SelectiveFallback;
                let dump = self.full_restore(&mut source, &mut stats)?;
                let start = entry.dump_start as usize;
                let len = entry.dump_len as usize;
                if start + len > dump.len() {
                    return Err(VaultError::ShapeMismatch(format!(
                        "catalog names dump range {start}+{len}, dump holds {} bytes",
                        dump.len()
                    )));
                }
                Ok((dump[start..start + len].to_vec(), stats))
            }
        }
    }

    /// Streaming query scan of one table: the dump bytes a query needs,
    /// with zone-map pruning applied when the catalog carries zones and
    /// the predicate excludes some of them. Pieces arrive in dump order;
    /// concatenating the pieces of an *unpruned* scan reproduces the
    /// table's dump segment byte-for-byte. Pruning is a performance hint
    /// only — callers re-apply their exact predicate to every row — so a
    /// pruned scan answers queries identically to an unpruned one.
    ///
    /// Every fallback of [`Vault::restore_table`] exists here too
    /// (classic archives, unusable index, damaged frames): each degrades
    /// to an unpruned single-piece scan, never to different bytes.
    pub fn query_table(
        &self,
        bootstrap: &Bootstrap,
        reels: &ReelScans,
        table: &str,
        pred: &ZonePredicate,
    ) -> Result<(TableScan, QueryStats), VaultError> {
        let _span = self.telemetry.span("vault.query_table");
        let Some(manifest) = &bootstrap.vault else {
            // Pre-S16 archive: classic full restore, one unpruned piece.
            let (dump, mut stats) = self.restore_all(bootstrap, reels)?;
            let seg = find_segment(&dump, table)
                .ok_or_else(|| VaultError::UnknownTable(table.to_string()))?;
            stats.path = RestorePath::Classic;
            let scan = TableScan::whole(
                seg.start as u64,
                dump[seg.start..seg.start + seg.len].to_vec(),
            );
            return Ok(self.finish_query(scan, stats));
        };
        let layout = self.layout_of(bootstrap, manifest);
        let mut stats = VaultRestoreStats::new(RestorePath::Selective, layout.data_frames());
        let mut source = FrameSource::new(layout, reels)?;
        let index = match self.read_index(manifest, &mut source, &mut stats) {
            Ok(index) => index,
            Err(e @ VaultError::ReelLoss { .. }) => return Err(e),
            Err(_) => {
                stats.index_fallback = true;
                stats.path = RestorePath::Full;
                let dump = self.full_restore(&mut source, &mut stats)?;
                let seg = find_segment(&dump, table)
                    .ok_or_else(|| VaultError::UnknownTable(table.to_string()))?;
                let scan = TableScan::whole(
                    seg.start as u64,
                    dump[seg.start..seg.start + seg.len].to_vec(),
                );
                return Ok(self.finish_query(scan, stats));
            }
        };
        let entry = index
            .find(table)
            .ok_or_else(|| VaultError::UnknownTable(table.to_string()))?
            .clone();
        match self.scan_entry(&index, &entry, pred, &mut source, &mut stats) {
            Ok(scan) => Ok(self.finish_query(scan, stats)),
            Err(e @ VaultError::ReelLoss { .. }) => Err(e),
            Err(_) => {
                stats.path = RestorePath::SelectiveFallback;
                let dump = self.full_restore(&mut source, &mut stats)?;
                let start = entry.dump_start as usize;
                let len = entry.dump_len as usize;
                if start + len > dump.len() {
                    return Err(VaultError::ShapeMismatch(format!(
                        "catalog names dump range {start}+{len}, dump holds {} bytes",
                        dump.len()
                    )));
                }
                let scan = TableScan::whole(entry.dump_start, dump[start..start + len].to_vec());
                Ok(self.finish_query(scan, stats))
            }
        }
    }

    /// Close out one query scan: derive its [`QueryStats`] and feed the
    /// zone/piece counters to the telemetry recorder.
    fn finish_query(&self, scan: TableScan, stats: VaultRestoreStats) -> (TableScan, QueryStats) {
        let q = QueryStats::from_scan(&scan, stats);
        let t = &self.telemetry;
        t.add("query.zones_total", q.zones_total as u64);
        t.add("query.zones_scanned", q.zones_scanned as u64);
        t.add("query.zones_pruned", q.zones_pruned as u64);
        t.add("query.pieces_streamed", q.pieces_streamed as u64);
        t.add("query.bytes_touched", q.bytes_touched as u64);
        (scan, q)
    }

    /// The pruned scan proper: select the zones the predicate may match
    /// (structural zones — header and terminator — always qualify),
    /// decode only the chunks those zones touch, unwrap each zone's
    /// sub-record. When nothing was pruned the whole-segment catalog CRC
    /// is within reach and gets checked.
    fn scan_entry(
        &self,
        index: &ContentIndex,
        entry: &IndexEntry,
        pred: &ZonePredicate,
        source: &mut FrameSource<'_>,
        stats: &mut VaultRestoreStats,
    ) -> Result<TableScan, VaultError> {
        let layout = source.layout;
        let Some(spans) = entry.zone_spans() else {
            // No zones in the catalog (PR-4 era archive, or a table the
            // zone spec does not cover): whole-record decode.
            let bytes = self.restore_record(index, entry, source, stats)?;
            return Ok(TableScan::whole(entry.dump_start, bytes));
        };
        let selected: Vec<_> = spans
            .iter()
            .filter(|s| pred.may_match(&entry.zone_columns, s.info))
            .collect();
        let mut chunks: Vec<usize> = selected
            .iter()
            .flat_map(|s| index.chunk_span(s.archive_start, s.info.archive_len))
            .collect();
        chunks.sort_unstable();
        chunks.dedup();
        let payloads = self.decode_chunks(&chunks, source, stats)?;
        let mut pieces = Vec::with_capacity(selected.len());
        for s in &selected {
            let run = extract_span(
                &payloads,
                layout.chunk_cap,
                s.archive_start,
                s.info.archive_len,
            )?;
            pieces.push((s.dump_start, decode_zone_record(&run, s.info)?));
        }
        if selected.len() == spans.len() {
            let mut all = Vec::with_capacity(entry.dump_len as usize);
            for (_, b) in &pieces {
                all.extend_from_slice(b);
            }
            if crc32(&all) != entry.crc32 {
                return Err(VaultError::ShapeMismatch(format!(
                    "segment {} fails its catalog crc",
                    entry.name
                )));
            }
        }
        Ok(TableScan {
            pieces,
            zones_total: spans.len(),
            zones_selected: selected.len(),
            pruned: selected.len() < spans.len(),
        })
    }

    /// Table names readable from the medium's index stream (plus which
    /// restore path reading them took).
    pub fn list_tables(
        &self,
        bootstrap: &Bootstrap,
        reels: &ReelScans,
    ) -> Result<(Vec<String>, VaultRestoreStats), VaultError> {
        let Some(manifest) = &bootstrap.vault else {
            let (dump, stats) = self.restore_all(bootstrap, reels)?;
            let names = segment_dump(&dump)
                .into_iter()
                .filter(|s| s.is_table())
                .map(|s| s.name)
                .collect();
            return Ok((names, stats));
        };
        let layout = self.layout_of(bootstrap, manifest);
        let mut stats = VaultRestoreStats::new(RestorePath::Selective, layout.data_frames());
        let mut source = FrameSource::new(layout, reels)?;
        let index = self.read_index(manifest, &mut source, &mut stats)?;
        Ok((
            index.tables().iter().map(|t| t.to_string()).collect(),
            stats,
        ))
    }

    fn layout_of(&self, bootstrap: &Bootstrap, manifest: &VaultManifest) -> ReelLayout {
        ReelLayout::from_manifest(
            manifest,
            bootstrap.geometry().payload_capacity(),
            bootstrap.outer_parity,
        )
    }

    /// Decode and verify the content index stream.
    fn read_index(
        &self,
        manifest: &VaultManifest,
        source: &mut FrameSource<'_>,
        stats: &mut VaultRestoreStats,
    ) -> Result<ContentIndex, VaultError> {
        let layout = source.layout;
        let positions: Vec<usize> = (0..layout.index_frames())
            .map(|q| layout.position(StreamId::Index, q))
            .collect();
        source.ensure(self, &positions, stats)?;
        let scans: Vec<GrayImage> = positions.iter().map(|&p| source.get(p).clone()).collect();
        stats.frames_decoded += scans.len();
        let (bytes, s) = {
            let _span = self.telemetry.span("vault.read_index");
            decode_stream_traced(
                &self.system.medium.geometry,
                &scans,
                self.system.threads,
                &self.telemetry,
            )?
        };
        stats.corrected_symbols += s.rs_corrected;
        stats.erasure_frames += s.erasure_frames;
        if crc32(&bytes) != manifest.index_crc32 {
            return Err(VaultError::Index(IndexError::BadCrc {
                stored: manifest.index_crc32,
                computed: crc32(&bytes),
            }));
        }
        let index = ContentIndex::parse(&bytes)?;
        validate_index(&index, &layout)?;
        Ok(index)
    }

    /// Decode an arbitrary set of data-stream chunks, returning their
    /// payloads keyed by chunk index. The shared primitive under the
    /// selective-restore and pruned-query paths.
    ///
    /// This is the degraded-mode read path: frames on lost reels are
    /// rebuilt *per offset* — only the frames this read touches, never
    /// the whole reel — and a frame that no longer decodes on a present
    /// reel is rebuilt from its parity group's surviving columns and
    /// retried once before the caller escalates to the full scan.
    fn decode_chunks(
        &self,
        chunks: &[usize],
        source: &mut FrameSource<'_>,
        stats: &mut VaultRestoreStats,
    ) -> Result<HashMap<usize, Vec<u8>>, VaultError> {
        let layout = source.layout;
        let positions: Vec<usize> = chunks
            .iter()
            .map(|&c| layout.chunk_position(StreamId::Data, c))
            .collect();
        for &pos in &positions {
            if pos >= layout.total_frames() {
                // A catalog naming frames past the manifest's geometry is
                // a structural lie, not an index to chase.
                return Err(VaultError::ShapeMismatch(format!(
                    "frame position {pos} beyond the {}-frame layout",
                    layout.total_frames()
                )));
            }
        }
        let lost_wants: Vec<(usize, usize)> = positions
            .iter()
            .filter_map(|&p| {
                let (r, j) = layout.reel_of(p);
                source.reels[r].is_none().then_some((r, j))
            })
            .collect();
        source.reconstruct(self, &lost_wants, stats)?;
        let expects: Vec<usize> = chunks
            .iter()
            .map(|&c| chunk_global_index(c, layout.outer_parity))
            .collect();
        stats.frames_decoded += positions.len();
        let attempt = {
            let picks: Vec<(usize, &GrayImage)> = expects
                .iter()
                .zip(&positions)
                .map(|(&e, &p)| (e, source.get(p)))
                .collect();
            self.system.restore_frames_traced(&picks, &self.telemetry)
        };
        let (decoded, r) = match attempt {
            Ok(ok) => ok,
            Err(first) if layout.parity_reels() > 0 => {
                // Probe which of the requested frames no longer decode
                // (or decode to the wrong emission), rebuild exactly
                // those from surviving group columns, retry once.
                let geom = self.system.medium.geometry;
                let bad: Vec<(usize, usize)> = expects
                    .iter()
                    .zip(&positions)
                    .filter(|&(&e, &p)| match decode_emblem(&geom, source.get(p)) {
                        Ok((h, _, _)) => h.index as usize != e,
                        Err(_) => true,
                    })
                    .map(|(_, &p)| layout.reel_of(p))
                    .collect();
                if bad.is_empty() {
                    return Err(first.into());
                }
                source.reconstruct(self, &bad, stats)?;
                let picks: Vec<(usize, &GrayImage)> = expects
                    .iter()
                    .zip(&positions)
                    .map(|(&e, &p)| (e, source.get(p)))
                    .collect();
                self.system.restore_frames_traced(&picks, &self.telemetry)?
            }
            Err(first) => return Err(first.into()),
        };
        stats.corrected_symbols += r.corrected_symbols;
        Ok(chunks
            .iter()
            .zip(decoded)
            .map(|(&c, (_, payload))| (c, payload))
            .collect())
    }

    /// Selective record decode: exactly the chunks covering `entry`.
    fn restore_record(
        &self,
        index: &ContentIndex,
        entry: &IndexEntry,
        source: &mut FrameSource<'_>,
        stats: &mut VaultRestoreStats,
    ) -> Result<Vec<u8>, VaultError> {
        let layout = source.layout;
        let chunks: Vec<usize> = index.chunk_range(entry).collect();
        let payloads = self.decode_chunks(&chunks, source, stats)?;
        let bytes = extract_span(
            &payloads,
            layout.chunk_cap,
            entry.archive_start,
            entry.archive_len,
        )?;
        decode_record_run(&bytes, entry)
    }

    /// Full-scan restore of the whole dump from a vault data stream.
    fn full_restore(
        &self,
        source: &mut FrameSource<'_>,
        stats: &mut VaultRestoreStats,
    ) -> Result<Vec<u8>, VaultError> {
        let layout = source.layout;
        let positions: Vec<usize> = (0..layout.data_frames())
            .map(|q| layout.position(StreamId::Data, q))
            .collect();
        source.ensure(self, &positions, stats)?;
        let scans: Vec<GrayImage> = positions.iter().map(|&p| source.get(p).clone()).collect();
        stats.frames_decoded += scans.len();
        let _span = self.telemetry.span("vault.full_restore");
        let (data_bytes, s) = decode_stream_traced(
            &self.system.medium.geometry,
            &scans,
            self.system.threads,
            &self.telemetry,
        )?;
        stats.corrected_symbols += s.rs_corrected;
        stats.erasure_frames += s.erasure_frames;
        // Walk the length-prefixed records and decompress each segment.
        let mut dump = Vec::new();
        for record in split_records(&data_bytes)? {
            dump.extend(ule_compress::decompress(record)?);
        }
        Ok(dump)
    }

    /// Rebuild the requested `(reel, offset)` frames of parity group `g`
    /// from the group's surviving columns, returning pristine re-encoded
    /// emblem images (identical bytes to the originals by construction)
    /// tagged with whether each frame was actually recovered.
    ///
    /// Requested frames are never trusted as source columns — they are
    /// erasures by definition (lost reel, or a damaged frame the caller
    /// could not decode). Physically lost reels beyond the group's `m`
    /// parity budget fail up front as the structured
    /// [`VaultError::ReelLoss`] naming every lost reel; per-offset
    /// sibling damage *beyond* the budget degrades only that offset to
    /// an intentionally blank frame — downstream that is one more failed
    /// scan for the stream-level outer code (or the selective path's
    /// full-scan fallback) to absorb, not a bricked shelf.
    ///
    /// Cross-reel recovery is column-independent: byte offset `o` of a
    /// lost stream needs only byte `o` of each surviving stream, so
    /// frame `j` of a lost reel needs exactly frame `j` of each
    /// surviving member plus the group's parity frames `j` — which is
    /// what makes on-demand degraded-mode reads (rebuild only the frames
    /// a query touches) possible at all.
    pub(crate) fn reconstruct_group_frames(
        &self,
        layout: &ReelLayout,
        reels: &ReelScans,
        g: usize,
        wants: &[(usize, usize)],
        stats: &mut VaultRestoreStats,
    ) -> Result<Vec<((usize, usize), GrayImage, bool)>, VaultError> {
        let geom = self.system.medium.geometry;
        let cap = layout.chunk_cap;
        let m = layout.group_parity;
        let members: Vec<usize> = layout.group_members(g).collect();
        let group_reels: Vec<usize> = members
            .iter()
            .copied()
            .chain(layout.parity_reels_of(g))
            .collect();
        let k = members.len();
        let n = k + m;

        // Physically lost reels are a group-wide budget question: past
        // `m` of them no offset is solvable and the structured error
        // names them all.
        let lost: Vec<usize> = group_reels
            .iter()
            .copied()
            .filter(|&r| reels[r].is_none())
            .collect();
        if lost.len() > m {
            return Err(VaultError::ReelLoss {
                group: g,
                lost,
                recoverable: m,
            });
        }

        // Requested offsets, each with the reels to rebuild there.
        let mut by_offset: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(r, j) in wants {
            let targets = by_offset.entry(j).or_default();
            if !targets.contains(&r) {
                targets.push(r);
            }
        }
        let jobs: Vec<(usize, Vec<usize>)> = by_offset.into_iter().collect();

        // Frame count each reel must hold to be trusted as a source
        // column. A reel that disagrees with the manifest (torn tape,
        // partial scan) is never consumed zero-padded — recovering wrong
        // bytes would only surface as a distant container-CRC mismatch
        // naming no reel — it simply stops being a source.
        let expected_frames: Vec<usize> = group_reels
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                if i < k {
                    layout.reel_frames(r)
                } else {
                    layout.parity_reel_frames(g)
                }
            })
            .collect();

        let blank = GrayImage::new(geom.image_width(), geom.image_height(), 255);
        let _span = self.telemetry.span("vault.reconstruct_group");
        // Per offset: (rebuilt frames, source frames decoded, inner-RS
        // symbols corrected along the way).
        type OffsetResult = (Vec<((usize, usize), GrayImage, bool)>, usize, usize);
        let results: Vec<OffsetResult> =
            ule_par::map(self.system.threads, &jobs, |(j, targets)| {
                let j = *j;
                let mut decodes = 0usize;
                let mut corrected = 0usize;
                let mut columns: Vec<Option<Vec<u8>>> = Vec::with_capacity(n);
                for (i, &r) in group_reels.iter().enumerate() {
                    if targets.contains(&r) {
                        columns.push(None);
                        continue;
                    }
                    let Some(scans) = reels[r].as_ref() else {
                        columns.push(None);
                        continue;
                    };
                    if scans.len() != expected_frames[i] {
                        columns.push(None);
                        continue;
                    }
                    if j >= scans.len() {
                        // Short tail reel: its stream is zero-padded past
                        // its end by construction.
                        columns.push(Some(vec![0u8; cap]));
                        continue;
                    }
                    decodes += 1;
                    match decode_emblem(&geom, &scans[j]) {
                        Ok((_, mut payload, ds)) => {
                            corrected += ds.rs_corrected;
                            payload.resize(cap, 0);
                            columns.push(Some(payload));
                        }
                        Err(_) => columns.push(None),
                    }
                }
                let erased: Vec<usize> = columns
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.is_none())
                    .map(|(i, _)| i)
                    .collect();
                let degrade = |decodes, corrected| {
                    let out = targets
                        .iter()
                        .map(|&r| ((r, j), blank.clone(), false))
                        .collect::<Vec<_>>();
                    (out, decodes, corrected)
                };
                if erased.len() > m {
                    return degrade(decodes, corrected);
                }
                let rs = RsCode::new(n, k);
                let mut solved: Vec<Vec<u8>> = vec![vec![0u8; cap]; n];
                let mut cw = vec![0u8; n];
                for o in 0..cap {
                    for (i, c) in columns.iter().enumerate() {
                        cw[i] = c.as_ref().map_or(0, |v| v[o]);
                    }
                    if rs.decode(&mut cw, &erased).is_err() {
                        return degrade(decodes, corrected);
                    }
                    for &e in &erased {
                        solved[e][o] = cw[e];
                    }
                }
                let out = targets
                    .iter()
                    .map(|&r| {
                        let col = group_reels.iter().position(|&x| x == r).expect("in group");
                        let header = match layout.parity_role_of(r) {
                            Some((pg, _)) => layout.parity_frame_header(pg, j),
                            None => layout.frame_info(r * layout.reel_capacity + j).header,
                        };
                        let payload_len = header.payload_len as usize;
                        let image = encode_emblem(&geom, &header, &solved[col][..payload_len]);
                        ((r, j), image, true)
                    })
                    .collect::<Vec<_>>();
                (out, decodes, corrected)
            });

        let mut frames = Vec::with_capacity(wants.len());
        for (rebuilt, decodes, corrected) in results {
            stats.recovery_frames_decoded += decodes;
            stats.corrected_symbols += corrected;
            stats.frames_reconstructed += rebuilt.iter().filter(|(_, _, ok)| *ok).count();
            frames.extend(rebuilt);
        }
        Ok(frames)
    }

    /// The reel layout this configuration would produce for `dump`,
    /// without rendering a single frame — segmentation, per-segment
    /// compression, and catalog serialization only. Useful for sizing a
    /// shelf (how many reels? how many frames?) before committing to the
    /// full rasterisation cost of [`Vault::archive`].
    pub fn plan_layout(&self, dump: &[u8]) -> ReelLayout {
        let (data_bytes, _, index_bytes) = self.compose(dump);
        ReelLayout {
            chunk_cap: self.system.medium.geometry.payload_capacity(),
            sys_len: MicrOlonys::system_stream_bytes().len(),
            index_len: index_bytes.len(),
            data_len: data_bytes.len(),
            outer_parity: self.system.with_parity,
            reel_capacity: self.plan.reel_capacity,
            group_reels: self.plan.data_reels,
            group_parity: self.plan.parity_reels,
        }
    }
}

/// Lazily reconstructing view over a [`ReelScans`] shelf: `get` hands out
/// either the original scan or a reconstructed pristine frame — for lost
/// reels after `ensure`, for damaged frames on present reels after
/// `reconstruct` (the degraded-mode read path).
struct FrameSource<'a> {
    layout: ReelLayout,
    reels: &'a ReelScans,
    /// Reconstructed pristine frames, keyed by `(reel, offset)`.
    rebuilt: HashMap<(usize, usize), GrayImage>,
    /// Reels at least one frame of which was reconstructed — the
    /// `reels_reconstructed` stat counts each reel once per restore.
    touched: HashSet<usize>,
}

impl<'a> FrameSource<'a> {
    fn new(layout: ReelLayout, reels: &'a ReelScans) -> Result<Self, VaultError> {
        if reels.len() != layout.total_reels() {
            return Err(VaultError::ShapeMismatch(format!(
                "manifest describes {} reels, shelf holds {}",
                layout.total_reels(),
                reels.len()
            )));
        }
        for r in 0..layout.content_reels() {
            if let Some(scans) = &reels[r] {
                if scans.len() != layout.reel_frames(r) {
                    return Err(VaultError::ShapeMismatch(format!(
                        "reel {r} holds {} frames, manifest says {}",
                        scans.len(),
                        layout.reel_frames(r)
                    )));
                }
            }
        }
        Ok(Self {
            layout,
            reels,
            rebuilt: HashMap::new(),
            touched: HashSet::new(),
        })
    }

    /// Reconstruct every lost reel covering `positions` — whole reels,
    /// so downstream whole-stream decodes see every offset. Selective
    /// readers rebuild per-offset through [`FrameSource::reconstruct`]
    /// instead.
    fn ensure(
        &mut self,
        vault: &Vault,
        positions: &[usize],
        stats: &mut VaultRestoreStats,
    ) -> Result<(), VaultError> {
        let mut wants: Vec<(usize, usize)> = Vec::new();
        for &pos in positions {
            if pos >= self.layout.total_frames() {
                // A catalog (or caller) naming frames past the manifest's
                // geometry is a structural lie, not an index to chase.
                return Err(VaultError::ShapeMismatch(format!(
                    "frame position {pos} beyond the {}-frame layout",
                    self.layout.total_frames()
                )));
            }
            let (reel, _) = self.layout.reel_of(pos);
            if self.reels[reel].is_none() && !self.touched.contains(&reel) {
                wants.extend((0..self.layout.reel_frames(reel)).map(|j| (reel, j)));
                self.touched.insert(reel);
                stats.reels_reconstructed += 1;
                vault.telemetry.add("vault.reels_reconstructed", 1);
            }
        }
        self.rebuild(vault, &wants, stats)
    }

    /// Degraded-mode reconstruction: rebuild exactly the named
    /// `(reel, offset)` frames from their groups' surviving columns —
    /// lost reels and damage-exhausted frames on present reels alike.
    fn reconstruct(
        &mut self,
        vault: &Vault,
        wants: &[(usize, usize)],
        stats: &mut VaultRestoreStats,
    ) -> Result<(), VaultError> {
        let fresh: Vec<(usize, usize)> = wants
            .iter()
            .copied()
            .filter(|key| !self.rebuilt.contains_key(key))
            .collect();
        for &(reel, _) in &fresh {
            if self.touched.insert(reel) {
                stats.reels_reconstructed += 1;
                vault.telemetry.add("vault.reels_reconstructed", 1);
            }
        }
        self.rebuild(vault, &fresh, stats)
    }

    /// Fan the wanted frames out to their parity groups and store the
    /// rebuilt images.
    fn rebuild(
        &mut self,
        vault: &Vault,
        wants: &[(usize, usize)],
        stats: &mut VaultRestoreStats,
    ) -> Result<(), VaultError> {
        if wants.is_empty() {
            return Ok(());
        }
        if self.layout.parity_reels() == 0 {
            let mut lost: Vec<usize> = wants.iter().map(|&(r, _)| r).collect();
            lost.dedup();
            return Err(VaultError::ReelLoss {
                group: 0,
                lost,
                recoverable: 0,
            });
        }
        let mut by_group: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        for &(reel, j) in wants {
            let g = match self.layout.parity_role_of(reel) {
                Some((g, _)) => g,
                None => self.layout.group_of(reel),
            };
            by_group.entry(g).or_default().push((reel, j));
        }
        for (g, group_wants) in by_group {
            let frames =
                vault.reconstruct_group_frames(&self.layout, self.reels, g, &group_wants, stats)?;
            for (key, image, _) in frames {
                self.rebuilt.insert(key, image);
            }
        }
        Ok(())
    }

    /// The frame at global position `pos` (original scan or rebuilt).
    /// `ensure`/`reconstruct` must have covered `pos` first.
    fn get(&self, pos: usize) -> &GrayImage {
        let (reel, offset) = self.layout.reel_of(pos);
        if let Some(image) = self.rebuilt.get(&(reel, offset)) {
            return image;
        }
        &self.reels[reel].as_ref().expect("ensure covered pos")[offset]
    }
}

/// Split a restored data stream into its length-prefixed records,
/// returning each record's container bytes (prefix stripped).
///
/// The stream is a hostile input once the physical layer has done its
/// best: every structural lie — a length field promising bytes the stream
/// does not hold, a dangling sub-prefix tail — comes back as
/// [`VaultError::ShapeMismatch`], never a panic or an over-read.
pub fn split_records(data_bytes: &[u8]) -> Result<Vec<&[u8]>, VaultError> {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < data_bytes.len() {
        if off + 4 > data_bytes.len() {
            return Err(VaultError::ShapeMismatch(format!(
                "dangling {} bytes after the last record",
                data_bytes.len() - off
            )));
        }
        let len = u32::from_le_bytes(data_bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off
            .checked_add(4)
            .and_then(|p| p.checked_add(len))
            .filter(|&e| e <= data_bytes.len())
            .ok_or_else(|| {
                VaultError::ShapeMismatch(format!(
                    "record at {off} promises {len} bytes, stream holds {}",
                    data_bytes.len() - off - 4
                ))
            })?;
        records.push(&data_bytes[off + 4..end]);
        off = end;
    }
    Ok(records)
}

/// Unwrap an entry's record run (one or more length-prefixed records)
/// into its original segment bytes, verifying the catalog's CRC of the
/// originals.
fn decode_record_run(run: &[u8], entry: &IndexEntry) -> Result<Vec<u8>, VaultError> {
    let mut bytes = Vec::with_capacity(entry.dump_len as usize);
    for record in split_records(run)? {
        bytes.extend(ule_compress::decompress(record)?);
    }
    if crc32(&bytes) != entry.crc32 {
        return Err(VaultError::ShapeMismatch(format!(
            "segment {} fails its catalog crc",
            entry.name
        )));
    }
    if bytes.len() != entry.dump_len as usize {
        return Err(VaultError::ShapeMismatch(format!(
            "segment {} decodes to {} bytes, catalog says {}",
            entry.name,
            bytes.len(),
            entry.dump_len
        )));
    }
    Ok(bytes)
}

/// Unwrap one zone's sub-record: exactly one length-prefixed record
/// decoding to exactly the zone's dump length. (Integrity inside the
/// record comes from the `ULEA` container's own checksum; the catalog
/// keeps only the whole-segment CRC, consulted when a scan is complete.)
fn decode_zone_record(run: &[u8], zone: &ZoneInfo) -> Result<Vec<u8>, VaultError> {
    let records = split_records(run)?;
    if records.len() != 1 {
        return Err(VaultError::ShapeMismatch(format!(
            "zone span holds {} records, catalog says 1",
            records.len()
        )));
    }
    let bytes = ule_compress::decompress(records[0])?;
    if bytes.len() != zone.dump_len as usize {
        return Err(VaultError::ShapeMismatch(format!(
            "zone decodes to {} bytes, catalog says {}",
            bytes.len(),
            zone.dump_len
        )));
    }
    Ok(bytes)
}

/// Slice an archive byte span out of decoded chunk payloads. Every
/// boundary is checked: a span reaching into an undecoded chunk or past
/// a chunk's payload is a structured error, never a panic — offsets here
/// descend from catalog bytes, which are hostile until proven otherwise.
fn extract_span(
    payloads: &HashMap<usize, Vec<u8>>,
    chunk_cap: usize,
    start: u64,
    len: u64,
) -> Result<Vec<u8>, VaultError> {
    let cap = chunk_cap.max(1);
    let (start, len) = match (usize::try_from(start), usize::try_from(len)) {
        (Ok(s), Ok(l)) => (s, l),
        _ => {
            return Err(VaultError::ShapeMismatch(
                "archive span beyond the address space".into(),
            ))
        }
    };
    let end = start
        .checked_add(len)
        .ok_or_else(|| VaultError::ShapeMismatch("archive span beyond the address space".into()))?;
    let mut out = Vec::with_capacity(len);
    let mut pos = start;
    while pos < end {
        let c = pos / cap;
        let off = pos % cap;
        let take = (end - pos).min(cap - off);
        let slice = payloads
            .get(&c)
            .and_then(|p| p.get(off..off + take))
            .ok_or_else(|| {
                VaultError::ShapeMismatch(format!(
                    "archive span {start}+{len} reaches past chunk {c}'s payload"
                ))
            })?;
        out.extend_from_slice(slice);
        pos += take;
    }
    Ok(out)
}

/// Structural validation of a freshly parsed index against the manifest
/// layout: the chunk size must match the geometry and the entries must
/// tile the data stream exactly. A catalog that lies about either could
/// otherwise drive frame positions (and offset arithmetic) out of range;
/// rejecting it here routes the restore to the full-scan fallback.
fn validate_index(index: &ContentIndex, layout: &ReelLayout) -> Result<(), VaultError> {
    if index.chunk_cap as usize != layout.chunk_cap {
        return Err(VaultError::ShapeMismatch(format!(
            "index chunk size {} disagrees with the geometry's {}",
            index.chunk_cap, layout.chunk_cap
        )));
    }
    let mut off: u64 = 0;
    for e in &index.entries {
        if e.archive_start != off {
            return Err(VaultError::ShapeMismatch(format!(
                "entry {} starts at {}, previous entries end at {off}",
                e.name, e.archive_start
            )));
        }
        off = off.checked_add(e.archive_len).ok_or_else(|| {
            VaultError::ShapeMismatch(format!("entry {} overflows the data stream", e.name))
        })?;
    }
    if off != layout.data_len as u64 {
        return Err(VaultError::ShapeMismatch(format!(
            "entries cover {off} bytes, manifest says the data stream holds {}",
            layout.data_len
        )));
    }
    Ok(())
}

/// Locate `table`'s segment in a restored dump (the index-less fallback).
fn find_segment(dump: &[u8], table: &str) -> Option<Segment> {
    segment_dump(dump).into_iter().find(|s| s.name == table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_par::ThreadConfig;

    fn tiny_vault() -> Vault {
        Vault::sharded(MicrOlonys::test_tiny(), ShardPlan::single_parity(12, 2))
    }

    fn sample_dump() -> Vec<u8> {
        ule_tpch::dump_for_scale(0.0001, 77)
    }

    #[test]
    fn archive_shape_matches_layout() {
        let vault = tiny_vault();
        let dump = sample_dump();
        let arc = vault.archive(&dump);
        assert_eq!(arc.reels.len(), arc.layout.total_reels());
        assert_eq!(arc.stats.content_reels, arc.layout.content_reels());
        for r in 0..arc.layout.content_reels() {
            assert_eq!(arc.reels[r].frames.len(), arc.layout.reel_frames(r));
            assert_eq!(arc.reels[r].role, ReelRole::Content);
        }
        for g in 0..arc.layout.groups() {
            for slot in 0..arc.layout.group_parity {
                let pr = &arc.reels[arc.layout.parity_reel_of(g, slot)];
                assert_eq!(pr.role, ReelRole::Parity { group: g, slot });
            }
        }
        assert!(arc.bootstrap.vault.is_some());
        assert!(arc.stats.tables >= 8, "all TPC-H tables catalogued");
    }

    #[test]
    fn multi_parity_archive_shape_and_pristine_restore() {
        let vault = Vault::sharded(MicrOlonys::test_tiny(), ShardPlan::with_parity(12, 3, 2));
        let dump = sample_dump();
        let arc = vault.archive(&dump);
        assert_eq!(arc.layout.group_parity, 2);
        assert_eq!(
            arc.stats.parity_reels,
            arc.layout.groups() * 2,
            "two parity reels per group"
        );
        assert_eq!(arc.reels.len(), arc.layout.total_reels());
        let scans = vault.scan_reels(&arc, 40);
        let (restored, stats) = vault.restore_all(&arc.bootstrap, &scans).unwrap();
        assert_eq!(restored, dump);
        assert_eq!(stats.reels_reconstructed, 0);
    }

    #[test]
    fn pristine_full_restore_is_bit_exact() {
        let vault = tiny_vault();
        let dump = sample_dump();
        let arc = vault.archive(&dump);
        let scans = vault.scan_reels(&arc, 5);
        let (restored, stats) = vault.restore_all(&arc.bootstrap, &scans).unwrap();
        assert_eq!(restored, dump);
        assert_eq!(stats.path, RestorePath::Full);
        assert_eq!(stats.reels_reconstructed, 0);
    }

    #[test]
    fn selective_restore_matches_full_restore_slice() {
        let vault = tiny_vault();
        let dump = sample_dump();
        let arc = vault.archive(&dump);
        let scans = vault.scan_reels(&arc, 6);
        let (full, _) = vault.restore_all(&arc.bootstrap, &scans).unwrap();
        for table in ["nation", "orders"] {
            let entry = arc.index.find(table).unwrap();
            let (bytes, stats) = vault.restore_table(&arc.bootstrap, &scans, table).unwrap();
            assert_eq!(stats.path, RestorePath::Selective, "{table}");
            assert!(!stats.index_fallback);
            let start = entry.dump_start as usize;
            assert_eq!(
                bytes,
                &full[start..start + entry.dump_len as usize],
                "{table}"
            );
            assert!(
                stats.frames_decoded < stats.data_frames_total,
                "{table}: selective must not scan everything ({} vs {})",
                stats.frames_decoded,
                stats.data_frames_total
            );
        }
    }

    #[test]
    fn unknown_table_is_a_clean_error() {
        let vault = tiny_vault();
        let arc = vault.archive(&sample_dump());
        let scans = vault.scan_reels(&arc, 7);
        match vault.restore_table(&arc.bootstrap, &scans, "no_such_table") {
            Err(VaultError::UnknownTable(t)) => assert_eq!(t, "no_such_table"),
            other => panic!("expected UnknownTable, got {other:?}"),
        }
    }

    #[test]
    fn single_reel_vault_works_without_parity() {
        let vault = Vault::single_reel(MicrOlonys::test_tiny().with_threads(ThreadConfig::Serial));
        let dump = sample_dump();
        let arc = vault.archive(&dump);
        assert_eq!(arc.reels.len(), 1);
        let scans = vault.scan_reels(&arc, 8);
        let (restored, _) = vault.restore_all(&arc.bootstrap, &scans).unwrap();
        assert_eq!(restored, dump);
        let (names, _) = vault.list_tables(&arc.bootstrap, &scans).unwrap();
        assert!(names.contains(&"lineitem".to_string()));
    }

    #[test]
    fn classic_archive_restores_through_the_vault() {
        // Pre-S16 archive: plain MicrOlonys output, no vault line.
        let system = MicrOlonys::test_tiny();
        let dump = b"COPY t (a) FROM stdin;\n1\n2\n3\n\\.\n".repeat(30);
        let out = system.archive(&dump);
        assert_eq!(out.bootstrap.vault, None);
        let scans: ReelScans = vec![Some(system.medium.scan_all(&out.data_frames, 9))];
        let vault = Vault::single_reel(system);
        let (restored, stats) = vault.restore_all(&out.bootstrap, &scans).unwrap();
        assert_eq!(restored, dump);
        assert_eq!(stats.path, RestorePath::Classic);
        let (table, _) = vault.restore_table(&out.bootstrap, &scans, "t").unwrap();
        assert_eq!(&table[..], &dump[..table.len()]);
    }

    #[test]
    fn zone_maps_ride_the_catalog() {
        let vault = tiny_vault();
        let arc = vault.archive(&sample_dump());
        let li = arc.index.find("lineitem").unwrap();
        assert!(li.zones.len() > 1, "lineitem splits into zones");
        assert_eq!(li.zone_columns, vec!["l_shipdate", "l_quantity"]);
        assert!(li.zone_spans().is_some(), "zones tile the entry");
        // The catalog survives its own wire format with zones intact.
        let reparsed = ContentIndex::parse(&arc.index.to_bytes()).unwrap();
        assert_eq!(reparsed.find("lineitem").unwrap().zones, li.zones);
        // Tables outside the zone spec keep the plain entry shape.
        assert!(arc.index.find("nation").unwrap().zones.is_empty());
    }

    #[test]
    fn unpruned_query_scan_matches_selective_restore() {
        let vault = tiny_vault();
        let dump = sample_dump();
        let arc = vault.archive(&dump);
        let scans = vault.scan_reels(&arc, 10);
        for table in ["lineitem", "orders", "nation"] {
            let (bytes, _) = vault.restore_table(&arc.bootstrap, &scans, table).unwrap();
            let (scan, stats) = vault
                .query_table(&arc.bootstrap, &scans, table, &ZonePredicate::all())
                .unwrap();
            assert_eq!(stats.restore.path, RestorePath::Selective, "{table}");
            assert!(!scan.pruned, "{table}: nothing to prune under all()");
            assert_eq!(stats.zones_pruned, 0, "{table}");
            assert_eq!(stats.pieces_streamed, scan.pieces.len(), "{table}");
            assert_eq!(stats.bytes_touched, scan.concat().len(), "{table}");
            assert_eq!(scan.concat(), bytes, "{table}");
            // Piece offsets are dump-absolute and contiguous.
            let entry = arc.index.find(table).unwrap();
            let mut off = entry.dump_start;
            for (start, piece) in &scan.pieces {
                assert_eq!(*start, off, "{table}");
                off += piece.len() as u64;
            }
            assert_eq!(off, entry.dump_start + entry.dump_len, "{table}");
        }
    }

    #[test]
    fn excluding_predicate_prunes_row_zones_and_frames() {
        let vault = tiny_vault();
        let dump = sample_dump();
        let arc = vault.archive(&dump);
        let scans = vault.scan_reels(&arc, 11);
        // A shipdate range below every TPC-H date excludes all row zones;
        // the structural header/terminator zones must still arrive.
        let pred =
            ZonePredicate::all().with(zones::ColumnRange::at_most("l_shipdate", "1000-01-01"));
        let (_, unpruned_stats) = vault
            .query_table(&arc.bootstrap, &scans, "lineitem", &ZonePredicate::all())
            .unwrap();
        let (scan, stats) = vault
            .query_table(&arc.bootstrap, &scans, "lineitem", &pred)
            .unwrap();
        assert!(scan.pruned);
        assert!(scan.zones_selected < scan.zones_total);
        assert!(stats.zones_pruned > 0, "{stats:?}");
        assert!(
            stats.restore.frames_decoded < unpruned_stats.restore.frames_decoded,
            "pruning must shrink the scan ({} vs {})",
            stats.restore.frames_decoded,
            unpruned_stats.restore.frames_decoded
        );
        let text = String::from_utf8(scan.concat()).unwrap();
        assert!(text.starts_with("COPY lineitem ("), "header zone kept");
        assert!(
            text.ends_with("\\.\n\n") || text.ends_with("\\.\n"),
            "terminator zone kept"
        );
    }

    #[test]
    fn zoneless_vault_reproduces_the_plain_composition() {
        let vault = tiny_vault().without_zones();
        let dump = sample_dump();
        let arc = vault.archive(&dump);
        for e in &arc.index.entries {
            assert!(e.zones.is_empty(), "{}: no zones when disabled", e.name);
        }
        let scans = vault.scan_reels(&arc, 12);
        let (restored, _) = vault.restore_all(&arc.bootstrap, &scans).unwrap();
        assert_eq!(restored, dump);
        // query_table degrades to a single unpruned piece.
        let pred =
            ZonePredicate::all().with(zones::ColumnRange::at_most("l_shipdate", "1000-01-01"));
        let (scan, stats) = vault
            .query_table(&arc.bootstrap, &scans, "lineitem", &pred)
            .unwrap();
        assert!(!scan.pruned);
        assert_eq!(scan.pieces.len(), 1);
        assert_eq!(stats.restore.path, RestorePath::Selective);
        let entry = arc.index.find("lineitem").unwrap();
        let start = entry.dump_start as usize;
        assert_eq!(scan.concat(), &dump[start..start + entry.dump_len as usize]);
    }

    #[test]
    fn hostile_index_shapes_are_rejected() {
        let vault = tiny_vault();
        let arc = vault.archive(&sample_dump());
        let layout = arc.layout;

        // The honest catalog validates.
        assert!(validate_index(&arc.index, &layout).is_ok());

        // Wrong chunk size: every frame position it implies is suspect.
        let mut bad = arc.index.clone();
        bad.chunk_cap = bad.chunk_cap.wrapping_mul(7).max(1);
        assert!(validate_index(&bad, &layout).is_err());

        // Entries that do not tile the data stream.
        let mut gap = arc.index.clone();
        gap.entries[0].archive_len += 1;
        assert!(validate_index(&gap, &layout).is_err());

        // Overflowing spans must be an error, not a panic.
        let mut huge = arc.index.clone();
        huge.entries[0].archive_len = u64::MAX;
        assert!(validate_index(&huge, &layout).is_err());
    }
}
