//! Shelf scrub-and-repair (`DESIGN.md` §16).
//!
//! A shelf that sits for decades accumulates *latent* damage: frames
//! that no longer decode, reels that went missing, parity that silently
//! drifted from its members. None of it is visible until a restore
//! trips over it — and by then the damage may have grown past the
//! group's `RS(k+m, k)` budget. [`Vault::scrub`] is the periodic audit:
//! it decodes every frame of every present reel exactly once, checks
//! each against the layout-derived header it must carry (the inner RS
//! code and the header CRC make a successful decode a per-frame
//! integrity proof), verifies parity-group consistency on clean groups,
//! and classifies every reel as clean, correctable, or lost.
//! [`Vault::repair`] then spends the parity budget *now*, while it
//! still covers the damage: damaged or missing reels are re-encoded as
//! pristine emblems in place, so a follow-up scrub reports a clean
//! shelf (repair is idempotent — on a clean shelf it is a no-op).
//!
//! Scrub classifies; it never mutates. Repair mutates only reels the
//! scrub found non-clean, and only when their parity groups can still
//! solve them — anything past the budget is reported as unrepairable,
//! never half-written.

use std::collections::BTreeMap;

use crate::layout::ReelLayout;
use crate::{ReelRole, ReelScans, RestorePath, Vault, VaultError, VaultRestoreStats};
use micr_olonys::Bootstrap;
use ule_emblem::decode_emblem;
use ule_gf256::RsCode;

/// Scrub verdict for one reel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReelHealth {
    /// Every frame decodes to exactly the emission the layout demands
    /// (inner-RS corrections along the way are fine — that is the code
    /// doing its job, not damage the shelf keeps).
    Clean,
    /// Present but damaged, and every damaged offset is within its
    /// group's erasure budget — [`Vault::repair`] can rebuild it.
    Correctable,
    /// Physically missing, shape-wrong, or damaged beyond what the
    /// group's parity can solve.
    Lost,
}

/// One reel's scrub record.
#[derive(Clone, Debug)]
pub struct ReelScrub {
    pub reel: usize,
    pub role: ReelRole,
    /// True when the shelf physically holds the reel (even shape-wrong).
    pub present: bool,
    /// Frames the manifest says the reel holds.
    pub frames: usize,
    /// Offsets that failed to decode (all of them for a missing or
    /// shape-wrong reel).
    pub damaged: Vec<usize>,
    /// Inner-RS symbols corrected across the reel's clean decodes.
    pub corrected_symbols: usize,
    pub health: ReelHealth,
}

/// One parity group's scrub record.
#[derive(Clone, Debug)]
pub struct GroupScrub {
    pub group: usize,
    /// Content reel ids.
    pub members: Vec<usize>,
    /// Parity reel ids, slot order.
    pub parity: Vec<usize>,
    /// The group's erasure budget (`m` of `RS(k+m, k)`).
    pub budget: usize,
    /// Reels physically missing or shape-wrong.
    pub lost: Vec<usize>,
    /// Present reels with at least one damaged frame.
    pub damaged: Vec<usize>,
    /// Whether every offset's erasures fit the budget — i.e. whether
    /// [`Vault::repair`] can bring the whole group back to clean.
    pub recoverable: bool,
    /// Offsets where recomputed parity disagrees with the parity reels
    /// (checked only on groups with no other damage; the disagreeing
    /// parity frames are marked damaged so repair re-encodes them).
    pub parity_mismatch_offsets: usize,
}

/// Machine-readable result of one [`Vault::scrub`] walk.
#[derive(Clone, Debug)]
pub struct ScrubReport {
    pub reels: Vec<ReelScrub>,
    pub groups: Vec<GroupScrub>,
}

impl ScrubReport {
    /// `(clean, correctable, lost)` reel counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.reels {
            match r.health {
                ReelHealth::Clean => c.0 += 1,
                ReelHealth::Correctable => c.1 += 1,
                ReelHealth::Lost => c.2 += 1,
            }
        }
        c
    }

    /// Every reel clean and every group parity-consistent.
    pub fn is_clean(&self) -> bool {
        self.reels.iter().all(|r| r.health == ReelHealth::Clean)
            && self.groups.iter().all(|g| g.parity_mismatch_offsets == 0)
    }

    /// Total damaged frames across the shelf.
    pub fn damaged_frames(&self) -> usize {
        self.reels.iter().map(|r| r.damaged.len()).sum()
    }
}

/// What one [`Vault::repair`] pass did to the shelf.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Reels at least one frame of which was re-encoded in place.
    pub reels_rebuilt: Vec<usize>,
    /// Pristine frames written back across those reels.
    pub frames_reencoded: usize,
    /// Sibling + parity frames decoded to solve the erasures.
    pub recovery_frames_decoded: usize,
    /// Non-clean reels whose groups could not solve them (beyond the
    /// parity budget, or no parity at all). Left untouched.
    pub unrepairable: Vec<usize>,
}

impl RepairReport {
    /// True when the pass changed nothing and left nothing broken —
    /// what repair on an already-clean shelf reports.
    pub fn is_noop(&self) -> bool {
        self.reels_rebuilt.is_empty() && self.unrepairable.is_empty()
    }
}

/// Everything one reel's audit learned, payloads kept for the group's
/// parity-consistency check.
struct ReelAudit {
    present: bool,
    shape_ok: bool,
    /// Expected frame count per the manifest.
    frames: usize,
    damaged: Vec<usize>,
    corrected: usize,
    /// Per-offset decoded payloads, zero-padded to `chunk_cap`; `None`
    /// where the frame is damaged or the reel is missing.
    payloads: Vec<Option<Vec<u8>>>,
}

impl Vault {
    /// Walk every reel of the shelf, verify every frame, and classify.
    ///
    /// Read-only: the scans are untouched, the verdicts land in the
    /// returned [`ScrubReport`] and on the `scrub.*` telemetry counters.
    pub fn scrub(
        &self,
        bootstrap: &Bootstrap,
        reels: &ReelScans,
    ) -> Result<ScrubReport, VaultError> {
        let _span = self.telemetry.span("vault.scrub");
        let Some(manifest) = &bootstrap.vault else {
            return Err(VaultError::ShapeMismatch(
                "classic archive carries no reel manifest to scrub".into(),
            ));
        };
        let layout = self.layout_of(bootstrap, manifest);
        if reels.len() != layout.total_reels() {
            return Err(VaultError::ShapeMismatch(format!(
                "manifest describes {} reels, shelf holds {}",
                layout.total_reels(),
                reels.len()
            )));
        }

        let mut report = ScrubReport {
            reels: (0..layout.total_reels())
                .map(|r| ReelScrub {
                    reel: r,
                    role: match layout.parity_role_of(r) {
                        Some((group, slot)) => ReelRole::Parity { group, slot },
                        None => ReelRole::Content,
                    },
                    present: false,
                    frames: 0,
                    damaged: Vec::new(),
                    corrected_symbols: 0,
                    health: ReelHealth::Lost,
                })
                .collect(),
            groups: Vec::new(),
        };

        if layout.parity_reels() == 0 {
            // No cross-reel parity: a reel is clean or it is lost —
            // there is no budget to correct against. (The stream-level
            // outer code may still save a *restore*; scrub reports the
            // shelf, not the restore's odds.)
            for r in 0..layout.total_reels() {
                let audit = self.audit_reel(&layout, reels, r);
                let rec = &mut report.reels[r];
                rec.present = audit.present;
                rec.frames = audit.frames;
                rec.corrected_symbols = audit.corrected;
                rec.health = if audit.present && audit.shape_ok && audit.damaged.is_empty() {
                    ReelHealth::Clean
                } else {
                    ReelHealth::Lost
                };
                rec.damaged = audit.damaged;
            }
            self.count_scrub(&report);
            return Ok(report);
        }

        for g in 0..layout.groups() {
            let members: Vec<usize> = layout.group_members(g).collect();
            let parity: Vec<usize> = layout.parity_reels_of(g).collect();
            let group_reels: Vec<usize> = members
                .iter()
                .copied()
                .chain(parity.iter().copied())
                .collect();
            let m = layout.group_parity;
            let width = layout.parity_reel_frames(g);

            let mut audits: BTreeMap<usize, ReelAudit> = group_reels
                .iter()
                .map(|&r| (r, self.audit_reel(&layout, reels, r)))
                .collect();

            let lost: Vec<usize> = group_reels
                .iter()
                .copied()
                .filter(|r| {
                    let a = &audits[r];
                    !a.present || !a.shape_ok
                })
                .collect();

            // Parity-group consistency: on a group with no damage at
            // all, recompute every parity stream from the member
            // payloads and diff it against what the parity reels decode
            // to. The member frames each carry their own integrity
            // proof, so a disagreement convicts the parity frame — mark
            // it damaged and let repair re-encode it.
            let mut parity_mismatch_offsets = 0usize;
            let undamaged =
                lost.is_empty() && group_reels.iter().all(|r| audits[r].damaged.is_empty());
            if undamaged {
                let cap = layout.chunk_cap;
                let streams: Vec<Vec<u8>> = members
                    .iter()
                    .map(|r| {
                        let a = &audits[r];
                        let mut s = Vec::with_capacity(width * cap);
                        for p in &a.payloads {
                            s.extend_from_slice(p.as_deref().expect("undamaged"));
                        }
                        s.resize(width * cap, 0);
                        s
                    })
                    .collect();
                let refs: Vec<&[u8]> = streams.iter().map(|s| s.as_slice()).collect();
                let rs = RsCode::new(members.len() + m, members.len());
                let mut bad_offsets: Vec<usize> = Vec::new();
                for (slot, want) in rs.parity_of(&refs).into_iter().enumerate() {
                    let pr = parity[slot];
                    for j in 0..width {
                        let got = audits[&pr].payloads[j].as_deref().expect("undamaged");
                        if got != &want[j * cap..(j + 1) * cap] {
                            audits.get_mut(&pr).unwrap().damaged.push(j);
                            audits.get_mut(&pr).unwrap().payloads[j] = None;
                            if !bad_offsets.contains(&j) {
                                bad_offsets.push(j);
                            }
                        }
                    }
                }
                parity_mismatch_offsets = bad_offsets.len();
            }

            // Per-offset erasure count: lost reels erase every offset,
            // damaged frames only theirs. The group is recoverable iff
            // no offset exceeds the budget.
            let mut over_budget: Vec<usize> = Vec::new();
            for j in 0..width {
                let erased = lost.len()
                    + group_reels
                        .iter()
                        .filter(|r| !lost.contains(r) && audits[r].damaged.contains(&j))
                        .count();
                if erased > m {
                    over_budget.push(j);
                }
            }
            let recoverable = over_budget.is_empty();

            let mut damaged_reels: Vec<usize> = Vec::new();
            for &r in &group_reels {
                let a = audits.remove(&r).expect("audited");
                let rec = &mut report.reels[r];
                rec.present = a.present;
                rec.frames = a.frames;
                rec.corrected_symbols = a.corrected;
                rec.health = if !a.present || !a.shape_ok {
                    ReelHealth::Lost
                } else if a.damaged.is_empty() {
                    ReelHealth::Clean
                } else if a.damaged.iter().all(|j| !over_budget.contains(j)) {
                    damaged_reels.push(r);
                    ReelHealth::Correctable
                } else {
                    damaged_reels.push(r);
                    ReelHealth::Lost
                };
                rec.damaged = a.damaged;
            }

            report.groups.push(GroupScrub {
                group: g,
                members,
                parity,
                budget: m,
                lost,
                damaged: damaged_reels,
                recoverable,
                parity_mismatch_offsets,
            });
        }

        self.count_scrub(&report);
        Ok(report)
    }

    /// Rebuild every non-clean reel the parity budget still covers,
    /// re-encoding pristine emblems in place. Scrub-after-repair on a
    /// recoverable shelf reports clean; repair on a clean shelf is a
    /// no-op; running it twice changes nothing the first run did not.
    pub fn repair(
        &self,
        bootstrap: &Bootstrap,
        reels: &mut ReelScans,
    ) -> Result<RepairReport, VaultError> {
        let _span = self.telemetry.span("vault.repair");
        let scrub = self.scrub(bootstrap, reels)?;
        let manifest = bootstrap.vault.as_ref().expect("scrub validated");
        let layout = self.layout_of(bootstrap, manifest);
        let mut out = RepairReport::default();

        if layout.parity_reels() == 0 {
            out.unrepairable = scrub
                .reels
                .iter()
                .filter(|r| r.health != ReelHealth::Clean)
                .map(|r| r.reel)
                .collect();
            self.count_repair(&out);
            return Ok(out);
        }

        // Scratch restore stats: repair reuses the restore-path group
        // solver, which reports its work through this.
        let mut stats = VaultRestoreStats::new(RestorePath::Full, layout.data_frames());
        for g in &scrub.groups {
            let fix: Vec<&ReelScrub> = g
                .members
                .iter()
                .chain(&g.parity)
                .map(|&r| &scrub.reels[r])
                .filter(|r| r.health != ReelHealth::Clean || !r.damaged.is_empty())
                .collect();
            if fix.is_empty() {
                continue;
            }
            let wants: Vec<(usize, usize)> = fix
                .iter()
                .flat_map(|r| r.damaged.iter().map(move |&j| (r.reel, j)))
                .collect();
            let solved =
                match self.reconstruct_group_frames(&layout, reels, g.group, &wants, &mut stats) {
                    Ok(frames) => frames,
                    Err(VaultError::ReelLoss { .. }) => {
                        // Past the budget nothing in the group is solvable.
                        out.unrepairable.extend(fix.iter().map(|r| r.reel));
                        continue;
                    }
                    Err(e) => return Err(e),
                };
            let mut by_reel: BTreeMap<usize, Vec<(usize, ule_raster::GrayImage, bool)>> =
                BTreeMap::new();
            for ((r, j), image, ok) in solved {
                by_reel.entry(r).or_default().push((j, image, ok));
            }
            for rec in fix {
                let mut frames = by_reel.remove(&rec.reel).unwrap_or_default();
                frames.sort_by_key(|&(j, _, _)| j);
                let whole = frames.len() == rec.frames;
                if frames.iter().any(|&(_, _, ok)| !ok) {
                    // Some offset degraded past the budget mid-solve:
                    // leave the reel as scanned rather than splice in
                    // blanks.
                    out.unrepairable.push(rec.reel);
                    continue;
                }
                if whole {
                    // Missing or shape-wrong reel: becomes a whole
                    // pristine reel.
                    reels[rec.reel] = Some(frames.into_iter().map(|(_, image, _)| image).collect());
                    out.frames_reencoded += rec.frames;
                } else {
                    let scans = reels[rec.reel]
                        .as_mut()
                        .expect("partially damaged reel is present");
                    for (j, image, _) in frames {
                        scans[j] = image;
                        out.frames_reencoded += 1;
                    }
                }
                out.reels_rebuilt.push(rec.reel);
            }
        }
        out.recovery_frames_decoded = stats.recovery_frames_decoded;
        self.count_repair(&out);
        Ok(out)
    }

    /// Decode every frame of one reel against the exact header the
    /// layout says it must carry.
    fn audit_reel(&self, layout: &ReelLayout, reels: &ReelScans, r: usize) -> ReelAudit {
        let expected = match layout.parity_role_of(r) {
            Some((g, _)) => layout.parity_reel_frames(g),
            None => layout.reel_frames(r),
        };
        let Some(scans) = reels[r].as_ref() else {
            return ReelAudit {
                present: false,
                shape_ok: false,
                frames: expected,
                damaged: (0..expected).collect(),
                corrected: 0,
                payloads: vec![None; expected],
            };
        };
        if scans.len() != expected {
            return ReelAudit {
                present: true,
                shape_ok: false,
                frames: expected,
                damaged: (0..expected).collect(),
                corrected: 0,
                payloads: vec![None; expected],
            };
        }
        let geom = self.system.medium.geometry;
        let cap = layout.chunk_cap;
        let offsets: Vec<usize> = (0..expected).collect();
        let decoded: Vec<(Option<Vec<u8>>, usize)> =
            ule_par::map(self.system.threads, &offsets, |&j| {
                let want = match layout.parity_role_of(r) {
                    Some((g, _)) => layout.parity_frame_header(g, j),
                    None => layout.frame_info(r * layout.reel_capacity + j).header,
                };
                match decode_emblem(&geom, &scans[j]) {
                    Ok((h, mut payload, ds)) if h == want => {
                        payload.resize(cap, 0);
                        (Some(payload), ds.rs_corrected)
                    }
                    _ => (None, 0),
                }
            });
        let mut audit = ReelAudit {
            present: true,
            shape_ok: true,
            frames: expected,
            damaged: Vec::new(),
            corrected: 0,
            payloads: Vec::with_capacity(expected),
        };
        for (j, (payload, corrected)) in decoded.into_iter().enumerate() {
            audit.corrected += corrected;
            if payload.is_none() {
                audit.damaged.push(j);
            }
            audit.payloads.push(payload);
        }
        audit
    }

    fn count_scrub(&self, report: &ScrubReport) {
        let (clean, correctable, lost) = report.counts();
        let t = &self.telemetry;
        t.add("scrub.reels_clean", clean as u64);
        t.add("scrub.reels_correctable", correctable as u64);
        t.add("scrub.reels_lost", lost as u64);
        t.add("scrub.frames_damaged", report.damaged_frames() as u64);
        t.add(
            "scrub.parity_mismatch_offsets",
            report
                .groups
                .iter()
                .map(|g| g.parity_mismatch_offsets as u64)
                .sum(),
        );
    }

    fn count_repair(&self, report: &RepairReport) {
        let t = &self.telemetry;
        t.add("repair.reels_rebuilt", report.reels_rebuilt.len() as u64);
        t.add("repair.frames_reencoded", report.frames_reencoded as u64);
        t.add(
            "repair.reels_unrepairable",
            report.unrepairable.len() as u64,
        );
    }
}
