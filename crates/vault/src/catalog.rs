//! The content index: the vault's `table → compressed chunk → frame
//! range` catalog, serialized as a self-delimiting plain-text stream.
//!
//! The index is written on the medium as its own emblem stream (kind
//! [`ule_emblem::EmblemKind::Index`], outer-parity protected), so a
//! reader can decode a few index frames and then jump straight to the
//! frames that carry one table. The serialization is plain text in the
//! spirit of the Bootstrap document — a future restorer can read it with
//! their eyes:
//!
//! ```text
//! ULE VAULT INDEX 1
//! chunk: 1115
//! segments: 10
//! seg: name=lineitem archive=8200+41833 dump=31650+152113 crc32=9fe2a1b0
//! ...
//! end: crc32=deadbeef
//! ```
//!
//! `archive=<start>+<len>` is the byte range of the segment's record
//! (4-byte little-endian length prefix + `ULEA` container) inside the
//! data stream; `dump=<start>+<len>` is the byte range of the original
//! segment in the restored dump; `crc32` is the CRC-32 of those original
//! bytes, so a selectively restored table can be verified without
//! restoring anything else. The trailing `end:` line carries the CRC-32
//! of every byte before it — the self-check consulted before any frame
//! range is trusted.

use std::fmt::Write as _;
use ule_gf256::crc::crc32;

/// One catalogued segment (a table's `COPY` block, or filler text).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Segment name (table name, or `_`-prefixed filler).
    pub name: String,
    /// Byte offset of the segment's record in the data stream.
    pub archive_start: u64,
    /// Record length in bytes (length prefix + container).
    pub archive_len: u64,
    /// Byte offset of the segment in the original dump.
    pub dump_start: u64,
    /// Segment length in the original dump.
    pub dump_len: u64,
    /// CRC-32 of the original segment bytes.
    pub crc32: u32,
}

/// The full catalog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentIndex {
    /// Payload bytes per emblem (the chunk size frame ranges are in).
    pub chunk_cap: u32,
    /// Entries in dump order (their archive ranges tile the data stream).
    pub entries: Vec<IndexEntry>,
}

/// Index (de)serialization failures.
#[derive(Debug, PartialEq, Eq)]
pub enum IndexError {
    /// Missing or wrong magic/version line.
    BadMagic,
    /// A header or entry line failed to parse.
    BadLine(String),
    /// Entry count disagrees with the `segments:` header.
    CountMismatch { expected: usize, got: usize },
    /// The trailing CRC does not match the preceding bytes.
    BadCrc { stored: u32, computed: u32 },
    /// No `end:` trailer found.
    Truncated,
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::BadMagic => write!(f, "not a vault index (bad magic)"),
            IndexError::BadLine(l) => write!(f, "unparseable index line: {l:?}"),
            IndexError::CountMismatch { expected, got } => {
                write!(f, "index promises {expected} segments, holds {got}")
            }
            IndexError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "index crc mismatch: stored {stored:08x}, computed {computed:08x}"
                )
            }
            IndexError::Truncated => write!(f, "index stream ends before the end: trailer"),
        }
    }
}

impl std::error::Error for IndexError {}

const MAGIC_LINE: &str = "ULE VAULT INDEX 1";

impl ContentIndex {
    /// Serialize to the self-delimiting text format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        writeln!(out, "{MAGIC_LINE}").unwrap();
        writeln!(out, "chunk: {}", self.chunk_cap).unwrap();
        writeln!(out, "segments: {}", self.entries.len()).unwrap();
        for e in &self.entries {
            writeln!(
                out,
                "seg: name={} archive={}+{} dump={}+{} crc32={:08x}",
                e.name, e.archive_start, e.archive_len, e.dump_start, e.dump_len, e.crc32
            )
            .unwrap();
        }
        let body_crc = crc32(out.as_bytes());
        writeln!(out, "end: crc32={body_crc:08x}").unwrap();
        out.into_bytes()
    }

    /// Parse and verify a serialized index. Trailing bytes after the
    /// `end:` line are ignored (the emblem stream may pad).
    pub fn parse(bytes: &[u8]) -> Result<ContentIndex, IndexError> {
        let text = String::from_utf8_lossy(bytes);
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC_LINE) {
            return Err(IndexError::BadMagic);
        }
        let chunk_line = lines.next().ok_or(IndexError::Truncated)?;
        let chunk_cap: u32 = chunk_line
            .strip_prefix("chunk: ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| IndexError::BadLine(chunk_line.to_string()))?;
        let count_line = lines.next().ok_or(IndexError::Truncated)?;
        let expected: usize = count_line
            .strip_prefix("segments: ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| IndexError::BadLine(count_line.to_string()))?;
        let mut entries = Vec::with_capacity(expected);
        let mut end_crc = None;
        for line in lines {
            if let Some(v) = line.strip_prefix("end: crc32=") {
                end_crc = Some(
                    u32::from_str_radix(v.trim(), 16)
                        .map_err(|_| IndexError::BadLine(line.to_string()))?,
                );
                break;
            }
            let rest = line
                .strip_prefix("seg: ")
                .ok_or_else(|| IndexError::BadLine(line.to_string()))?;
            entries.push(parse_entry(rest).ok_or_else(|| IndexError::BadLine(line.to_string()))?);
        }
        let stored = end_crc.ok_or(IndexError::Truncated)?;
        // The CRC covers everything up to (not including) the end line.
        // The offset must come from the raw bytes: invalid UTF-8 expands
        // to 3-byte replacement chars in the lossy text, so a text offset
        // can point past the end of `bytes`.
        let end_pos = find_line_start(bytes, b"end: crc32=").ok_or(IndexError::Truncated)?;
        let computed = crc32(&bytes[..end_pos]);
        if computed != stored {
            return Err(IndexError::BadCrc { stored, computed });
        }
        if entries.len() != expected {
            return Err(IndexError::CountMismatch {
                expected,
                got: entries.len(),
            });
        }
        Ok(ContentIndex { chunk_cap, entries })
    }

    /// Look up a segment by name.
    pub fn find(&self, name: &str) -> Option<&IndexEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Names of the queryable tables (filler segments excluded).
    pub fn tables(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| !e.name.starts_with('_'))
            .map(|e| e.name.as_str())
            .collect()
    }

    /// Data-stream chunk indices covering `entry`'s archive byte range —
    /// the chunks (and hence frames) a selective restore must decode.
    pub fn chunk_range(&self, entry: &IndexEntry) -> std::ops::Range<usize> {
        let cap = self.chunk_cap.max(1) as u64;
        let first = entry.archive_start / cap;
        let last = (entry.archive_start + entry.archive_len).div_ceil(cap);
        first as usize..last.max(first + 1) as usize
    }
}

/// Byte offset of the first line starting with `marker` ('\n' bytes are
/// preserved 1:1 by lossy UTF-8 decoding, so raw line starts coincide with
/// text line starts).
fn find_line_start(bytes: &[u8], marker: &[u8]) -> Option<usize> {
    if bytes.starts_with(marker) {
        return Some(0);
    }
    bytes
        .windows(marker.len() + 1)
        .position(|w| w[0] == b'\n' && &w[1..] == marker)
        .map(|p| p + 1)
}

fn parse_entry(rest: &str) -> Option<IndexEntry> {
    let mut name = None;
    let mut archive = None;
    let mut dump = None;
    let mut crc = None;
    for pair in rest.split_whitespace() {
        let (k, v) = pair.split_once('=')?;
        match k {
            "name" => name = Some(v.to_string()),
            "archive" => archive = parse_span(v),
            "dump" => dump = parse_span(v),
            "crc32" => crc = u32::from_str_radix(v, 16).ok(),
            _ => return None,
        }
    }
    let (archive_start, archive_len) = archive?;
    let (dump_start, dump_len) = dump?;
    Some(IndexEntry {
        name: name?,
        archive_start,
        archive_len,
        dump_start,
        dump_len,
        crc32: crc?,
    })
}

fn parse_span(v: &str) -> Option<(u64, u64)> {
    let (a, b) = v.split_once('+')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ContentIndex {
        ContentIndex {
            chunk_cap: 1115,
            entries: vec![
                IndexEntry {
                    name: "_preamble".into(),
                    archive_start: 0,
                    archive_len: 180,
                    dump_start: 0,
                    dump_len: 400,
                    crc32: 0x1111_2222,
                },
                IndexEntry {
                    name: "lineitem".into(),
                    archive_start: 180,
                    archive_len: 41_833,
                    dump_start: 400,
                    dump_len: 152_113,
                    crc32: 0x9FE2_A1B0,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let idx = sample();
        let bytes = idx.to_bytes();
        assert_eq!(ContentIndex::parse(&bytes).unwrap(), idx);
    }

    #[test]
    fn trailing_padding_is_ignored() {
        let idx = sample();
        let mut bytes = idx.to_bytes();
        bytes.extend_from_slice(&[0u8; 37]);
        assert_eq!(ContentIndex::parse(&bytes).unwrap(), idx);
    }

    #[test]
    fn corruption_is_detected() {
        let idx = sample();
        let mut bytes = idx.to_bytes();
        // Flip a digit inside an entry line.
        let pos = bytes.iter().position(|&b| b == b'8').unwrap();
        bytes[pos] = b'9';
        match ContentIndex::parse(&bytes) {
            Err(IndexError::BadCrc { .. }) | Err(IndexError::BadLine(_)) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_in_names_errors_instead_of_panicking() {
        // Fuzz regression: invalid UTF-8 expands to 3-byte replacement
        // chars in the lossy text, so a text-derived CRC slice offset can
        // run past the raw bytes. The CRC range must come from the bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"ULE VAULT INDEX 1\nchunk: 2\nsegments: 2\n");
        bytes.extend_from_slice(b"seg: name=");
        bytes.extend_from_slice(&[0xE1, 0xC4, 0xF6, 0xB1, 0xBB, 0x94, 0xA8]);
        bytes.extend_from_slice(b" archive=4+0 dump=3+6 crc32=d\nend: crc32=8");
        assert!(matches!(
            ContentIndex::parse(&bytes),
            Err(IndexError::BadCrc { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let idx = sample();
        let bytes = idx.to_bytes();
        assert_eq!(
            ContentIndex::parse(&bytes[..bytes.len() - 20]),
            Err(IndexError::Truncated)
        );
    }

    #[test]
    fn chunk_range_covers_the_archive_span() {
        let idx = sample();
        let li = idx.find("lineitem").unwrap();
        let r = idx.chunk_range(li);
        assert_eq!(r.start, 0); // 180 / 1115 = 0
        assert_eq!(r.end, (180 + 41_833usize).div_ceil(1115));
        assert!(idx.find("nope").is_none());
        assert_eq!(idx.tables(), vec!["lineitem"]);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            ContentIndex::parse(b"WRONG\nstuff"),
            Err(IndexError::BadMagic)
        );
    }
}
